"""Tests for the metric primitives (repro.obs.metrics)."""

import json

import pytest

from repro.obs import (Counter, Histogram, MetricsRegistry,
                       NULL_REGISTRY, DEFAULT_SECONDS_BOUNDS)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter("c")
        assert counter.value == 0
        counter.inc()
        counter.inc(5)
        assert counter.value == 6


class TestHistogram:
    def test_summary_statistics(self):
        hist = Histogram("h", bounds=[1.0, 2.0, 5.0])
        for sample in (0.5, 1.5, 4.0, 10.0):
            hist.record(sample)
        assert hist.count == 4
        assert hist.total == pytest.approx(16.0)
        assert hist.mean == pytest.approx(4.0)
        assert hist.min == 0.5
        assert hist.max == 10.0

    def test_bucketing_includes_overflow(self):
        hist = Histogram("h", bounds=[1.0, 2.0])
        hist.record(0.5)   # <= 1.0
        hist.record(1.0)   # <= 1.0 (bound is inclusive)
        hist.record(1.5)   # <= 2.0
        hist.record(99.0)  # overflow
        assert hist.bucket_counts == [2, 1, 1]

    def test_quantiles(self):
        hist = Histogram("h", bounds=[1.0, 2.0, 5.0])
        for sample in (0.5, 0.6, 1.5, 4.0):
            hist.record(sample)
        assert hist.quantile(0.5) == 1.0
        assert hist.quantile(1.0) == 5.0
        assert Histogram("empty").quantile(0.5) is None
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_as_dict_lists_only_nonempty_buckets(self):
        hist = Histogram("h", bounds=[1.0, 2.0])
        hist.record(0.5)
        hist.record(10.0)
        snap = hist.as_dict()
        assert snap["count"] == 2
        assert snap["buckets"] == [{"le": 1.0, "count": 1},
                                   {"le": "inf", "count": 1}]

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=[2.0, 1.0])

    def test_default_bounds_cover_ns_to_seconds(self):
        assert DEFAULT_SECONDS_BOUNDS[0] == 1e-9
        assert DEFAULT_SECONDS_BOUNDS[-1] == pytest.approx(5.0)
        assert list(DEFAULT_SECONDS_BOUNDS) == \
            sorted(DEFAULT_SECONDS_BOUNDS)


class TestRegistry:
    def test_instruments_created_once(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")

    def test_timer_records_into_histogram(self):
        registry = MetricsRegistry()
        with registry.timer("span"):
            pass
        hist = registry.histogram("span")
        assert hist.count == 1
        assert hist.min >= 0.0

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.histogram("h").record(1e-6)
        snap = registry.snapshot()
        assert snap["counters"] == {"c": 3}
        assert snap["histograms"]["h"]["count"] == 1

    def test_to_json_roundtrip(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        path = registry.to_json(tmp_path / "metrics.json")
        assert json.loads(path.read_text())["counters"] == {"c": 1}


class TestDisabledRegistry:
    def test_null_instruments_are_shared_noops(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("a")
        assert counter is registry.counter("b")
        counter.inc(100)
        assert counter.value == 0
        hist = registry.histogram("h")
        hist.record(1.0)
        assert hist.count == 0
        assert hist.quantile(0.5) is None
        assert hist.as_dict()["buckets"] == []
        with registry.timer("t"):
            pass
        assert registry.snapshot() == {"counters": {}, "histograms": {}}

    def test_module_null_registry_disabled(self):
        assert NULL_REGISTRY.enabled is False
