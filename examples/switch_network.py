#!/usr/bin/env python
"""System-level network simulation: the OPNET-equivalent workflow.

Before any hardware exists, the algorithm design is explored entirely
at the network level (paper §2): a 4-port ATM switch with a global
control unit, fed by heterogeneous traffic models (CBR, on-off, MPEG
video), with GCRA policing at the ingress and queueing/loss statistics
at the egress — "algorithms and architecture have to be optimized ...
within an interactive and iterative design process".

Run:  python examples/switch_network.py
"""

from repro.atm import (AccountingUnit, AtmCell, AtmSwitch,
                       STM1_CELL_TIME, Tariff, VirtualScheduling)
from repro.netsim import Network, Probe, SinkModule
from repro.traffic import (ConstantBitRate, MpegCellArrivals,
                           MpegTraceSynthesizer, OnOffSource,
                           TrafficSource)

SIM_TIME = 0.02  # 20 ms of network time


def main() -> int:
    net = Network("atm-lab")
    accounting = AccountingUnit(drop_unknown=True)
    switch = AtmSwitch(net, "switch", num_ports=4,
                       queue_capacity=32, accounting=accounting,
                       tariff_interval=5e-3)

    sources = {
        0: ("CBR voice trunk",
            ConstantBitRate(period=8 * STM1_CELL_TIME)),
        1: ("bursty data",
            OnOffSource(peak_period=2 * STM1_CELL_TIME,
                        mean_on=40 * STM1_CELL_TIME,
                        mean_off=120 * STM1_CELL_TIME, seed=7)),
        2: ("MPEG video",
            MpegCellArrivals(MpegTraceSynthesizer(frame_rate=25.0,
                                                  seed=3))),
    }

    policers = {}
    sinks = {}
    for port in range(4):
        host = net.add_node(f"host{port}")
        sink = SinkModule("sink", keep=True)
        host.add_module(sink)
        host.bind_port_input(0, sink, 0)
        sinks[port] = sink
        net.add_duplex_link(host, 0, switch.node, port,
                            rate_bps=155.52e6)
        if port in sources:
            label, arrivals = sources[port]
            vci = 100 + port
            switch.install_connection(port, 1, vci, 3, 1, vci,
                                      tariff=Tariff(units_per_cell=1))
            source = TrafficSource(
                "src", arrivals,
                packet_factory=lambda i, v=vci: AtmCell.with_payload(
                    1, v, [i % 256]).to_packet())
            host.add_module(source)
            host.bind_port_output(0, source, 0)
            # ingress GCRA: police against 2x the nominal CBR contract
            policers[port] = VirtualScheduling(
                increment=4 * STM1_CELL_TIME,
                limit=40 * STM1_CELL_TIME)

    # observe arrivals at the switch for policing statistics
    original_deliver = switch.node.deliver

    def deliver_with_upc(packet, port):
        if port in policers:
            policers[port].arrival(net.kernel.now)
        original_deliver(packet, port)

    switch.node.deliver = deliver_with_upc

    queue_probe = Probe("outq3")
    net.kernel.time_listeners.append(
        lambda t: queue_probe.record(t, len(switch.output_queue(3))))

    net.run(until=SIM_TIME)

    print(f"simulated {SIM_TIME * 1e3:.0f} ms of network time, "
          f"{net.kernel.executed_events} events\n")
    print(f"{'port':<6}{'source':<16}{'cells':<8}"
          f"{'GCRA conform':<14}{'tagged'}")
    for port, (label, _arrivals) in sources.items():
        upc = policers[port]
        total = upc.conforming + upc.non_conforming
        print(f"{port:<6}{label:<16}{total:<8}"
              f"{upc.conforming:<14}{upc.non_conforming}")

    print(f"\ncells switched      : {switch.cells_switched}")
    print(f"unknown-VC drops    : {switch.cells_dropped}")
    print(f"queue overflow drops: {switch.total_queue_drops()}")
    print(f"egress port 3 queue : mean {queue_probe.time_average():.2f} "
          f"cells, max {queue_probe.maximum():.0f}")
    print(f"received at host 3  : {len(sinks[3].received)} cells")
    print(f"\ntariff intervals closed: {accounting.interval}")
    for record in accounting.records[:6]:
        print(f"  VPI/VCI {record.vpi}/{record.vci} interval "
              f"{record.interval}: {record.cells_clp0} cells -> "
              f"{record.charge_units} units")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
