"""Tests for causal cell provenance (repro.obs.provenance)."""

import pytest

from repro.obs import (HOPS, MetricsRegistry, NULL_REGISTRY,
                       ProvenanceTracker, TRACE_ID_FIELD, TraceWriter)
from repro.netsim.packet import Packet


def test_ids_are_monotone_and_stamped_on_packets():
    tracker = ProvenanceTracker()
    first = Packet(size_bits=424)
    second = Packet(size_bits=424)
    assert tracker.stamp(first, 0.0, source="src0") == 0
    assert tracker.stamp(second, 1e-6, source="src0") == 1
    assert first[TRACE_ID_FIELD] == 0
    assert second[TRACE_ID_FIELD] == 1
    assert tracker.cells_seen == 2


def test_invalid_sample_rejected():
    with pytest.raises(ValueError):
        ProvenanceTracker(sample=0)


def test_sampling_skips_non_multiple_ids():
    tracker = ProvenanceTracker(sample=4)
    for i in range(8):
        tracker.record_hop(i, "post", t=i * 1e-6)
    assert tracker.cells_sampled == 2  # ids 0 and 4
    assert tracker.spans_recorded == 2
    assert tracker.journey(1) is None
    assert tracker.journey(4) == {"post": (4e-6, None)}
    assert not tracker.sampled(3)
    assert tracker.sampled(4)
    assert not tracker.sampled(None)


def test_none_id_is_ignored():
    tracker = ProvenanceTracker()
    tracker.record_hop(None, "post", t=0.0)
    assert tracker.spans_recorded == 0


def test_span_records_carry_both_time_domains():
    trace = TraceWriter()
    tracker = ProvenanceTracker(trace=trace)
    tracker.record_hop(0, "post", t=1e-6, hdl_s=5e-7)
    tracker.record_hop(0, "ingress", hdl_s=2e-6)
    assert trace.records[0] == {"ev": "span", "cell": 0, "hop": "post",
                                "t": 1e-6, "hdl_s": 5e-7}
    assert "t" not in trace.records[1]  # absent stamps are omitted


def test_hop_latency_uses_canonical_predecessor():
    """The netsim sink arrival precedes the lagging HDL ingress of the
    same cell; pairing must follow HOPS order, not emission order."""
    registry = MetricsRegistry()
    tracker = ProvenanceTracker(metrics=registry)
    tracker.record_hop(0, "source", t=0.0)
    tracker.record_hop(0, "post", t=1e-6, hdl_s=0.0)
    tracker.record_hop(0, "release", t=1e-6, hdl_s=2e-6)
    tracker.record_hop(0, "sink", t=4e-6)       # arrives first (netsim)
    tracker.record_hop(0, "ingress", hdl_s=9e-6)  # HDL catches up later
    names = tracker.hop_names()
    assert "release_to_sink" in names
    assert "release_to_ingress" in names
    assert "sink_to_ingress" not in names
    hists = registry.snapshot()["histograms"]
    # release->ingress differenced in the shared HDL domain
    assert hists["prov.hop_s.release_to_ingress"]["mean"] == \
        pytest.approx(7e-6)
    # post->release measures the sync queue wait, also in HDL seconds
    assert hists["prov.hop_s.post_to_release"]["mean"] == \
        pytest.approx(2e-6)


def test_non_canonical_hop_chains_to_last_recorded():
    registry = MetricsRegistry()
    tracker = ProvenanceTracker(metrics=registry)
    tracker.record_hop(0, "source", t=0.0)
    tracker.record_hop(0, "board", t=3e-6)  # not in HOPS
    assert "source_to_board" in tracker.hop_names()


def test_disabled_registry_records_no_histograms():
    tracker = ProvenanceTracker(metrics=NULL_REGISTRY)
    tracker.record_hop(0, "source", t=0.0)
    tracker.record_hop(0, "post", t=1e-6)
    assert tracker.hop_names() == []
    assert tracker.spans_recorded == 2  # counters still advance


def test_sink_hook_records_destination():
    trace = TraceWriter()
    tracker = ProvenanceTracker(trace=trace)
    packet = Packet(size_bits=424)
    tracker.stamp(packet, 0.0, source="src0")
    hook = tracker.sink_hook("sink0")
    hook(5e-6, packet)
    assert tracker.journey(0) == {"source": (0.0, None),
                                  "sink": (5e-6, None)}
    assert trace.records[-1]["dst"] == "sink0"


def test_stats_snapshot_shape():
    tracker = ProvenanceTracker(sample=2)
    packet = Packet(size_bits=424)
    tracker.stamp(packet, 0.0)
    assert tracker.stats_snapshot() == {
        "sample": 2, "cells_seen": 1, "cells_sampled": 1,
        "spans_recorded": 1}
    assert tuple(HOPS[:2]) == ("source", "post")
