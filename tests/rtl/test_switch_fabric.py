"""Tests for the RTL switch fabric (4 port modules + shared GCU),
including co-verification against the abstract switch model."""

import pytest

from repro.atm import AtmCell, AtmSwitch, STM1_CELL_TIME
from repro.hdl import Simulator
from repro.netsim import Network, SinkModule
from repro.rtl import AtmSwitchRtl, CellReceiver, CellSender


def make_fabric(num_ports=4, lookup_latency=4, queue_depth=16,
                gap_octets=8):
    sim = Simulator()
    clk = sim.signal("clk", init="0")
    sim.add_clock(clk, period=10)
    fabric = AtmSwitchRtl(sim, "fab", clk, num_ports=num_ports,
                          lookup_latency=lookup_latency,
                          queue_depth=queue_depth)
    senders = [CellSender(sim, f"gen{i}", clk, port=fabric.rx_ports[i],
                          gap_octets=gap_octets)
               for i in range(num_ports)]
    receivers = [CellReceiver(sim, f"mon{i}", clk, fabric.tx_ports[i])
                 for i in range(num_ports)]
    return sim, fabric, senders, receivers


def run_clocks(sim, clocks):
    sim.run(until=sim.now + 10 * clocks)


def test_cell_switched_and_translated():
    sim, fabric, senders, receivers = make_fabric()
    fabric.install_connection(0, 1, 100, 2, 7, 700)
    senders[0].send(AtmCell.with_payload(1, 100, [42], clp=1).to_octets())
    run_clocks(sim, 250)
    assert fabric.cells_switched == 1
    assert len(receivers[2].cells) == 1
    out = AtmCell.from_octets(receivers[2].cells[0])
    assert (out.vpi, out.vci, out.clp) == (7, 700, 1)
    assert out.payload[0] == 42


def test_unknown_connection_dropped():
    sim, fabric, senders, receivers = make_fabric()
    senders[0].send(AtmCell.with_payload(9, 9, []).to_octets())
    run_clocks(sim, 250)
    assert fabric.cells_dropped_unknown == 1
    assert all(not r.cells for r in receivers)


def test_idle_and_hec_errors_filtered():
    sim, fabric, senders, receivers = make_fabric()
    senders[0].send(AtmCell.idle().to_octets())
    bad = AtmCell.with_payload(1, 100, []).to_octets()
    bad[4] ^= 0xFF
    senders[0].send(bad)
    run_clocks(sim, 350)
    assert fabric.idle_cells == 1
    assert fabric.hec_errors == 1
    assert fabric.gcu.lookups_served == 0  # neither reached the GCU


def test_all_ports_switch_concurrently():
    sim, fabric, senders, receivers = make_fabric()
    for port in range(4):
        fabric.install_connection(port, 1, 100 + port, (port + 1) % 4,
                                  2, 200 + port)
        senders[port].send(
            AtmCell.with_payload(1, 100 + port, [port]).to_octets())
    run_clocks(sim, 400)
    assert fabric.cells_switched == 4
    for port in range(4):
        cells = receivers[(port + 1) % 4].cells
        assert len(cells) == 1
        assert AtmCell.from_octets(cells[0]).vci == 200 + port


def test_gcu_serialises_lookups():
    """Four simultaneous cells share one GCU: lookups serialise."""
    sim, fabric, senders, receivers = make_fabric(lookup_latency=6)
    for port in range(4):
        fabric.install_connection(port, 1, 100, port, 1, 100)
        senders[port].send(AtmCell.with_payload(1, 100, []).to_octets())
    run_clocks(sim, 500)
    assert fabric.gcu.lookups_served == 4
    assert fabric.gcu.busy_cycles >= 4 * 6


def test_output_queue_overflow():
    """Many ports converging on one output overflow its cell queue."""
    sim, fabric, senders, receivers = make_fabric(queue_depth=2,
                                                  gap_octets=0)
    for port in range(4):
        fabric.install_connection(port, 1, 100, 0, 1, 100 + port)
        for i in range(4):
            senders[port].send(
                AtmCell.with_payload(1, 100, [i]).to_octets())
    run_clocks(sim, 2000)
    total = 16
    delivered = len(receivers[0].cells)
    assert fabric.cells_dropped_overflow > 0
    assert delivered + fabric.cells_dropped_overflow == total


def test_sustained_stream_all_delivered():
    sim, fabric, senders, receivers = make_fabric(gap_octets=30)
    fabric.install_connection(0, 1, 100, 1, 1, 100)
    for i in range(10):
        senders[0].send(AtmCell.with_payload(1, 100, [i]).to_octets())
    run_clocks(sim, 10 * 90 + 400)
    payloads = [AtmCell.from_octets(c).payload[0]
                for c in receivers[1].cells]
    assert payloads == list(range(10))
    assert fabric.backlog() == {"awaiting_lookup": 0, "awaiting_tx": 0}


def test_remove_connection():
    sim, fabric, senders, receivers = make_fabric()
    fabric.install_connection(0, 1, 100, 1, 1, 100)
    fabric.remove_connection(0, 1, 100)
    senders[0].send(AtmCell.with_payload(1, 100, []).to_octets())
    run_clocks(sim, 250)
    assert fabric.cells_dropped_unknown == 1


def test_invalid_configs():
    sim = Simulator()
    clk = sim.signal("clk", init="0")
    with pytest.raises(ValueError):
        AtmSwitchRtl(sim, "f", clk, num_ports=0)
    with pytest.raises(ValueError):
        AtmSwitchRtl(sim, "f2", clk, queue_depth=0)
    fabric = AtmSwitchRtl(sim, "f3", clk, num_ports=2)
    with pytest.raises(ValueError):
        fabric.install_connection(0, 1, 1, 5, 1, 1)


def test_rtl_fabric_matches_abstract_switch():
    """Co-verification: the same cell sequence through the RTL fabric
    and the abstract switch model yields identical translated cells
    per output port."""
    workload = []
    for i in range(12):
        port = i % 3
        workload.append((port, AtmCell.with_payload(1, 100 + port,
                                                    [i % 256])))
    connections = [(p, 1, 100 + p, (p + 2) % 4, 3, 300 + p)
                   for p in range(3)]

    # RTL fabric
    sim, fabric, senders, receivers = make_fabric(gap_octets=60)
    for conn in connections:
        fabric.install_connection(*conn)
    for port, cell in workload:
        senders[port].send(cell.to_octets())
    run_clocks(sim, 12 * 120 + 600)
    rtl_out = {p: [AtmCell.from_octets(c) for c in receivers[p].cells]
               for p in range(4)}

    # abstract switch
    net = Network()
    switch = AtmSwitch(net, "sw", num_ports=4)
    for conn in connections:
        switch.install_connection(*conn)
    hosts = []
    for p in range(4):
        host = net.add_node(f"h{p}")
        sink = SinkModule("sink", keep=True)
        host.add_module(sink)
        host.bind_port_input(0, sink, 0)
        net.add_link(host, 0, switch.node, p, rate_bps=155.52e6)
        net.add_link(switch.node, p, host, 0, rate_bps=155.52e6)
        hosts.append(host)
    when = {p: 0.0 for p in range(4)}
    for port, cell in workload:
        when[port] += 3 * STM1_CELL_TIME
        net.kernel.schedule(
            when[port],
            lambda c=cell, p=port, t=when[port]:
                hosts[p].transmit(c.to_packet(t), 0))
    net.run()
    abstract_out = {p: [AtmCell.from_packet(pkt)
                        for pkt in hosts[p].modules["sink"].received]
                    for p in range(4)}

    for p in range(4):
        assert [(c.vpi, c.vci, c.payload[0]) for c in rtl_out[p]] \
            == [(c.vpi, c.vci, c.payload[0]) for c in abstract_out[p]]
