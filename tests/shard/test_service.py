"""The persistent job service: pool reuse, failure policy, wire API."""

import threading

import pytest

from repro.shard import JobService, ServeClient


def run_payload(name, level="behav", cells=8, inject=None):
    payload = {"name": name, "traffic": "cbr", "ports": 2, "seed": 0,
               "sync": "conservative", "level": level, "cells": cells,
               "load": 0.25}
    if inject is not None:
        payload["inject"] = inject
    return payload


def test_submit_validates_before_queueing():
    with JobService(jobs=1) as service:
        with pytest.raises(Exception):
            service.submit({"name": "bad"})  # missing matrix fields
        assert service.status()["stats"]["submitted"] == 0


def test_jobs_complete_and_results_are_stored():
    with JobService(jobs=2) as service:
        ids = [service.submit(run_payload(f"job{i}"))
               for i in range(3)]
        records = [service.result(job_id, wait=True, timeout=60)
                   for job_id in ids]
        assert [r["status"] for r in records] == ["done"] * 3
        assert all(r["result"]["passed"] for r in records)
        status = service.status()
        assert status["census"] == {"done": 3}
        assert status["stats"]["completed"] == 3
    # shutdown reaped the pool
    assert service._workers == []


def test_unknown_job_id_raises():
    with JobService(jobs=1) as service:
        with pytest.raises(KeyError, match="unknown job id"):
            service.result("job-999", wait=False)


def test_error_job_keeps_full_traceback_and_no_retry():
    with JobService(jobs=1) as service:
        job_id = service.submit(run_payload("boom", inject="error"))
        record = service.result(job_id, wait=True, timeout=60)
        assert record["status"] == "error"
        assert record["attempts"] == 1  # deterministic — not retried
        detail = record["result"]["detail"]
        assert detail["type"] == "RuntimeError"
        assert "injected error" in detail["message"]
        assert "Traceback (most recent call last)" in \
            detail["traceback"]
        # the pool survives a job error: the next job still runs
        ok = service.submit(run_payload("after"))
        assert service.result(ok, wait=True,
                              timeout=60)["status"] == "done"


def test_crash_once_is_retried_to_success():
    with JobService(jobs=1) as service:
        job_id = service.submit(run_payload("flaky",
                                            inject="crash_once"))
        record = service.result(job_id, wait=True, timeout=60)
        assert record["status"] == "done"
        assert record["attempts"] == 2
        stats = service.status()["stats"]
        assert stats["crashes"] == 1
        assert stats["retries"] == 1
        assert stats["workers_spawned"] == 2  # original + respawn


def test_persistent_crash_becomes_terminal():
    with JobService(jobs=1) as service:
        job_id = service.submit(run_payload("dead", inject="crash"))
        record = service.result(job_id, wait=True, timeout=60)
        assert record["status"] == "crash"
        assert record["attempts"] == 2
        assert record["result"]["detail"]["exitcode"] == 23


def test_rtl_templates_shared_across_jobs():
    """The point of the persistent pool: job 2 reuses the compiled
    cell templates job 1 published in the same worker process."""
    with JobService(jobs=1) as service:
        first = service.result(
            service.submit(run_payload("rtl1", level="rtl")),
            wait=True, timeout=120)
        second = service.result(
            service.submit(run_payload("rtl2", level="rtl")),
            wait=True, timeout=120)
        t1 = first["result"]["templates"]
        t2 = second["result"]["templates"]
        assert t1["enabled"] and t2["enabled"]
        assert t1["misses"] > 0  # job 1 compiled and published
        assert t2["hits"] > t1["hits"]  # job 2 adopted shared entries
        assert t2["entries"] == t1["entries"]  # nothing recompiled


def test_serve_smoke_over_socket():
    """The CI serve smoke: 3 jobs over the local socket, results
    collected, clean shutdown on request."""
    service = JobService(jobs=2)
    service.start()
    thread = threading.Thread(target=service.serve_forever,
                              daemon=True)
    thread.start()
    try:
        with ServeClient(service.address) as client:
            ids = [client.submit(run_payload(f"wire{i}"))
                   for i in range(3)]
            for job_id in ids:
                record = client.result(job_id, wait=True, timeout=60)
                assert record["status"] == "done"
                assert record["result"]["passed"]
            status = client.status()
            assert status["stats"]["completed"] == 3
            client.shutdown()
    finally:
        thread.join(timeout=30)
        service.shutdown()
    assert not thread.is_alive()
    assert service._workers == []  # pool reaped


def test_serve_stats_live_introspection():
    """The STATS handshake: per-worker counters, queue depth, and the
    merged telemetry of every completed job (latency bucket-merged,
    provenance totals summed)."""
    service = JobService(jobs=2)
    service.start()
    thread = threading.Thread(target=service.serve_forever,
                              daemon=True)
    thread.start()
    try:
        with ServeClient(service.address) as client:
            ids = [client.submit(run_payload(f"stats{i}"))
                   for i in range(2)]
            for job_id in ids:
                client.result(job_id, wait=True, timeout=60)
            stats = client.stats()
            assert set(stats) == {"queue_depth", "running", "service",
                                  "workers", "telemetry"}
            assert stats["queue_depth"] == 0
            assert stats["running"] == []
            assert stats["service"]["completed"] == 2
            workers = stats["workers"]
            assert len(workers) == 2
            assert all(w["alive"] and not w["busy"] for w in workers)
            assert sum(w["counters"]["ok"] for w in workers) == 2
            telemetry = stats["telemetry"]
            assert telemetry["jobs"] == 2
            # 8 cells per job, both jobs folded into one histogram
            assert telemetry["latency"]["count"] == 16
            assert telemetry["provenance"]["cells_seen"] == 16
            assert telemetry["provenance"]["sample"] == 1  # max
            client.shutdown()
    finally:
        thread.join(timeout=30)
        service.shutdown()


def test_wire_protocol_rejects_garbage():
    service = JobService(jobs=1)
    service.start()
    thread = threading.Thread(target=service.serve_forever,
                              daemon=True)
    thread.start()
    try:
        with ServeClient(service.address) as client:
            with pytest.raises(RuntimeError, match="unknown op"):
                client._call({"op": "dance"})
            with pytest.raises(RuntimeError):
                client._call({"op": "submit", "run": {"name": "x"}})
            with pytest.raises(RuntimeError, match="unknown job id"):
                client.result("job-404", wait=False)
            client.shutdown()
    finally:
        thread.join(timeout=30)
        service.shutdown()
