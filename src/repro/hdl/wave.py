"""VCD reading and waveform comparison.

Complements :mod:`repro.hdl.vcd`: parse dumped waveforms back and
compare two of them — the regression use of waveform data ("access to
powerful analysis capabilities ... in HDL simulators for depicting
waveforms").  Comparing the VCD of a golden run against a new run is
the classic way VHDL regression benches decided pass/fail before
self-checking benches existed.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

__all__ = ["VcdData", "WaveformDifference", "compare_waveforms",
           "VcdFormatError"]


class VcdFormatError(ValueError):
    """Raised on malformed VCD input."""


@dataclass(frozen=True)
class WaveformDifference:
    """One divergence between two waveforms."""

    signal: str
    time: int
    value_a: Optional[str]
    value_b: Optional[str]


class VcdData:
    """A parsed value-change dump.

    Attributes:
        timescale: the declared timescale string.
        widths: signal name -> bit width.
        changes: signal name -> [(time, value string)] — value strings
            are VCD-style: scalars like ``"1"``/``"x"``, vectors like
            ``"0101"`` (no ``b`` prefix).
    """

    def __init__(self) -> None:
        self.timescale = ""
        self.widths: Dict[str, int] = {}
        self.changes: Dict[str, List[Tuple[int, str]]] = {}

    # ------------------------------------------------------------------
    # Parsing
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, path: Union[str, Path]) -> "VcdData":
        """Parse a VCD file (the subset VcdWriter emits plus common
        variants)."""
        data = cls()
        ids: Dict[str, str] = {}
        current_time = 0
        in_header = True
        text = Path(path).read_text()
        tokens = iter(text.split("\n"))
        for raw_line in tokens:
            line = raw_line.strip()
            if not line:
                continue
            if in_header:
                if line.startswith("$timescale"):
                    data.timescale = line.replace("$timescale", "") \
                        .replace("$end", "").strip()
                elif line.startswith("$var"):
                    parts = line.split()
                    if len(parts) < 6:
                        raise VcdFormatError(f"bad $var line: {line!r}")
                    width = int(parts[2])
                    ident = parts[3]
                    name = parts[4]
                    ids[ident] = name
                    data.widths[name] = width
                    data.changes[name] = []
                elif line.startswith("$enddefinitions"):
                    in_header = False
                continue
            if line.startswith("$"):
                continue  # $dumpvars / $end markers
            if line.startswith("#"):
                try:
                    current_time = int(line[1:])
                except ValueError:
                    raise VcdFormatError(f"bad time stamp {line!r}")
                continue
            data._apply_change(line, ids, current_time)
        if in_header:
            raise VcdFormatError(f"{path}: no $enddefinitions found")
        return data

    def _apply_change(self, line: str, ids: Dict[str, str],
                      time: int) -> None:
        if line[0] in "01xXzZ":
            value, ident = line[0].lower(), line[1:].strip()
        elif line[0] in "bB":
            try:
                value, ident = line[1:].split()
            except ValueError:
                raise VcdFormatError(f"bad vector change {line!r}")
            value = value.lower()
        else:
            raise VcdFormatError(f"unparseable change {line!r}")
        name = ids.get(ident)
        if name is None:
            raise VcdFormatError(f"unknown identifier {ident!r}")
        self.changes[name].append((time, value))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def signals(self) -> List[str]:
        """Names of all dumped signals."""
        return sorted(self.widths)

    def value_at(self, name: str, time: int) -> Optional[str]:
        """The signal's value at *time* (last change at or before it),
        or ``None`` before the first recorded change."""
        history = self.changes.get(name)
        if history is None:
            raise KeyError(f"no signal {name!r} in the dump")
        value = None
        for change_time, change_value in history:
            if change_time > time:
                break
            value = change_value
        return value

    def edges(self, name: str) -> int:
        """Number of recorded value changes of *name* (after the
        initial dumpvars value)."""
        history = self.changes.get(name)
        if history is None:
            raise KeyError(f"no signal {name!r} in the dump")
        return max(0, len(history) - 1)

    def last_time(self) -> int:
        """Largest time stamp in the dump."""
        latest = 0
        for history in self.changes.values():
            if history:
                latest = max(latest, history[-1][0])
        return latest


def compare_waveforms(a: VcdData, b: VcdData,
                      signals: Optional[Sequence[str]] = None,
                      ) -> List[WaveformDifference]:
    """Compare two dumps signal by signal, change by change.

    Returns the list of differences (empty == equivalent).  Signals
    present in only one dump are reported as a difference at time 0.
    """
    if signals is None:
        names = sorted(set(a.widths) | set(b.widths))
    else:
        names = list(signals)
    differences: List[WaveformDifference] = []
    for name in names:
        in_a = name in a.widths
        in_b = name in b.widths
        if not (in_a and in_b):
            differences.append(WaveformDifference(
                signal=name, time=0,
                value_a="<present>" if in_a else None,
                value_b="<present>" if in_b else None))
            continue
        history_a = a.changes[name]
        history_b = b.changes[name]
        times = sorted({t for t, _v in history_a}
                       | {t for t, _v in history_b})
        for time in times:
            value_a = a.value_at(name, time)
            value_b = b.value_at(name, time)
            if value_a != value_b:
                differences.append(WaveformDifference(
                    signal=name, time=time, value_a=value_a,
                    value_b=value_b))
    return differences
