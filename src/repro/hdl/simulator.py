"""Event-driven HDL simulation kernel with delta cycles.

The Synopsys-VSS-equivalent substrate.  Semantics follow the VHDL
simulation cycle:

1. signal updates scheduled for the current time are applied;
2. signals whose resolved value changed produce *events*;
3. processes sensitive to (or waiting on) those events run, scheduling
   new updates — zero-delay updates take effect in the *next delta
   cycle* at the same simulated time;
4. when no delta work remains, time advances to the next scheduled
   update.

Time is integral (ticks); :attr:`Simulator.time_unit` gives the tick
length in seconds (default 1 ns) and is what the CASTANET abstraction
interface uses to convert between network-simulator seconds and HDL
clock cycles.

The kernel counts events, delta cycles and process runs — the raw
material for the paper's observation that "the number of events that
event-driven simulators have to evaluate is an order of magnitude
higher compared to the system-level simulation" (experiment E3).

Hot-path design notes (the paper's conclusion is that "event-driven
VHDL-simulators are obviously a bottleneck in the co-verification
process"; this kernel is where that bottleneck lives in the repro):

* future updates are slotted :class:`_ScheduledUpdate` records, and
  inertial-delay preemption is O(1) *tombstoning* — cancelling bumps a
  per-driver generation counter on the signal, and stale records are
  dropped when popped — instead of rescanning/re-heapifying the heap;
* a :class:`~repro.hdl.cycle.CycleEngine` may be *attached* to the
  simulator; :meth:`Simulator.run` then delegates to the engine, which
  applies clock edges by direct dispatch instead of heap-scheduled
  generator resumes (see ``cycle.py``);
* precompiled stimulus is injected in bulk: one
  :meth:`Simulator.schedule_waveform` call plays back a whole
  transition list (a :class:`WaveformStream`) with no generator resume
  per clock — each due transition batch is applied as its own delta
  cycle *after* the coincident clock edge has settled, so a bulk
  waveform is observationally identical to a generator process that
  drives the same values after each edge.
"""

from __future__ import annotations

import heapq
import itertools
import os
from typing import Callable, Dict, Generator, List, Optional, Sequence, \
    Tuple

from .processes import CallbackProcess, GeneratorProcess, Process
from .signal import Signal

__all__ = ["Simulator", "SimulationError", "CombinationalLoopError",
           "WaveformStream"]


class SimulationError(Exception):
    """Raised on kernel-level errors (time reversal, bad scheduling)."""


class CombinationalLoopError(SimulationError):
    """Raised when delta cycles at one time step exceed the bound —
    the classic symptom of a zero-delay feedback loop."""


class _ScheduledUpdate:
    """A future (non-delta) signal update waiting on the heap.

    ``gen`` snapshots the driver's preemption generation at scheduling
    time; a mismatch at pop time means the update was cancelled by an
    inertial re-drive and the record is a tombstone.
    """

    __slots__ = ("signal", "driver", "value", "gen")

    def __init__(self, signal: Signal, driver: object, value,
                 gen: int) -> None:
        self.signal = signal
        self.driver = driver
        self.value = value
        self.gen = gen


class WaveformStream:
    """One bulk-scheduled transition list (see
    :meth:`Simulator.schedule_waveform`).

    ``transitions`` is a list of ``(offset, signal, value)`` tuples
    with tick offsets relative to ``base`` (absolute time = ``base +
    offset``); values are already normalised.  ``callbacks`` is a list
    of ``(offset, callable)`` completion hooks fired when playback
    passes their offset.  ``order`` is the creation sequence number:
    at coincident times, earlier-scheduled streams apply first (the
    tie-break that keeps chained cell waveforms in FIFO order).
    """

    __slots__ = ("base", "transitions", "driver", "callbacks", "order",
                 "index", "cb_index")

    def __init__(self, base: int, transitions: List[tuple],
                 driver: object, callbacks: Sequence[tuple],
                 order: int) -> None:
        self.base = base
        self.transitions = transitions
        self.driver = driver
        self.callbacks = callbacks
        self.order = order
        self.index = 0
        self.cb_index = 0

    @property
    def pending(self) -> int:
        """Transitions not yet applied."""
        return len(self.transitions) - self.index

    def next_time(self) -> Optional[int]:
        """Absolute tick of the next transition or callback, or
        ``None`` when playback has finished."""
        time = None
        if self.index < len(self.transitions):
            time = self.base + self.transitions[self.index][0]
        if self.cb_index < len(self.callbacks):
            cb_time = self.base + self.callbacks[self.cb_index][0]
            if time is None or cb_time < time:
                time = cb_time
        return time


class Simulator:
    """An event-driven simulator instance.

    Example:
        >>> sim = Simulator()
        >>> clk = sim.signal("clk", init="0")
        >>> sim.add_clock(clk, period=10)
        >>> sim.run(until=25)
        >>> clk.value
        '1'
    """

    def __init__(self, time_unit: float = 1e-9,
                 max_delta_cycles: int = 1000) -> None:
        self.time_unit = time_unit
        self.max_delta_cycles = max_delta_cycles
        self.now: int = 0
        self.signals: List[Signal] = []
        self.processes: List[Process] = []
        #: hooks called with each signal after a value change (VCD etc.)
        self.signal_hooks: List[Callable[[Signal], None]] = []

        self._heap: List[Tuple[int, int, object]] = []
        self._seq = itertools.count()
        self._pending_updates: List[tuple] = []
        self._pending_resumes: List[GeneratorProcess] = []
        self._waiters: Dict[int, List[GeneratorProcess]] = {}
        self._current_process: Optional[Process] = None
        self._anonymous_driver = object()
        self._delta_stamp = 0
        self._initialized = False
        #: attached cycle-based clock engine (at most one); when set,
        #: :meth:`run` delegates the clocking to it
        self._engine = None
        #: bulk waveform playback (see :meth:`schedule_waveform`):
        #: a heap of (next_time, order, WaveformStream)
        self._wave_heap: List[Tuple[int, int, WaveformStream]] = []
        self._wave_pending = 0
        #: clock-signal id -> (period_ticks, first_rise_tick); written
        #: by :meth:`add_clock` and by an attaching CycleEngine so that
        #: stimulus compilers (e.g. CellSender's bulk path) can place
        #: transitions on clock edges without a running clock process
        self._clock_specs: Dict[int, Tuple[int, int]] = {}
        #: optional profiling hook — a zero-arg callable returning a
        #: context manager, wrapped around every :meth:`run` call (see
        #: :func:`repro.obs.profile.attach_profiling`)
        self.profile: Optional[Callable[[], object]] = None
        #: default RTL component backend ("event" | "compiled" |
        #: "auto"); components resolve ``backend=None`` against this.
        #: Overridable per run via the REPRO_RTL_BACKEND env var.
        self.rtl_backend = os.environ.get("REPRO_RTL_BACKEND", "auto")
        #: clock-signal id -> CompiledKernel (see repro.hdl.compiled)
        self._compiled_kernels: Dict[int, object] = {}
        #: components that requested backend="auto" but fell back to
        #: the event kernel (UnsupportedFeature during compile)
        self.compiled_fallbacks = 0

        # statistics
        self.events_executed = 0     # applied signal updates
        self.signal_events = 0       # updates that changed a value
        self.delta_cycles = 0
        self.process_runs = 0
        self.waveforms_scheduled = 0  # schedule_waveform calls
        self.waveform_events = 0      # transitions applied in bulk

    def stats_snapshot(self) -> Dict[str, int]:
        """Machine-readable kernel counters (the raw material of the
        paper's event-count comparison, E3) — plain reads, no reset."""
        kernels = self._compiled_kernels.values()
        return {
            "now_ticks": self.now,
            "events_executed": self.events_executed,
            "signal_events": self.signal_events,
            "delta_cycles": self.delta_cycles,
            "process_runs": self.process_runs,
            "waveforms_scheduled": self.waveforms_scheduled,
            "waveform_events": self.waveform_events,
            "pending_events": self.pending_event_count,
            "signals": len(self.signals),
            "processes": len(self.processes),
            # compiled (levelized) backend activity, aggregated over
            # all clock-domain kernels — see repro.hdl.compiled
            "compiled_components": sum(k.components for k in kernels),
            "compiled_evals": sum(k.evals_run for k in kernels),
            "compiled_commit_writes": sum(
                k.commit_writes for k in kernels),
            "compiled_fallbacks": self.compiled_fallbacks,
        }

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def signal(self, name: str, width: Optional[int] = None,
               init=None) -> Signal:
        """Create a signal owned by this simulator."""
        return Signal(self, name, width=width, init=init)

    def add_process(self, name: str, fn: Callable[["Simulator"], None],
                    sensitivity: Sequence[Signal] = (),
                    edge: str = "any") -> CallbackProcess:
        """Register an RTL-style callback process.

        ``edge="rise"`` wakes the process only on events that leave a
        sensitivity signal at '1' (a clocked process guarded by
        ``rising_edge``), skipping the wasted falling-edge dispatch.
        """
        process = CallbackProcess(name, fn, sensitivity, edge=edge)
        self.processes.append(process)
        if self._initialized:
            self._pending_resume_callback(process)
        return process

    def add_generator(self, name: str,
                      generator: Generator) -> GeneratorProcess:
        """Register a behavioural generator process."""
        process = GeneratorProcess(name, generator)
        self.processes.append(process)
        if self._initialized:
            self._run_process(process)
        return process

    def add_clock(self, signal: Signal, period: int,
                  start_high: bool = False,
                  duty_ticks: Optional[int] = None) -> GeneratorProcess:
        """Drive *signal* as a free-running clock of *period* ticks."""
        if period < 2:
            raise SimulationError("clock period must be >= 2 ticks")
        high = duty_ticks if duty_ticks is not None else period // 2
        if not 0 < high < period:
            raise SimulationError(
                f"clock duty {high} outside (0, {period})")

        def clock_gen():
            first, second = ("1", "0") if start_high else ("0", "1")
            first_span = high if start_high else period - high
            second_span = period - first_span
            signal.drive(first)
            while True:
                yield first_span
                signal.drive(second)
                yield second_span
                signal.drive(first)

        first_rise = self.now + (period if start_high
                                 else period - high)
        self._register_clock(signal, period, first_rise)
        return self.add_generator(f"clock:{signal.name}", clock_gen())

    def _register_clock(self, signal: Signal, period: int,
                        first_rise: int) -> None:
        self._clock_specs[id(signal)] = (period, first_rise)

    def clock_spec(self, signal: Signal) -> Optional[Tuple[int, int]]:
        """The ``(period_ticks, first_rise_tick)`` of a registered
        clock on *signal* (via :meth:`add_clock` or an attached
        :class:`~repro.hdl.cycle.CycleEngine`), or ``None``."""
        return self._clock_specs.get(id(signal))

    def next_rising_edge(self, signal: Signal,
                         after: Optional[int] = None) -> int:
        """The first rising-edge tick of a registered clock strictly
        after *after* (default: the current time)."""
        spec = self.clock_spec(signal)
        if spec is None:
            raise SimulationError(
                f"no clock registered on signal {signal.name!r}")
        period, first_rise = spec
        time = self.now if after is None else after
        if time < first_rise:
            return first_rise
        return first_rise + ((time - first_rise) // period + 1) * period

    def schedule_waveform(self, transitions: Sequence[tuple],
                          start: Optional[int] = None,
                          driver: Optional[object] = None,
                          callbacks: Sequence[tuple] = (),
                          normalized: bool = False) -> \
            Optional[WaveformStream]:
        """Bulk event injection: insert a precompiled transition list.

        Args:
            transitions: ``(tick_offset, signal, value)`` tuples with
                non-decreasing integer offsets; at each absolute time
                ``start + offset`` the due batch is applied as one
                delta cycle.  At a time that also carries heap events
                (e.g. a clock edge) the waveform batch applies *after*
                those events and their deltas settle — exactly where a
                generator process woken by the edge would land its
                ``drive()`` calls.
            start: base tick (default: the current time; must not lie
                in the past).
            driver: driver identity for every transition (default: the
                current process, or the anonymous test-bench driver).
            callbacks: ``(tick_offset, callable)`` completion hooks in
                non-decreasing offset order, fired when playback
                reaches their offset (e.g. per-cell accounting).
            normalized: pass ``True`` when values are already
                normalised for their signal (e.g. from a cached
                template) to skip re-validation.

        Returns the scheduled :class:`WaveformStream` (``None`` for an
        empty call).  Streams scheduled earlier apply first at
        coincident times.  Transitions with the same driver and no
        value change still resolve identically to repeated ``drive()``
        calls, but cost no per-clock Python process resumption.
        """
        base = self.now if start is None else start
        if base < self.now:
            raise SimulationError(
                f"waveform start {base} lies in the past of {self.now}")
        compiled: List[tuple] = []
        previous = 0
        for offset, signal, value in transitions:
            if not isinstance(offset, int) or offset < 0:
                raise SimulationError(
                    f"waveform offset must be a non-negative int, "
                    f"got {offset!r}")
            if offset < previous:
                raise SimulationError(
                    f"waveform offsets must be non-decreasing "
                    f"({offset} after {previous})")
            previous = offset
            compiled.append(
                (offset, signal,
                 value if normalized else signal._normalize(value)))
        hooks = list(callbacks)
        previous = 0
        for offset, _fn in hooks:
            if not isinstance(offset, int) or offset < previous:
                raise SimulationError(
                    "waveform callback offsets must be non-decreasing "
                    "non-negative ints")
            previous = offset
        if not compiled and not hooks:
            return None
        if driver is None:
            driver = self._current_driver()
        stream = WaveformStream(base, compiled, driver, hooks,
                                next(self._seq))
        self.waveforms_scheduled += 1
        self._wave_pending += len(compiled)
        heapq.heappush(self._wave_heap,
                       (stream.next_time(), stream.order, stream))
        return stream

    def _collect_wave_due(self, time: int) -> None:
        """Move every waveform transition due at *time* to the pending
        updates (in stream order) and fire due completion callbacks."""
        wave = self._wave_heap
        pending = self._pending_updates
        while wave and wave[0][0] <= time:
            stream = heapq.heappop(wave)[2]
            transitions = stream.transitions
            base = stream.base
            index = stream.index
            count = len(transitions)
            while index < count and base + transitions[index][0] <= time:
                entry = transitions[index]
                pending.append((entry[1], stream.driver, entry[2]))
                index += 1
            applied = index - stream.index
            stream.index = index
            self._wave_pending -= applied
            self.waveform_events += applied
            callbacks = stream.callbacks
            cb_index = stream.cb_index
            cb_count = len(callbacks)
            while (cb_index < cb_count
                   and base + callbacks[cb_index][0] <= time):
                callbacks[cb_index][1]()
                cb_index += 1
            stream.cb_index = cb_index
            next_time = stream.next_time()
            if next_time is not None:
                heapq.heappush(wave, (next_time, stream.order, stream))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def initialize(self) -> None:
        """Run the initialisation phase (idempotent): every process
        executes once, then time-zero deltas settle."""
        if self._initialized:
            return
        self._initialized = True
        if self._engine is not None:
            self._engine._prime()
        for process in list(self.processes):
            self._run_process(process)
        for kernel in self._compiled_kernels.values():
            kernel._initialize()
        self._execute_deltas()

    def run(self, until: Optional[int] = None) -> int:
        """Run until the event queue drains or *until* ticks.

        The clock is advanced to exactly *until* on return when given.
        With a cycle engine attached the engine supplies the clock
        edges (same observable semantics, no heap traffic per edge).
        Returns the current time.
        """
        profile = self.profile
        if profile is not None:
            with profile():
                return self._run_events(until)
        return self._run_events(until)

    def _run_events(self, until: Optional[int]) -> int:
        self.initialize()
        if self._engine is not None:
            return self._engine._run_until(until)
        self._execute_deltas()
        heap = self._heap
        wave = self._wave_heap
        while heap or wave:
            if heap and (not wave or heap[0][0] <= wave[0][0]):
                next_time = heap[0][0]
            else:
                next_time = wave[0][0]
            if until is not None and next_time > until:
                break
            if next_time < self.now:
                raise SimulationError(
                    f"time reversal: event at {next_time} < {self.now}")
            self.now = next_time
            if heap and heap[0][0] == next_time:
                self._pop_due(next_time)
                self._execute_deltas()
            if wave and wave[0][0] == next_time:
                self._collect_wave_due(next_time)
                self._execute_deltas()
        if until is not None and until > self.now:
            self.now = until
        return self.now

    def run_for(self, ticks: int) -> int:
        """Run *ticks* further from the current time."""
        return self.run(until=self.now + ticks)

    @property
    def pending_event_count(self) -> int:
        """Scheduled-but-unapplied updates/resumes (incl. future).

        May over-count by inertially cancelled transactions that are
        still on the heap as tombstones.
        """
        return (len(self._heap) + len(self._pending_updates)
                + len(self._pending_resumes) + self._wave_pending)

    def next_event_time(self) -> Optional[int]:
        """Time of the earliest scheduled future event (heap or bulk
        waveform), or ``None``."""
        if self._pending_updates or self._pending_resumes:
            return self.now
        wave = self._wave_heap
        wave_time = wave[0][0] if wave else None
        heap = self._heap
        while heap:
            item = heap[0][2]
            if type(item) is _ScheduledUpdate and self._is_stale(item):
                heapq.heappop(heap)     # discard the tombstone
                continue
            if wave_time is not None and wave_time < heap[0][0]:
                return wave_time
            return heap[0][0]
        return wave_time

    # ------------------------------------------------------------------
    # Kernel internals (used by Signal, processes and CycleEngine)
    # ------------------------------------------------------------------
    def _register_signal(self, signal: Signal) -> None:
        self.signals.append(signal)

    def _current_driver(self) -> object:
        return (self._current_process if self._current_process is not None
                else self._anonymous_driver)

    @staticmethod
    def _is_stale(item: "_ScheduledUpdate") -> bool:
        return item.gen != item.signal._driver_gen.get(item.driver, 0)

    def _pop_due(self, time: int) -> None:
        """Move every heap entry stamped *time* to the pending lists,
        dropping tombstoned updates."""
        heap = self._heap
        pending_updates = self._pending_updates
        pending_resumes = self._pending_resumes
        while heap and heap[0][0] == time:
            item = heapq.heappop(heap)[2]
            if type(item) is _ScheduledUpdate:
                if item.gen == item.signal._driver_gen.get(item.driver, 0):
                    pending_updates.append(
                        (item.signal, item.driver, item.value))
            else:
                pending_resumes.append(item)

    def _schedule_update(self, signal: Signal, driver: object,
                         value, delay: int) -> None:
        if not isinstance(delay, int) or delay < 0:
            raise SimulationError(
                f"drive delay must be a non-negative int, got {delay!r}")
        if delay == 0:
            self._pending_updates.append((signal, driver, value))
        else:
            record = _ScheduledUpdate(
                signal, driver, value, signal._driver_gen.get(driver, 0))
            heapq.heappush(self._heap,
                           (self.now + delay, next(self._seq), record))

    def _cancel_pending_updates(self, signal: Signal,
                                driver: object) -> None:
        """Drop this driver's not-yet-applied updates on *signal*
        (inertial-delay preemption).  Current-delta updates are
        filtered from the (small) pending list; future updates become
        O(1) tombstones — the driver's generation counter is bumped and
        stale heap records are discarded when they surface."""
        if self._pending_updates:
            self._pending_updates = [
                item for item in self._pending_updates
                if not (item[0] is signal and item[1] is driver)]
        gens = signal._driver_gen
        gens[driver] = gens.get(driver, 0) + 1

    def _schedule_resume(self, process: GeneratorProcess,
                         delay: int) -> None:
        if delay == 0:
            self._pending_resumes.append(process)
        else:
            heapq.heappush(self._heap, (self.now + delay, next(self._seq),
                                        process))

    def _add_waiter(self, signal: Signal,
                    process: GeneratorProcess) -> None:
        self._waiters.setdefault(id(signal), []).append(process)

    def _remove_waiter(self, signal: Signal,
                       process: GeneratorProcess) -> None:
        bucket = self._waiters.get(id(signal), [])
        if process in bucket:
            bucket.remove(process)

    def _pending_resume_callback(self, process: CallbackProcess) -> None:
        # Late-added callback processes execute in the next delta.
        self._pending_resumes.append(process)  # type: ignore[arg-type]

    def _attach_engine(self, engine) -> None:
        """Install *engine* as this simulator's clocking scheme."""
        if self._engine is not None:
            raise SimulationError(
                "a cycle engine is already attached to this simulator")
        self._engine = engine

    # ------------------------------------------------------------------
    # The delta loop
    # ------------------------------------------------------------------
    def _execute_deltas(self) -> None:
        rounds = 0
        hooks = self.signal_hooks
        while self._pending_updates or self._pending_resumes:
            rounds += 1
            if rounds > self.max_delta_cycles:
                raise CombinationalLoopError(
                    f"more than {self.max_delta_cycles} delta cycles at "
                    f"t={self.now}: zero-delay feedback loop?")
            self._delta_stamp += 1
            stamp = self._delta_stamp
            self.delta_cycles += 1
            updates = self._pending_updates
            resumes = self._pending_resumes
            self._pending_updates = []
            self._pending_resumes = []

            now = self.now
            changed: List[Signal] = []
            self.events_executed += len(updates)
            for signal, driver, value in updates:
                if signal._apply(driver, value):
                    signal._event_delta = stamp
                    signal.last_event_time = now
                    changed.append(signal)
            self.signal_events += len(changed)

            runnable: List[Process] = []
            seen = set()
            for signal in changed:
                kernel = signal._compiled_kernel
                if kernel is not None and signal._value == "1":
                    kernel._on_edge()
                self._wake_observers(signal, runnable, seen)
            for process in resumes:
                if process not in seen and not process.finished:
                    seen.add(process)
                    runnable.append(process)

            for process in runnable:
                self._current_process = process
                try:
                    process._run(self)
                    self.process_runs += 1
                finally:
                    self._current_process = None

            if hooks:
                for signal in changed:
                    for hook in hooks:
                        hook(signal)
        # Leave the stamp pointing past the last delta so that
        # Signal.event reads False once delta processing has settled.
        self._delta_stamp += 1

    def _wake_observers(self, signal: Signal, runnable: List[Process],
                        seen: set) -> int:
        """Append every process observing an event on *signal* to
        *runnable*: statically sensitive processes, rising-edge
        processes (when the event left the signal at '1'), and
        waiters whose edge condition is satisfied (disarmed here).

        The single edge-dispatch rule shared by the delta loop, the
        :class:`~repro.hdl.cycle.CycleEngine` fast edge path and the
        compiled kernel's commit phase.  Returns the number added.
        """
        added = 0
        for process in signal._sensitive:
            if process not in seen and not process.finished:
                seen.add(process)
                runnable.append(process)
                added += 1
        if signal._sensitive_rise and signal._value == "1":
            for process in signal._sensitive_rise:
                if process not in seen and not process.finished:
                    seen.add(process)
                    runnable.append(process)
                    added += 1
        bucket = self._waiters.get(id(signal))
        if bucket:
            for process in list(bucket):
                if (process not in seen
                        and process._satisfied_by(signal)):
                    seen.add(process)
                    process._disarm(self)
                    runnable.append(process)
                    added += 1
        return added

    def _run_process(self, process: Process) -> None:
        self._current_process = process
        try:
            process._run(self)
            self.process_runs += 1
        finally:
            self._current_process = None
