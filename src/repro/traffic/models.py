"""Stochastic traffic models.

The classic source models used for ATM performance evaluation (Ferranto
[11] in the paper): constant bit rate, Poisson, interrupted (on-off)
processes and Markov-modulated Poisson processes.  All models are
seeded and reproducible.
"""

from __future__ import annotations

import random

from .base import ArrivalProcess

__all__ = ["ConstantBitRate", "PoissonArrivals", "OnOffSource",
           "MarkovModulatedPoisson"]


class ConstantBitRate(ArrivalProcess):
    """Deterministic arrivals: one unit every ``period`` seconds.

    For an ATM CBR connection the period is the reciprocal of the cell
    rate; e.g. a 25 % loaded STM-1 port emits a cell every
    4 × 2.726 µs.
    """

    def __init__(self, period: float, jitter: float = 0.0,
                 seed: int = 0) -> None:
        if period <= 0:
            raise ValueError(f"non-positive CBR period {period}")
        if jitter < 0 or jitter >= period:
            if jitter != 0.0:
                raise ValueError(f"jitter {jitter} must lie in [0, period)")
        self.period = period
        self.jitter = jitter
        self._seed = seed
        self._rng = random.Random(seed)

    def next_interarrival(self) -> float:
        if self.jitter == 0.0:
            return self.period
        return self.period + self._rng.uniform(-self.jitter, self.jitter)

    def reset(self) -> None:
        self._rng = random.Random(self._seed)


class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals at mean rate ``rate`` (arrivals/second)."""

    def __init__(self, rate: float, seed: int = 0) -> None:
        if rate <= 0:
            raise ValueError(f"non-positive Poisson rate {rate}")
        self.rate = rate
        self._seed = seed
        self._rng = random.Random(seed)

    def next_interarrival(self) -> float:
        return self._rng.expovariate(self.rate)

    def reset(self) -> None:
        self._rng = random.Random(self._seed)


class OnOffSource(ArrivalProcess):
    """Interrupted source: exponential ON/OFF sojourns, CBR while ON.

    The standard bursty-voice / data model for ATM traffic studies.

    Args:
        peak_period: inter-cell spacing while the source is ON.
        mean_on: mean ON-state duration (exponential).
        mean_off: mean OFF-state duration (exponential).
        seed: RNG seed.
    """

    def __init__(self, peak_period: float, mean_on: float, mean_off: float,
                 seed: int = 0) -> None:
        for label, value in (("peak_period", peak_period),
                             ("mean_on", mean_on), ("mean_off", mean_off)):
            if value <= 0:
                raise ValueError(f"non-positive {label} {value}")
        self.peak_period = peak_period
        self.mean_on = mean_on
        self.mean_off = mean_off
        self._seed = seed
        self.reset()

    def reset(self) -> None:
        self._rng = random.Random(self._seed)
        self._on_remaining = self._rng.expovariate(1.0 / self.mean_on)

    def mean_rate(self) -> float:
        """Long-run average cell rate of the source."""
        duty = self.mean_on / (self.mean_on + self.mean_off)
        return duty / self.peak_period

    def burstiness(self) -> float:
        """Peak-to-mean rate ratio."""
        return (1.0 / self.peak_period) / self.mean_rate()

    def next_interarrival(self) -> float:
        gap = 0.0
        # Consume whole OFF periods that elapse before the next cell.
        while self._on_remaining < self.peak_period:
            gap += self._on_remaining
            gap += self._rng.expovariate(1.0 / self.mean_off)
            self._on_remaining = self._rng.expovariate(1.0 / self.mean_on)
        self._on_remaining -= self.peak_period
        return gap + self.peak_period


class MarkovModulatedPoisson(ArrivalProcess):
    """Two-state MMPP: Poisson arrivals whose rate switches between
    ``rate_a`` and ``rate_b`` with exponential sojourn times.

    A workhorse model for aggregated VBR traffic.

    Args:
        rate_a: arrival rate in state A.
        rate_b: arrival rate in state B.
        mean_sojourn_a: mean dwell time in state A.
        mean_sojourn_b: mean dwell time in state B.
        seed: RNG seed.
    """

    def __init__(self, rate_a: float, rate_b: float,
                 mean_sojourn_a: float, mean_sojourn_b: float,
                 seed: int = 0) -> None:
        for label, value in (("rate_a", rate_a), ("rate_b", rate_b),
                             ("mean_sojourn_a", mean_sojourn_a),
                             ("mean_sojourn_b", mean_sojourn_b)):
            if value <= 0:
                raise ValueError(f"non-positive {label} {value}")
        self.rates = (rate_a, rate_b)
        self.sojourns = (mean_sojourn_a, mean_sojourn_b)
        self._seed = seed
        self.reset()

    def reset(self) -> None:
        self._rng = random.Random(self._seed)
        self._state = 0
        self._state_remaining = self._rng.expovariate(
            1.0 / self.sojourns[0])

    def mean_rate(self) -> float:
        """Long-run average arrival rate."""
        sa, sb = self.sojourns
        ra, rb = self.rates
        return (ra * sa + rb * sb) / (sa + sb)

    def next_interarrival(self) -> float:
        gap = 0.0
        while True:
            candidate = self._rng.expovariate(self.rates[self._state])
            if candidate <= self._state_remaining:
                self._state_remaining -= candidate
                return gap + candidate
            # State switches before the candidate arrival; discard it
            # (memorylessness makes this exact) and advance the state.
            gap += self._state_remaining
            self._state = 1 - self._state
            self._state_remaining = self._rng.expovariate(
                1.0 / self.sojourns[self._state])
