"""Unit tests for node modules, streams, ports and links."""

import pytest

from repro.netsim import (LinkError, Network, Packet, QueueModule,
                          SinkModule, WiringError)


def test_queue_fifo_order():
    net = Network()
    node = net.add_node("n")
    q = QueueModule("q")
    node.add_module(q)
    for i in range(3):
        q.receive(Packet(fields={"i": i}), 0)
    assert [q.pop()["i"] for i in range(3)] == [0, 1, 2]
    assert q.pop() is None


def test_queue_peek_does_not_remove():
    net = Network()
    node = net.add_node("n")
    q = QueueModule("q")
    node.add_module(q)
    q.receive(Packet(fields={"i": 0}), 0)
    assert q.peek()["i"] == 0
    assert len(q) == 1


def test_queue_capacity_drops_overflow():
    net = Network()
    node = net.add_node("n")
    q = QueueModule("q", capacity=2)
    node.add_module(q)
    for i in range(5):
        q.receive(Packet(), 0)
    assert len(q) == 2
    assert q.dropped == 3
    assert q.max_occupancy == 2


def test_queue_autonomous_service():
    net = Network()
    node = net.add_node("n")
    q = QueueModule("q", service_time=1.0)
    sink = SinkModule("s", keep=True)
    node.add_module(q)
    node.add_module(sink)
    node.connect(q, 0, sink, 0)
    for _ in range(3):
        q.receive(Packet(), 0)
    net.run()
    assert len(sink.received) == 3
    assert sink.last_arrival == 3.0  # one per service_time


def test_double_wiring_rejected():
    net = Network()
    node = net.add_node("n")
    q = QueueModule("q", service_time=1.0)
    s1 = SinkModule("s1")
    s2 = SinkModule("s2")
    for m in (q, s1, s2):
        node.add_module(m)
    node.connect(q, 0, s1, 0)
    with pytest.raises(WiringError):
        node.connect(q, 0, s2, 0)


def test_unwired_send_raises():
    net = Network()
    node = net.add_node("n")
    q = QueueModule("q")
    node.add_module(q)
    with pytest.raises(WiringError):
        q.send(Packet())


def test_duplicate_module_name_rejected():
    net = Network()
    node = net.add_node("n")
    node.add_module(SinkModule("s"))
    with pytest.raises(WiringError):
        node.add_module(SinkModule("s"))


def test_duplicate_node_name_rejected():
    net = Network()
    net.add_node("n")
    with pytest.raises(WiringError):
        net.add_node("n")


def test_link_delivers_with_propagation_delay():
    net = Network()
    a = net.add_node("a")
    b = net.add_node("b")
    sink = SinkModule("s", keep=True)
    b.add_module(sink)
    b.bind_port_input(0, sink, 0)
    net.add_link(a, 0, b, 0, rate_bps=None, delay=2.5)
    a.transmit(Packet(), 0)
    net.run()
    assert sink.last_arrival == 2.5


def test_link_serialization_time():
    net = Network()
    a = net.add_node("a")
    b = net.add_node("b")
    sink = SinkModule("s", keep=True)
    b.add_module(sink)
    b.bind_port_input(0, sink, 0)
    link = net.add_link(a, 0, b, 0, rate_bps=100.0, delay=0.0)
    pkt = Packet(size_bits=50)
    assert link.serialization_time(pkt) == 0.5
    a.transmit(pkt, 0)
    net.run()
    assert sink.last_arrival == 0.5


def test_link_back_to_back_serialisation():
    """Two cells sent at t=0 leave the link one serialisation apart."""
    net = Network()
    a = net.add_node("a")
    b = net.add_node("b")
    sink = SinkModule("s", keep=True)
    b.add_module(sink)
    b.bind_port_input(0, sink, 0)
    net.add_link(a, 0, b, 0, rate_bps=424.0)  # 1 cell/s for 424-bit cells
    a.transmit(Packet(size_bits=424), 0)
    a.transmit(Packet(size_bits=424), 0)
    net.run()
    assert sink.packets_in == 2
    assert sink.last_arrival == pytest.approx(2.0)


def test_link_utilization():
    net = Network()
    a = net.add_node("a")
    b = net.add_node("b")
    sink = SinkModule("s")
    b.add_module(sink)
    b.bind_port_input(0, sink, 0)
    link = net.add_link(a, 0, b, 0, rate_bps=100.0)
    a.transmit(Packet(size_bits=100), 0)
    net.run(until=2.0)
    assert link.utilization() == pytest.approx(0.5)


def test_invalid_link_configs_rejected():
    net = Network()
    a = net.add_node("a")
    b = net.add_node("b")
    with pytest.raises(LinkError):
        net.add_link(a, 0, b, 0, rate_bps=0.0)
    with pytest.raises(LinkError):
        net.add_link(a, 1, b, 1, delay=-1.0)


def test_two_links_same_port_rejected():
    net = Network()
    a = net.add_node("a")
    b = net.add_node("b")
    c = net.add_node("c")
    for n in (b, c):
        s = SinkModule("s")
        n.add_module(s)
        n.bind_port_input(0, s, 0)
    net.add_link(a, 0, b, 0)
    with pytest.raises(WiringError):
        net.add_link(a, 0, c, 0)


def test_duplex_link_creates_two_simplex_links():
    net = Network()
    a = net.add_node("a")
    b = net.add_node("b")
    for n in (a, b):
        s = SinkModule("s", keep=True)
        n.add_module(s)
        n.bind_port_input(0, s, 0)
    links = net.add_duplex_link(a, 0, b, 0, delay=1.0)
    assert len(links) == 2
    a.transmit(Packet(), 0)
    b.transmit(Packet(), 0)
    net.run()
    assert a.modules["s"].packets_in == 1
    assert b.modules["s"].packets_in == 1


def test_unbound_port_delivery_raises():
    net = Network()
    a = net.add_node("a")
    with pytest.raises(WiringError):
        a.deliver(Packet(), 3)


def test_transmit_without_link_raises():
    net = Network()
    a = net.add_node("a")
    with pytest.raises(WiringError):
        a.transmit(Packet(), 0)


def test_bind_port_output_routes_module_to_link():
    net = Network()
    a = net.add_node("a")
    b = net.add_node("b")
    q = QueueModule("q", service_time=1.0)
    a.add_module(q)
    a.bind_port_output(0, q, 0)
    sink = SinkModule("s", keep=True)
    b.add_module(sink)
    b.bind_port_input(0, sink, 0)
    net.add_link(a, 0, b, 0, delay=0.5)
    q.receive(Packet(), 0)
    net.run()
    assert sink.last_arrival == 1.5
