"""The docs/api/ reference must match the code it documents."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_api_docs  # noqa: E402

DOCS_API = REPO_ROOT / "docs" / "api"


def test_docs_api_tree_exists():
    assert DOCS_API.is_dir()
    for page in ("README.md", "behav.md", "core.md", "hdl.md", "netsim.md",
                 "obs.md", "shard.md", "sweep.md"):
        assert (DOCS_API / page).is_file(), f"missing docs/api/{page}"


def test_every_documented_name_resolves():
    names = list(check_api_docs.iter_documented_names(DOCS_API))
    assert len(names) > 100, "suspiciously few documented names — regex broken?"
    failures = []
    for page, dotted in names:
        try:
            check_api_docs.resolve(dotted)
        except Exception as exc:
            failures.append(f"{page}: `{dotted}`: {exc}")
    assert not failures, "broken API doc references:\n" + "\n".join(failures)


def test_checker_rejects_bogus_name(tmp_path):
    (tmp_path / "fake.md").write_text("see `repro.core.DoesNotExist`\n")
    with pytest.raises(AttributeError):
        check_api_docs.resolve("repro.core.DoesNotExist")
    assert check_api_docs.main(["check_api_docs", str(tmp_path)]) == 1


def test_shard_page_claims_and_holds_completeness():
    """docs/api/shard.md declares itself complete for repro.shard, and
    no public name of the package is missing from the page."""
    claims = dict(check_api_docs.iter_completeness_claims(DOCS_API))
    assert claims.get("shard.md") == "repro.shard"
    assert check_api_docs.missing_public_names(
        DOCS_API, "shard.md", "repro.shard") == []


def test_completeness_claim_fails_on_undocumented_name(tmp_path, capsys):
    """A page claiming completeness while omitting a public name must
    fail the checker (the anti-drift direction of the gate)."""
    (tmp_path / "fake.md").write_text(
        "<!-- api:complete repro.shard -->\n\nonly `repro.shard.ShardHandle`\n")
    assert check_api_docs.main(["check_api_docs", str(tmp_path)]) == 1
    err = capsys.readouterr().err
    assert "api:complete repro.shard" in err
    assert "ShardGroup" in err


def test_checker_main_passes_on_real_docs(capsys):
    assert check_api_docs.main(["check_api_docs", str(DOCS_API)]) == 0
    assert "OK" in capsys.readouterr().out
