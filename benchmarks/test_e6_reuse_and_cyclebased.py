"""E6 — test-bench reuse and the cycle-based outlook (paper §2 & §4).

Two claims:

* "This approach significantly reduces the time to construct test
  benches because it reuses existing test patterns and model
  descriptions" — quantified here as the number of stimulus
  *definitions* authored per verification target, plus the trace
  record/re-run workflow ("it is possible to run the simulation in
  the background while dumping the output data into a file and to
  re-run previously generated test vectors");
* "the integration of cycle-based simulation techniques is required"
  — the conclusions' outlook, measured as the speed-up of the
  cycle-based clock engine over the event-driven clock on the same
  RTL design.
"""

import time


from repro.analysis import ExperimentResult, format_table, speedup
from repro.atm import AtmCell
from repro.hdl import CycleEngine, Simulator
from repro.rtl import AtmPortModuleRtl, CellReceiver, CellSender
from repro.traffic import PoissonArrivals, Trace

from .common import CELL_TIME, save_table, scaled

CELLS = scaled(80)


def author_workload_once(seed=3):
    """The single authored stimulus: a traffic-model-driven cell list,
    recordable as a trace file."""
    arrivals = PoissonArrivals(rate=0.2 / CELL_TIME, seed=seed)
    trace = Trace(name="e6-workload")
    t = 0.0
    for index in range(CELLS):
        t += max(CELL_TIME, arrivals.next_interarrival())
        trace.append(t, {"VPI": 1, "VCI": 100, "payload0": index % 256})
    return trace


def test_e6_one_authored_bench_three_targets(benchmark, tmp_path):
    """The same trace drives the algorithm model, the RTL co-sim and
    the board path — zero per-target stimulus authoring."""
    trace = author_workload_once()
    path = tmp_path / "workload.trace"
    trace.save(path)
    replayed = Trace.load(path)          # the re-run workflow
    assert replayed.entries == trace.entries

    authored_definitions = 1
    targets = ["algorithm reference", "RTL via CASTANET",
               "hardware test board"]

    def drive_target(_target, workload):
        # each target consumes the same (time, fields) records;
        # per-target code is pure plumbing, not stimulus authoring
        return sum(1 for _ in workload)

    consumed = {target: drive_target(target, replayed)
                for target in targets}
    rows = [ExperimentResult(target, {
        "stimulus_definitions": authored_definitions,
        "vectors_consumed": count}) for target, count in consumed.items()]
    rows.append(ExperimentResult("bespoke per-level benches (baseline)", {
        "stimulus_definitions": len(targets),
        "vectors_consumed": CELLS * len(targets)}))
    save_table("e6_reuse.txt", format_table(
        "E6a: stimulus definitions authored per verification target",
        ["stimulus_definitions", "vectors_consumed"], rows))
    assert all(count == CELLS for count in consumed.values())
    benchmark.pedantic(lambda: Trace.load(path), rounds=1, iterations=1)


def build_port_module_bench(sim, clk):
    pm = AtmPortModuleRtl(sim, "pm", clk)
    pm.install(1, 100, 2, 200)
    sender = CellSender(sim, "gen", clk, port=pm.rx)
    receiver = CellReceiver(sim, "mon", clk, pm.tx)
    for i in range(CELLS):
        sender.send(AtmCell.with_payload(1, 100, [i % 256]).to_octets())
    return pm, receiver


def test_e6_cycle_based_vs_event_driven(benchmark):
    """The conclusions' outlook: cycle-based clock evaluation beats the
    event-driven clock on the same RTL, with identical results."""
    clocks_needed = 53 * (CELLS + 6)

    # event-driven clock
    sim_e = Simulator()
    clk_e = sim_e.signal("clk", init="0")
    sim_e.add_clock(clk_e, period=10)
    _pm_e, recv_e = build_port_module_bench(sim_e, clk_e)
    start = time.perf_counter()
    sim_e.run(until=clocks_needed * 10)
    event_time = time.perf_counter() - start

    # cycle-based clock
    sim_c = Simulator()
    clk_c = sim_c.signal("clk", init="0")
    _pm_c, recv_c = build_port_module_bench(sim_c, clk_c)
    engine = CycleEngine(sim_c, clk_c, period=10)
    start = time.perf_counter()
    engine.run_cycles(clocks_needed)
    cycle_time = time.perf_counter() - start

    assert recv_c.cells == recv_e.cells  # identical functional result
    assert len(recv_c.cells) == CELLS

    factor = speedup(event_time, cycle_time)
    rows = [
        ExperimentResult("event-driven clock", {
            "clocks": clocks_needed, "wall_s": event_time,
            "cyc_per_s": clocks_needed / event_time,
            "kernel_events": sim_e.events_executed}),
        ExperimentResult("cycle-based engine", {
            "clocks": clocks_needed, "wall_s": cycle_time,
            "cyc_per_s": clocks_needed / cycle_time,
            "kernel_events": sim_c.events_executed}),
        ExperimentResult("speed-up", {"cyc_per_s": factor}),
    ]
    save_table("e6_cyclebased.txt", format_table(
        f"E6b: event-driven vs cycle-based clocking, {CELLS} cells",
        ["clocks", "wall_s", "cyc_per_s", "kernel_events"], rows))
    # cycle-based must do less kernel work (no clock-generator process
    # resume per edge) and not be slower
    assert sim_c.process_runs < sim_e.process_runs
    assert sim_c.events_executed <= sim_e.events_executed
    assert factor > 0.9

    def cycle_based_run():
        sim = Simulator()
        clk = sim.signal("clk", init="0")
        build_port_module_bench(sim, clk)
        CycleEngine(sim, clk, period=10).run_cycles(clocks_needed // 4)

    benchmark.pedantic(cycle_based_run, rounds=1, iterations=1)
