"""Tests for the board power-on self-test."""


from repro.board import (BoardSelfTest, HardwareTestBoard,
                         LoopbackDevice, loopback_all_lanes_config)


def make_board(memory_depth=2048):
    return HardwareTestBoard(loopback_all_lanes_config(),
                             memory_depth=memory_depth)


def test_loopback_config_validates():
    config = loopback_all_lanes_config()
    assert len(config.inports) == 15
    assert len(config.outports) == 15
    assert len(config.io_ports) == 15


def test_healthy_board_passes_all_phases():
    selftest = BoardSelfTest(make_board())
    results = selftest.run_all()
    assert [r.phase for r in results] == [
        "pin-sweep", "memory-pattern", "cycle-bounds", "scsi-integrity"]
    for result in results:
        assert result.passed, f"{result.phase}: {result.detail}"
    assert selftest.passed


def test_no_results_means_not_passed():
    assert not BoardSelfTest(make_board()).passed


def test_stuck_pin_detected():
    """A device that forces lane 3 bit 2 low fails the pin sweep."""

    class StuckPinDevice(LoopbackDevice):
        def clock(self, frame):
            out = super().clock(frame)
            out[3] &= ~(1 << 2)
            return out

    selftest = BoardSelfTest(make_board(),
                             device_factory=StuckPinDevice)
    result = selftest.pin_sweep()
    assert not result.passed
    assert "lane 3" in result.detail


def test_memory_pattern_detects_corruption():
    """A device that corrupts frame 7 fails the memory phase."""

    class CorruptingDevice(LoopbackDevice):
        def __init__(self, latency=0):
            super().__init__(latency=latency)
            self.count = 0

        def clock(self, frame):
            out = super().clock(frame)
            if self.count == 7:
                out[0] ^= 0xFF
            self.count += 1
            return out

    selftest = BoardSelfTest(make_board(),
                             device_factory=CorruptingDevice)
    result = selftest.memory_pattern()
    assert not result.passed
    assert "1 miscompares" in result.detail


def test_cycle_bounds_phase():
    result = BoardSelfTest(make_board()).cycle_bounds()
    assert result.passed, result.detail


def test_scsi_integrity_phase():
    result = BoardSelfTest(make_board()).scsi_integrity()
    assert result.passed, result.detail
