"""Determinism and aggregation tests for the sweep layer.

The contract: the same matrix + seeds produce an identical payload
modulo the volatile keys (wall-clock figures, worker placement,
attempt counts) that :func:`repro.sweep.strip_volatile` removes.
"""

import json

from repro.sweep import (SweepRunner, SweepSpec, aggregate_results,
                         merge_latency_histograms, strip_volatile)


def _spec(**overrides):
    kwargs = dict(traffic=["cbr", "poisson"], ports=[2], seeds=[0, 1],
                  sync=["conservative"], cells=8, timeout_s=60.0)
    kwargs.update(overrides)
    return SweepSpec(**kwargs)


def _canon(payload):
    return json.dumps(strip_volatile(payload), sort_keys=True)


def test_same_matrix_same_payload_modulo_timing():
    first = SweepRunner(_spec(), jobs=2).run()
    second = SweepRunner(_spec(), jobs=2).run()
    assert _canon(first) == _canon(second)


def test_parallel_equals_serial():
    parallel = SweepRunner(_spec(), jobs=2).run()
    serial = SweepRunner(_spec(), jobs=1).run()
    assert _canon(parallel) == _canon(serial)


def test_different_seed_changes_stochastic_runs():
    base = SweepRunner(_spec(traffic=["poisson"], seeds=[0]),
                       jobs=1).run()
    other = SweepRunner(_spec(traffic=["poisson"], seeds=[2]),
                        jobs=1).run()
    a = strip_volatile(base)["runs"][0]
    b = strip_volatile(other)["runs"][0]
    # names differ by construction; the stochastic workload itself
    # must differ too (arrival times move, so kernel work moves)
    assert (a["hdl_events"], a["netsim_events"]) != \
        (b["hdl_events"], b["netsim_events"])


def test_strip_volatile_removes_only_volatile_keys():
    payload = {"wall_s": 1.0, "cycles_per_s": 2.0, "mode": "pool",
               "attempts": 2, "execution": {"jobs": 4},
               "kept": {"wall_s": 0.5, "value": 3}, "list": [
                   {"attempts": 1, "name": "x"}]}
    stripped = strip_volatile(payload)
    assert stripped == {"kept": {"value": 3}, "list": [{"name": "x"}]}
    # the original is untouched
    assert payload["wall_s"] == 1.0


def test_merge_latency_histograms():
    a = {"count": 2, "total": 3e-6, "min": 1e-6, "max": 2e-6,
         "buckets": [{"le": 1e-6, "count": 1}, {"le": 2e-6, "count": 1}]}
    b = {"count": 1, "total": 5e-6, "min": 5e-6, "max": 5e-6,
         "buckets": [{"le": 5e-6, "count": 1}]}
    merged = merge_latency_histograms([a, None, b])
    assert merged["count"] == 3
    assert abs(merged["total"] - 8e-6) < 1e-12
    assert merged["min"] == 1e-6
    assert merged["max"] == 5e-6
    assert [bucket["le"] for bucket in merged["buckets"]] == \
        [1e-6, 2e-6, 5e-6]
    assert merged["p50"] == 2e-6
    assert merged["p99"] == 5e-6


def test_merge_latency_histograms_empty():
    merged = merge_latency_histograms([None, {}])
    assert merged["count"] == 0
    assert merged["p50"] is None


def test_aggregate_counts_failures():
    ok = {"status": "ok", "passed": True, "cells_in": 4,
          "hdl_clocks": 100, "hdl_events": 10, "netsim_events": 5,
          "sync_exchanges": 8, "wall_s": 0.5, "latency": None}
    bad = {"status": "timeout", "passed": False}
    aggregate = aggregate_results([ok, bad])
    assert aggregate["runs_total"] == 2
    assert aggregate["runs_by_status"] == {"ok": 1, "timeout": 1}
    assert aggregate["runs_passed"] == 1
    assert aggregate["runs_failed"] == 1
    assert aggregate["cells_processed"] == 4
    assert aggregate["cycles_per_s"] == 200.0
