"""Legacy setup shim.

The offline environment lacks the ``wheel`` package that PEP 660
editable installs require, so ``pip install -e .`` is routed through the
classic ``setup.py develop`` path (see ``pip config``).  All metadata
lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
