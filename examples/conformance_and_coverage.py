#!/usr/bin/env python
"""Conformance vectors, assertions and coverage on one DUT.

Figure 1's third stimulus category — "customized or standardized
conformance test vectors" — applied to the RTL port module, with the
verification instrumentation a regression bench needs:

* the standard conformance suite (boundary fields, walking-bit
  payloads, HEC single-bit errors, idle filtering);
* clocked assertions watching protocol invariants while it runs;
* toggle coverage telling us what the vectors actually exercised.

Run:  python examples/conformance_and_coverage.py
"""

from repro.core import standard_conformance_suite, run_cell_conformance
from repro.hdl import (AssertionEngine, Simulator, ToggleCoverage)
from repro.rtl import AtmPortModuleRtl, CellReceiver, CellSender


def build_dut():
    sim = Simulator()
    clk = sim.signal("clk", init="0")
    sim.add_clock(clk, period=10)
    dut = AtmPortModuleRtl(sim, "pm", clk)
    dut.install(1, 100, 2, 200)
    sender = CellSender(sim, "gen", clk, port=dut.rx)
    receiver = CellReceiver(sim, "mon", clk, dut.tx)

    engine = AssertionEngine(sim, clk)
    # protocol invariant: cellsync never without valid
    engine.assert_never(
        "sync-implies-valid",
        lambda: (dut.tx.cellsync.value == "1"
                 and dut.tx.valid.value != "1"),
        "tx cellsync asserted without valid")
    # bounded response: a valid input cell start leads to output
    # activity within two cell times (only for routeable cells, so we
    # watch the internal counter instead of raw cellsync)
    engine.assert_always(
        "counts-consistent",
        lambda: (dut.cells_translated + dut.hec_errors
                 + dut.unknown_connections + dut.idle_cells
                 <= dut.cells_received),
        "port module counters became inconsistent")

    coverage = ToggleCoverage(sim, [dut.rx.atmdata, dut.tx.atmdata,
                                    dut.rx.cellsync, dut.tx.cellsync])
    return sim, dut, sender, receiver, engine, coverage


def main() -> int:
    suite = standard_conformance_suite()
    print(f"standard conformance suite: {len(suite)} vectors\n")

    # one long-lived bench: all vectors through one DUT instance
    sim, dut, sender, receiver, engine, coverage = build_dut()
    observed = []

    def apply_cell(octets):
        before = (len(receiver.cells), dut.idle_cells)
        sender.send(list(octets))
        sim.run(until=sim.now + 10 * 130)
        if len(receiver.cells) > before[0]:
            return "accept"
        if dut.idle_cells > before[1]:
            return "idle"
        return "drop"

    report = run_cell_conformance(suite, apply_cell)
    print(report.summary())
    for name, expected, got in report.failures[:5]:
        print(f"   {name}: expected {expected}, observed {got}")

    engine.check()
    print(f"assertions evaluated      : {engine.checks_evaluated} "
          "(0 failures)")
    print(f"toggle coverage           : {coverage.coverage() * 100:.1f}% "
          f"({coverage.covered_bits}/{coverage.total_bits} bits)")
    uncovered = coverage.uncovered()
    if uncovered:
        print(f"  not fully toggled: {', '.join(uncovered[:4])}"
              + (" ..." if len(uncovered) > 4 else ""))
    print(f"cells through the DUT     : {dut.cells_received} "
          f"({dut.cells_translated} translated, {dut.hec_errors} HEC "
          f"drops, {dut.unknown_connections} unknown, "
          f"{dut.idle_cells} idle)")
    return 0 if report.ok and engine.passed else 1


if __name__ == "__main__":
    raise SystemExit(main())
