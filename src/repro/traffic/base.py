"""Traffic source infrastructure.

The paper stresses that "effective traffic modeling for system analysis
has become crucial" and that CASTANET reuses the network simulator's
"library of traffic models" as hardware stimuli.  This module provides
the common machinery: an *arrival process* yields inter-arrival times,
a :class:`TrafficSource` module turns them into packets injected into a
network model, and the same arrival processes can be sampled offline to
build test-vector files for the hardware test board.
"""

from __future__ import annotations

import abc
from typing import Callable, Iterator, List, Optional, TYPE_CHECKING

from ..netsim.node import Module
from ..netsim.packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.provenance import ProvenanceTracker

__all__ = ["ArrivalProcess", "TrafficSource", "sample_arrivals"]


class ArrivalProcess(abc.ABC):
    """Generates successive inter-arrival times (seconds).

    Implementations must be deterministic for a fixed seed so that a
    test bench replayed against the RTL model and the hardware board
    sees identical stimuli — the reuse property the paper's environment
    depends on.
    """

    @abc.abstractmethod
    def next_interarrival(self) -> float:
        """Return the time until the next arrival (>= 0)."""

    @abc.abstractmethod
    def reset(self) -> None:
        """Rewind the process to its initial (seeded) state."""

    def arrivals(self, limit: int) -> Iterator[float]:
        """Yield *limit* absolute arrival times starting from zero."""
        t = 0.0
        for _ in range(limit):
            t += self.next_interarrival()
            yield t


class TrafficSource(Module):
    """A node module emitting packets according to an arrival process.

    Args:
        name: module name.
        arrivals: the inter-arrival time generator.
        packet_factory: called with the arrival index, returns the
            packet to emit (default: an empty 424-bit ATM-cell-sized
            packet).
        count: stop after this many packets (``None`` = unbounded).
        tracker: optional provenance tracker
            (:class:`repro.obs.provenance.ProvenanceTracker`); every
            emitted packet then receives a monotone trace id and a
            ``source`` hop span — the origin of its causal journey.

    The source wires its packets out of output stream 0.
    """

    def __init__(self, name: str, arrivals: ArrivalProcess,
                 packet_factory: Optional[Callable[[int], Packet]] = None,
                 count: Optional[int] = None,
                 tracker: Optional["ProvenanceTracker"] = None) -> None:
        super().__init__(name)
        self.arrivals = arrivals
        self.packet_factory = packet_factory or self._default_factory
        self.count = count
        self.tracker = tracker
        self.emitted = 0

    @staticmethod
    def _default_factory(index: int) -> Packet:
        return Packet(size_bits=424, fields={"seq": index})

    def on_simulation_start(self) -> None:
        self._schedule_next()

    def _schedule_next(self) -> None:
        if self.count is not None and self.emitted >= self.count:
            return
        delay = self.arrivals.next_interarrival()
        self._kernel().schedule_after(delay, self._emit)

    def _emit(self) -> None:
        packet = self.packet_factory(self.emitted)
        packet.creation_time = self._kernel().now
        if self.tracker is not None:
            self.tracker.stamp(packet, packet.creation_time,
                               source=self.name)
        self.emitted += 1
        self.send(packet, stream=0)
        self._schedule_next()


def sample_arrivals(process: ArrivalProcess,
                    n: int) -> List[float]:
    """Sample *n* absolute arrival times from a (reset) process.

    Convenience for offline test-vector generation and for statistics
    tests; the process is reset first so repeated calls agree.
    """
    process.reset()
    return list(process.arrivals(n))
