"""Tests for inertial vs transport delay semantics."""


from repro.hdl import Simulator


def test_transport_keeps_all_transactions():
    """Default (transport): every scheduled value applies."""
    sim = Simulator()
    s = sim.signal("s", init="0")
    seen = []
    sim.add_process("watch",
                    lambda x: seen.append((x.now, s.value))
                    if s.event else None,
                    sensitivity=[s])
    s.drive("1", delay=5)
    s.drive("0", delay=7)
    s.drive("1", delay=9)
    sim.run(until=20)
    assert seen == [(5, "1"), (7, "0"), (9, "1")]


def test_inertial_preempts_pending_transactions():
    """Inertial: a later assignment cancels this driver's pending
    future transactions — the short pulse vanishes."""
    sim = Simulator()
    s = sim.signal("s", init="0")
    seen = []
    sim.add_process("watch",
                    lambda x: seen.append((x.now, s.value))
                    if s.event else None,
                    sensitivity=[s])
    s.drive("1", delay=5)
    s.drive("0", delay=7, inertial=True)   # cancels the t=5 pulse
    sim.run(until=20)
    assert seen == []  # '0' onto '0' is no event; the pulse was eaten
    assert s.value == "0"


def test_inertial_glitch_filter_pattern():
    """The classic use: re-driving with inertial delay swallows a
    glitch shorter than the delay."""
    sim = Simulator()
    out = sim.signal("out", init="0")
    seen = []
    sim.add_process("watch",
                    lambda x: seen.append((x.now, out.value))
                    if out.event else None,
                    sensitivity=[out])
    # a 2-tick glitch re-evaluated with a 5-tick inertial delay
    out.drive("1", delay=5, inertial=True)   # input rose
    sim.run(until=2)
    out.drive("0", delay=5, inertial=True)   # input fell 2 ticks later
    sim.run(until=20)
    assert seen == []  # the glitch never reached the output


def test_inertial_only_cancels_same_driver():
    sim = Simulator()
    bus = sim.signal("bus")
    sim.add_process("a", lambda x: bus.drive("1", delay=5))
    sim.initialize()
    # anonymous testbench driver uses inertial: must not cancel A's
    bus.drive("Z", delay=7, inertial=True)
    sim.run(until=20)
    assert bus.value == "1"  # A's transaction survived


def test_inertial_zero_delay_cancels_current_delta():
    sim = Simulator()
    s = sim.signal("s", init="0")
    s.drive("1")
    s.drive("0", inertial=True)  # replaces the pending delta update
    sim.run(until=1)
    assert s.value == "0"
    assert s.change_count == 0  # never became '1'
