"""VPI/VCI translation and routing tables.

An ATM switch forwards cells by looking up the (input port, VPI, VCI)
triple in a connection table that yields (output port, new VPI, new
VCI).  The global control unit owns the table (connection admission /
signalling would populate it); port modules only consult it on the fast
path — the same split the paper's switch model uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Tuple

__all__ = ["RoutingEntry", "ConnectionTable", "RoutingError"]


class RoutingError(KeyError):
    """Raised when a cell arrives on an unknown connection."""


@dataclass(frozen=True)
class RoutingEntry:
    """Forwarding decision for one connection."""

    out_port: int
    out_vpi: int
    out_vci: int


class ConnectionTable:
    """The switch-wide connection (translation) table.

    Keys are ``(in_port, vpi, vci)``; values are
    :class:`RoutingEntry` objects.

    Example:
        >>> table = ConnectionTable()
        >>> table.install(0, 1, 100, RoutingEntry(3, 2, 200))
        >>> table.lookup(0, 1, 100)
        RoutingEntry(out_port=3, out_vpi=2, out_vci=200)
    """

    def __init__(self) -> None:
        self._entries: Dict[Tuple[int, int, int], RoutingEntry] = {}
        self.lookups = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Tuple[Tuple[int, int, int],
                                         RoutingEntry]]:
        return iter(self._entries.items())

    def install(self, in_port: int, vpi: int, vci: int,
                entry: RoutingEntry) -> None:
        """Install (or replace) the route for a connection."""
        self._entries[(in_port, vpi, vci)] = entry

    def remove(self, in_port: int, vpi: int, vci: int) -> None:
        """Tear a connection down; unknown connections raise."""
        try:
            del self._entries[(in_port, vpi, vci)]
        except KeyError:
            raise RoutingError(
                f"no connection (port={in_port}, vpi={vpi}, vci={vci})")

    def lookup(self, in_port: int, vpi: int, vci: int) -> RoutingEntry:
        """Fast-path lookup; unknown connections raise RoutingError."""
        self.lookups += 1
        try:
            return self._entries[(in_port, vpi, vci)]
        except KeyError:
            self.misses += 1
            raise RoutingError(
                f"no connection (port={in_port}, vpi={vpi}, vci={vci})")

    def contains(self, in_port: int, vpi: int, vci: int) -> bool:
        """True when the connection is installed (no statistics side
        effects)."""
        return (in_port, vpi, vci) in self._entries
