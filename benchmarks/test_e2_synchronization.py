"""E2 — conservative timing-window synchronisation (paper §3.1, Fig. 3).

Claims reproduced:

* the protocol never lets the HDL simulator overtake the network
  simulator (no Figure-3 causality errors);
* it is deadlock-free: every posted message is eventually delivered
  across message-type mixes and queue configurations;
* it synchronises per *message* rather than per *clock*: the sync
  exchange count is orders of magnitude below the naive lockstep
  coupling, and shrinks further as traffic gets sparser.
"""

import time


from repro.analysis import ExperimentResult, format_table
from repro.core import (ConservativeSynchronizer, LockstepSynchronizer,
                        TimeBase)
from repro.hdl import Simulator

from .common import save_table, scaled

TIMEBASE = TimeBase(tick_seconds=1e-9, clock_period_ticks=10)
N_MESSAGES = scaled(200)


def make_hdl():
    hdl = Simulator()
    clk = hdl.signal("clk", init="0")
    hdl.add_clock(clk, period=TIMEBASE.clock_period_ticks)
    return hdl


def drive_conservative(message_gap_s, n):
    delivered = []
    hdl = make_hdl()
    sync = ConservativeSynchronizer(
        hdl, TIMEBASE, {"cell": 55, "tick": 2},
        handlers={"cell": lambda m: delivered.append(m),
                  "tick": lambda m: delivered.append(m)})
    start = time.perf_counter()
    t = 0.0
    for k in range(n):
        t += message_gap_s
        sync.post("tick" if k % 10 == 9 else "cell", t, k)
    sync.drain(t + message_gap_s)
    elapsed = time.perf_counter() - start
    return sync.stats, len(delivered), elapsed


def drive_lockstep(message_gap_s, n):
    delivered = []
    hdl = make_hdl()
    sync = LockstepSynchronizer(hdl, TIMEBASE,
                                handler=lambda m: delivered.append(m))
    start = time.perf_counter()
    t = 0.0
    for k in range(n):
        t += message_gap_s
        sync.post("cell", t, k)
    sync.advance_time(t + message_gap_s)
    elapsed = time.perf_counter() - start
    return sync.stats, len(delivered), elapsed


def test_e2_sync_exchange_comparison(benchmark):
    """Sync exchanges per delivered message: conservative vs lockstep
    across traffic densities (message gap in DUT clocks)."""
    rows = []
    for gap_clocks in (60, 240, 960):
        gap_s = gap_clocks * TIMEBASE.clock_period_ticks * 1e-9
        c_stats, c_delivered, c_time = drive_conservative(gap_s,
                                                          N_MESSAGES)
        l_stats, l_delivered, l_time = drive_lockstep(gap_s, N_MESSAGES)
        assert c_delivered == N_MESSAGES
        assert l_delivered == N_MESSAGES
        c_exchanges = c_stats.messages_posted + c_stats.null_messages
        l_exchanges = l_stats.messages_posted + l_stats.null_messages
        rows.append(ExperimentResult(f"gap={gap_clocks} clocks", {
            "conservative_msgs": c_exchanges,
            "lockstep_msgs": l_exchanges,
            "reduction": l_exchanges / c_exchanges,
            "conservative_s": c_time,
            "lockstep_s": l_time,
        }))
        # the sparser the traffic, the bigger the win
        assert l_exchanges > 5 * c_exchanges
    # reduction grows with sparsity
    assert rows[2]["reduction"] > rows[0]["reduction"]
    save_table("e2_sync_exchanges.txt", format_table(
        f"E2: sync exchanges for {N_MESSAGES} messages",
        ["conservative_msgs", "lockstep_msgs", "reduction",
         "conservative_s", "lockstep_s"], rows))

    benchmark.pedantic(
        lambda: drive_conservative(60 * 10e-9, N_MESSAGES),
        rounds=1, iterations=1)


def test_e2_lag_invariant_never_violated(benchmark):
    """Figure 3: the HDL event horizon always trails the originator."""

    def run_once():
        hdl = make_hdl()
        worst_lead = -1e9
        sync = ConservativeSynchronizer(hdl, TIMEBASE, {"cell": 55})
        t = 0.0
        for k in range(N_MESSAGES):
            t += (1 + (k * 7) % 13) * 1e-7
            sync.post("cell", t, k)
            lead = TIMEBASE.to_seconds(hdl.now) - sync.originator_time
            worst_lead = max(worst_lead, lead)
        sync.drain(t + 1e-6)
        return worst_lead

    worst = benchmark.pedantic(run_once, rounds=1, iterations=1)
    assert worst <= 1e-12, f"HDL led the originator by {worst}s"


def test_e2_delta_parameter_ablation(benchmark):
    """DESIGN.md ablation: δⱼ (the user-declared processing delay)
    sets how far each release lets the HDL run ahead.  Larger δⱼ means
    more HDL ticks granted per message — δⱼ is a fidelity knob, not a
    throughput knob, so the message exchange count must not change."""
    rows = []
    exchanges = []
    ticks = []
    gap_s = 120 * TIMEBASE.clock_period_ticks * 1e-9
    for delta in (2, 16, 55, 110):
        delivered = []
        hdl = make_hdl()
        sync = ConservativeSynchronizer(
            hdl, TIMEBASE, {"cell": delta},
            handlers={"cell": lambda m: delivered.append(m)})
        t = 0.0
        for k in range(N_MESSAGES):
            t += gap_s
            sync.post("cell", t, k)
        sync.drain(t + gap_s)
        assert len(delivered) == N_MESSAGES
        stats = sync.stats
        exchanges.append(stats.messages_posted + stats.null_messages)
        ticks.append(stats.ticks_simulated)
        rows.append(ExperimentResult(f"delta={delta} clocks", {
            "sync_msgs": exchanges[-1],
            "hdl_ticks": stats.ticks_simulated,
            "windows": stats.windows_granted,
        }))
    save_table("e2_delta_ablation.txt", format_table(
        f"E2b: processing-delay (delta_j) ablation, {N_MESSAGES} "
        "messages at 120-clock gaps",
        ["sync_msgs", "hdl_ticks", "windows"], rows))
    assert len(set(exchanges)) == 1  # exchanges independent of delta
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_e2_deadlock_freedom_multi_queue(benchmark):
    """Every message across 4 queues with very different deltas is
    eventually delivered (with null messages providing coverage) —
    'the use of this specific conservative synchronization protocol
    resolves the possibility of deadlock'."""

    def run_once():
        delivered = []
        hdl = make_hdl()
        deltas = {"a": 1, "b": 10, "c": 55, "d": 200}
        sync = ConservativeSynchronizer(
            hdl, TIMEBASE, deltas,
            handlers={name: (lambda m: delivered.append(m))
                      for name in deltas})
        t = 0.0
        for k in range(N_MESSAGES):
            t += 5e-7
            sync.post("abcd"[k % 4], t, k)
            if k % 7 == 0:
                sync.advance_time(t)
        sync.drain(t + 1e-5)
        return delivered

    delivered = benchmark.pedantic(run_once, rounds=1, iterations=1)
    assert len(delivered) == N_MESSAGES
    # per-queue FIFO order was preserved
    for name in "abcd":
        payloads = [m.payload for m in delivered if m.msg_type == name]
        assert payloads == sorted(payloads)
