"""Tests for the µP register-bus interface of the accounting unit."""

import pytest

from repro.atm import AtmCell
from repro.hdl import Simulator
from repro.rtl import (AccountingMgmtSlave, AccountingUnitRtl,
                       CellSender, CTRL_CLEAR, CTRL_REGISTER, CTRL_TICK,
                       MpBusMaster, REG_CELLS_HI, REG_CELLS_LO,
                       REG_CONN_COUNT, REG_CTRL, REG_INTERVAL,
                       REG_STATUS, REG_UPC, REG_VCI, REG_VPI,
                       STATUS_FAIL, STATUS_IDLE, STATUS_OK)


def make_bench(table_size=64):
    sim = Simulator()
    clk = sim.signal("clk", init="0")
    sim.add_clock(clk, period=10)
    unit = AccountingUnitRtl(sim, "acct", clk, table_size=table_size)
    slave = AccountingMgmtSlave(sim, "mgmt", clk, unit)
    master = MpBusMaster(sim, clk, slave.port)
    sim.run(until=20)
    return sim, clk, unit, slave, master


def register_via_bus(master, vpi, vci, upc=1):
    master.write(REG_VPI, vpi)
    master.write(REG_VCI, vci)
    master.write(REG_UPC, upc)
    master.write(REG_CTRL, CTRL_REGISTER)


class TestBusProtocol:
    def test_write_read_staging_register(self):
        sim, clk, unit, slave, master = make_bench()
        master.write(REG_VPI, 42)
        assert master.read(REG_VPI) == 42
        assert slave.writes == 1
        assert slave.reads == 1

    def test_unknown_read_returns_dead(self):
        sim, clk, unit, slave, master = make_bench()
        assert master.read(0x7F) == 0xDEAD

    def test_write_to_readonly_register_fails(self):
        sim, clk, unit, slave, master = make_bench()
        master.write(REG_STATUS, 1)
        assert master.read(REG_STATUS) == STATUS_FAIL

    def test_status_clear(self):
        sim, clk, unit, slave, master = make_bench()
        master.write(REG_STATUS, 1)  # provoke FAIL
        master.write(REG_CTRL, CTRL_CLEAR)
        assert master.read(REG_STATUS) == STATUS_IDLE

    def test_held_strobe_executes_once(self):
        """The master holds wr until ready; the op must not repeat."""
        sim, clk, unit, slave, master = make_bench()
        register_via_bus(master, 1, 100)
        assert master.read(REG_CONN_COUNT) == 1
        assert master.read(REG_STATUS) == STATUS_OK


class TestManagementOperations:
    def test_connection_registered_through_bus(self):
        sim, clk, unit, slave, master = make_bench()
        register_via_bus(master, 1, 100, upc=3)
        assert unit.connection_count == 1
        # and it actually counts cells
        sender = CellSender(sim, "gen", clk, port=unit.rx)
        sender.send(AtmCell.with_payload(1, 100, [1]).to_octets())
        sim.run(until=sim.now + 10 * 60)
        assert unit.cells_seen == 1

    def test_duplicate_registration_flags_fail(self):
        sim, clk, unit, slave, master = make_bench()
        register_via_bus(master, 1, 100)
        register_via_bus(master, 1, 100)
        assert master.read(REG_STATUS) == STATUS_FAIL
        assert unit.connection_count == 1

    def test_table_full_flags_fail(self):
        sim, clk, unit, slave, master = make_bench(table_size=1)
        register_via_bus(master, 1, 100)
        register_via_bus(master, 1, 200)
        assert master.read(REG_STATUS) == STATUS_FAIL

    def test_tariff_tick_through_bus(self):
        sim, clk, unit, slave, master = make_bench()
        register_via_bus(master, 1, 100)
        assert master.read(REG_INTERVAL) == 0
        master.write(REG_CTRL, CTRL_TICK)
        sim.run(until=sim.now + 40)
        assert master.read(REG_INTERVAL) == 1

    def test_cell_counters_readable(self):
        sim, clk, unit, slave, master = make_bench()
        register_via_bus(master, 1, 100)
        sender = CellSender(sim, "gen", clk, port=unit.rx)
        for i in range(3):
            sender.send(AtmCell.with_payload(1, 100, [i]).to_octets())
        sim.run(until=sim.now + 10 * 200)
        assert master.read(REG_CELLS_LO) == 3
        assert master.read(REG_CELLS_HI) == 0

    def test_bad_ctrl_code_fails(self):
        sim, clk, unit, slave, master = make_bench()
        master.write(REG_CTRL, 99)
        assert master.read(REG_STATUS) == STATUS_FAIL


class TestTimeout:
    def test_master_times_out_without_slave(self):
        from repro.rtl import MpBusSlavePort
        sim = Simulator()
        clk = sim.signal("clk", init="0")
        sim.add_clock(clk, period=10)
        port = MpBusSlavePort(sim, "orphan")
        master = MpBusMaster(sim, clk, port, timeout_clocks=5)
        with pytest.raises(TimeoutError):
            master.write(0, 1)
