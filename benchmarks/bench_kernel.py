"""Kernel performance benchmark — machine-readable perf tracking.

Measures the two hot paths the event-kernel overhaul targets and
writes ``BENCH_kernel.json`` and ``BENCH_e1.json`` at the repo root so
the performance trajectory is tracked across pull requests:

* **kernel** — the same RTL port-module bench clocked by the seed
  event-driven generator clock and by the :class:`CycleEngine` fast
  dispatch (the E6b shape), reporting wall time, simulated clock
  cycles per second and kernel event counters for both schemes;
* **e1** — the paper's headline workload (E1): co-simulation
  throughput of the accounting DUT under CASTANET versus the pure-RTL
  four-port bench, in DUT clock cycles per wall-clock second — plus
  the same scenario with the DUT swapped to its behavioural twin
  (the ``behav`` dimension; ``behav_vs_compiled`` must stay >= 1).

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_kernel.py

``REPRO_BENCH_SCALE`` scales the cell workload exactly as it does for
the pytest experiment tables (CI smoke-runs at 0.25).
"""

import sys
import time
from pathlib import Path

if __package__ in (None, ""):  # script mode
    sys.path.insert(0, str(Path(__file__).parent))
    from common import (TIMEBASE, build_cosim_accounting,
                        build_pure_rtl_system, run_cosim_accounting,
                        save_bench_json, scale, scaled)
else:
    from .common import (TIMEBASE, build_cosim_accounting,
                         build_pure_rtl_system, run_cosim_accounting,
                         save_bench_json, scale, scaled)

from repro.atm import AtmCell
from repro.hdl import CycleEngine, Simulator
from repro.rtl import AtmPortModuleRtl, CellReceiver, CellSender


def _kernel_stats(sim):
    snapshot = sim.stats_snapshot()
    return {
        "events_executed": sim.events_executed,
        "signal_events": sim.signal_events,
        "delta_cycles": sim.delta_cycles,
        "process_runs": sim.process_runs,
        "compiled_components": snapshot["compiled_components"],
        "compiled_evals": snapshot["compiled_evals"],
        "compiled_commit_writes": snapshot["compiled_commit_writes"],
    }


def bench_kernel(cells=None):
    """Port-module RTL bench: both clocking schemes with the default
    bulk waveform playback, the cycle engine with the generator
    playback forced (the bulk-vs-generator dimension), and the cycle
    engine with the event component backend forced (the
    compiled-vs-event dimension)."""
    cells = scaled(80) if cells is None else cells
    clocks = 53 * (cells + 6)

    def build(sim, clk, playback):
        pm = AtmPortModuleRtl(sim, "pm", clk)
        pm.install(1, 100, 2, 200)
        sender = CellSender(sim, "gen", clk, port=pm.rx,
                            playback=playback)
        receiver = CellReceiver(sim, "mon", clk, pm.tx)
        for i in range(cells):
            sender.send(AtmCell.with_payload(1, 100,
                                             [i % 256]).to_octets())
        return receiver

    configs = {
        "event": ("event", "auto", None),
        "cycle": ("cycle", "auto", None),
        "cycle_generator": ("cycle", "generator", None),
        "cycle_event_backend": ("cycle", "auto", "event"),
    }
    results = {}
    receivers = {}
    for key, (scheme, playback, backend) in configs.items():
        sim = Simulator()
        if backend is not None:
            sim.rtl_backend = backend
        clk = sim.signal("clk", init="0")
        if scheme == "event":
            sim.add_clock(clk, period=10)
        else:
            CycleEngine(sim, clk, period=10)
        receivers[key] = build(sim, clk, playback)
        start = time.perf_counter()
        sim.run(until=clocks * 10)
        wall = time.perf_counter() - start
        results[key] = {
            "wall_s": wall,
            "clocks": clocks,
            "cycles_per_s": clocks / wall,
            **_kernel_stats(sim),
        }

    cells_out = receivers["event"].cells
    for key, receiver in receivers.items():
        if receiver.cells != cells_out:
            raise AssertionError(
                f"configuration {key!r} diverged: output cell streams "
                "differ")
    payload = {
        "cells": cells,
        "event_driven": results["event"],
        "cycle_engine": results["cycle"],
        "generator_playback": results["cycle_generator"],
        "event_backend": results["cycle_event_backend"],
        "speedup": (results["cycle"]["cycles_per_s"]
                    / results["event"]["cycles_per_s"]),
        "bulk_vs_generator": (
            results["cycle"]["cycles_per_s"]
            / results["cycle_generator"]["cycles_per_s"]),
        "compiled_vs_event": (
            results["cycle"]["cycles_per_s"]
            / results["cycle_event_backend"]["cycles_per_s"]),
    }
    return payload


def bench_e1(cells=None):
    """E1 throughput: co-simulation vs the pure-RTL bench."""
    cells = scaled(160) if cells is None else cells

    # observability off: this benchmark tracks the raw kernel/protocol
    # throughput (the repro-stats scenario measures the observed run)
    env, dut, entity, reference = build_cosim_accounting(cells,
                                                         observe=False)
    start = time.perf_counter()
    cosim_stats = run_cosim_accounting(env, dut, entity, reference)
    cosim_wall = time.perf_counter() - start

    sim, run = build_pure_rtl_system(cells // 4)
    start = time.perf_counter()
    rtl_stats = run()
    rtl_wall = time.perf_counter() - start

    # the same pure-RTL bench with the event component backend forced
    # (the compiled-vs-event dimension of the E1 headline workload)
    sim_e, run_e = build_pure_rtl_system(cells // 4,
                                         rtl_backend="event")
    start = time.perf_counter()
    rtl_event_stats = run_e()
    rtl_event_wall = time.perf_counter() - start
    if rtl_event_stats["dut_cells"] != rtl_stats["dut_cells"]:
        raise AssertionError(
            "pure-RTL event/compiled backends diverged: "
            f"{rtl_event_stats['dut_cells']} vs "
            f"{rtl_stats['dut_cells']} DUT cells")

    # the same co-verification scenario with the DUT swapped to its
    # behavioural twin (the multi-abstraction dimension: no HDL
    # kernel, no synchroniser — the cheapest level of the swap)
    env_b, dut_b, entity_b, reference_b = build_cosim_accounting(
        cells, observe=False, level="behav")
    start = time.perf_counter()
    behav_stats = run_cosim_accounting(env_b, dut_b, entity_b,
                                       reference_b)
    behav_wall = time.perf_counter() - start
    if behav_stats["cells"] != cells:
        raise AssertionError(
            f"behavioural run processed {behav_stats['cells']} of "
            f"{cells} cells")

    if cosim_stats["cells"] != cells:
        raise AssertionError(
            f"co-sim processed {cosim_stats['cells']} of {cells} cells")
    cosim_rate = cosim_stats["hdl_clocks"] / cosim_wall
    rtl_rate = rtl_stats["hdl_clocks"] / rtl_wall
    rtl_event_rate = rtl_event_stats["hdl_clocks"] / rtl_event_wall
    behav_rate = behav_stats["hdl_clocks"] / behav_wall
    payload = {
        "cells": cells,
        "clock_period_ticks": TIMEBASE.clock_period_ticks,
        "cosim": {
            "wall_s": cosim_wall,
            "hdl_clocks": cosim_stats["hdl_clocks"],
            "cycles_per_s": cosim_rate,
            "hdl_events": cosim_stats["hdl_events"],
            "netsim_events": cosim_stats["netsim_events"],
        },
        "pure_rtl": {
            "wall_s": rtl_wall,
            "hdl_clocks": rtl_stats["hdl_clocks"],
            "cycles_per_s": rtl_rate,
            "hdl_events": rtl_stats["hdl_events"],
        },
        "pure_rtl_event": {
            "wall_s": rtl_event_wall,
            "hdl_clocks": rtl_event_stats["hdl_clocks"],
            "cycles_per_s": rtl_event_rate,
            "hdl_events": rtl_event_stats["hdl_events"],
        },
        "behav": {
            "wall_s": behav_wall,
            "hdl_clocks": behav_stats["hdl_clocks"],
            "cycles_per_s": behav_rate,
            "netsim_events": behav_stats["netsim_events"],
        },
        "cosim_vs_rtl": cosim_rate / rtl_rate,
        "compiled_vs_event": rtl_rate / rtl_event_rate,
        "behav_vs_compiled": behav_rate / cosim_rate,
    }
    return payload


def main():
    print(f"kernel benchmark (REPRO_BENCH_SCALE={scale():g})")
    kernel = bench_kernel()
    path = save_bench_json("kernel", kernel)
    print(f"  event-driven : {kernel['event_driven']['cycles_per_s']:>10.0f} cyc/s "
          f"({kernel['event_driven']['wall_s']:.3f} s)")
    print(f"  cycle engine : {kernel['cycle_engine']['cycles_per_s']:>10.0f} cyc/s "
          f"({kernel['cycle_engine']['wall_s']:.3f} s)")
    print(f"  generator pb : {kernel['generator_playback']['cycles_per_s']:>10.0f} cyc/s "
          f"({kernel['generator_playback']['wall_s']:.3f} s)")
    print(f"  event backend: {kernel['event_backend']['cycles_per_s']:>10.0f} cyc/s "
          f"({kernel['event_backend']['wall_s']:.3f} s)")
    print(f"  speed-up     : {kernel['speedup']:.2f}x "
          f"(bulk vs generator {kernel['bulk_vs_generator']:.2f}x, "
          f"compiled vs event {kernel['compiled_vs_event']:.2f}x)"
          f"  -> {path}")

    e1 = bench_e1()
    path = save_bench_json("e1", e1)
    print(f"  co-simulation: {e1['cosim']['cycles_per_s']:>10.0f} cyc/s "
          f"({e1['cosim']['wall_s']:.3f} s)")
    print(f"  pure RTL     : {e1['pure_rtl']['cycles_per_s']:>10.0f} cyc/s "
          f"({e1['pure_rtl']['wall_s']:.3f} s)")
    print(f"  pure RTL (ev): {e1['pure_rtl_event']['cycles_per_s']:>10.0f} cyc/s "
          f"({e1['pure_rtl_event']['wall_s']:.3f} s)")
    print(f"  behavioural  : {e1['behav']['cycles_per_s']:>10.0f} cyc/s "
          f"({e1['behav']['wall_s']:.3f} s)")
    print(f"  cosim/RTL    : {e1['cosim_vs_rtl']:.2f}x "
          f"(compiled vs event {e1['compiled_vs_event']:.2f}x, "
          f"behav vs compiled {e1['behav_vs_compiled']:.2f}x)"
          f"  -> {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
