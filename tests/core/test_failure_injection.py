"""Failure injection across the co-verification boundary.

A verification environment earns its keep on the *unhappy* paths:
these tests inject protocol violations, kernel errors and DUT losses
and check each surfaces as a loud, attributable failure instead of a
silent divergence.
"""

import pytest

from repro.atm import AtmCell
from repro.core import (CausalityError, CoVerificationEnvironment,
                        ConservativeSynchronizer, StreamComparator,
                        TimeBase)
from repro.hdl import CombinationalLoopError, Simulator
from repro.rtl import AtmPortModuleRtl


CELL_PERIOD = 4e-6


def test_handler_exception_propagates_not_swallowed():
    """A failing delivery handler must abort the run, not vanish."""
    tb = TimeBase(tick_seconds=1e-9, clock_period_ticks=10)
    hdl = Simulator()
    clk = hdl.signal("clk", init="0")
    hdl.add_clock(clk, period=10)

    def bad_handler(message):
        raise RuntimeError("handler exploded")

    sync = ConservativeSynchronizer(hdl, tb, {"cell": 55},
                                    handlers={"cell": bad_handler})
    with pytest.raises(RuntimeError, match="handler exploded"):
        sync.post("cell", 1e-6, "payload")


def test_stale_post_after_drain_rejected():
    tb = TimeBase(tick_seconds=1e-9, clock_period_ticks=10)
    hdl = Simulator()
    clk = hdl.signal("clk", init="0")
    hdl.add_clock(clk, period=10)
    sync = ConservativeSynchronizer(hdl, tb, {"cell": 55})
    sync.post("cell", 5e-6, None)
    sync.drain(6e-6)
    with pytest.raises(CausalityError):
        sync.post("cell", 1e-6, None)


def test_combinational_loop_in_dut_surfaces_through_cosim():
    """An HDL-level pathology inside the DUT aborts the coupled run
    with the HDL kernel's own diagnosis."""
    env = CoVerificationEnvironment()
    dut = AtmPortModuleRtl(env.hdl, "dut", env.clk)
    dut.install(1, 100, 2, 200)
    entity = env.add_dut(rx_port=dut.rx, tx_port=dut.tx)

    # sabotage: a zero-delay feedback loop inside the "design"
    a = env.hdl.signal("loop", init="0")
    env.hdl.add_process(
        "oscillator",
        lambda s: a.drive("1" if a.value == "0" else "0"),
        sensitivity=[a])

    with pytest.raises(CombinationalLoopError):
        entity.send_cell(1e-6, AtmCell.with_payload(1, 100, []))


def test_dut_dropping_cells_fails_the_comparison():
    """A DUT that silently loses traffic cannot pass: the comparator
    reports the missing responses."""
    env = CoVerificationEnvironment()
    dut = AtmPortModuleRtl(env.hdl, "dut", env.clk)
    # connection NOT installed: the port module drops every cell
    entity = env.add_dut(rx_port=dut.rx, tx_port=dut.tx)
    comparator = StreamComparator("dropper")
    entity.on_output = lambda t, c: comparator.add_observed(c.vci)
    for k in range(4):
        when = (k + 1) * CELL_PERIOD
        entity.send_cell(when, AtmCell.with_payload(1, 100, [k]))
        comparator.add_reference(200)
    entity.finish(5 * CELL_PERIOD)
    report = comparator.compare()
    assert not report.passed
    assert report.missing == 4
    assert dut.unknown_connections == 4


def test_duplicated_dut_output_fails_the_comparison():
    """The dual failure: extra (duplicated) responses are flagged as
    unexpected."""
    comparator = StreamComparator("dup")
    comparator.extend_reference([1, 2])
    comparator.extend_observed([1, 1, 2])
    report = comparator.compare()
    assert not report.passed
    assert report.unexpected == 1 or report.mismatches


def test_corrupted_cell_on_the_wire_detected_at_unpack():
    """Header corruption between DUT and comparator surfaces as a HEC
    failure in the abstraction interface, not as a wrong value."""
    from repro.atm import CellFormatError
    from repro.core import CellMapper
    mapper = CellMapper()
    octets = mapper.cell_to_octets(AtmCell.with_payload(1, 100, [1]))
    octets[2] ^= 0x40
    with pytest.raises(CellFormatError):
        mapper.octets_to_cell(octets)


def test_environment_survives_dut_with_no_traffic():
    """Degenerate run: nothing sent; finish() must terminate."""
    env = CoVerificationEnvironment()
    dut = AtmPortModuleRtl(env.hdl, "dut", env.clk)
    env.add_dut(rx_port=dut.rx, tx_port=dut.tx)
    env.run(until=1e-5)
    env.finish()
    assert env.all_passed()
