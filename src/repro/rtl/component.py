"""Component base class for RTL designs.

An RTL component owns hierarchically named signals and registers its
processes with the simulator — the Python equivalent of a VHDL
entity/architecture pair.  Synthesisable style is kept deliberately:
components expose port signals, all state changes happen in clocked
processes, and combinational outputs are driven with zero (delta)
delay.

Since the compiled-backend work, every component carries a *backend*:

``"event"``
    processes run on the event kernel (per-event callbacks), always.
``"compiled"``
    processes that provide a compile hook are levelized into the
    clock's :class:`repro.hdl.CompiledKernel`; a missing hook or a
    failed compile raises :class:`repro.hdl.CompileError`.
``"auto"`` (the simulator default)
    compile when possible, silently fall back to the event kernel on
    :class:`repro.hdl.UnsupportedFeature` (the fallback is counted on
    ``Simulator.compiled_fallbacks``).

``backend=None`` inherits ``Simulator.rtl_backend`` (settable via the
``REPRO_RTL_BACKEND`` environment variable).  ``self.backends`` maps
each registered process name to the backend it actually landed on.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

from ..hdl.compiled import (CompileContext, CompileError,
                            UnsupportedFeature, compile_kernel)
from ..hdl.signal import Signal
from ..hdl.simulator import Simulator

__all__ = ["Component"]

_BACKENDS = ("event", "compiled", "auto")


class Component:
    """Base class: named signal factory + clocked-process helper."""

    def __init__(self, sim: Simulator, name: str,
                 backend: Optional[str] = None) -> None:
        self.sim = sim
        self.name = name
        if backend is None:
            backend = sim.rtl_backend
        if backend not in _BACKENDS:
            raise ValueError(
                f"{name}: backend must be one of {_BACKENDS}, "
                f"got {backend!r}")
        #: requested backend ("event" | "compiled" | "auto")
        self.backend = backend
        #: process name -> backend it actually landed on
        self.backends: Dict[str, str] = {}

    def signal(self, local_name: str, width: Optional[int] = None,
               init=None) -> Signal:
        """Create a signal named ``<component>.<local_name>``."""
        return self.sim.signal(f"{self.name}.{local_name}", width=width,
                               init=init)

    def _register_compiled(self, clk: Signal, name: str,
                           compile_fn: Optional[Callable],
                           kind: str) -> bool:
        """Try to land process *name* on the compiled backend.

        Returns True on success, False when the event kernel should
        host it instead (backend "event", no hook, or an ``auto``
        fallback — which is counted); re-raises compile failures for
        the strict ``"compiled"`` backend.
        """
        label = f"{self.name}.{name}"
        if self.backend == "event":
            return False
        if compile_fn is None:
            if self.backend == "compiled":
                raise CompileError(
                    f"{label}: backend='compiled' but the component "
                    "provides no compile hook")
            return False
        try:
            kernel = compile_kernel(self.sim, clk)
            if kind == "seq":
                kernel.add_seq(label, compile_fn)
            else:
                kernel.add_comb(label, compile_fn)
        except UnsupportedFeature:
            if self.backend == "compiled":
                raise
            self.sim.compiled_fallbacks += 1
            return False
        kernel.components += 1
        return True

    def clocked(self, clk: Signal, body: Callable[[], None],
                name: str = "seq",
                compile_fn: Optional[Callable[[CompileContext],
                                              Callable[[], None]]] = None
                ) -> None:
        """Register *body* to run on every rising edge of *clk*.

        The body reads ``.value`` of its inputs and drives outputs —
        the shape of a ``process(clk)`` with ``rising_edge(clk)``.
        Registered with rising-edge sensitivity, so the falling edge
        does not dispatch the process at all; the guard stays as a
        belt-and-braces check for the initialisation run.

        *compile_fn* is the optional compiled-backend twin: a builder
        that receives a :class:`repro.hdl.CompileContext` and returns
        the levelized evaluation callable.  Whether it is used depends
        on the component's backend (see the module docstring).
        """
        if self._register_compiled(clk, name, compile_fn, "seq"):
            self.backends[name] = "compiled"
            return
        self.backends[name] = "event"

        def proc(_sim: Simulator) -> None:
            if clk.rising():
                body()

        self.sim.add_process(f"{self.name}.{name}", proc,
                             sensitivity=[clk], edge="rise")

    def combinational(self, inputs: Sequence[Signal],
                      body: Callable[[], None],
                      name: str = "comb",
                      clk: Optional[Signal] = None,
                      compile_fn: Optional[Callable[[CompileContext],
                                                    Callable[[], None]]]
                      = None) -> None:
        """Register *body* to run on any event of *inputs* (and once at
        initialisation), like a combinational VHDL process.

        When *clk* and *compile_fn* are given, the compiled backend
        levelizes the process into *clk*'s kernel instead (inputs must
        be written inside the same kernel; see
        :meth:`repro.hdl.CompiledKernel.add_comb`).
        """
        if clk is not None and self._register_compiled(
                clk, name, compile_fn, "comb"):
            self.backends[name] = "compiled"
            return
        self.backends[name] = "event"
        self.sim.add_process(f"{self.name}.{name}",
                             lambda _sim: body(), sensitivity=list(inputs))
