"""SCSI-bus transport model.

The board hangs off the workstation's SCSI bus; every software
activity cycle pays command latency plus payload transfer time.  The
model is deliberately simple — fixed per-command overhead plus
bytes/bandwidth — because that is all experiment E4 needs: the
SW-activity cost that long hardware test cycles amortise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

__all__ = ["ScsiBus", "ScsiTransfer"]


@dataclass(frozen=True)
class ScsiTransfer:
    """One completed bus transaction."""

    command: str
    payload_bytes: int
    duration: float


class ScsiBus:
    """A latency/bandwidth model of the board's SCSI attachment.

    Args:
        bandwidth_bytes_per_s: sustained transfer rate (default 10 MB/s,
            fast SCSI-2 of the paper's era).
        command_overhead_s: fixed cost per command (arbitration,
            selection, status).
    """

    def __init__(self, bandwidth_bytes_per_s: float = 10e6,
                 command_overhead_s: float = 500e-6) -> None:
        if bandwidth_bytes_per_s <= 0:
            raise ValueError("non-positive SCSI bandwidth")
        if command_overhead_s < 0:
            raise ValueError("negative SCSI command overhead")
        self.bandwidth = bandwidth_bytes_per_s
        self.overhead = command_overhead_s
        self.log: List[ScsiTransfer] = []
        self._sum_time = 0.0
        self._sum_bytes = 0

    def transfer(self, command: str, payload_bytes: int) -> float:
        """Execute one transaction; returns its duration in seconds."""
        if payload_bytes < 0:
            raise ValueError(f"negative payload {payload_bytes}")
        duration = self.overhead + payload_bytes / self.bandwidth
        self.log.append(ScsiTransfer(command, payload_bytes, duration))
        self._sum_time += duration
        self._sum_bytes += payload_bytes
        return duration

    @property
    def total_time(self) -> float:
        """Accumulated bus time over all transactions."""
        return self._sum_time

    @property
    def total_bytes(self) -> int:
        """Accumulated payload bytes over all transactions."""
        return self._sum_bytes

    def stats_snapshot(self) -> dict:
        """Machine-readable bus totals for observability snapshots."""
        return {
            "transfers": len(self.log),
            "total_bytes": self._sum_bytes,
            "total_time_s": self._sum_time,
        }
