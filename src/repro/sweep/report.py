"""Human-readable rendering of a sweep payload.

Formats the runner's machine-readable payload through the shared
:mod:`repro.analysis.report` helpers so sweep tables look like every
other experiment table in the repo.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..analysis.report import ExperimentResult, format_table

__all__ = ["render_sweep_report"]


def _fmt_latency(hist) -> str:
    """'mean/p99 µs' summary of a latency histogram snapshot."""
    if not hist or not hist.get("count"):
        return "-"
    mean = hist["mean"] * 1e6
    p99 = (hist["p99"] or 0.0) * 1e6
    return f"{mean:.1f}/{p99:.1f}"


def render_sweep_report(payload: Dict[str, Any]) -> str:
    """Render one sweep payload (per-run table + aggregate lines)."""
    rows: List[ExperimentResult] = []
    for run in payload["runs"]:
        status = run.get("status", "error")
        if status == "ok":
            verdict = "pass" if run.get("passed") else "FAIL"
            rows.append(ExperimentResult(run["name"], {
                "status": verdict,
                "cells": run["cells_in"],
                "hdl_clocks": run["hdl_clocks"],
                "cyc/s": float(run["cycles_per_s"]),
                "sync_msgs": run["sync_exchanges"],
                "lat mean/p99 us": _fmt_latency(run.get("latency")),
                "mode": run.get("mode", "?"),
            }))
        else:
            rows.append(ExperimentResult(run["name"], {
                "status": status.upper(),
                "mode": run.get("mode", "?"),
            }))
    aggregate = payload["aggregate"]
    execution = payload.get("execution", {})
    lines = [format_table(
        "scenario sweep",
        ["status", "cells", "hdl_clocks", "cyc/s", "sync_msgs",
         "lat mean/p99 us", "mode"], rows)]
    lines.append("")
    lines.append(
        f"aggregate: {aggregate['runs_passed']}/"
        f"{aggregate['runs_total']} runs passed, "
        f"{aggregate['cells_processed']} cells, "
        f"{aggregate['hdl_clocks']} DUT clocks, "
        f"{aggregate['cycles_per_s']:,.0f} cycles/s summed, "
        f"{aggregate['sync_exchanges']} sync exchanges")
    if execution:
        lines.append(
            f"execution: {execution.get('jobs')} worker(s) "
            f"[{execution.get('start_method')}], "
            f"{execution.get('workers_spawned', 0)} spawned, "
            f"{execution.get('crashes', 0)} crash(es), "
            f"{execution.get('timeouts', 0)} timeout(s), "
            f"{execution.get('retries', 0)} retry(ies), "
            f"{execution.get('serial_fallbacks', 0)} serial "
            f"fallback(s), wall "
            f"{execution.get('sweep_wall_s', 0.0):.2f} s")
    lines.extend(_failure_lines(payload["runs"]))
    lines.extend(_retry_lines(execution.get("retry_log", [])))
    return "\n".join(lines)


def _detail_lines(label: str, detail: Dict[str, Any]) -> List[str]:
    """One failure detail as report lines: the exception headline and
    the worker-side traceback (indented so the report stays greppable
    by run name at column zero)."""
    lines = []
    kind = detail.get("type")
    message = detail.get("message")
    if kind is not None:
        lines.append(f"  {label}: {kind}: {message}")
    elif "timeout_s" in detail:
        lines.append(f"  {label}: exceeded "
                     f"{detail['timeout_s']:g} s budget")
    elif "exitcode" in detail:
        lines.append(f"  {label}: worker died "
                     f"(exit code {detail['exitcode']})")
    else:
        lines.append(f"  {label}: {detail!r}")
    for raw in (detail.get("traceback") or "").rstrip().splitlines():
        lines.append(f"    {raw}")
    return lines


def _failure_lines(runs: List[Dict[str, Any]]) -> List[str]:
    """Per-failure detail section: the exception type, message and
    full worker traceback for every non-ok run."""
    failed = [run for run in runs if run.get("status") != "ok"]
    if not failed:
        return []
    lines = ["", "failures:"]
    for run in failed:
        detail = run.get("detail") or {}
        lines.extend(_detail_lines(
            f"{run['name']} [{run.get('status', 'error')}]", detail))
    return lines


def _retry_lines(retry_log: List[Dict[str, Any]]) -> List[str]:
    """Attempts that were retried or degraded (and may have succeeded
    afterwards — the failure that *motivated* each retry)."""
    if not retry_log:
        return []
    lines = ["", "retried attempts:"]
    for entry in retry_log:
        lines.extend(_detail_lines(
            f"{entry['name']} attempt {entry['attempt']} "
            f"[{entry['kind']}]", entry.get("detail") or {}))
    return lines
