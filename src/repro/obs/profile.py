"""Profiling span hooks on the co-simulation kernel hot paths.

The hot-path overhaul PRs identified four loops that dominate wall
clock: the netsim :meth:`~repro.netsim.kernel.Kernel.run` event loop,
the HDL :meth:`~repro.hdl.simulator.Simulator.run` dispatch (cycle
engine or heap), the conservative protocol's queue sweep
(``ConservativeSynchronizer._advance``) and the bulk cell compiler
(``CellSender._schedule_cell``).  Each of those sites carries a
``profile`` attribute: ``None`` by default (one attribute check, zero
cost), or a zero-arg callable returning a context manager wrapped
around the hot section.

:func:`attach_profiling` points all four at the environment's metrics
registry — every invocation then lands one wall-clock sample in a
``prof.*`` histogram (see :data:`PROFILE_METRICS`), giving a per-layer
time-attribution breakdown without a sampling profiler in the loop.
:func:`detach_profiling` restores the zero-cost default.
"""

from __future__ import annotations

from typing import List, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..core.environment import CoVerificationEnvironment

__all__ = ["attach_profiling", "detach_profiling", "PROFILE_METRICS"]

#: histogram names written by an attached profiler, one per hot path
PROFILE_METRICS = (
    "prof.netsim_run_s",
    "prof.hdl_run_s",
    "prof.sync_advance_s",
    "prof.cell_compile_s",
)


def attach_profiling(env: "CoVerificationEnvironment") -> List[str]:
    """Wire profiling spans onto *env*'s four kernel hot paths.

    Requires an enabled metrics registry (samples need somewhere to
    land); raises :class:`ValueError` otherwise.  Returns the list of
    histogram names now being recorded.
    """
    registry = env.metrics_registry
    if not registry.enabled:
        raise ValueError(
            "attach_profiling needs an enabled metrics registry "
            "(CoVerificationEnvironment(observe=True))")
    # One reusable SpanTimer per site: the hooks fire once per sync
    # window on single-threaded, non-reentrant paths, so handing back
    # the same timer skips the per-call registry lookup and allocation
    # that used to dominate the observed-mode overhead.
    netsim_timer = registry.timer("prof.netsim_run_s")
    hdl_timer = registry.timer("prof.hdl_run_s")
    sync_timer = registry.timer("prof.sync_advance_s")
    compile_timer = registry.timer("prof.cell_compile_s")
    env.network.kernel.profile = lambda: netsim_timer
    env.hdl.profile = lambda: hdl_timer
    for entity in env.entities:
        # Behavioural entities have neither a synchroniser nor a cell
        # sender — nothing to sample on a zero-delta endpoint.
        if hasattr(entity, "sync") and hasattr(entity.sync, "profile"):
            entity.sync.profile = lambda: sync_timer
        if hasattr(entity, "sender"):
            entity.sender.profile = lambda: compile_timer
    return list(PROFILE_METRICS)


def detach_profiling(env: "CoVerificationEnvironment") -> None:
    """Restore the zero-cost ``profile = None`` default everywhere."""
    env.network.kernel.profile = None
    env.hdl.profile = None
    for entity in env.entities:
        if hasattr(entity, "sync") and hasattr(entity.sync, "profile"):
            entity.sync.profile = None
        if hasattr(entity, "sender"):
            entity.sender.profile = None
