"""Time-stamped messages between the coupled simulators (§3.1).

"Communication between both simulators is based on the exchange of
time-stamped messages updating the receiving simulator with the
current simulation time of the originator.  For each input message
type the co-simulation entity maintains a time-stamped message queue
I_j.  Furthermore, for each message type the maximum number of clock
cycles δ_j that it takes to process the message has to be specified
by the user."
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Optional, Tuple

__all__ = ["TimestampedMessage", "MessageQueue", "MessageQueueSet",
           "CausalityError"]

_message_ids = itertools.count()


class CausalityError(Exception):
    """Raised when a message would arrive in the receiver's past —
    the Figure-3 causality error the protocol must prevent."""


@dataclass(frozen=True)
class TimestampedMessage:
    """One message exchanged between the simulators."""

    time: float
    msg_type: str
    payload: Any = None
    seq: int = field(default_factory=lambda: next(_message_ids))


class MessageQueue:
    """The input queue I_j of one message type.

    Args:
        msg_type: the message type j.
        delta_cycles: δ_j — the maximum number of DUT clock cycles
            needed to process one message of this type.
    """

    def __init__(self, msg_type: str, delta_cycles: int) -> None:
        if delta_cycles < 1:
            raise ValueError(
                f"delta for {msg_type!r} must be >= 1 clock cycle")
        self.msg_type = msg_type
        self.delta_cycles = delta_cycles
        self._queue: Deque[TimestampedMessage] = deque()
        self._last_time: Optional[float] = None
        self.received = 0

    def __len__(self) -> int:
        return len(self._queue)

    def push(self, message: TimestampedMessage) -> None:
        """Enqueue a message; time stamps must be non-decreasing per
        queue (a simulator never sends into its own past)."""
        if self._last_time is not None and message.time < self._last_time:
            raise CausalityError(
                f"queue {self.msg_type!r}: message at t={message.time} "
                f"behind previous t={self._last_time}")
        self._last_time = message.time
        self._queue.append(message)
        self.received += 1

    def head_time(self) -> Optional[float]:
        """Time stamp of the oldest queued message, or ``None``."""
        return self._queue[0].time if self._queue else None

    def latest_time(self) -> Optional[float]:
        """Largest time stamp ever received on this queue."""
        return self._last_time

    def advance_time(self, time: float) -> None:
        """Process a *null message*: the originator announces it has
        reached *time* without sending data for this queue (the
        Chandy-Misra deadlock-avoidance device)."""
        if self._last_time is None or time > self._last_time:
            self._last_time = time

    def pop(self) -> TimestampedMessage:
        """Dequeue the oldest message."""
        return self._queue.popleft()


class MessageQueueSet:
    """All input queues of one co-simulation entity."""

    def __init__(self, deltas: Dict[str, int]) -> None:
        if not deltas:
            raise ValueError("at least one message type is required")
        self.queues: Dict[str, MessageQueue] = {
            name: MessageQueue(name, delta)
            for name, delta in deltas.items()}

    def __getitem__(self, msg_type: str) -> MessageQueue:
        return self.queues[msg_type]

    def push(self, message: TimestampedMessage) -> None:
        """Route a message into its type's queue."""
        try:
            queue = self.queues[message.msg_type]
        except KeyError:
            raise KeyError(
                f"unknown message type {message.msg_type!r}; "
                f"known: {sorted(self.queues)}") from None
        queue.push(message)

    def min_delta(self) -> int:
        """min_j δ_j — the advance granted when all queues agree."""
        return min(queue.delta_cycles for queue in self.queues.values())

    def all_covered_to(self, time: float) -> bool:
        """True when every queue has seen a message with stamp >= time
        (the condition for advancing past *time* in §3.1)."""
        return all(queue.latest_time() is not None
                   and queue.latest_time() >= time
                   for queue in self.queues.values())

    def earliest_head(self) -> Optional[Tuple[str, float]]:
        """(type, time) of the globally oldest queued message."""
        best: Optional[Tuple[str, float]] = None
        for name, queue in self.queues.items():
            head = queue.head_time()
            if head is None:
                continue
            if best is None or head < best[1]:
                best = (name, head)
        return best

    def pending(self) -> int:
        """Total queued messages across all types."""
        return sum(len(queue) for queue in self.queues.values())
