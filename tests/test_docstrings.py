"""Docstring coverage for the deeply documented packages.

Mirrors the ruff pydocstyle subset configured in pyproject.toml
(D100/D101/D102/D103/D104) so the contract is enforced locally even
where ruff is not installed: every module and every public class,
method and function in ``repro.core``, ``repro.obs`` and
``repro.sweep`` must carry a non-empty docstring.
"""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"
PACKAGES = ("behav", "core", "obs", "sweep")


def _iter_modules():
    for pkg in PACKAGES:
        for path in sorted((SRC / pkg).rglob("*.py")):
            yield path


def _is_public(node: ast.AST, parents: list) -> bool:
    name = node.name
    if name.startswith("_"):
        return False  # private — and dunders are D105, not in the subset
    for parent in parents:
        if isinstance(parent, ast.ClassDef) and parent.name.startswith("_"):
            return False
        if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return False  # nested function — not part of the public API
    return True


def _missing_in(path: Path) -> list:
    tree = ast.parse(path.read_text(encoding="utf-8"))
    missing = []
    if not (ast.get_docstring(tree) or "").strip():
        missing.append(f"{path}:1 module docstring")

    def walk(node, parents):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)):
                if child.name != "__init__" and _is_public(child, parents):
                    if not (ast.get_docstring(child) or "").strip():
                        missing.append(f"{path}:{child.lineno} {child.name}")
                walk(child, parents + [child])
            else:
                walk(child, parents)

    walk(tree, [])
    return missing


@pytest.mark.parametrize(
    "path", list(_iter_modules()), ids=lambda p: str(p.relative_to(SRC))
)
def test_module_fully_documented(path):
    missing = _missing_in(path)
    assert not missing, "missing docstrings:\n" + "\n".join(missing)


def test_audit_covers_something():
    modules = list(_iter_modules())
    assert len(modules) >= 15, "docstring audit found suspiciously few modules"
