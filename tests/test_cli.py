"""Tests for the command-line interface."""

import json

from repro.cli import main


def test_inventory_lists_all_subpackages(capsys):
    assert main(["inventory"]) == 0
    out = capsys.readouterr().out
    for name in ("netsim", "traffic", "atm", "hdl", "rtl", "board",
                 "core", "analysis"):
        assert f"repro.{name}" in out


def test_examples_listing(capsys):
    assert main(["examples"]) == 0
    out = capsys.readouterr().out
    assert "quickstart" in out
    assert "accounting_coverification" in out


def test_unknown_example_rejected(capsys):
    assert main(["example", "does_not_exist"]) == 2
    assert "unknown example" in capsys.readouterr().err


def test_run_example_quickstart(capsys):
    assert main(["example", "quickstart"]) == 0
    assert "PASS" in capsys.readouterr().out


def test_no_command_prints_help(capsys):
    assert main([]) == 2
    assert "usage" in capsys.readouterr().out.lower()


def test_stats_reports_cosim_metrics(capsys, tmp_path):
    json_path = tmp_path / "stats.json"
    trace_path = tmp_path / "trace.jsonl"
    assert main(["stats", "--cells", "16",
                 "--json", str(json_path),
                 "--trace", str(trace_path)]) == 0
    out = capsys.readouterr().out
    for needle in ("windows granted", "null messages", "stale advances",
                   "sync.lag_s", "cell_ingress_latency", "delta cycles"):
        assert needle in out
    report = json.loads(json_path.read_text())
    assert report["workload"]["scenario"] == "e1_accounting"
    assert report["entities"][0]["sync"]["messages_posted"] > 0
    assert trace_path.read_text().count('"ev"') == \
        report["trace_records"]


def test_stats_lockstep_disables_json(capsys):
    assert main(["stats", "--cells", "8", "--lockstep",
                 "--json", ""]) == 0
    out = capsys.readouterr().out
    assert "lockstep sync" in out
    assert "wrote" not in out


def test_results_prints_tables_when_present(capsys):
    from repro.cli import _results_dir
    code = main(["results"])
    out = capsys.readouterr().out
    if _results_dir().is_dir() and any(_results_dir().glob("*.txt")):
        assert code == 0
        assert "E1" in out or "E2" in out or "E" in out
    else:
        assert code == 1


def test_sweep_from_flags(capsys, tmp_path):
    json_path = tmp_path / "sweep.json"
    assert main(["sweep", "--traffic", "cbr", "--ports", "2",
                 "--seeds", "0,1", "--cells", "8", "--jobs", "2",
                 "--json", str(json_path)]) == 0
    out = capsys.readouterr().out
    assert "scenario sweep" in out
    assert "aggregate: 2/2 runs passed" in out
    payload = json.loads(json_path.read_text())
    assert payload["benchmark"] == "sweep"
    assert len(payload["runs"]) == 2
    assert payload["aggregate"]["runs_passed"] == 2
    assert payload["execution"]["jobs"] == 2


def test_sweep_from_spec_file(capsys, tmp_path):
    spec_path = tmp_path / "sweep.json"
    spec_path.write_text(json.dumps({
        "matrix": {"traffic": ["cbr"], "ports": [2], "seeds": [0],
                   "sync": ["conservative"]},
        "run": {"cells": 8},
        "execution": {"jobs": 1},
    }))
    assert main(["sweep", "--spec", str(spec_path),
                 "--json", ""]) == 0
    assert "1/1 runs passed" in capsys.readouterr().out


def test_sweep_rejects_bad_matrix(capsys):
    assert main(["sweep", "--traffic", "warp", "--json", ""]) == 2
    assert "invalid sweep" in capsys.readouterr().err
