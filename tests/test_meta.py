"""Meta tests: the documentation's promises hold against the tree."""

import re
from pathlib import Path


ROOT = Path(__file__).resolve().parent.parent


def test_design_md_experiment_benches_exist():
    """Every bench file DESIGN.md's experiment index references
    exists."""
    text = (ROOT / "DESIGN.md").read_text()
    referenced = set(re.findall(r"benchmarks/(test_\w+\.py)", text))
    assert referenced, "DESIGN.md lost its experiment index?"
    for name in referenced:
        assert (ROOT / "benchmarks" / name).is_file(), name


def test_experiments_md_covers_all_benches():
    """Every benchmark file is discussed in EXPERIMENTS.md."""
    text = (ROOT / "EXPERIMENTS.md").read_text()
    for bench in sorted((ROOT / "benchmarks").glob("test_e*.py")):
        assert bench.name in text, f"{bench.name} undocumented"


def test_readme_examples_exist():
    text = (ROOT / "README.md").read_text()
    for name in re.findall(r"examples/(\w+)\.py", text):
        assert (ROOT / "examples" / f"{name}.py").is_file(), name


def test_all_subpackages_have_docstrings_and_all():
    import importlib
    for name in ("netsim", "traffic", "atm", "hdl", "rtl", "board",
                 "core", "analysis"):
        module = importlib.import_module(f"repro.{name}")
        assert module.__doc__, f"repro.{name} lacks a docstring"
        assert getattr(module, "__all__", None), \
            f"repro.{name} lacks __all__"


def test_public_api_objects_are_documented():
    """Every exported class/function carries a docstring."""
    import importlib
    import inspect
    undocumented = []
    for name in ("netsim", "traffic", "atm", "hdl", "rtl", "board",
                 "core", "analysis"):
        module = importlib.import_module(f"repro.{name}")
        for symbol in module.__all__:
            obj = getattr(module, symbol)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not inspect.getdoc(obj):
                    undocumented.append(f"repro.{name}.{symbol}")
    assert not undocumented, undocumented
