"""Node domain: modules, packet streams and node-level wiring.

The paper's node domain describes "each node's capability ... in terms
of processing, queueing and communication interfaces".  A
:class:`Node` therefore aggregates

* :class:`ProcessorModule` objects hosting extended-FSM process models,
* :class:`QueueModule` objects providing bounded FIFO queueing, and
* numbered *ports* through which links (the network domain) deliver and
  accept packets.

Packet streams between modules inside one node are instantaneous at the
abstraction level of the network simulator: a send schedules a STREAM
interrupt at the current time (plus an optional explicit delay).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from .events import Interrupt, InterruptKind
from .kernel import Kernel
from .packet import Packet
from .process import ProcessModel

__all__ = ["Node", "Module", "ProcessorModule", "QueueModule",
           "SinkModule", "WiringError"]


class WiringError(Exception):
    """Raised on invalid stream/port wiring."""


class Module:
    """Base class for intra-node modules.

    A module owns numbered output streams; ``send`` routes a packet to
    whatever the stream is wired to (another module's input stream or a
    node port).
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.node: Optional["Node"] = None
        #: output stream index -> delivery callable(packet)
        self._out_wiring: Dict[int, Callable[[Packet], None]] = {}
        #: statistics
        self.packets_in = 0
        self.packets_out = 0

    # -- wiring ----------------------------------------------------------
    def wire_output(self, stream: int,
                    deliver: Callable[[Packet], None]) -> None:
        """Connect output *stream* to a delivery callable."""
        if stream in self._out_wiring:
            raise WiringError(
                f"module {self.name!r} output stream {stream} already wired")
        self._out_wiring[stream] = deliver

    # -- data path ---------------------------------------------------------
    def send(self, packet: Packet, stream: int = 0,
             delay: float = 0.0) -> None:
        """Emit *packet* on output *stream* after *delay* (default now)."""
        try:
            deliver = self._out_wiring[stream]
        except KeyError:
            raise WiringError(
                f"module {self.name!r} output stream {stream} is unwired")
        self.packets_out += 1
        kernel = self._kernel()
        kernel.schedule_after(delay, lambda: deliver(packet))

    def receive(self, packet: Packet, stream: int) -> None:
        """Accept *packet* arriving on input *stream*.

        Subclasses override; the base class drops with an error.
        """
        raise WiringError(
            f"module {self.name!r} cannot receive packets")

    def on_simulation_start(self) -> None:
        """Hook invoked when the hosting node starts."""

    def _kernel(self) -> Kernel:
        if self.node is None:
            raise WiringError(f"module {self.name!r} not attached to a node")
        return self.node.kernel


class ProcessorModule(Module):
    """A module hosting an extended-FSM :class:`ProcessModel`.

    Packet arrivals become STREAM interrupts delivered to the process.
    """

    def __init__(self, name: str, process: ProcessModel) -> None:
        super().__init__(name)
        self.process = process
        process.module = self

    def receive(self, packet: Packet, stream: int) -> None:
        self.packets_in += 1
        self.process.deliver(Interrupt(kind=InterruptKind.STREAM,
                                       stream=stream, data=packet))

    def on_simulation_start(self) -> None:
        self.process.start()


class QueueModule(Module):
    """A bounded FIFO queue with an optional deterministic service time.

    With ``service_time`` set, the queue autonomously forwards packets on
    output stream 0, one every ``service_time`` time units (a simple
    single-server queue).  With ``service_time=None`` the queue is
    passive and a processor pops it explicitly via :meth:`pop`.

    Overflowing packets are counted in :attr:`dropped` and discarded —
    exactly the loss behaviour ATM switch buffers exhibit.
    """

    def __init__(self, name: str, capacity: Optional[int] = None,
                 service_time: Optional[float] = None) -> None:
        super().__init__(name)
        self.capacity = capacity
        self.service_time = service_time
        self._fifo: Deque[Packet] = deque()
        self._busy = False
        self.dropped = 0
        self.max_occupancy = 0

    def __len__(self) -> int:
        return len(self._fifo)

    def receive(self, packet: Packet, stream: int) -> None:
        self.packets_in += 1
        if self.capacity is not None and len(self._fifo) >= self.capacity:
            self.dropped += 1
            return
        packet.stamp("enqueue", self._kernel().now)
        self._fifo.append(packet)
        self.max_occupancy = max(self.max_occupancy, len(self._fifo))
        if self.service_time is not None and not self._busy:
            self._start_service()

    def pop(self) -> Optional[Packet]:
        """Explicitly remove and return the head packet (or ``None``)."""
        if not self._fifo:
            return None
        return self._fifo.popleft()

    def peek(self) -> Optional[Packet]:
        """Return the head packet without removing it (or ``None``)."""
        return self._fifo[0] if self._fifo else None

    def _start_service(self) -> None:
        self._busy = True
        self._kernel().schedule_after(self.service_time, self._complete)

    def _complete(self) -> None:
        if self._fifo:
            self.send(self._fifo.popleft(), stream=0)
        if self._fifo:
            self._kernel().schedule_after(self.service_time, self._complete)
        else:
            self._busy = False


class SinkModule(Module):
    """Terminal module: records and destroys arriving packets.

    Args:
        name: module name.
        keep: retain arriving packets in :attr:`received`.
        on_packet: optional observer called as ``on_packet(time,
            packet)`` on every arrival — e.g. a provenance tracker's
            sink hook (:meth:`repro.obs.provenance.ProvenanceTracker.
            sink_hook`) closing a cell's causal journey.
    """

    def __init__(self, name: str, keep: bool = False,
                 on_packet: Optional[Callable[[float, Packet],
                                              None]] = None) -> None:
        super().__init__(name)
        self.keep = keep
        self.on_packet = on_packet
        self.received: List[Packet] = []
        self.last_arrival: Optional[float] = None

    def receive(self, packet: Packet, stream: int) -> None:
        """Count (and optionally record/observe) one arriving packet."""
        self.packets_in += 1
        self.last_arrival = self._kernel().now
        if self.keep:
            self.received.append(packet)
        if self.on_packet is not None:
            self.on_packet(self.last_arrival, packet)


class Node:
    """A network node: a named bag of modules plus numbered ports.

    Ports are the node's communication interfaces; links (see
    :mod:`repro.netsim.links`) bind to ports.  ``bind_port_input`` routes
    packets arriving from a link into a module input stream;
    ``bind_port_output`` lets a module output stream feed a link.
    """

    def __init__(self, name: str, kernel: Kernel) -> None:
        self.name = name
        self.kernel = kernel
        self.modules: Dict[str, Module] = {}
        #: port index -> (module, input stream)
        self._port_inputs: Dict[int, Tuple[Module, int]] = {}
        #: port index -> link transmit callable
        self._port_outputs: Dict[int, Callable[[Packet], None]] = {}

    # -- construction ------------------------------------------------------
    def add_module(self, module: Module) -> Module:
        if module.name in self.modules:
            raise WiringError(
                f"node {self.name!r} already has module {module.name!r}")
        module.node = self
        self.modules[module.name] = module
        return module

    def connect(self, src: Module, out_stream: int,
                dst: Module, in_stream: int) -> None:
        """Wire *src* output *out_stream* to *dst* input *in_stream*."""
        src.wire_output(out_stream,
                        lambda pkt: dst.receive(pkt, in_stream))

    def bind_port_input(self, port: int, module: Module,
                        in_stream: int) -> None:
        """Deliver packets arriving on node *port* to *module*."""
        if port in self._port_inputs:
            raise WiringError(f"node {self.name!r} port {port} already bound")
        self._port_inputs[port] = (module, in_stream)

    def bind_port_output(self, port: int, src: Module,
                         out_stream: int) -> None:
        """Feed *src* output *out_stream* out of node *port*."""
        src.wire_output(out_stream,
                        lambda pkt: self.transmit(pkt, port))

    # -- link-facing data path ----------------------------------------------
    def attach_link_tx(self, port: int,
                       transmit: Callable[[Packet], None]) -> None:
        """Called by a link to register its transmit entry for *port*."""
        if port in self._port_outputs:
            raise WiringError(
                f"node {self.name!r} port {port} already has a link")
        self._port_outputs[port] = transmit

    def has_link(self, port: int) -> bool:
        """True when a link is attached at node *port*."""
        return port in self._port_outputs

    def transmit(self, packet: Packet, port: int) -> None:
        """Hand *packet* to the link attached at *port*."""
        try:
            tx = self._port_outputs[port]
        except KeyError:
            raise WiringError(
                f"node {self.name!r} port {port} has no attached link")
        tx(packet)

    def deliver(self, packet: Packet, port: int) -> None:
        """Called by a link when *packet* arrives at node *port*."""
        try:
            module, stream = self._port_inputs[port]
        except KeyError:
            raise WiringError(
                f"node {self.name!r} port {port} input is unbound")
        module.receive(packet, stream)

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        """Start every module (delivers BEGIN to process models)."""
        for module in self.modules.values():
            module.on_simulation_start()
