"""Synthetic MPEG video traces.

The paper stimulates the hardware with "simulated real-world traces,
for example MPEG traces".  The original work replayed captured MPEG-1
elementary streams; we synthesise statistically similar traces: frames
arrive at a fixed frame rate in the canonical Group-of-Pictures (GoP)
pattern ``IBBPBBPBBPBB``, with per-type log-normal frame sizes whose
defaults follow published MPEG-1 trace statistics (I ≫ P > B).  Each
frame is segmented into 48-byte ATM payloads, i.e. one cell per 48
bytes (AAL5-style), emitted back-to-back at the source's peak rate.
"""

from __future__ import annotations

import math
import random
from typing import List, Tuple

from .base import ArrivalProcess

__all__ = ["MpegTraceSynthesizer", "MpegCellArrivals", "GOP_PATTERN"]

#: Canonical 12-frame GoP structure.
GOP_PATTERN = "IBBPBBPBBPBB"

#: Default (mean_bytes, sigma of underlying normal) per frame type,
#: loosely matched to MPEG-1 "Star Wars"-class traces.
_DEFAULT_FRAME_STATS = {
    "I": (20000.0, 0.30),
    "P": (8000.0, 0.45),
    "B": (3000.0, 0.55),
}


class MpegTraceSynthesizer:
    """Generates per-frame byte sizes following a GoP pattern.

    Args:
        frame_rate: frames per second (25.0 for PAL).
        gop_pattern: frame-type cycle, e.g. ``"IBBPBBPBBPBB"``.
        frame_stats: per-type (mean_bytes, lognormal sigma).
        seed: RNG seed.
    """

    def __init__(self, frame_rate: float = 25.0,
                 gop_pattern: str = GOP_PATTERN,
                 frame_stats=None, seed: int = 0) -> None:
        if frame_rate <= 0:
            raise ValueError(f"non-positive frame rate {frame_rate}")
        if not gop_pattern or set(gop_pattern) - set("IPB"):
            raise ValueError(f"invalid GoP pattern {gop_pattern!r}")
        self.frame_rate = frame_rate
        self.gop_pattern = gop_pattern
        self.frame_stats = dict(frame_stats or _DEFAULT_FRAME_STATS)
        self._seed = seed
        self.reset()

    def reset(self) -> None:
        """Rewind to the first frame of the first GoP."""
        self._rng = random.Random(self._seed)
        self._index = 0

    def next_frame(self) -> Tuple[float, str, int]:
        """Return ``(start_time, frame_type, size_bytes)`` of the next
        frame."""
        ftype = self.gop_pattern[self._index % len(self.gop_pattern)]
        start = self._index / self.frame_rate
        mean, sigma = self.frame_stats[ftype]
        # Log-normal with the requested mean: mu = ln(mean) - sigma^2/2.
        mu = math.log(mean) - sigma * sigma / 2.0
        size = max(1, int(round(self._rng.lognormvariate(mu, sigma))))
        self._index += 1
        return start, ftype, size

    def frames(self, count: int) -> List[Tuple[float, str, int]]:
        """Return the next *count* frames."""
        return [self.next_frame() for _ in range(count)]


class MpegCellArrivals(ArrivalProcess):
    """Cell-level arrival process derived from a synthetic MPEG trace.

    Each frame of ``size_bytes`` becomes ``ceil(size/48)`` ATM cells
    (48-byte payloads) transmitted back-to-back with ``cell_spacing``
    between consecutive cells, starting at the frame boundary.

    Args:
        synthesizer: the frame-size generator.
        cell_spacing: inter-cell gap during a frame burst (seconds);
            defaults to the 2.726 µs STM-1 cell time.
        payload_bytes: payload carried per cell (48 for AAL5).
    """

    STM1_CELL_TIME = 53 * 8 / 155.52e6  # ~2.726 us

    def __init__(self, synthesizer: MpegTraceSynthesizer,
                 cell_spacing: float = STM1_CELL_TIME,
                 payload_bytes: int = 48) -> None:
        if cell_spacing <= 0:
            raise ValueError(f"non-positive cell spacing {cell_spacing}")
        if payload_bytes <= 0:
            raise ValueError(f"non-positive payload size {payload_bytes}")
        self.synthesizer = synthesizer
        self.cell_spacing = cell_spacing
        self.payload_bytes = payload_bytes
        self.reset()

    def reset(self) -> None:
        self.synthesizer.reset()
        self._last_time = 0.0
        self._pending: List[float] = []

    def _refill(self) -> None:
        start, _ftype, size = self.synthesizer.next_frame()
        cells = max(1, math.ceil(size / self.payload_bytes))
        base = max(start, self._last_time)
        self._pending = [base + i * self.cell_spacing for i in range(cells)]
        self._pending.reverse()  # pop() from the end

    def next_interarrival(self) -> float:
        while not self._pending:
            self._refill()
        arrival = self._pending.pop()
        gap = arrival - self._last_time
        self._last_time = arrival
        return max(0.0, gap)
