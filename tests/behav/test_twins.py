"""Unit tests for the behavioural DUT twins and their latency model."""

import pytest

from repro.atm import AtmCell
from repro.behav import (AccountingUnitBehav, AtmPortModuleBehav,
                         AtmSwitchBehav, BehavioralEntity, SerialLine,
                         UpcPolicerBehav, hop_latency_seconds)
from repro.core import TimeBase

TB = TimeBase.for_line_rate()
CELL_S = TB.cell_time_seconds


def collect(twin, port=0):
    """Bind a list-collector to one twin output port."""
    out = []
    twin.bind_output(lambda when, cell: out.append((when, cell)),
                     port=port)
    return out


class TestSerialLine:
    def test_idle_line_starts_immediately(self):
        line = SerialLine()
        assert line.occupy(5.0, 2.0) == 7.0

    def test_busy_line_queues(self):
        line = SerialLine()
        line.occupy(0.0, 2.0)
        # arriving mid-transfer waits for the line to free up
        assert line.occupy(1.0, 2.0) == 4.0
        assert line.occupy(10.0, 2.0) == 12.0

    def test_backlog_counts_queued_cells(self):
        line = SerialLine()
        for _ in range(3):
            line.occupy(0.0, 2.0)
        assert line.backlog_cells(0.0, 2.0) == 3
        assert line.backlog_cells(6.0, 2.0) == 0

    def test_hop_latency_is_whole_clocks(self):
        assert hop_latency_seconds(TB, 1) == pytest.approx(
            TB.clock_period_ticks * TB.tick_seconds)


class TestPortModuleTwin:
    def test_translation_preserves_header_and_payload(self):
        twin = AtmPortModuleBehav("pm", timebase=TB)
        out = collect(twin)
        twin.install(1, 100, 2, 200)
        cell = AtmCell.with_payload(1, 100, [0xAB, 0xCD], pt=5, clp=1)
        done = twin.cell_arrival(0.0, cell)
        assert done == pytest.approx(CELL_S)
        ((when, translated),) = out
        assert when > done  # pipeline + egress serialisation
        assert (translated.vpi, translated.vci) == (2, 200)
        assert translated.pt == 5 and translated.clp == 1
        assert translated.payload == cell.payload
        assert twin.cells_translated == 1

    def test_unknown_and_idle_cells_counted_not_forwarded(self):
        twin = AtmPortModuleBehav("pm", timebase=TB)
        out = collect(twin)
        twin.cell_arrival(0.0, AtmCell.idle())
        twin.cell_arrival(CELL_S, AtmCell.with_payload(7, 77, [1]))
        assert out == []
        assert twin.counters()["idle_cells"] == 1
        assert twin.counters()["unknown_connections"] == 1
        assert twin.counters()["cells_received"] == 2

    def test_remove_uninstalls_the_connection(self):
        twin = AtmPortModuleBehav("pm", timebase=TB)
        out = collect(twin)
        twin.install(1, 100, 2, 200)
        twin.remove(1, 100)
        twin.cell_arrival(0.0, AtmCell.with_payload(1, 100, [1]))
        assert out == []
        assert twin.unknown_connections == 1


class TestSwitchTwin:
    def test_ring_routing_per_port(self):
        twin = AtmSwitchBehav("sw", timebase=TB, num_ports=3)
        outs = [collect(twin, port=i) for i in range(3)]
        for i in range(3):
            twin.install_connection(i, 1, 100 + i,
                                    (i + 1) % 3, 2, 200 + i)
        for i in range(3):
            twin.cell_arrival(0.0, AtmCell.with_payload(1, 100 + i, [i]),
                              port=i)
        for i in range(3):
            ((_, cell),) = outs[(i + 1) % 3]
            assert (cell.vpi, cell.vci) == (2, 200 + i)
        assert twin.cells_switched == 3

    def test_invalid_construction_and_routes_rejected(self):
        with pytest.raises(ValueError):
            AtmSwitchBehav("sw", timebase=TB, num_ports=0)
        with pytest.raises(ValueError):
            AtmSwitchBehav("sw", timebase=TB, queue_depth=0)
        twin = AtmSwitchBehav("sw", timebase=TB, num_ports=2)
        with pytest.raises(ValueError):
            twin.install_connection(0, 1, 100, 5, 2, 200)

    def test_output_overflow_drops(self):
        # Three inputs converge on one output: the egress line drains
        # at a third of the aggregate arrival rate, so its modelled
        # backlog grows past queue_depth and newcomers drop.
        twin = AtmSwitchBehav("sw", timebase=TB, num_ports=3,
                              queue_depth=2)
        out = collect(twin, port=2)
        for in_port in range(3):
            twin.install_connection(in_port, 1, 100, 2, 2, 200)
        sent = 0
        for slot in range(4):
            for in_port in range(3):
                twin.cell_arrival(slot * CELL_S,
                                  AtmCell.with_payload(1, 100, [1]),
                                  port=in_port)
                sent += 1
        counters = twin.counters()
        assert counters["cells_dropped_overflow"] > 0
        assert counters["cells_switched"] == len(out)
        assert (counters["cells_switched"]
                + counters["cells_dropped_overflow"]) == sent


class TestPolicerTwin:
    def contract(self, twin, increment=2, limit=0):
        twin.install_contract(1, 100, increment * TB.clocks_per_cell,
                              limit * TB.clocks_per_cell)

    def test_conforming_stream_passes(self):
        twin = UpcPolicerBehav("upc", timebase=TB)
        out = collect(twin)
        self.contract(twin, increment=2)
        for slot in range(0, 10, 2):  # exactly the contract rate
            twin.cell_arrival(slot * CELL_S,
                              AtmCell.with_payload(1, 100, [1]))
        assert twin.cells_non_conforming == 0
        assert twin.cells_conforming == 5
        assert len(out) == 5
        assert all(d.conforming for d in twin.decisions)

    def test_over_rate_stream_dropped(self):
        twin = UpcPolicerBehav("upc", timebase=TB)
        out = collect(twin)
        self.contract(twin, increment=2)
        for slot in range(6):  # twice the contracted rate
            twin.cell_arrival(slot * CELL_S,
                              AtmCell.with_payload(1, 100, [1]))
        assert twin.cells_non_conforming > 0
        assert len(out) == twin.cells_conforming

    def test_tag_action_sets_clp(self):
        twin = UpcPolicerBehav("upc", timebase=TB, action="tag")
        out = collect(twin)
        self.contract(twin, increment=3)
        for slot in range(4):
            twin.cell_arrival(slot * CELL_S,
                              AtmCell.with_payload(1, 100, [1], clp=0))
        assert len(out) == 4  # tagged cells still forwarded
        tagged = [cell for _, cell in out if cell.clp == 1]
        assert len(tagged) == twin.cells_non_conforming

    def test_unpoliced_connections_pass_transparently(self):
        twin = UpcPolicerBehav("upc", timebase=TB)
        out = collect(twin)
        for slot in range(3):
            twin.cell_arrival(slot * CELL_S,
                              AtmCell.with_payload(3, 300, [1]))
        assert twin.unpoliced_cells == 3
        assert len(out) == 3
        assert twin.decisions == []

    def test_validation(self):
        with pytest.raises(ValueError):
            UpcPolicerBehav("upc", timebase=TB, action="shape")
        with pytest.raises(ValueError):
            UpcPolicerBehav("upc", timebase=TB, bug="nonsense")
        twin = UpcPolicerBehav("upc", timebase=TB)
        with pytest.raises(ValueError):
            twin.install_contract(1, 100, 0)
        with pytest.raises(ValueError):
            twin.install_contract(1, 100, 10, -1)


class TestAccountingTwin:
    def test_records_in_registration_order(self):
        twin = AccountingUnitBehav("acct", timebase=TB)
        twin.register(5, 500, units_per_cell=1)
        twin.register(1, 100, units_per_cell=2)
        twin.cell_arrival(0.0, AtmCell.with_payload(1, 100, [1]))
        twin.cell_arrival(2 * CELL_S, AtmCell.with_payload(5, 500, [1]))
        twin.tariff_tick(9 * CELL_S)
        # registration order (the RTL FIFO order), not sorted order
        assert twin.records == [(5, 500, 0, 1, 0, 1),
                                (1, 100, 0, 1, 0, 2)]

    def test_clp1_and_fixed_units_charging(self):
        twin = AccountingUnitBehav("acct", timebase=TB)
        twin.register(1, 100, units_per_cell=3, units_per_cell_clp1=1,
                      fixed_units=10)
        twin.cell_arrival(0.0, AtmCell.with_payload(1, 100, [1], clp=0))
        twin.cell_arrival(2 * CELL_S,
                          AtmCell.with_payload(1, 100, [1], clp=1))
        twin.tariff_tick(9 * CELL_S)
        assert twin.records == [(1, 100, 0, 1, 1, 10 + 3 + 1)]

    def test_idle_and_unknown_cells(self):
        twin = AccountingUnitBehav("acct", timebase=TB)
        twin.register(1, 100)
        twin.cell_arrival(0.0, AtmCell.idle())
        twin.cell_arrival(2 * CELL_S, AtmCell.with_payload(9, 999, [1]))
        counters = twin.counters()
        assert counters["cells_seen"] == 1  # idle never counted
        assert counters["unknown_cells"] == 1

    def test_registration_validation(self):
        twin = AccountingUnitBehav("acct", timebase=TB, table_size=1)
        twin.register(1, 100)
        with pytest.raises(ValueError):
            twin.register(1, 100)  # duplicate
        with pytest.raises(ValueError):
            twin.register(2, 200)  # table full
        with pytest.raises(ValueError):
            AccountingUnitBehav("acct", timebase=TB, bug="nonsense")

    def test_bug_hooks_mirror_the_rtl(self):
        swap = AccountingUnitBehav("acct", timebase=TB, bug="swap_clp")
        swap.register(1, 100, units_per_cell=2, units_per_cell_clp1=1)
        swap.cell_arrival(0.0, AtmCell.with_payload(1, 100, [1], clp=1))
        swap.tariff_tick(9 * CELL_S)
        assert swap.records == [(1, 100, 0, 1, 0, 2)]  # clp1 -> clp0

        off = AccountingUnitBehav("acct", timebase=TB,
                                  bug="charge_off_by_one")
        off.register(1, 100, units_per_cell=2)
        off.cell_arrival(0.0, AtmCell.with_payload(1, 100, [1]))
        off.tariff_tick(9 * CELL_S)
        assert off.records == [(1, 100, 0, 1, 0, 3)]

        lost = AccountingUnitBehav("acct", timebase=TB, bug="lost_tick")
        lost.register(1, 100)
        lost.cell_arrival(0.0, AtmCell.with_payload(1, 100, [1]))
        lost.tariff_tick(5 * CELL_S)   # odd tick: processed
        lost.tariff_tick(10 * CELL_S)  # even tick: dropped
        assert lost.interval == 1
        assert len(lost.records) == 1


class TestBehavioralEntity:
    def test_snapshot_and_modelled_clocks(self):
        twin = AtmPortModuleBehav("pm", timebase=TB)
        twin.install(1, 100, 2, 200)
        entity = BehavioralEntity(twin)
        entity.send_cell(0.0, AtmCell.with_payload(1, 100, [1]))
        entity.finish(10 * CELL_S)
        snapshot = entity.snapshot()
        assert snapshot["level"] == "behav"
        assert snapshot["cells_in"] == 1
        assert snapshot["output_cells"] == 1
        assert "sync" not in snapshot
        assert entity.modelled_clocks > 0
        assert snapshot["dut"]["cells_translated"] == 1

    def test_tick_without_tick_capable_twin_raises(self):
        entity = BehavioralEntity(AtmPortModuleBehav("pm", timebase=TB))
        with pytest.raises(ValueError, match="no tick signal"):
            entity.send_tariff_tick(0.0)

    def test_counter_keys_match_the_rtl(self):
        """The counters() contract: identical key sets at both levels."""
        from repro.hdl import Simulator
        from repro.rtl import (AccountingUnitRtl, AtmPortModuleRtl,
                               AtmSwitchRtl, UpcPolicerRtl)

        sim = Simulator()
        clk = sim.signal("clk", init="0")
        sim.add_clock(clk, period=10)
        pairs = [
            (AtmPortModuleRtl(sim, "pm", clk),
             AtmPortModuleBehav("pm", timebase=TB)),
            (AtmSwitchRtl(sim, "sw", clk, num_ports=2),
             AtmSwitchBehav("sw", timebase=TB, num_ports=2)),
            (UpcPolicerRtl(sim, "upc", clk),
             UpcPolicerBehav("upc", timebase=TB)),
            (AccountingUnitRtl(sim, "acct", clk),
             AccountingUnitBehav("acct", timebase=TB)),
        ]
        for rtl, twin in pairs:
            assert rtl.counters().keys() == twin.counters().keys()
