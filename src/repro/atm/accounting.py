"""Algorithmic reference model of the ATM accounting (charging) unit.

The paper's case study ("We have used CASTANET for the functional
verification of an ATM accounting unit", cf. their charging-algorithm
work [9]) verifies a hardware charging unit against the algorithm
model that was used for system-level evaluation.  This module is that
algorithm model; :mod:`repro.rtl.accounting_unit` is the RTL
implementation verified against it through CASTANET.

The charging scheme is volume-based with tariff intervals:

* every connection is registered with a *tariff* (integer charge units
  per cell, separately for CLP=0 and CLP=1 cells, plus a fixed fee per
  tariff interval);
* the unit counts cells per connection;
* at each tariff-interval boundary a :class:`ChargingRecord` is emitted
  and the interval counters reset.

All arithmetic is integer so the RTL implementation can match the
reference bit-exactly — the property CASTANET's stream comparator
checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

__all__ = ["Tariff", "ChargingRecord", "AccountingUnit", "AccountingError"]

Connection = Tuple[int, int]


class AccountingError(Exception):
    """Raised for unknown connections or invalid tariffs."""


@dataclass(frozen=True)
class Tariff:
    """Charging parameters of one connection.

    Attributes:
        units_per_cell: charge units for each CLP=0 cell.
        units_per_cell_clp1: charge units for each CLP=1 (tagged) cell —
            typically cheaper, as the network may discard them.
        fixed_units: flat fee charged per tariff interval while the
            connection exists.
    """

    units_per_cell: int = 1
    units_per_cell_clp1: int = 0
    fixed_units: int = 0

    def __post_init__(self) -> None:
        for label in ("units_per_cell", "units_per_cell_clp1",
                      "fixed_units"):
            value = getattr(self, label)
            if not isinstance(value, int) or value < 0:
                raise AccountingError(
                    f"tariff field {label} must be a non-negative int, "
                    f"got {value!r}")


@dataclass(frozen=True)
class ChargingRecord:
    """One closed tariff interval of one connection."""

    vpi: int
    vci: int
    interval: int
    cells_clp0: int
    cells_clp1: int
    charge_units: int


@dataclass
class _Account:
    tariff: Tariff
    cells_clp0: int = 0
    cells_clp1: int = 0
    total_cells: int = 0
    total_charge: int = 0


class AccountingUnit:
    """Reference (algorithmic) ATM accounting unit.

    Example:
        >>> unit = AccountingUnit()
        >>> unit.register(1, 100, Tariff(units_per_cell=2))
        >>> unit.cell_arrival(1, 100)
        >>> unit.close_interval()
        [ChargingRecord(vpi=1, vci=100, interval=0, cells_clp0=1, \
cells_clp1=0, charge_units=2)]
    """

    def __init__(self, drop_unknown: bool = False) -> None:
        #: When True, cells on unregistered connections are silently
        #: counted in :attr:`unknown_cells` (a policing deployment);
        #: when False they raise — the strict verification posture.
        self.drop_unknown = drop_unknown
        self._accounts: Dict[Connection, _Account] = {}
        self._interval = 0
        self.unknown_cells = 0
        self.records: List[ChargingRecord] = []

    # ------------------------------------------------------------------
    # Connection management (the control plane the GCU drives)
    # ------------------------------------------------------------------
    def register(self, vpi: int, vci: int, tariff: Tariff) -> None:
        """Open accounting for connection (vpi, vci)."""
        key = (vpi, vci)
        if key in self._accounts:
            raise AccountingError(f"connection {key} already registered")
        self._accounts[key] = _Account(tariff=tariff)

    def deregister(self, vpi: int, vci: int) -> ChargingRecord:
        """Close a connection, emitting a final (partial) record."""
        key = (vpi, vci)
        account = self._require(key)
        record = self._make_record(key, account)
        self.records.append(record)
        del self._accounts[key]
        return record

    def is_registered(self, vpi: int, vci: int) -> bool:
        """True while the connection has an open account."""
        return (vpi, vci) in self._accounts

    @property
    def connection_count(self) -> int:
        """Number of open accounts."""
        return len(self._accounts)

    @property
    def interval(self) -> int:
        """Index of the current (open) tariff interval."""
        return self._interval

    # ------------------------------------------------------------------
    # Fast path
    # ------------------------------------------------------------------
    def cell_arrival(self, vpi: int, vci: int, clp: int = 0) -> bool:
        """Count one cell; returns True when the cell was accounted.

        Raises:
            AccountingError: unknown connection with strict accounting.
        """
        key = (vpi, vci)
        account = self._accounts.get(key)
        if account is None:
            if self.drop_unknown:
                self.unknown_cells += 1
                return False
            raise AccountingError(f"cell on unknown connection {key}")
        if clp:
            account.cells_clp1 += 1
        else:
            account.cells_clp0 += 1
        account.total_cells += 1
        return True

    # ------------------------------------------------------------------
    # Tariff intervals
    # ------------------------------------------------------------------
    def close_interval(self) -> List[ChargingRecord]:
        """Close the current tariff interval for every connection.

        Emits one record per connection (including idle ones — the
        fixed fee still applies), resets interval counters and advances
        the interval index.
        """
        closed = []
        for key in sorted(self._accounts):
            account = self._accounts[key]
            record = self._make_record(key, account)
            account.cells_clp0 = 0
            account.cells_clp1 = 0
            closed.append(record)
        self.records.extend(closed)
        self._interval += 1
        return closed

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def interval_cells(self, vpi: int, vci: int) -> Tuple[int, int]:
        """(CLP0, CLP1) cell counts of the open interval."""
        account = self._require((vpi, vci))
        return account.cells_clp0, account.cells_clp1

    def total_charge(self, vpi: int, vci: int) -> int:
        """Charge units accumulated over all closed intervals."""
        return self._require((vpi, vci)).total_charge

    def grand_total(self) -> int:
        """Charge units across all closed records (incl. deregistered)."""
        return sum(record.charge_units for record in self.records)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _require(self, key: Connection) -> _Account:
        try:
            return self._accounts[key]
        except KeyError:
            raise AccountingError(
                f"connection {key} is not registered") from None

    def _make_record(self, key: Connection,
                     account: _Account) -> ChargingRecord:
        tariff = account.tariff
        charge = (tariff.fixed_units
                  + account.cells_clp0 * tariff.units_per_cell
                  + account.cells_clp1 * tariff.units_per_cell_clp1)
        account.total_charge += charge
        return ChargingRecord(vpi=key[0], vci=key[1],
                              interval=self._interval,
                              cells_clp0=account.cells_clp0,
                              cells_clp1=account.cells_clp1,
                              charge_units=charge)
