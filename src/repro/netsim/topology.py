"""Network domain: topology construction and simulation lifecycle.

The network domain "specifies the topology of a networking architecture
in terms of high-level devices (called nodes) such as switches and
traffic sources, and communication links between them".
:class:`Network` owns the kernel, the node set and the links, and runs
the simulation (starting every node's process models first).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .kernel import Kernel
from .links import PointToPointLink
from .node import Node, WiringError

__all__ = ["Network"]


class Network:
    """A complete network-domain model.

    Example:
        >>> net = Network("lab")
        >>> a = net.add_node("a")
        >>> b = net.add_node("b")
        >>> link = net.add_link(a, 0, b, 0, rate_bps=155.52e6)
        >>> net.kernel is a.kernel
        True
    """

    def __init__(self, name: str = "network",
                 kernel: Optional[Kernel] = None) -> None:
        self.name = name
        self.kernel = kernel if kernel is not None else Kernel()
        self.nodes: Dict[str, Node] = {}
        self.links: List[PointToPointLink] = []
        self._started = False

    def add_node(self, name: str) -> Node:
        """Create and register a node called *name*."""
        if name in self.nodes:
            raise WiringError(f"duplicate node name {name!r}")
        node = Node(name, self.kernel)
        self.nodes[name] = node
        return node

    def add_link(self, src: Node, src_port: int, dst: Node, dst_port: int,
                 rate_bps: Optional[float] = None,
                 delay: float = 0.0) -> PointToPointLink:
        """Create a simplex link from (*src*, *src_port*) to
        (*dst*, *dst_port*)."""
        link = PointToPointLink(self.kernel, src, src_port, dst, dst_port,
                                rate_bps=rate_bps, delay=delay)
        self.links.append(link)
        return link

    def add_duplex_link(self, a: Node, a_port: int, b: Node, b_port: int,
                        rate_bps: Optional[float] = None,
                        delay: float = 0.0) -> List[PointToPointLink]:
        """Create a pair of simplex links forming a duplex connection."""
        return [self.add_link(a, a_port, b, b_port, rate_bps, delay),
                self.add_link(b, b_port, a, a_port, rate_bps, delay)]

    def start(self) -> None:
        """Start every node exactly once (idempotent)."""
        if self._started:
            return
        self._started = True
        for node in self.nodes.values():
            node.start()

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> float:
        """Start (if needed) and run the simulation.

        Returns the simulated time at which execution stopped.
        """
        self.start()
        return self.kernel.run(until=until, max_events=max_events)
