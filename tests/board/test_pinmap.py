"""Tests for the Figure-5 configuration data set."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.board import (ConfigurationDataSet, CtrlPortMapping,
                         IoPortMapping, NUM_BYTE_LANES, PinMapError,
                         PinSegment, PortMapping)


def figure5_config():
    """The configuration Figure 5 of the paper depicts:

    * inport 1, width 8 -> byte lane 2, start bit 7, 8 bits;
    * an I/O port (inport 2 / outport 2 / ctrlport 3) on byte lane 6;
    * outport 1, width 4 -> byte lane 3, start bit 3, 4 bits;
    * ctrlport 3 with write-value 0.
    """
    config = ConfigurationDataSet()
    config.add_inport(PortMapping(1, 8, (PinSegment(2, 7, 8),)))
    config.add_inport(PortMapping(2, 6, (PinSegment(6, 5, 6),)))
    config.add_outport(PortMapping(2, 6, (PinSegment(6, 5, 6),)))
    config.add_outport(PortMapping(1, 4, (PinSegment(3, 3, 4),)))
    config.add_ctrlport(CtrlPortMapping(3, 1, (PinSegment(6, 7, 1),),
                                        write_value=0))
    config.add_io_port(IoPortMapping(2, 2, 3))
    return config


class TestPinSegment:
    def test_bit_positions_msb_first(self):
        seg = PinSegment(byte_lane=2, start_bit=7, num_bits=8)
        assert seg.bit_positions() == [23, 22, 21, 20, 19, 18, 17, 16]

    def test_partial_segment(self):
        seg = PinSegment(byte_lane=0, start_bit=5, num_bits=3)
        assert seg.bit_positions() == [5, 4, 3]

    def test_invalid_segments(self):
        with pytest.raises(PinMapError):
            PinSegment(16, 0, 1)      # lane out of range
        with pytest.raises(PinMapError):
            PinSegment(0, 8, 1)       # start bit out of range
        with pytest.raises(PinMapError):
            PinSegment(0, 2, 4)       # runs below bit 0
        with pytest.raises(PinMapError):
            PinSegment(0, 2, 0)       # zero bits


class TestPortMapping:
    def test_width_must_match_segments(self):
        with pytest.raises(PinMapError):
            PortMapping(1, 8, (PinSegment(0, 7, 4),))

    def test_multi_segment_port(self):
        mapping = PortMapping(1, 12, (PinSegment(0, 7, 8),
                                      PinSegment(1, 3, 4)))
        positions = mapping.bit_positions()
        assert len(positions) == 12
        assert positions[:8] == [7, 6, 5, 4, 3, 2, 1, 0]
        assert positions[8:] == [11, 10, 9, 8]


class TestConfigurationDataSet:
    def test_figure5_validates(self):
        figure5_config().validate()

    def test_pack_unpack_figure5(self):
        config = figure5_config()
        frame = config.pack_stimulus({1: 0xA5, 2: 0x2A}, {3: 0})
        assert frame[2] == 0xA5        # inport 1 on lane 2
        assert config.unpack_inports(frame)[1] == 0xA5
        assert config.unpack_inports(frame)[2] == 0x2A
        assert config.unpack_ctrlports(frame)[3] == 0

    def test_unpack_response(self):
        config = figure5_config()
        frame = [0] * NUM_BYTE_LANES
        frame[3] = 0x0F                # outport 1 = lane 3 bits 3..0
        values = config.unpack_response(frame)
        assert values[1] == 0xF

    def test_value_overflow_rejected(self):
        config = figure5_config()
        with pytest.raises(PinMapError):
            config.pack_stimulus({1: 256})

    def test_unknown_port_rejected(self):
        config = figure5_config()
        with pytest.raises(PinMapError):
            config.pack_stimulus({9: 0})

    def test_duplicate_port_numbers_rejected(self):
        config = ConfigurationDataSet()
        config.add_inport(PortMapping(1, 8, (PinSegment(0, 7, 8),)))
        with pytest.raises(PinMapError):
            config.add_inport(PortMapping(1, 8, (PinSegment(1, 7, 8),)))

    def test_overlapping_inports_rejected(self):
        config = ConfigurationDataSet()
        config.add_inport(PortMapping(1, 8, (PinSegment(0, 7, 8),)))
        config.add_inport(PortMapping(2, 4, (PinSegment(0, 3, 4),)))
        with pytest.raises(PinMapError):
            config.validate()

    def test_in_out_collision_without_io_port_rejected(self):
        config = ConfigurationDataSet()
        config.add_inport(PortMapping(1, 8, (PinSegment(0, 7, 8),)))
        config.add_outport(PortMapping(1, 8, (PinSegment(0, 7, 8),)))
        with pytest.raises(PinMapError):
            config.validate()

    def test_io_port_shares_pins_legally(self):
        config = ConfigurationDataSet()
        config.add_inport(PortMapping(1, 8, (PinSegment(0, 7, 8),)))
        config.add_outport(PortMapping(1, 8, (PinSegment(0, 7, 8),)))
        config.add_ctrlport(CtrlPortMapping(1, 1, (PinSegment(1, 0, 1),)))
        config.add_io_port(IoPortMapping(1, 1, 1))
        config.validate()

    def test_io_port_with_unknown_reference_rejected(self):
        config = ConfigurationDataSet()
        config.add_inport(PortMapping(1, 8, (PinSegment(0, 7, 8),)))
        with pytest.raises(PinMapError):
            config.add_io_port(IoPortMapping(1, 9, 9))

    def test_bad_frame_length_rejected(self):
        config = figure5_config()
        with pytest.raises(PinMapError):
            config.unpack_response([0] * 15)

    def test_dict_round_trip(self):
        config = figure5_config()
        rebuilt = ConfigurationDataSet.from_dict(config.to_dict())
        rebuilt.validate()
        frame = config.pack_stimulus({1: 0x5A, 2: 0x15}, {3: 0})
        assert rebuilt.pack_stimulus({1: 0x5A, 2: 0x15}, {3: 0}) == frame
        assert rebuilt.ctrlports[3].write_value == 0


# -- property: pack/unpack are mutually inverse -------------------------

_segments = st.builds(
    lambda lane, start, nbits: PinSegment(lane, start,
                                          min(nbits, start + 1)),
    st.integers(0, NUM_BYTE_LANES - 1), st.integers(0, 7),
    st.integers(1, 8))


@settings(max_examples=100, deadline=None)
@given(st.lists(_segments, min_size=1, max_size=6, unique=True),
       st.data())
def test_property_pack_unpack_inverse(segments, data):
    """For any non-overlapping mapping, unpack(pack(v)) == v."""
    used = set()
    ports = []
    for index, segment in enumerate(segments):
        positions = set(segment.bit_positions())
        if positions & used:
            continue
        used |= positions
        ports.append(PortMapping(index, segment.num_bits, (segment,)))
    config = ConfigurationDataSet()
    for port in ports:
        config.add_inport(port)
    config.validate()
    values = {port.port_number:
              data.draw(st.integers(0, (1 << port.width) - 1))
              for port in ports}
    frame = config.pack_stimulus(values)
    assert config.unpack_inports(frame) == values
