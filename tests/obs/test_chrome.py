"""Tests for the Chrome/Perfetto trace exporter (repro.obs.chrome)."""

import json

import pytest

from repro.obs import (ChromeTraceError, export_chrome_trace,
                       flow_tracks, load_trace_jsonl,
                       validate_chrome_trace)
from repro.obs.chrome import HDL_TID, NETSIM_TID, NULL_TID, SYNC_TID

#: one complete two-hop journey plus sync/null records
JOURNEY = [
    {"ev": "span", "cell": 0, "hop": "source", "t": 0.0, "src": "src0"},
    {"ev": "post", "t": 0.0, "hdl_s": 0.0, "type": "cell", "cell": 0},
    {"ev": "span", "cell": 0, "hop": "post", "t": 0.0, "hdl_s": 0.0},
    {"ev": "window", "t_cur": 2e-6, "hdl_s": 0.0},
    {"ev": "null", "t": 1e-6, "stale": False, "coalesced": False},
    {"ev": "release", "t": 0.0, "hdl_s": 1e-6, "type": "cell",
     "cell": 0},
    {"ev": "span", "cell": 0, "hop": "release", "t": 0.0,
     "hdl_s": 1e-6},
    {"ev": "span", "cell": 0, "hop": "sink", "t": 4e-6, "dst": "sink0"},
    {"ev": "span", "cell": 0, "hop": "ingress", "hdl_s": 5e-6},
    {"ev": "drain", "t": 6e-6},
    {"ev": "finish", "hdl_s": 6e-6, "residual": 0},
]


def test_export_validates_and_summarises(tmp_path):
    out = tmp_path / "chrome.trace.json"
    payload = export_chrome_trace(JOURNEY, path=out)
    summary = validate_chrome_trace(payload)
    assert summary["flows"] == 1
    assert summary["phases"]["B"] == summary["phases"]["E"] == 1
    assert summary["phases"]["X"] == 5  # one slice per span
    assert (1, SYNC_TID) in summary["tracks"]
    # the file round-trips
    reloaded = json.loads(out.read_text())
    assert validate_chrome_trace(reloaded) == summary


def test_flow_connects_both_time_domains():
    payload = export_chrome_trace(JOURNEY)
    tracks = flow_tracks(payload)
    assert tracks[0] == {NETSIM_TID, HDL_TID}


def test_single_hop_journey_emits_no_flow():
    payload = export_chrome_trace(
        [{"ev": "span", "cell": 7, "hop": "source", "t": 0.0}])
    assert validate_chrome_trace(payload)["flows"] == 0
    assert flow_tracks(payload) == {}


def test_null_variants_are_named():
    payload = export_chrome_trace([
        {"ev": "null", "t": 0.0, "stale": False, "coalesced": False},
        {"ev": "null", "t": 1e-6, "stale": True, "coalesced": False},
        {"ev": "null", "t": 2e-6, "stale": False, "coalesced": True},
    ])
    names = [e["name"] for e in payload["traceEvents"]
             if e["tid"] == NULL_TID and e["ph"] == "i"]
    assert names == ["null", "null (stale)", "null (coalesced)"]


def test_tick_pulse_scaled_by_time_unit():
    payload = export_chrome_trace(
        [{"ev": "tick_pulse", "hdl_tick": 530}], time_unit=1e-9)
    event = [e for e in payload["traceEvents"]
             if e.get("name") == "tick_pulse"][0]
    assert event["ts"] == pytest.approx(0.53)  # 530 ns in µs


def test_monotone_clamping_absorbs_backward_stamps():
    payload = export_chrome_trace([
        {"ev": "span", "cell": 0, "hop": "source", "t": 5e-6},
        {"ev": "span", "cell": 0, "hop": "post", "t": 4e-6},  # earlier
    ])
    validate_chrome_trace(payload)  # would raise on a backwards step


def test_unknown_kinds_are_skipped():
    payload = export_chrome_trace([{"ev": "mystery", "t": 0.0},
                                   {"ev": "drain", "t": 0.0}])
    names = [e["name"] for e in payload["traceEvents"]
             if e["ph"] != "M"]
    assert names == ["drain"]


def test_snapshot_folds_into_other_data():
    payload = export_chrome_trace(
        JOURNEY, snapshot={"workload": {"cells": 4},
                           "provenance": {"cells_seen": 4},
                           "entities": ["dropped"]})
    other = payload["otherData"]
    assert other["workload"] == {"cells": 4}
    assert other["provenance"] == {"cells_seen": 4}
    assert "entities" not in other
    assert other["record_count"] == len(JOURNEY)


def test_validator_rejects_malformed_payloads():
    with pytest.raises(ChromeTraceError):
        validate_chrome_trace({"traceEvents": []})
    with pytest.raises(ChromeTraceError):
        validate_chrome_trace({"traceEvents": [{"ph": "i", "pid": 1}]})
    with pytest.raises(ChromeTraceError):
        validate_chrome_trace({"traceEvents": [
            {"ph": "i", "name": "a", "pid": 1, "tid": 1, "ts": 2.0},
            {"ph": "i", "name": "b", "pid": 1, "tid": 1, "ts": 1.0},
        ]})
    with pytest.raises(ChromeTraceError):  # E without B
        validate_chrome_trace({"traceEvents": [
            {"ph": "E", "name": "w", "pid": 1, "tid": 3, "ts": 0.0}]})
    with pytest.raises(ChromeTraceError):  # unclosed B
        validate_chrome_trace({"traceEvents": [
            {"ph": "B", "name": "w", "pid": 1, "tid": 3, "ts": 0.0}]})
    with pytest.raises(ChromeTraceError):  # flow without terminator
        validate_chrome_trace({"traceEvents": [
            {"ph": "s", "name": "c", "pid": 1, "tid": 1, "ts": 0.0,
             "id": 1}]})


def test_load_trace_jsonl_round_trip(tmp_path):
    path = tmp_path / "t.jsonl"
    path.write_text('{"ev": "drain", "t": 0.0}\n\n'
                    '{"ev": "finish", "hdl_s": 1e-06}\n')
    records = load_trace_jsonl(path)
    assert [r["ev"] for r in records] == ["drain", "finish"]
    path.write_text("not json\n")
    with pytest.raises(ChromeTraceError):
        load_trace_jsonl(path)
