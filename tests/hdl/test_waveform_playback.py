"""Kernel unit tests for bulk waveform playback.

:meth:`Simulator.schedule_waveform` is the primitive under the
CellSender bulk path: a precompiled ``(tick_offset, signal, value)``
list applied without per-transition process resumption.  These tests
pin its contract — validation, timing, driver resolution, completion
callbacks, stream ordering and the bookkeeping counters.
"""

import pytest

from repro.hdl import SimulationError, Simulator


def make_sim():
    sim = Simulator()
    data = sim.signal("data", width=8, init=0)
    flag = sim.signal("flag", init="0")
    return sim, data, flag


class TestScheduleWaveform:
    def test_transitions_apply_at_absolute_times(self):
        sim, data, flag = make_sim()
        sim.schedule_waveform([(0, data, 1), (10, data, 2),
                               (10, flag, "1"), (25, data, 3)])
        sim.run(until=5)
        assert data.as_int() == 1
        assert flag.value == "0"
        sim.run(until=12)
        assert data.as_int() == 2
        assert flag.value == "1"
        sim.run(until=30)
        assert data.as_int() == 3

    def test_start_offsets_shift_the_base(self):
        sim, data, _ = make_sim()
        sim.run(until=7)
        sim.schedule_waveform([(0, data, 5), (3, data, 6)], start=20)
        sim.run(until=19)
        assert data.as_int() == 0
        sim.run(until=21)
        assert data.as_int() == 5
        sim.run(until=24)
        assert data.as_int() == 6

    def test_counters_and_stats_snapshot(self):
        sim, data, flag = make_sim()
        sim.schedule_waveform([(0, data, 1), (5, data, 2)])
        sim.schedule_waveform([(2, flag, "1")])
        assert sim.waveforms_scheduled == 2
        sim.run(until=10)
        assert sim.waveform_events == 3
        stats = sim.stats_snapshot()
        assert stats["waveforms_scheduled"] == 2
        assert stats["waveform_events"] == 3

    def test_empty_call_returns_none(self):
        sim, _, _ = make_sim()
        assert sim.schedule_waveform([]) is None
        assert sim.waveforms_scheduled == 0

    def test_pending_events_include_waveforms(self):
        sim, data, _ = make_sim()
        sim.initialize()
        assert sim.next_event_time() is None
        sim.schedule_waveform([(4, data, 9)])
        assert sim.next_event_time() == 4
        assert sim.pending_event_count == 1
        sim.run(until=10)
        assert sim.pending_event_count == 0

    def test_callbacks_fire_at_their_offsets(self):
        sim, data, _ = make_sim()
        fired = []
        sim.schedule_waveform(
            [(0, data, 1), (10, data, 2)],
            callbacks=((0, lambda: fired.append(sim.now)),
                       (10, lambda: fired.append(sim.now))))
        sim.run(until=5)
        assert fired == [0]
        sim.run(until=15)
        assert fired == [0, 10]

    def test_callback_only_stream_is_valid(self):
        sim, _, _ = make_sim()
        fired = []
        sim.schedule_waveform([], start=6,
                              callbacks=((2, lambda: fired.append(1)),))
        sim.run(until=10)
        assert fired == [1]

    def test_streams_apply_in_schedule_order(self):
        # Coincident transitions from the same driver: the
        # later-scheduled stream lands last and wins the resolution.
        sim, data, _ = make_sim()
        driver = object()
        sim.schedule_waveform([(5, data, 1)], driver=driver)
        sim.schedule_waveform([(5, data, 2)], driver=driver)
        sim.run(until=10)
        assert data.as_int() == 2

    def test_applies_after_heap_events_settle(self):
        # A waveform due at a clock-edge time lands where a generator
        # woken by that edge would drive: after the edge's deltas.
        sim, data, _ = make_sim()
        clk = sim.signal("clk", init="0")
        sim.add_clock(clk, period=10)
        sampled = []

        def watch(s):
            sampled.append((s.now, data.as_int()))
        sim.add_process("watch", watch, sensitivity=(clk,), edge="rise")
        sim.schedule_waveform([(5, data, 7)])
        sim.run(until=12)
        # initialisation run at t=0, then the rising edge at t=5 —
        # which still saw the pre-waveform value
        assert sampled == [(0, 0), (5, 0)]
        assert data.as_int() == 7

    def test_rejects_start_in_the_past(self):
        sim, data, _ = make_sim()
        sim.run(until=10)
        with pytest.raises(SimulationError):
            sim.schedule_waveform([(0, data, 1)], start=5)

    def test_rejects_negative_and_non_int_offsets(self):
        sim, data, _ = make_sim()
        with pytest.raises(SimulationError):
            sim.schedule_waveform([(-1, data, 1)])
        with pytest.raises(SimulationError):
            sim.schedule_waveform([(1.5, data, 1)])

    def test_rejects_decreasing_offsets(self):
        sim, data, _ = make_sim()
        with pytest.raises(SimulationError):
            sim.schedule_waveform([(5, data, 1), (3, data, 2)])

    def test_rejects_decreasing_callback_offsets(self):
        sim, data, _ = make_sim()
        with pytest.raises(SimulationError):
            sim.schedule_waveform(
                [(0, data, 1)],
                callbacks=((5, lambda: None), (3, lambda: None)))

    def test_values_normalised_unless_flagged(self):
        sim, data, _ = make_sim()
        sim.schedule_waveform([(0, data, 255)])
        sim.run(until=2)
        assert data.as_int() == 255
        assert data.value == data.normalize(255)


class TestRisingEdgeSensitivity:
    def test_rise_process_skips_falling_edges(self):
        sim = Simulator()
        clk = sim.signal("clk", init="0")
        sim.add_clock(clk, period=10)
        rises, edges = [], []
        sim.add_process("rise", lambda s: rises.append(s.now),
                        sensitivity=(clk,), edge="rise")
        sim.add_process("any", lambda s: edges.append(s.now),
                        sensitivity=(clk,))
        sim.run(until=40)
        # initialisation run at t=0, then rising edges only
        assert rises == [0, 5, 15, 25, 35]
        assert edges == [0, 5, 10, 15, 20, 25, 30, 35, 40]

    def test_invalid_edge_rejected(self):
        from repro.hdl import ProcessError
        sim = Simulator()
        clk = sim.signal("clk", init="0")
        with pytest.raises(ProcessError):
            sim.add_process("bad", lambda s: None,
                            sensitivity=(clk,), edge="fall")
