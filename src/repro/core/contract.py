"""The common DUT port contract shared by every abstraction level.

The paper's central reuse claim is that *one* testbench drives the
design at every abstraction level.  :class:`DutContract` is that claim
made structural: it extracts the network-simulator-side endpoint API
of :class:`~repro.core.cosim.CosimulationEntity` (the RTL coupling)
into an abstract interface that behavioural twins
(:mod:`repro.behav`) implement as well.  Everything above the contract
— taps, traffic sources, comparators, the environment's drain and
metrics plumbing — is level-agnostic: it posts whole cells stamped
with netsim time and collects whole cells back, never caring whether
an octet-serial HDL kernel or a zero-delta cell-level model produced
them.

Levels:

* ``"rtl"`` — :class:`~repro.core.cosim.CosimulationEntity`: the DUT
  is RTL in the HDL simulator, coupled through the conservative
  synchronisation protocol (cell ↔ octet-serial signal conditioning).
* ``"behav"`` — :class:`~repro.behav.entity.BehavioralEntity`: the DUT
  is a cell-granularity behavioural twin evaluated eagerly in netsim
  time; no HDL kernel and no synchroniser exist for it.

:data:`DUT_LEVELS` names the concrete levels; ``"auto"`` is accepted
wherever a level is *selected* (environment default, sweep axis) and
means "defer to the per-instance/environment default".
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, List, Optional, Tuple

from ..atm.cell import AtmCell

__all__ = ["DutContract", "DUT_LEVELS", "resolve_level"]

#: the concrete abstraction levels a DUT can be coupled at
DUT_LEVELS = ("rtl", "behav")


def resolve_level(level: Optional[str], default: str = "auto",
                  fallback: str = "rtl") -> str:
    """Resolve a per-DUT *level* against a *default* policy.

    An explicit ``"rtl"``/``"behav"`` wins; ``None`` defers to
    *default* (typically the environment's ``dut_level``, itself
    seeded from the ``REPRO_DUT_LEVEL`` environment variable); and
    ``"auto"`` — at either position — resolves to *fallback* so that
    mixed-level scenarios can pin individual instances while the rest
    of the topology follows the environment policy.
    """
    chosen = level if level is not None else default
    if chosen == "auto":
        chosen = fallback
    if chosen not in DUT_LEVELS:
        raise ValueError(
            f"unknown DUT level {chosen!r}; known: "
            f"{', '.join(DUT_LEVELS)} (or 'auto')")
    return chosen


class DutContract(abc.ABC):
    """Abstract netsim-side endpoint of one coupled DUT.

    Concrete implementations set :attr:`level` and provide the message
    API below.  Shared attributes (established by implementations):

    * ``output_cells`` — ``List[(seconds, AtmCell)]`` of response
      cells, stamped with the time the cell left the DUT (HDL time for
      RTL, modelled time for behavioural).
    * ``on_output`` — optional ``(seconds, AtmCell)`` callback invoked
      for every response cell.
    * ``cells_in`` / ``ticks_in`` — stimulus counters.
    """

    #: abstraction level of this endpoint ("rtl" | "behav")
    level: str = "rtl"
    output_cells: List[Tuple[float, AtmCell]]
    on_output: Optional[Callable[[float, AtmCell], None]]
    cells_in: int
    ticks_in: int

    @abc.abstractmethod
    def send_cell(self, time: float, cell) -> None:
        """Post one cell (an :class:`~repro.atm.cell.AtmCell` or a
        netsim packet) stamped with netsim *time*."""

    @abc.abstractmethod
    def send_tariff_tick(self, time: float) -> None:
        """Post a tariff-interval tick stamped with netsim *time*."""

    @abc.abstractmethod
    def advance_time(self, time: float) -> None:
        """Null message: the network simulator reached *time*."""

    @abc.abstractmethod
    def finish(self, time: Optional[float] = None) -> None:
        """Release pending stimulus and settle the DUT."""

    @abc.abstractmethod
    def snapshot(self) -> Dict[str, object]:
        """One machine-readable metrics snapshot of this endpoint.

        Always contains ``level``, ``cells_in``, ``ticks_in`` and
        ``output_cells``; RTL endpoints add the sender/synchroniser
        statistics, behavioural endpoints their modelled-time
        counters.  :meth:`CoVerificationEnvironment.metrics
        <repro.core.environment.CoVerificationEnvironment.metrics>`
        aggregates these per-entity snapshots.
        """
