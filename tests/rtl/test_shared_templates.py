"""The process-wide shared compiled-cell-template cache."""

import pytest

from repro.atm import AtmCell
from repro.core import TimeBase
from repro.hdl import CycleEngine, Simulator
from repro.rtl import CellReceiver, CellSender
from repro.rtl.cell_stream import (clear_shared_templates,
                                   enable_shared_templates,
                                   shared_template_stats)

TIMEBASE = TimeBase.for_line_rate()
PERIOD = TIMEBASE.clock_period_ticks


@pytest.fixture()
def shared_cache():
    """Enable the shared cache for one test, restore the default
    (off, empty) afterwards — the cache is process-global state."""
    clear_shared_templates()
    enable_shared_templates()
    yield
    enable_shared_templates(False)
    clear_shared_templates()


def make_octets(vci, payload):
    """A 53-octet list (the CellSender wire unit)."""
    return list(AtmCell.with_payload(1, vci, payload).to_octets())


def _run_sender(cells):
    sim = Simulator(time_unit=TIMEBASE.tick_seconds)
    clk = sim.signal("clk", init="0")
    CycleEngine(sim, clk, period=PERIOD)
    sender = CellSender(sim, "tx", clk, playback="bulk")
    received = []
    CellReceiver(sim, "rx", clk, sender.port,
                 on_cell=received.append)
    for cell in cells:
        sender.send(cell)
    sim.run(until=(len(cells) + 2) * 53 * PERIOD + 200)
    return sender, received


def test_disabled_by_default_publishes_nothing():
    clear_shared_templates()
    cells = [make_octets(100, [7])] * 2
    _run_sender(cells)
    stats = shared_template_stats()
    assert stats["enabled"] is False
    assert stats["entries"] == 0
    assert stats["hits"] == stats["misses"] == 0


def test_second_sender_adopts_published_templates(shared_cache):
    cells = [make_octets(100, [i]) for i in range(3)]
    first, got_first = _run_sender(cells)
    after_first = shared_template_stats()
    assert after_first["entries"] > 0
    assert after_first["hits"] == 0  # nothing to adopt yet
    assert first.template_misses > 0

    # a fresh simulator + sender (a new job in the same process)
    second, got_second = _run_sender(cells)
    after_second = shared_template_stats()
    assert after_second["hits"] > 0
    assert after_second["entries"] == after_first["entries"]
    # the adopted templates drive identical cells on the wire
    assert got_second == got_first == cells


def test_adoption_is_waveform_identical(shared_cache):
    """A sender driving adopted templates must produce the same cell
    stream as one that compiled them itself."""
    cells = [make_octets(200, [i, i + 1]) for i in range(4)]
    _, reference = _run_sender(cells)  # compiles + publishes
    _, adopted = _run_sender(cells)    # adopts everything
    assert adopted == reference == cells


def test_clear_resets_entries_and_counters(shared_cache):
    _run_sender([make_octets(100, [1])])
    assert shared_template_stats()["entries"] > 0
    clear_shared_templates()
    stats = shared_template_stats()
    assert stats["entries"] == 0
    assert stats["hits"] == stats["misses"] == 0
    assert stats["enabled"] is True  # clearing is not disabling
