"""Integration: the board path registered inside the environment.

Figure 1's right-hand branch driven from the same tap machinery: cells
observed at the network level are queued to a board-hosted device, and
``env.finish()`` flushes the remaining partial test cycle.
"""


from repro.atm import AccountingUnit, AtmCell, Tariff
from repro.board import HardwareTestBoard, RtlPinDevice
from repro.core import (BoardInterfaceModel, CoVerificationEnvironment,
                        cell_stream_pin_config)
from repro.hdl import Simulator
from repro.rtl import AccountingUnitRtl
from repro.traffic import ConstantBitRate, TrafficSource

CELL_PERIOD = 4e-6


def build_env_with_board(cells=5):
    env = CoVerificationEnvironment()

    # the board world lives in its own HDL simulator (a chip does not
    # share a kernel with the RTL co-simulation)
    chip_sim = Simulator()
    chip_clk = chip_sim.signal("clk", init="0")
    chip_sim.add_clock(chip_clk, period=10)
    chip = AccountingUnitRtl(chip_sim, "chip", chip_clk)
    chip.register(1, 100, units_per_cell=2)
    config = cell_stream_pin_config()
    device = RtlPinDevice(
        chip_sim, chip_clk, config,
        input_signals={1: chip.rx.atmdata, 2: chip.rx.cellsync,
                       3: chip.rx.valid, 4: chip.tariff_tick},
        output_signals={1: chip.rec_valid, 2: chip.rec_word})
    board = HardwareTestBoard(config, memory_depth=1 << 14)
    interface = BoardInterfaceModel(board, device, cycle_clocks=2048)
    env.add_board_interface(interface)

    host = env.network.add_node("host")
    source = TrafficSource(
        "src", ConstantBitRate(period=CELL_PERIOD),
        packet_factory=lambda i: AtmCell.with_payload(
            1, 100, [i % 256]).to_packet(),
        count=cells)
    from repro.core import TapModule
    tap = TapModule("tap", forward=False)
    tap.add_hook(lambda t, pkt: interface.queue_cell(
        AtmCell.from_packet(pkt)))
    host.add_module(source)
    host.add_module(tap)
    host.connect(source, 0, tap, 0)
    return env, chip, board, interface


def test_finish_flushes_the_partial_test_cycle():
    env, chip, board, interface = build_env_with_board(cells=5)
    env.run()
    assert chip.cells_seen == 0  # 5 cells = 265 clocks < one cycle
    env.finish()
    assert chip.cells_seen == 5
    assert board.cycles_run >= 1


def test_board_records_match_reference_through_env():
    env, chip, board, interface = build_env_with_board(cells=6)
    reference = AccountingUnit(drop_unknown=True)
    reference.register(1, 100, Tariff(units_per_cell=2))
    env.run()
    for _ in range(6):
        reference.cell_arrival(1, 100)
    interface.queue_tariff_tick()
    env.finish()
    expected = [(r.vpi, r.vci, r.interval, r.cells_clp0, r.cells_clp1,
                 r.charge_units) for r in reference.close_interval()]
    assert interface.records() == expected
