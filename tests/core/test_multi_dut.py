"""Integration: several DUTs coupled into one environment.

The paper: "the HW functionality itself is distributed over a number
of hardware devices" — one network-level test bench must drive several
coupled devices at once.
"""


from repro.atm import AccountingUnit, AtmCell, Tariff
from repro.core import CoVerificationEnvironment
from repro.rtl import AccountingUnitRtl, AtmPortModuleRtl
from repro.traffic import ConstantBitRate, TrafficSource

CELL_PERIOD = 4e-6


def build_two_dut_env(cells=8):
    """One tap feeds both a port module and an accounting unit."""
    env = CoVerificationEnvironment()
    translator = AtmPortModuleRtl(env.hdl, "pm", env.clk)
    translator.install(1, 100, 2, 200)
    accountant = AccountingUnitRtl(env.hdl, "acct", env.clk)
    accountant.register(1, 100, units_per_cell=1)

    entity_pm = env.add_dut(rx_port=translator.rx,
                            tx_port=translator.tx)
    entity_acct = env.add_dut(rx_port=accountant.rx,
                              tick_signal=accountant.tariff_tick)

    host = env.network.add_node("host")
    source = TrafficSource(
        "src", ConstantBitRate(period=CELL_PERIOD),
        packet_factory=lambda i: AtmCell.with_payload(
            1, 100, [i % 256]).to_packet(),
        count=cells)
    tap = env.make_cell_tap("tap", entity_pm, entity_acct,
                            forward=False)
    host.add_module(source)
    host.add_module(tap)
    host.connect(source, 0, tap, 0)
    return env, translator, accountant, entity_pm, entity_acct


def test_both_duts_receive_every_cell():
    env, translator, accountant, e_pm, e_acct = build_two_dut_env(8)
    env.run()
    env.finish()
    assert e_pm.cells_in == 8
    assert e_acct.cells_in == 8
    assert translator.cells_translated == 8
    assert accountant.cells_seen == 8


def test_both_duts_agree_with_their_references():
    env, translator, accountant, e_pm, e_acct = build_two_dut_env(6)
    reference = AccountingUnit(drop_unknown=True)
    reference.register(1, 100, Tariff(units_per_cell=1))
    translated = []
    e_pm.on_output = lambda t, c: translated.append((c.vpi, c.vci))
    env.run()
    for _ in range(6):
        reference.cell_arrival(1, 100)
    env.finish()
    assert translated == [(2, 200)] * 6
    assert accountant.interval_cells(1, 100) \
        == reference.interval_cells(1, 100)


def test_each_entity_has_independent_sync_state():
    env, translator, accountant, e_pm, e_acct = build_two_dut_env(4)
    env.run()
    env.finish()
    assert e_pm.sync is not e_acct.sync
    assert e_pm.sync.stats.messages_posted == 4
    assert e_acct.sync.stats.messages_posted == 4
    # both obey the lag invariant against the same netsim clock
    horizon = env.network.kernel.now
    for entity in (e_pm, e_acct):
        assert entity.sync.stats.max_lag_seconds >= 0.0
