"""Usage parameter control: GCRA and leaky-bucket policing.

ATM traffic management (the paper: "the largest part of ATM traffic
management ... in dedicated hardware") polices each connection at the
UNI with the Generic Cell Rate Algorithm, ITU-T I.371.  Two
mathematically equivalent formulations are implemented — the virtual
scheduling algorithm and the continuous-state leaky bucket — and a
property test (tests/atm) checks they accept/reject identically, which
is the textbook equivalence result.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

__all__ = ["VirtualScheduling", "LeakyBucket", "police_stream"]


class VirtualScheduling(object):
    """GCRA(T, tau) — virtual scheduling formulation.

    Args:
        increment: T, the nominal inter-cell interval (1/PCR).
        limit: tau, the cell-delay-variation tolerance.
    """

    def __init__(self, increment: float, limit: float) -> None:
        if increment <= 0:
            raise ValueError(f"non-positive GCRA increment {increment}")
        if limit < 0:
            raise ValueError(f"negative GCRA limit {limit}")
        self.increment = increment
        self.limit = limit
        self._tat = 0.0  # theoretical arrival time
        self.conforming = 0
        self.non_conforming = 0

    def arrival(self, time: float) -> bool:
        """Process a cell arrival; returns True when conforming."""
        if time > self._tat:
            self._tat = time
        if self._tat - time > self.limit:
            self.non_conforming += 1
            return False
        self._tat += self.increment
        self.conforming += 1
        return True

    def reset(self) -> None:
        """Forget all state (new connection)."""
        self._tat = 0.0
        self.conforming = 0
        self.non_conforming = 0


class LeakyBucket(object):
    """GCRA(T, tau) — continuous-state leaky bucket formulation.

    The bucket drains at one unit per unit time, each conforming cell
    pours in ``increment``, and a cell conforms iff the bucket content
    just before pouring is <= ``limit``.
    """

    def __init__(self, increment: float, limit: float) -> None:
        if increment <= 0:
            raise ValueError(f"non-positive bucket increment {increment}")
        if limit < 0:
            raise ValueError(f"negative bucket limit {limit}")
        self.increment = increment
        self.limit = limit
        self._content = 0.0
        self._last_time = 0.0
        self.conforming = 0
        self.non_conforming = 0

    def arrival(self, time: float) -> bool:
        """Process a cell arrival; returns True when conforming."""
        if time < self._last_time:
            raise ValueError(
                f"cell arrivals must be time-ordered: {time} < "
                f"{self._last_time}")
        drained = max(0.0, self._content - (time - self._last_time))
        self._last_time = time
        if drained > self.limit:
            # Non-conforming cells do not add to the bucket.
            self._content = drained
            self.non_conforming += 1
            return False
        self._content = drained + self.increment
        self.conforming += 1
        return True

    def reset(self) -> None:
        """Forget all state (new connection)."""
        self._content = 0.0
        self._last_time = 0.0
        self.conforming = 0
        self.non_conforming = 0


def police_stream(arrival_times: Sequence[float], increment: float,
                  limit: float) -> Tuple[List[bool], float]:
    """Police a whole arrival stream with GCRA(T=increment, tau=limit).

    Returns:
        (verdicts, conforming_fraction) — one boolean per cell.
    """
    gcra = VirtualScheduling(increment, limit)
    verdicts = [gcra.arrival(t) for t in arrival_times]
    fraction = (sum(verdicts) / len(verdicts)) if verdicts else 1.0
    return verdicts, fraction
