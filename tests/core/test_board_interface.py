"""Tests for the CASTANET ↔ test-board interface model (§3.3).

Functional chip verification: the RTL accounting unit is mounted on
the (modelled) hardware test board and driven with the same cells the
reference model sees; records read back over the board must match.
"""

import pytest

from repro.atm import AccountingUnit, AtmCell, Tariff
from repro.board import HardwareTestBoard, RtlPinDevice
from repro.core import (BoardInterfaceModel, StreamComparator,
                        cell_stream_pin_config)
from repro.hdl import Simulator
from repro.rtl import AccountingUnitRtl


def make_board_setup(bug=None, cycle_clocks=512, clock_gating=1,
                     memory_depth=4096):
    """The RTL accounting unit behind the board's pins."""
    sim = Simulator()
    clk = sim.signal("clk", init="0")
    sim.add_clock(clk, period=10)
    dut = AccountingUnitRtl(sim, "acct", clk, bug=bug)
    config = cell_stream_pin_config()
    device = RtlPinDevice(
        sim, clk, config,
        input_signals={1: dut.rx.atmdata, 2: dut.rx.cellsync,
                       3: dut.rx.valid, 4: dut.tariff_tick},
        output_signals={1: dut.rec_valid, 2: dut.rec_word})
    board = HardwareTestBoard(config, memory_depth=memory_depth)
    interface = BoardInterfaceModel(board, device,
                                    cycle_clocks=cycle_clocks,
                                    clock_gating=clock_gating)
    return dut, board, interface


def test_pin_config_is_valid():
    cell_stream_pin_config().validate()


def test_cells_reach_dut_through_the_board():
    dut, board, interface = make_board_setup()
    dut.register(1, 100)
    for i in range(3):
        interface.queue_cell(AtmCell.with_payload(1, 100, [i]))
    interface.flush()
    assert dut.cells_seen == 3


def test_records_read_back_match_reference():
    dut, board, interface = make_board_setup()
    reference = AccountingUnit(drop_unknown=True)
    dut.register(1, 100, units_per_cell=2)
    reference.register(1, 100, Tariff(units_per_cell=2))
    for i in range(5):
        interface.queue_cell(AtmCell.with_payload(1, 100, [i]))
        reference.cell_arrival(1, 100)
    interface.queue_tariff_tick()
    interface.flush()
    expected = [(r.vpi, r.vci, r.interval, r.cells_clp0, r.cells_clp1,
                 r.charge_units) for r in reference.close_interval()]
    assert interface.records() == expected


def test_buggy_chip_detected_through_the_board():
    dut, board, interface = make_board_setup(bug="charge_off_by_one")
    reference = AccountingUnit(drop_unknown=True)
    dut.register(1, 100, units_per_cell=2)
    reference.register(1, 100, Tariff(units_per_cell=2))
    for i in range(4):
        interface.queue_cell(AtmCell.with_payload(1, 100, [i]))
        reference.cell_arrival(1, 100)
    interface.queue_tariff_tick()
    interface.flush()
    expected = [(r.vpi, r.vci, r.interval, r.cells_clp0, r.cells_clp1,
                 r.charge_units) for r in reference.close_interval()]
    comparator = StreamComparator("board-chip")
    comparator.extend_reference(expected)
    comparator.extend_observed(interface.records())
    assert not comparator.compare().passed


def test_stimuli_split_across_multiple_test_cycles():
    dut, board, interface = make_board_setup(cycle_clocks=64)
    dut.register(1, 100)
    for i in range(4):  # 4 cells = 212 clocks > 3 cycles of 64
        interface.queue_cell(AtmCell.with_payload(1, 100, [i]))
    interface.flush()
    assert board.cycles_run >= 4
    assert dut.cells_seen == 4


def test_clock_gating_stretches_the_stimulus():
    dut, board, interface = make_board_setup(clock_gating=3,
                                             cycle_clocks=512,
                                             memory_depth=8192)
    dut.register(1, 100)
    interface.queue_cell(AtmCell.with_payload(1, 100, [7]))
    interface.flush()
    assert dut.cells_seen == 1  # gated stream still parses correctly


def test_cycle_stats_collected():
    dut, board, interface = make_board_setup(cycle_clocks=128)
    dut.register(1, 100)
    interface.queue_cell(AtmCell.with_payload(1, 100, []))
    interface.flush()
    assert interface.cycle_stats
    assert interface.total_wall_time() > 0
    assert 0 < interface.effective_clock_hz() < board.clock_hz


def test_invalid_interface_configs():
    dut, board, _ = make_board_setup()
    with pytest.raises(ValueError):
        BoardInterfaceModel(board, None, cycle_clocks=0)
    with pytest.raises(ValueError):
        BoardInterfaceModel(board, None,
                            cycle_clocks=board.memory_depth + 1)
    with pytest.raises(ValueError):
        BoardInterfaceModel(board, None, cycle_clocks=16, clock_gating=0)


def test_stats_snapshot_reports_metavalue_reads():
    dut, board, interface = make_board_setup()
    dut.register(1, 100)
    interface.queue_cell(AtmCell.with_payload(1, 100, [7]))
    interface.flush()
    stats = interface.stats_snapshot()
    # The RTL accounting unit drives its outputs from reset, so a
    # healthy run reports zero masked reads — the key must exist so a
    # regression (an undriven output) becomes visible in snapshots.
    assert stats["metavalue_reads"] == 0
