"""Tests for the hardware test board: memories, cycles, SCSI, devices."""

import pytest

from repro.board import (BoardError, ConfigurationDataSet, HardwareTestBoard,
                         LoopbackDevice, MAX_CYCLE_CLOCKS, NUM_BYTE_LANES,
                         PinSegment, PortMapping, RtlPinDevice, ScsiBus)
from repro.hdl import Simulator
from repro.rtl import Counter


def loopback_config():
    """Inport 0 on lane 0, outport 0 on lane 1 (loopback shifts lanes?
    no — the loopback device echoes the full frame, so mapping the
    outport onto the same lane as the inport reads the echo)."""
    from repro.board import CtrlPortMapping, IoPortMapping
    config = ConfigurationDataSet()
    config.add_inport(PortMapping(0, 8, (PinSegment(0, 7, 8),)))
    config.add_outport(PortMapping(0, 8, (PinSegment(0, 7, 8),)))
    config.add_ctrlport(CtrlPortMapping(0, 1, (PinSegment(15, 0, 1),)))
    config.add_io_port(IoPortMapping(0, 0, 0))
    return config


class TestBoardConfiguration:
    def test_clock_limit_enforced(self):
        with pytest.raises(BoardError):
            HardwareTestBoard(loopback_config(), clock_hz=25e6)

    def test_memory_depth_limits(self):
        with pytest.raises(BoardError):
            HardwareTestBoard(loopback_config(), memory_depth=0)
        with pytest.raises(BoardError):
            HardwareTestBoard(loopback_config(),
                              memory_depth=MAX_CYCLE_CLOCKS + 1)

    def test_invalid_pin_config_rejected_at_board_construction(self):
        config = ConfigurationDataSet()
        config.add_inport(PortMapping(0, 8, (PinSegment(0, 7, 8),)))
        config.add_inport(PortMapping(1, 8, (PinSegment(0, 7, 8),)))
        with pytest.raises(Exception):
            HardwareTestBoard(config)


class TestTestCycles:
    def test_loopback_cycle_echoes_stimuli(self):
        board = HardwareTestBoard(loopback_config())
        device = LoopbackDevice(latency=1)
        vectors = [{0: value} for value in (1, 2, 3, 4)]
        result = board.run_test_cycle(device, vectors)
        observed = [frame[0] for frame in result.responses]
        assert observed == [0, 1, 2, 3]  # one-clock latency

    def test_cycle_stats_timing_split(self):
        board = HardwareTestBoard(loopback_config(), clock_hz=20e6,
                                  sw_overhead_s=1e-3)
        result = board.run_test_cycle(LoopbackDevice(), [{0: 0}] * 1000)
        stats = result.stats
        assert stats.clocks == 1000
        assert stats.hw_time == pytest.approx(1000 / 20e6)
        assert stats.sw_load_time > 0
        assert stats.sw_read_time > 0
        assert stats.total_time > stats.hw_time
        assert 0 < stats.hw_utilization < 1
        assert stats.effective_clock_hz < board.clock_hz

    def test_longer_cycles_amortize_overhead(self):
        """The E4 shape: effective clock rate rises with cycle length."""
        board = HardwareTestBoard(loopback_config())
        short = board.run_test_cycle(LoopbackDevice(), [{0: 0}] * 10)
        long = board.run_test_cycle(LoopbackDevice(), [{0: 0}] * 10000)
        assert (long.stats.effective_clock_hz
                > 10 * short.stats.effective_clock_hz)

    def test_memory_depth_bounds_cycle(self):
        board = HardwareTestBoard(loopback_config(), memory_depth=8)
        with pytest.raises(BoardError):
            board.load_port_vectors([{0: 0}] * 9)

    def test_run_without_stimuli_rejected(self):
        board = HardwareTestBoard(loopback_config())
        with pytest.raises(BoardError):
            board.run_hardware_cycle(LoopbackDevice())

    def test_malformed_frame_rejected(self):
        board = HardwareTestBoard(loopback_config())
        with pytest.raises(BoardError):
            board.load_stimuli([[0] * (NUM_BYTE_LANES - 1)])

    def test_repeated_cycles_accumulate(self):
        board = HardwareTestBoard(loopback_config())
        for _ in range(3):
            board.run_test_cycle(LoopbackDevice(), [{0: 1}] * 5)
        assert board.cycles_run == 3
        assert board.total_clocks == 15


class TestScsiModel:
    def test_transfer_time_formula(self):
        bus = ScsiBus(bandwidth_bytes_per_s=1e6, command_overhead_s=1e-3)
        duration = bus.transfer("LOAD", 1000)
        assert duration == pytest.approx(1e-3 + 1e-3)
        assert bus.total_bytes == 1000
        assert bus.total_time == pytest.approx(duration)

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            ScsiBus(bandwidth_bytes_per_s=0)
        with pytest.raises(ValueError):
            ScsiBus(command_overhead_s=-1)
        bus = ScsiBus()
        with pytest.raises(ValueError):
            bus.transfer("X", -1)


class TestRtlPinDevice:
    def make_counter_device(self):
        """An RTL counter mounted on the board: inport 0 = enable,
        outport 0 = count."""
        sim = Simulator()
        clk = sim.signal("clk", init="0")
        sim.add_clock(clk, period=10)
        enable = sim.signal("en", init="0")
        counter = Counter(sim, "cnt", clk, width=8, enable=enable)
        config = ConfigurationDataSet()
        config.add_inport(PortMapping(0, 1, (PinSegment(0, 0, 1),)))
        config.add_outport(PortMapping(0, 8, (PinSegment(1, 7, 8),)))
        device = RtlPinDevice(sim, clk, config,
                              input_signals={0: enable},
                              output_signals={0: counter.q})
        return config, device

    def test_rtl_counter_behind_the_board(self):
        config, device = self.make_counter_device()
        board = HardwareTestBoard(config)
        vectors = [{0: 1}] * 5 + [{0: 0}] * 3
        result = board.run_test_cycle(device, vectors)
        counts = [values[0] for values in result.responses]
        # each enabled clock increments; disabled clocks hold
        assert counts[-1] == 5
        assert counts == sorted(counts)

    def test_missing_signal_binding_rejected(self):
        sim = Simulator()
        clk = sim.signal("clk", init="0")
        config = ConfigurationDataSet()
        config.add_inport(PortMapping(0, 1, (PinSegment(0, 0, 1),)))
        with pytest.raises(ValueError):
            RtlPinDevice(sim, clk, config, input_signals={},
                         output_signals={})


class TestMetavalueReads:
    """Outport sampling policy: metavalues mask to zero (and are
    counted); programming bugs propagate."""

    def make_device(self, out_signal):
        sim = Simulator()
        clk = sim.signal("clk", init="0")
        sim.add_clock(clk, period=10)
        enable = sim.signal("en", init="0")
        config = ConfigurationDataSet()
        config.add_inport(PortMapping(0, 1, (PinSegment(0, 0, 1),)))
        config.add_outport(PortMapping(0, 8, (PinSegment(1, 7, 8),)))
        device = RtlPinDevice(sim, clk, config,
                              input_signals={0: enable},
                              output_signals={0: out_signal(sim)})
        return device

    def test_metavalue_masked_to_zero_and_counted(self):
        # An undriven 8-bit output holds 'U' — each sampled clock
        # masks it to zero and bumps the counter.
        device = self.make_device(
            lambda sim: sim.signal("floating", width=8))
        frame = device.clock([0] * 8)
        assert device.metavalue_reads == 1
        assert all(lane == 0 for lane in frame)
        device.clock([0] * 8)
        assert device.metavalue_reads == 2

    def test_driven_output_not_counted(self):
        device = self.make_device(
            lambda sim: sim.signal("q", width=8, init=0x5A))
        frame = device.clock([0] * 8)
        assert device.metavalue_reads == 0
        assert frame[1] == 0x5A

    def test_programming_bug_propagates(self):
        # A broken signal object is a bug in the harness, not a
        # metavalue — it must not be silently masked to zeros.
        class _Broken:
            width = 8
            name = "broken"

            def as_int(self):
                raise AttributeError("not a logic problem")

        device = self.make_device(lambda sim: _Broken())
        with pytest.raises(AttributeError):
            device.clock([0] * 8)
        assert device.metavalue_reads == 0
