"""Tests for the assertion and coverage library."""

import pytest

from repro.hdl import (AssertionEngine, HdlAssertionError, Simulator,
                       ToggleCoverage, ValueCoverage)


def make_bench():
    sim = Simulator()
    clk = sim.signal("clk", init="0")
    sim.add_clock(clk, period=10)
    return sim, clk


class TestAlwaysNever:
    def test_always_holds(self):
        sim, clk = make_bench()
        data = sim.signal("d", width=4, init=3)
        engine = AssertionEngine(sim, clk)
        engine.assert_always("d-nonzero", lambda: data.as_int() > 0)
        sim.run(until=100)
        assert engine.passed
        assert engine.checks_evaluated == 10

    def test_always_violation_recorded_with_time(self):
        sim, clk = make_bench()
        data = sim.signal("d", width=4, init=3)
        engine = AssertionEngine(sim, clk)
        engine.assert_always("d-nonzero", lambda: data.as_int() > 0,
                             "d went to zero")
        data.drive(0, delay=42)
        sim.run(until=100)
        assert not engine.passed
        assert engine.failures[0].name == "d-nonzero"
        assert engine.failures[0].time == 45  # first edge after t=42

    def test_never(self):
        sim, clk = make_bench()
        err = sim.signal("err", init="0")
        engine = AssertionEngine(sim, clk)
        engine.assert_never("no-err", lambda: err.value == "1")
        err.drive("1", delay=50)
        sim.run(until=100)
        assert len(engine.failures) >= 1

    def test_strict_mode_raises_immediately(self):
        sim, clk = make_bench()
        engine = AssertionEngine(sim, clk, strict=True)
        engine.assert_always("fail", lambda: False)
        with pytest.raises(HdlAssertionError):
            sim.run(until=20)

    def test_check_raises_at_end(self):
        sim, clk = make_bench()
        engine = AssertionEngine(sim, clk)
        engine.assert_always("fail", lambda: False)
        sim.run(until=20)
        with pytest.raises(HdlAssertionError):
            engine.check()


class TestBoundedResponse:
    def test_consequent_within_bound_passes(self):
        sim, clk = make_bench()
        req = sim.signal("req", init="0")
        ack = sim.signal("ack", init="0")
        engine = AssertionEngine(sim, clk)
        engine.assert_implies_within("req-ack",
                                     lambda: req.value == "1",
                                     lambda: ack.value == "1", within=3)
        req.drive("1", delay=12)
        req.drive("0", delay=22)
        ack.drive("1", delay=32)   # 2 edges after the req edge at 15
        ack.drive("0", delay=42)
        sim.run(until=120)
        assert engine.passed, engine.failures

    def test_missing_consequent_fails(self):
        sim, clk = make_bench()
        req = sim.signal("req", init="0")
        ack = sim.signal("ack", init="0")
        engine = AssertionEngine(sim, clk)
        engine.assert_implies_within("req-ack",
                                     lambda: req.value == "1",
                                     lambda: ack.value == "1", within=3)
        req.drive("1", delay=12)
        req.drive("0", delay=22)
        sim.run(until=120)
        assert not engine.passed
        assert "within 3" in engine.failures[0].message

    def test_invalid_bound_rejected(self):
        sim, clk = make_bench()
        engine = AssertionEngine(sim, clk)
        with pytest.raises(ValueError):
            engine.assert_implies_within("x", lambda: True,
                                         lambda: True, within=0)


class TestStability:
    def test_stable_signal_passes(self):
        sim, clk = make_bench()
        data = sim.signal("d", width=4, init=5)
        hold = sim.signal("hold", init="1")
        engine = AssertionEngine(sim, clk)
        engine.assert_stable_while("d-stable", data,
                                   lambda: hold.value == "1")
        sim.run(until=100)
        assert engine.passed

    def test_change_while_enabled_fails(self):
        sim, clk = make_bench()
        data = sim.signal("d", width=4, init=5)
        hold = sim.signal("hold", init="1")
        engine = AssertionEngine(sim, clk)
        engine.assert_stable_while("d-stable", data,
                                   lambda: hold.value == "1")
        data.drive(9, delay=42)
        sim.run(until=100)
        assert not engine.passed

    def test_change_while_disabled_allowed(self):
        sim, clk = make_bench()
        data = sim.signal("d", width=4, init=5)
        hold = sim.signal("hold", init="0")
        engine = AssertionEngine(sim, clk)
        engine.assert_stable_while("d-stable", data,
                                   lambda: hold.value == "1")
        data.drive(9, delay=42)
        sim.run(until=100)
        assert engine.passed


class TestToggleCoverage:
    def test_full_toggle_coverage(self):
        sim, clk = make_bench()
        data = sim.signal("d", width=2, init=0)
        coverage = ToggleCoverage(sim, [data])
        for t, value in ((10, 3), (20, 0)):
            data.drive(value, delay=t)
        sim.run(until=50)
        assert coverage.coverage() == 1.0
        assert coverage.uncovered() == []

    def test_partial_coverage_reported(self):
        sim, clk = make_bench()
        data = sim.signal("d", width=2, init=0)
        coverage = ToggleCoverage(sim, [data])
        data.drive(2, delay=10)   # bit 0 of the vector (MSB) rises only
        sim.run(until=50)
        assert coverage.coverage() == 0.0
        assert coverage.covered_bits == 0
        assert len(coverage.uncovered()) == 2

    def test_scalar_signal_tracked(self):
        sim, clk = make_bench()
        s = sim.signal("s", init="0")
        coverage = ToggleCoverage(sim, [s])
        s.drive("1", delay=10)
        s.drive("0", delay=20)
        sim.run(until=50)
        assert coverage.coverage() == 1.0

    def test_clock_coverage_free(self):
        """The clock itself reaches full toggle coverage trivially."""
        sim, clk = make_bench()
        coverage = ToggleCoverage(sim, [clk])
        sim.run(until=30)
        assert coverage.coverage() == 1.0


class TestValueCoverage:
    def test_bins_hit(self):
        sim, clk = make_bench()
        data = sim.signal("d", width=4, init=0)
        coverage = ValueCoverage(sim, clk, data, bins=[0, 5, (8, 15)])
        data.drive(5, delay=12)
        data.drive(9, delay=22)
        sim.run(until=60)
        assert coverage.coverage() == 1.0
        assert coverage.missed() == []

    def test_missed_bins_reported(self):
        sim, clk = make_bench()
        data = sim.signal("d", width=4, init=0)
        coverage = ValueCoverage(sim, clk, data, bins=[0, 7, (8, 15)])
        sim.run(until=60)
        assert coverage.coverage() == pytest.approx(1 / 3)
        assert coverage.missed() == [7, (8, 15)]

    def test_metavalues_skipped(self):
        sim, clk = make_bench()
        data = sim.signal("d", width=4)  # all 'U'
        coverage = ValueCoverage(sim, clk, data, bins=[0])
        sim.run(until=60)
        assert coverage.samples == 0
