"""Mixed-abstraction topology smoke test.

One environment hosting both levels at once: a behavioural port-module
twin translates the traffic stream in netsim time and feeds the *RTL*
accounting unit through the conservative synchroniser — the
"abstraction swap per instance" the multi-level environment promises.
"""

from repro.atm import AtmCell
from repro.behav import AtmPortModuleBehav
from repro.core import CoVerificationEnvironment
from repro.hdl import RisingEdge
from repro.netsim import SinkModule
from repro.rtl import RECORD_WORDS, AccountingUnitRtl
from repro.traffic import ConstantBitRate, TrafficSource

CELLS = 12


def test_behav_port_module_feeds_rtl_accounting_end_to_end():
    env = CoVerificationEnvironment(name="mixed", observe=False)
    cell_time = env.timebase.cell_time_seconds

    # behavioural front end: VPI/VCI translation at cell granularity
    twin = AtmPortModuleBehav("pm", timebase=env.timebase)
    twin.install(1, 100, 2, 200)
    pm_entity = env.add_dut(behav=twin)

    # RTL back end: the accounting unit on the translated stream
    acct = AccountingUnitRtl(env.hdl, "acct", env.clk)
    acct.register(2, 200, units_per_cell=2)
    acct_entity = env.add_dut(rx_port=acct.rx,
                              tick_signal=acct.tariff_tick)
    pm_entity.on_output = \
        lambda when, cell: acct_entity.send_cell(when, cell)

    words = []

    def _monitor():
        while True:
            yield RisingEdge(env.clk)
            if acct.rec_valid.value == "1":
                words.append(acct.rec_word.as_int())

    env.hdl.add_generator("records", _monitor())

    host = env.network.add_node("host")
    source = TrafficSource(
        "src", ConstantBitRate(period=4 * cell_time, seed=1),
        packet_factory=lambda i: AtmCell.with_payload(
            1, 100, [i % 256]).to_packet(),
        count=CELLS)
    tap = env.make_cell_tap("tap", pm_entity)
    sink = SinkModule("sink")
    for module in (source, tap, sink):
        host.add_module(module)
    host.connect(source, 0, tap, 0)
    host.connect(tap, 0, sink, 0)

    env.run()
    # the twin's modelled output times run ahead of netsim now — the
    # closing tick must come after the last translated cell
    last_out = pm_entity.output_cells[-1][0]
    acct_entity.send_tariff_tick(
        max(env.network.kernel.now, last_out) + cell_time)
    env.finish()
    env.hdl.run(until=env.hdl.now
                + 64 * env.timebase.clock_period_ticks)
    env.close()

    # every cell crossed the level boundary: netsim -> twin -> RTL
    assert twin.cells_translated == CELLS
    assert pm_entity.cells_in == CELLS
    assert len(pm_entity.output_cells) == CELLS
    assert acct.cells_seen == CELLS
    whole = len(words) // RECORD_WORDS
    records = [tuple(words[i * RECORD_WORDS:(i + 1) * RECORD_WORDS])
               for i in range(whole)]
    assert records == [(2, 200, 0, CELLS, 0, 2 * CELLS)]

    # both levels coexist in the metrics snapshot
    levels = sorted(e["level"] for e in env.metrics()["entities"])
    assert levels == ["behav", "rtl"]
