"""Abstract (system-level) ATM switch model.

The configuration the paper benchmarks: "an ATM switch consisting of
four port modules, one global control unit".  At the network-simulator
level the switch is a node containing

* one :class:`PortModule` per port — fast-path cell handling: HEC-valid
  cell in, connection-table lookup, VPI/VCI translation, accounting
  notification, hand-off to the destination port's output queue;
* one output :class:`~repro.netsim.node.QueueModule` per port, draining
  at the line cell rate;
* one :class:`GlobalControlUnit` — an extended-FSM process owning the
  connection table and the accounting unit, processing control messages
  (connection setup / teardown) and the tariff-interval timer.

This model is the *algorithm reference* the RTL implementations in
:mod:`repro.rtl` are verified against.
"""

from __future__ import annotations

from typing import List, Optional

from ..netsim.events import InterruptKind
from ..netsim.node import Module, Node, ProcessorModule, QueueModule
from ..netsim.packet import Packet
from ..netsim.process import ProcessModel, State
from ..netsim.topology import Network
from .accounting import AccountingUnit, Tariff
from .cell import AtmCell, CELL_BITS
from .switching import ConnectionTable, RoutingEntry, RoutingError

__all__ = ["AtmSwitch", "PortModule", "GlobalControlUnit",
           "STM1_CELL_TIME", "make_setup_packet", "make_teardown_packet"]

#: Cell slot time on a 155.52 Mbit/s STM-1 line (seconds).
STM1_CELL_TIME = CELL_BITS / 155.52e6


def make_setup_packet(in_port: int, vpi: int, vci: int, out_port: int,
                      out_vpi: int, out_vci: int,
                      tariff: Optional[Tariff] = None) -> Packet:
    """Control message asking the GCU to install a connection."""
    return Packet(size_bits=CELL_BITS, fields={
        "op": "setup", "in_port": in_port, "vpi": vpi, "vci": vci,
        "out_port": out_port, "out_vpi": out_vpi, "out_vci": out_vci,
        "tariff": tariff})


def make_teardown_packet(in_port: int, vpi: int, vci: int) -> Packet:
    """Control message asking the GCU to remove a connection."""
    return Packet(size_bits=CELL_BITS, fields={
        "op": "teardown", "in_port": in_port, "vpi": vpi, "vci": vci})


class PortModule(Module):
    """Fast-path cell processing for one switch port."""

    def __init__(self, name: str, port_index: int,
                 switch: "AtmSwitch") -> None:
        super().__init__(name)
        self.port_index = port_index
        self.switch = switch
        self.cells_routed = 0
        self.cells_misrouted = 0
        self.idle_cells = 0

    def receive(self, packet: Packet, stream: int) -> None:
        self.packets_in += 1
        cell = AtmCell.from_packet(packet)
        if cell.is_idle:
            # Idle cells are stripped at the port; they never cross the
            # fabric (the paper's "time-periods where idle cells are
            # inserted into the ATM cell stream").
            self.idle_cells += 1
            return
        try:
            entry = self.switch.table.lookup(self.port_index,
                                             cell.vpi, cell.vci)
        except RoutingError:
            self.cells_misrouted += 1
            self.switch.cells_dropped += 1
            return
        if self.switch.accounting is not None:
            self.switch.accounting.cell_arrival(cell.vpi, cell.vci,
                                                clp=cell.clp)
        # Header translation preserves the cell's identity — payload,
        # control bits and (when traced) its provenance id.
        translated = AtmCell(vpi=entry.out_vpi, vci=entry.out_vci,
                             pt=cell.pt, clp=cell.clp, gfc=cell.gfc,
                             payload=cell.payload,
                             trace_id=cell.trace_id)
        out = translated.to_packet(creation_time=packet.creation_time)
        self.cells_routed += 1
        self.switch.cells_switched += 1
        self.switch.output_queue(entry.out_port).receive(out, 0)


class GlobalControlUnit(ProcessModel):
    """Extended-FSM control process: connection management + tariffs.

    FSM: ``init`` (forced) → ``idle``; STREAM interrupts (control
    messages) visit the forced ``control`` state; SELF interrupts close
    the current tariff interval and re-arm the timer.
    """

    def __init__(self, switch: "AtmSwitch",
                 tariff_interval: Optional[float] = None) -> None:
        super().__init__("gcu")
        self.switch = switch
        self.tariff_interval = tariff_interval
        self.control_messages = 0
        self.rejected_messages = 0
        self._build_fsm()

    def _build_fsm(self) -> None:
        self.add_state(State("init", forced=True, enter=self._on_init),
                       initial=True)
        self.add_state(State("idle"))
        self.add_state(State("control", forced=True,
                             enter=self._on_control))
        self.add_state(State("tariff", forced=True,
                             enter=self._on_tariff))
        self.add_transition("init", "idle")
        self.add_transition(
            "idle", "control",
            guard=lambda pr, it: it.kind == InterruptKind.STREAM)
        self.add_transition(
            "idle", "tariff",
            guard=lambda pr, it: it.kind == InterruptKind.SELF)
        self.add_transition("control", "idle")
        self.add_transition("tariff", "idle")

    # -- state executives ----------------------------------------------
    def _on_init(self, _pr: ProcessModel) -> None:
        if self.tariff_interval is not None:
            self.schedule_self(self.tariff_interval)

    def _on_control(self, _pr: ProcessModel) -> None:
        message = self.interrupt.data
        self.control_messages += 1
        op = message.get("op")
        if op == "setup":
            self._setup(message)
            self._acknowledge(message)
        elif op == "teardown":
            self._teardown(message)
            self._acknowledge(message)
        else:
            self.rejected_messages += 1

    def _acknowledge(self, message: Packet) -> None:
        """Reply with an acknowledgement when a control link exists
        (signalling agents wait for these); with an input-only control
        hookup the acknowledgement is silently skipped."""
        node = self.switch.node
        if not node.has_link(self.switch.control_port):
            return
        self.send(Packet(size_bits=CELL_BITS, fields={
            "op": "ack", "vpi": message["vpi"], "vci": message["vci"]}))

    def _setup(self, message: Packet) -> None:
        entry = RoutingEntry(out_port=message["out_port"],
                             out_vpi=message["out_vpi"],
                             out_vci=message["out_vci"])
        self.switch.table.install(message["in_port"], message["vpi"],
                                  message["vci"], entry)
        tariff = message.get("tariff")
        accounting = self.switch.accounting
        if accounting is not None and tariff is not None:
            if not accounting.is_registered(message["vpi"], message["vci"]):
                accounting.register(message["vpi"], message["vci"], tariff)

    def _teardown(self, message: Packet) -> None:
        try:
            self.switch.table.remove(message["in_port"], message["vpi"],
                                     message["vci"])
        except RoutingError:
            self.rejected_messages += 1
            return
        accounting = self.switch.accounting
        if (accounting is not None
                and accounting.is_registered(message["vpi"],
                                             message["vci"])):
            accounting.deregister(message["vpi"], message["vci"])

    def _on_tariff(self, _pr: ProcessModel) -> None:
        if self.switch.accounting is not None:
            self.switch.accounting.close_interval()
        self.schedule_self(self.tariff_interval)


class AtmSwitch:
    """An N-port output-queued ATM switch inside a network model.

    Node port layout: port *i* (0 <= i < num_ports) is the cell
    interface of switch port *i* (both directions); node port
    ``num_ports`` is the control interface delivering setup/teardown
    messages to the global control unit.

    Example:
        >>> net = Network()
        >>> switch = AtmSwitch(net, "sw", num_ports=4)
        >>> switch.install_connection(0, 1, 100, 2, 1, 200)
    """

    def __init__(self, network: Network, name: str, num_ports: int = 4,
                 cell_time: float = STM1_CELL_TIME,
                 queue_capacity: Optional[int] = 64,
                 accounting: Optional[AccountingUnit] = None,
                 tariff_interval: Optional[float] = None) -> None:
        if num_ports < 1:
            raise ValueError(f"switch needs >= 1 port, got {num_ports}")
        self.name = name
        self.num_ports = num_ports
        self.cell_time = cell_time
        self.table = ConnectionTable()
        self.accounting = accounting
        self.cells_switched = 0
        self.cells_dropped = 0

        self.node: Node = network.add_node(name)
        self.ports: List[PortModule] = []
        self._queues: List[QueueModule] = []
        for index in range(num_ports):
            port = PortModule(f"port{index}", index, self)
            queue = QueueModule(f"outq{index}", capacity=queue_capacity,
                                service_time=cell_time)
            self.node.add_module(port)
            self.node.add_module(queue)
            self.node.bind_port_input(index, port, 0)
            self.node.bind_port_output(index, queue, 0)
            self.ports.append(port)
            self._queues.append(queue)

        self.gcu = GlobalControlUnit(self, tariff_interval=tariff_interval)
        gcu_module = ProcessorModule("gcu", self.gcu)
        self.node.add_module(gcu_module)
        self.node.bind_port_input(num_ports, gcu_module, 0)
        # acknowledgements leave through the same control interface
        self.node.bind_port_output(num_ports, gcu_module, 0)

    @property
    def control_port(self) -> int:
        """Node port index of the control (signalling) interface."""
        return self.num_ports

    def output_queue(self, port: int) -> QueueModule:
        """The output queue feeding switch port *port*."""
        return self._queues[port]

    def install_connection(self, in_port: int, vpi: int, vci: int,
                           out_port: int, out_vpi: int, out_vci: int,
                           tariff: Optional[Tariff] = None) -> None:
        """Directly install a connection (management interface).

        Equivalent to delivering a setup message to the GCU, for test
        benches that configure the switch before the run starts.
        """
        if not 0 <= out_port < self.num_ports:
            raise ValueError(f"output port {out_port} out of range")
        self.table.install(in_port, vpi, vci,
                           RoutingEntry(out_port, out_vpi, out_vci))
        if self.accounting is not None and tariff is not None:
            if not self.accounting.is_registered(vpi, vci):
                self.accounting.register(vpi, vci, tariff)

    def total_queue_drops(self) -> int:
        """Cells lost to output-queue overflow across all ports."""
        return sum(queue.dropped for queue in self._queues)
