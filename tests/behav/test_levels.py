"""Level selection and validation: resolve_level, REPRO_DUT_LEVEL,
add_dut's two coupling forms, and the level-agnostic factory."""

import pytest

from repro.behav import AtmPortModuleBehav, build_dut
from repro.core import (CoVerificationEnvironment, DUT_LEVELS,
                        resolve_level)
from repro.obs.profile import attach_profiling, detach_profiling


def test_resolve_level_precedence():
    # explicit wins over any default
    assert resolve_level("rtl", default="behav") == "rtl"
    assert resolve_level("behav", default="rtl") == "behav"
    # None falls to the default; "auto" falls to the fallback
    assert resolve_level(None, default="behav") == "behav"
    assert resolve_level(None, default="auto") == "rtl"
    assert resolve_level("auto", default="behav", fallback="rtl") == \
        "rtl"
    with pytest.raises(ValueError):
        resolve_level("gate", default="rtl")
    assert DUT_LEVELS == ("rtl", "behav")


def test_env_level_policy_from_argument_and_environ(monkeypatch):
    monkeypatch.delenv("REPRO_DUT_LEVEL", raising=False)
    env = CoVerificationEnvironment(observe=False)
    assert env.dut_level == "auto"
    assert env.resolved_dut_level() == "rtl"

    monkeypatch.setenv("REPRO_DUT_LEVEL", "behav")
    env = CoVerificationEnvironment(observe=False)
    assert env.resolved_dut_level() == "behav"
    # the constructor argument beats the environment variable
    env = CoVerificationEnvironment(observe=False, dut_level="rtl")
    assert env.resolved_dut_level() == "rtl"
    # a per-call override beats both
    assert env.resolved_dut_level("behav") == "behav"

    monkeypatch.setenv("REPRO_DUT_LEVEL", "netlist")
    with pytest.raises(ValueError, match="netlist"):
        CoVerificationEnvironment(observe=False)


def test_add_dut_validates_the_coupling_form():
    env = CoVerificationEnvironment(observe=False)
    twin = AtmPortModuleBehav("pm", timebase=env.timebase)
    # behavioural form with a contradicting level
    with pytest.raises(ValueError, match="contradicts"):
        env.add_dut(behav=twin, level="rtl")
    # RTL form without the required rx port
    with pytest.raises(TypeError, match="rx_port"):
        env.add_dut()
    # mixing the forms
    from repro.rtl import CellStreamPort
    rx = CellStreamPort(env.hdl, "rx")
    with pytest.raises(ValueError, match="no HDL ports"):
        env.add_dut(rx_port=rx, behav=twin)
    with pytest.raises(ValueError, match="requires a behavioural"):
        env.add_dut(rx_port=rx, level="behav")


def test_factory_builds_by_policy(monkeypatch):
    monkeypatch.setenv("REPRO_DUT_LEVEL", "behav")
    env = CoVerificationEnvironment(observe=False)
    handle = build_dut(env, "accounting")
    assert handle.level == "behav"
    assert handle.entity.level == "behav"
    # per-call override forces RTL despite the environment policy
    rtl_handle = build_dut(env, "port_module", name="pm", level="rtl")
    assert rtl_handle.level == "rtl"
    assert rtl_handle.entity.level == "rtl"
    with pytest.raises(ValueError, match="unknown DUT kind"):
        build_dut(env, "fpga")
    env.close()


def test_metrics_snapshot_reports_levels():
    env = CoVerificationEnvironment(observe=False)
    twin = AtmPortModuleBehav("pm", timebase=env.timebase)
    env.add_dut(behav=twin)
    snapshot = env.metrics()
    (entity_snapshot,) = snapshot["entities"]
    assert entity_snapshot["level"] == "behav"
    assert "sync" not in entity_snapshot


def test_profiling_skips_behavioural_entities():
    env = CoVerificationEnvironment()  # observability on
    twin = AtmPortModuleBehav("pm", timebase=env.timebase)
    env.add_dut(behav=twin)
    names = attach_profiling(env)  # must not trip on missing .sync
    assert names
    detach_profiling(env)
