"""Pin-mapping configuration data set (the paper's Figure 5).

The hardware test board exposes 128 bit-stream I/O pins organised as
16 byte lanes.  The *configuration data set* tells the board how the
DUT's logical ports map onto physical pins:

* **Inport mappings** — DUT inputs the board drives: port number, port
  width and one or more pin segments (byte lane ID, start bit position,
  number of bits).
* **Outport mappings** — DUT outputs the board samples; same shape.
* **I/O port mappings** — bidirectional DUT ports modelled "by three
  bit-level signals input, output and a control signal indicating the
  direction through predefined read/write flags".
* **Ctrl-port mappings** — the control ports with their write flag
  value.

``pack_stimulus`` and ``unpack_response`` are the two directions of
the mapping, and a round-trip property test in ``tests/board`` checks
they are inverse to each other for every legal configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["PinSegment", "PortMapping", "IoPortMapping", "CtrlPortMapping",
           "ConfigurationDataSet", "PinMapError",
           "NUM_BYTE_LANES", "LANE_WIDTH", "NUM_PINS"]

NUM_BYTE_LANES = 16
LANE_WIDTH = 8
NUM_PINS = NUM_BYTE_LANES * LANE_WIDTH  # 128 I/O pins


class PinMapError(ValueError):
    """Raised for malformed or conflicting pin mappings."""


@dataclass(frozen=True)
class PinSegment:
    """A contiguous run of pins inside one byte lane.

    ``start_bit`` is the *highest* bit index of the run (Figure 5
    writes "Start Bit Position 7, Number of Bits 8" for a full lane),
    so a segment covers bits ``start_bit .. start_bit-num_bits+1``.
    """

    byte_lane: int
    start_bit: int
    num_bits: int

    def __post_init__(self) -> None:
        if not 0 <= self.byte_lane < NUM_BYTE_LANES:
            raise PinMapError(
                f"byte lane {self.byte_lane} outside 0..{NUM_BYTE_LANES-1}")
        if not 0 <= self.start_bit < LANE_WIDTH:
            raise PinMapError(
                f"start bit {self.start_bit} outside 0..{LANE_WIDTH-1}")
        if self.num_bits < 1:
            raise PinMapError("segment needs >= 1 bit")
        if self.start_bit - self.num_bits + 1 < 0:
            raise PinMapError(
                f"segment (start {self.start_bit}, {self.num_bits} bits) "
                f"runs below bit 0 of lane {self.byte_lane}")

    def bit_positions(self) -> List[int]:
        """Absolute pin indices, MSB of the segment first."""
        base = self.byte_lane * LANE_WIDTH
        return [base + self.start_bit - offset
                for offset in range(self.num_bits)]


@dataclass(frozen=True)
class PortMapping:
    """A logical DUT port mapped onto pin segments.

    Segment bit widths must sum to the port width; the first segment
    carries the most-significant port bits.
    """

    port_number: int
    width: int
    segments: Tuple[PinSegment, ...]

    def __post_init__(self) -> None:
        if self.width < 1:
            raise PinMapError("port width must be >= 1")
        total = sum(seg.num_bits for seg in self.segments)
        if total != self.width:
            raise PinMapError(
                f"port {self.port_number}: segments carry {total} bits "
                f"but the port is {self.width} bits wide")

    def bit_positions(self) -> List[int]:
        """Absolute pin indices, port MSB first."""
        positions: List[int] = []
        for segment in self.segments:
            positions.extend(segment.bit_positions())
        return positions


@dataclass(frozen=True)
class CtrlPortMapping:
    """A direction-control port for a bidirectional interface.

    ``write_value`` is the control-port value that means "board drives
    the DUT" (the predefined write flag).
    """

    ctrlport_number: int
    width: int
    segments: Tuple[PinSegment, ...]
    write_value: int = 1

    def as_port_mapping(self) -> PortMapping:
        """The plain (board-driven) port view of the control pins."""
        return PortMapping(self.ctrlport_number, self.width, self.segments)


@dataclass(frozen=True)
class IoPortMapping:
    """Links an inport, an outport and a ctrl port into one
    bidirectional DUT interface."""

    inport_number: int
    outport_number: int
    ctrlport_number: int


class ConfigurationDataSet:
    """The complete Figure-5 configuration of one DUT hookup."""

    def __init__(self) -> None:
        self.inports: Dict[int, PortMapping] = {}
        self.outports: Dict[int, PortMapping] = {}
        self.ctrlports: Dict[int, CtrlPortMapping] = {}
        self.io_ports: List[IoPortMapping] = []

    # -- construction ------------------------------------------------------
    def add_inport(self, mapping: PortMapping) -> None:
        """Register a DUT-input mapping (board drives these pins)."""
        self._add(self.inports, mapping, "inport")

    def add_outport(self, mapping: PortMapping) -> None:
        """Register a DUT-output mapping (board samples these pins)."""
        self._add(self.outports, mapping, "outport")

    def add_ctrlport(self, mapping: CtrlPortMapping) -> None:
        """Register a direction-control port (board drives it)."""
        if mapping.ctrlport_number in self.ctrlports:
            raise PinMapError(
                f"duplicate ctrlport {mapping.ctrlport_number}")
        self.ctrlports[mapping.ctrlport_number] = mapping

    def add_io_port(self, mapping: IoPortMapping) -> None:
        """Tie an inport + outport + ctrlport into a bidir interface."""
        for attr, number in (("inports", mapping.inport_number),
                             ("outports", mapping.outport_number),
                             ("ctrlports", mapping.ctrlport_number)):
            if number not in getattr(self, attr):
                raise PinMapError(
                    f"I/O port references unknown {attr[:-1]} {number}")
        self.io_ports.append(mapping)

    @staticmethod
    def _add(table: Dict[int, PortMapping], mapping: PortMapping,
             kind: str) -> None:
        if mapping.port_number in table:
            raise PinMapError(f"duplicate {kind} {mapping.port_number}")
        table[mapping.port_number] = mapping

    # -- validation ---------------------------------------------------------
    def validate(self) -> None:
        """Check that no two same-direction ports share a pin and that
        driven pins never collide with sampled pins (except through a
        declared I/O port)."""
        io_inports = {m.inport_number for m in self.io_ports}
        io_outports = {m.outport_number for m in self.io_ports}

        driven: Dict[int, str] = {}
        for mapping in self.inports.values():
            label = f"inport {mapping.port_number}"
            for pin in mapping.bit_positions():
                if pin in driven:
                    raise PinMapError(
                        f"pin {pin} driven by both {driven[pin]} and "
                        f"{label}")
                driven[pin] = label
        for mapping in self.ctrlports.values():
            label = f"ctrlport {mapping.ctrlport_number}"
            for pin in mapping.as_port_mapping().bit_positions():
                if pin in driven:
                    raise PinMapError(
                        f"pin {pin} driven by both {driven[pin]} and "
                        f"{label}")
                driven[pin] = label

        sampled: Dict[int, str] = {}
        for mapping in self.outports.values():
            label = f"outport {mapping.port_number}"
            for pin in mapping.bit_positions():
                if pin in sampled:
                    raise PinMapError(
                        f"pin {pin} sampled by both {sampled[pin]} and "
                        f"{label}")
                sampled[pin] = label

        for mapping in self.outports.values():
            if mapping.port_number in io_outports:
                continue  # shares pins with its inport by design
            label = f"outport {mapping.port_number}"
            for pin in mapping.bit_positions():
                if pin in driven:
                    raise PinMapError(
                        f"pin {pin}: {label} collides with {driven[pin]} "
                        "(no I/O port declared)")

    # -- frame packing --------------------------------------------------------
    def pack_stimulus(self, inport_values: Dict[int, int],
                      ctrlport_values: Optional[Dict[int, int]] = None
                      ) -> List[int]:
        """Pack logical port values into a 16-byte-lane pin frame.

        Unspecified ports contribute zeros.  Values must fit their
        port width.
        """
        frame = [0] * NUM_BYTE_LANES
        for number, value in inport_values.items():
            mapping = self._require(self.inports, number, "inport")
            self._scatter(frame, mapping.bit_positions(), value,
                          mapping.width, f"inport {number}")
        for number, value in (ctrlport_values or {}).items():
            mapping = self._require(self.ctrlports, number, "ctrlport")
            port_view = mapping.as_port_mapping()
            self._scatter(frame, port_view.bit_positions(), value,
                          port_view.width, f"ctrlport {number}")
        return frame

    def unpack_response(self, frame: Sequence[int]) -> Dict[int, int]:
        """Extract every outport's value from a pin frame."""
        if len(frame) != NUM_BYTE_LANES:
            raise PinMapError(
                f"a pin frame has {NUM_BYTE_LANES} byte lanes, "
                f"got {len(frame)}")
        return {number: self._gather(frame, mapping.bit_positions())
                for number, mapping in self.outports.items()}

    def unpack_inports(self, frame: Sequence[int]) -> Dict[int, int]:
        """Extract every inport's value from a stimulus frame (the DUT
        adapter's view of what the board drove)."""
        return {number: self._gather(frame, mapping.bit_positions())
                for number, mapping in self.inports.items()}

    def unpack_ctrlports(self, frame: Sequence[int]) -> Dict[int, int]:
        """Extract every ctrlport's value from a stimulus frame."""
        return {number: self._gather(
                    frame, mapping.as_port_mapping().bit_positions())
                for number, mapping in self.ctrlports.items()}

    # -- helpers -----------------------------------------------------------
    @staticmethod
    def _require(table, number, kind):
        try:
            return table[number]
        except KeyError:
            raise PinMapError(f"unknown {kind} {number}") from None

    @staticmethod
    def _scatter(frame: List[int], positions: Sequence[int], value: int,
                 width: int, label: str) -> None:
        if not 0 <= value < (1 << width):
            raise PinMapError(
                f"{label}: value {value} does not fit in {width} bits")
        for offset, pin in enumerate(positions):
            bit = (value >> (width - 1 - offset)) & 1
            lane, lane_bit = divmod(pin, LANE_WIDTH)
            if bit:
                frame[lane] |= 1 << lane_bit
            else:
                frame[lane] &= ~(1 << lane_bit)

    @staticmethod
    def _gather(frame: Sequence[int], positions: Sequence[int]) -> int:
        value = 0
        for pin in positions:
            lane, lane_bit = divmod(pin, LANE_WIDTH)
            value = (value << 1) | ((frame[lane] >> lane_bit) & 1)
        return value

    # -- serialisation --------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready image of the configuration data set."""

        def seg(s: PinSegment) -> dict:
            return {"byte_lane": s.byte_lane, "start_bit": s.start_bit,
                    "num_bits": s.num_bits}

        def port(m: PortMapping) -> dict:
            return {"port": m.port_number, "width": m.width,
                    "segments": [seg(s) for s in m.segments]}

        return {
            "inports": [port(m) for m in self.inports.values()],
            "outports": [port(m) for m in self.outports.values()],
            "ctrlports": [dict(port(m.as_port_mapping()),
                               write_value=m.write_value)
                          for m in self.ctrlports.values()],
            "io_ports": [{"inport": m.inport_number,
                          "outport": m.outport_number,
                          "ctrlport": m.ctrlport_number}
                         for m in self.io_ports],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ConfigurationDataSet":
        """Rebuild a configuration from :meth:`to_dict` output."""

        def segs(items) -> Tuple[PinSegment, ...]:
            return tuple(PinSegment(**item) for item in items)

        config = cls()
        for item in data.get("inports", []):
            config.add_inport(PortMapping(item["port"], item["width"],
                                          segs(item["segments"])))
        for item in data.get("outports", []):
            config.add_outport(PortMapping(item["port"], item["width"],
                                           segs(item["segments"])))
        for item in data.get("ctrlports", []):
            config.add_ctrlport(CtrlPortMapping(
                item["port"], item["width"], segs(item["segments"]),
                write_value=item.get("write_value", 1)))
        for item in data.get("io_ports", []):
            config.add_io_port(IoPortMapping(item["inport"],
                                             item["outport"],
                                             item["ctrlport"]))
        return config
