"""Parallel fan-out of a sweep matrix over worker processes.

:class:`SweepRunner` executes every :class:`~repro.sweep.RunSpec` of a
:class:`~repro.sweep.SweepSpec`, up to ``jobs`` at a time, each in its
own ``multiprocessing`` process with a per-run wall-clock budget.  The
failure policy, in order:

1. **Timeout** — a worker past its budget is terminated (then killed);
   the run is retried once, and recorded as ``status: "timeout"`` if
   the retry also overruns.  Timed-out runs are never executed
   serially in the parent (a hang would stall the whole sweep).
2. **Crash** — a worker that dies without delivering a result
   (segfault, ``os._exit``, OOM-kill) gets one retry in a fresh
   worker; a second death degrades that run to serial execution in
   the parent, where a raised exception is caught and recorded as
   ``status: "error"`` instead of taking the sweep down.
3. **Error** — a Python exception inside the scenario is caught by the
   worker and reported as ``status: "error"`` immediately: it is
   deterministic, so a retry cannot help.
4. If worker processes cannot be spawned at all (or ``jobs=1``), the
   whole sweep runs serially — same results, no parallelism.

Results are always reported in matrix order regardless of completion
order, so identical specs produce identically ordered payloads (the
determinism contract ``repro.sweep.strip_volatile`` tests rely on).
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from multiprocessing.connection import wait as _conn_wait
from typing import Any, Dict, List, Optional

from .aggregate import aggregate_results
from .scenario import execute_run
from .spec import RunSpec, SweepSpec

__all__ = ["SweepRunner", "run_sweep"]

#: attempts per run before the degradation policy kicks in
MAX_ATTEMPTS = 2


def _worker_main(conn, run: Dict[str, Any], attempt: int) -> None:
    """Worker-process entry: execute one run, ship the result back.

    A scenario exception is converted into an ``("error", info)``
    message — only hard process death leaves the parent without a
    message, which is exactly the crash signal the retry policy keys
    on.  The info dict carries the formatted traceback: the exception
    object dies with the worker process, so type and message alone
    used to be all a failed sweep run ever reported.
    """
    try:
        result = execute_run(run, attempt=attempt, in_worker=True)
        conn.send(("ok", result))
    except Exception as exc:
        conn.send(("error", {"type": type(exc).__name__,
                             "message": str(exc),
                             "traceback": traceback.format_exc()}))
    finally:
        conn.close()


class _Active:
    """Bookkeeping for one in-flight worker process."""

    __slots__ = ("process", "conn", "run", "attempt", "deadline")

    def __init__(self, process, conn, run: RunSpec, attempt: int,
                 deadline: float) -> None:
        self.process = process
        self.conn = conn
        self.run = run
        self.attempt = attempt
        self.deadline = deadline


class SweepRunner:
    """Executes a sweep spec and aggregates the results.

    Args:
        spec: the scenario matrix and knobs.
        jobs: override ``spec.jobs`` (worker processes; 1 = serial).
        timeout_s: override ``spec.timeout_s`` (per-run budget).

    Example::

        spec = SweepSpec(traffic=["cbr", "poisson"], seeds=[0, 1])
        payload = SweepRunner(spec).run()
        print(payload["aggregate"]["runs_passed"])
    """

    def __init__(self, spec: SweepSpec, jobs: Optional[int] = None,
                 timeout_s: Optional[float] = None) -> None:
        self.spec = spec
        self.jobs = spec.jobs if jobs is None else int(jobs)
        self.timeout_s = spec.timeout_s if timeout_s is None \
            else float(timeout_s)
        if self.jobs < 1:
            raise ValueError(f"need >= 1 job, got {self.jobs}")
        if self.timeout_s <= 0:
            raise ValueError(f"non-positive timeout {self.timeout_s}")
        self._ctx = self._start_context()
        self.stats: Dict[str, Any] = {}

    @staticmethod
    def _start_context():
        """The multiprocessing context: fork where the platform offers
        it (fast — no re-import), else spawn; overridable through
        ``REPRO_SWEEP_START`` for debugging."""
        methods = multiprocessing.get_all_start_methods()
        chosen = os.environ.get("REPRO_SWEEP_START")
        if chosen is None:
            chosen = "fork" if "fork" in methods else "spawn"
        return multiprocessing.get_context(chosen)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self) -> Dict[str, Any]:
        """Execute the whole matrix; returns the sweep payload
        (per-run results in matrix order, the aggregate, and the
        execution record)."""
        runs = self.spec.expand()
        started = time.perf_counter()
        self.stats = {"jobs": self.jobs,
                      "start_method": self._ctx.get_start_method(),
                      "workers_spawned": 0, "crashes": 0, "timeouts": 0,
                      "retries": 0, "serial_fallbacks": 0,
                      "degraded_to_serial": False,
                      # one entry per retried/degraded attempt, with
                      # the failure detail that motivated it
                      "retry_log": []}
        if self.jobs == 1:
            results = {run.name: self._run_serial(run) for run in runs}
        else:
            results = self._run_pool(runs)
        ordered = [results[run.name] for run in runs]
        self.stats["sweep_wall_s"] = time.perf_counter() - started
        return {
            "benchmark": "sweep",
            "spec": self.spec.as_dict(),
            "runs": ordered,
            "aggregate": aggregate_results(ordered),
            "execution": dict(self.stats),
        }

    # -- serial --------------------------------------------------------
    def _run_serial(self, run: RunSpec, attempt: int = 1,
                    mode: str = "serial") -> Dict[str, Any]:
        """Execute one run in the parent process, converting scenario
        exceptions into an ``"error"`` result."""
        try:
            result = execute_run(run.as_dict(), attempt=attempt,
                                 in_worker=False)
        except Exception as exc:
            result = self._failure_result(
                run, "error", {"type": type(exc).__name__,
                               "message": str(exc),
                               "traceback": traceback.format_exc()})
        result["mode"] = mode
        result["attempts"] = attempt
        return result

    # -- pool ----------------------------------------------------------
    def _run_pool(self, runs: List[RunSpec]) -> Dict[str, Dict[str, Any]]:
        """Fan runs out over up to ``jobs`` worker processes."""
        pending: List[tuple] = [(run, 1) for run in reversed(runs)]
        active: List[_Active] = []
        results: Dict[str, Dict[str, Any]] = {}
        serial_mode = False
        while pending or active:
            if serial_mode and not active:
                # Workers are unusable: finish everything in-process.
                for run, attempt in reversed(pending):
                    results[run.name] = self._run_serial(
                        run, attempt=attempt, mode="serial-fallback")
                pending.clear()
                continue
            while not serial_mode and pending and len(active) < self.jobs:
                run, attempt = pending.pop()
                worker = self._spawn(run, attempt)
                if worker is None:
                    self.stats["degraded_to_serial"] = True
                    serial_mode = True
                    pending.append((run, attempt))
                    break
                active.append(worker)
            if not active:
                continue
            now = time.monotonic()
            horizon = min(worker.deadline for worker in active)
            _conn_wait([worker.conn for worker in active],
                       timeout=max(0.0, min(horizon - now, 0.25)))
            still_active: List[_Active] = []
            for worker in active:
                outcome = self._collect(worker)
                if outcome is None:
                    still_active.append(worker)
                    continue
                kind, payload = outcome
                self._settle(worker, kind, payload, pending, results)
            active = still_active
        return results

    def _spawn(self, run: RunSpec, attempt: int) -> Optional[_Active]:
        """Start one worker; None when process creation itself fails
        (the signal to degrade the whole sweep to serial)."""
        try:
            parent_conn, child_conn = self._ctx.Pipe(duplex=False)
            process = self._ctx.Process(
                target=_worker_main,
                args=(child_conn, run.as_dict(), attempt),
                name=f"sweep-{run.name}-a{attempt}", daemon=True)
            process.start()
        except OSError:
            return None
        child_conn.close()
        self.stats["workers_spawned"] += 1
        return _Active(process, parent_conn, run, attempt,
                       deadline=time.monotonic() + self.timeout_s)

    def _collect(self, worker: _Active):
        """Classify one in-flight worker: None (still running),
        ``("ok"|"error", payload)`` from the pipe, or a synthesised
        ``("crash"|"timeout", info)``."""
        if worker.conn.poll():
            try:
                kind, payload = worker.conn.recv()
            except (EOFError, OSError):
                # reap before reading the exit code — right after the
                # pipe EOF the child may not be waitable yet, and an
                # unjoined process reads exitcode None
                worker.process.join(timeout=5.0)
                return ("crash", {"exitcode": worker.process.exitcode})
            worker.process.join()
            return (kind, payload)
        if worker.process.exitcode is not None:
            worker.process.join()
            return ("crash", {"exitcode": worker.process.exitcode})
        if time.monotonic() >= worker.deadline:
            worker.process.terminate()
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():  # pragma: no cover - stubborn
                worker.process.kill()
                worker.process.join()
            return ("timeout", {"timeout_s": self.timeout_s})
        return None

    def _settle(self, worker: _Active, kind: str, payload,
                pending: List[tuple],
                results: Dict[str, Dict[str, Any]]) -> None:
        """Apply the failure policy to one finished worker."""
        worker.conn.close()
        run, attempt = worker.run, worker.attempt
        if kind == "ok":
            payload["mode"] = "pool"
            payload["attempts"] = attempt
            results[run.name] = payload
            return
        if kind == "error":
            result = self._failure_result(run, "error", payload)
            result["mode"] = "pool"
            result["attempts"] = attempt
            results[run.name] = result
            return
        self.stats["crashes" if kind == "crash" else "timeouts"] += 1
        if attempt < MAX_ATTEMPTS:
            self.stats["retries"] += 1
            self.stats["retry_log"].append(
                {"name": run.name, "attempt": attempt, "kind": kind,
                 "detail": payload})
            pending.append((run, attempt + 1))
            return
        if kind == "timeout":
            result = self._failure_result(run, "timeout", payload)
            result["mode"] = "pool"
            result["attempts"] = attempt
            results[run.name] = result
            return
        # Second crash: degrade this run to serial execution so its
        # result (or a caught error) survives without a worker.
        self.stats["serial_fallbacks"] += 1
        self.stats["retry_log"].append(
            {"name": run.name, "attempt": attempt, "kind": kind,
             "detail": payload})
        result = self._run_serial(run, attempt=attempt + 1,
                                  mode="serial-fallback")
        results[run.name] = result

    @staticmethod
    def _failure_result(run: RunSpec, status: str,
                        detail) -> Dict[str, Any]:
        """A result record for a run that produced no scenario output."""
        return {
            "name": run.name,
            "params": {"traffic": run.traffic, "ports": run.ports,
                       "seed": run.seed, "sync": run.sync,
                       "cells": run.cells, "load": run.load,
                       "level": run.level},
            "status": status,
            "passed": False,
            "detail": detail,
        }


def run_sweep(spec: SweepSpec, jobs: Optional[int] = None,
              timeout_s: Optional[float] = None) -> Dict[str, Any]:
    """Convenience wrapper: ``SweepRunner(spec, ...).run()``."""
    return SweepRunner(spec, jobs=jobs, timeout_s=timeout_s).run()
