"""Behavioural abstraction level — cell-granularity DUT twins.

The third backend tier of the multi-abstraction environment: where
``repro.rtl`` models the designs octet-serially in the HDL kernel
(event-driven or compiled), this package models them as zero-delta
cell-level twins evaluated eagerly in netsim time, selected per DUT
via ``level="behav"`` (or the ``REPRO_DUT_LEVEL`` environment
variable) and verified against the RTL by the cross-level equivalence
harness (:mod:`repro.behav.equiv`, ``python -m repro equiv``).
"""

from .entity import BehavioralEntity
from .equiv import make_events, run_equivalence, run_kind
from .factory import DutHandle, KINDS, build_dut
from .latency import SerialLine, hop_latency_seconds
from .twins import (AccountingUnitBehav, AtmPortModuleBehav,
                    AtmSwitchBehav, BehavioralTwin, UpcPolicerBehav)

__all__ = [
    "BehavioralEntity",
    "make_events", "run_equivalence", "run_kind",
    "DutHandle", "KINDS", "build_dut",
    "SerialLine", "hop_latency_seconds",
    "AccountingUnitBehav", "AtmPortModuleBehav", "AtmSwitchBehav",
    "BehavioralTwin", "UpcPolicerBehav",
]
