"""Tests for the cycle-based clock engine (E6 substrate).

Since the hot-path overhaul the engine is the default clocking scheme
of the co-verification environment, so this file also carries the
kernel-equivalence regression: the same RTL design clocked by the seed
event-driven generator clock and by the engine's fast dispatch must
produce identical VCD traces, identical output cell streams and
identical kernel event counts.
"""

import pytest

from repro.atm import AtmCell
from repro.hdl import CycleEngine, RisingEdge, Simulator, VcdWriter
from repro.rtl import (AtmSwitchRtl, CellReceiver, CellSender, Counter)


def test_cycle_engine_advances_time():
    sim = Simulator()
    clk = sim.signal("clk", init="0")
    engine = CycleEngine(sim, clk, period=10)
    engine.run_cycles(7)
    assert sim.now == 70
    assert engine.cycles_run == 7


def test_clocked_process_sees_identical_behaviour():
    """A counter gives the same result under both clocking schemes."""
    # event-driven
    sim_e = Simulator()
    clk_e = sim_e.signal("clk", init="0")
    sim_e.add_clock(clk_e, period=10)
    counter_e = Counter(sim_e, "c", clk_e, width=8)
    sim_e.run(until=200)

    # cycle-based
    sim_c = Simulator()
    clk_c = sim_c.signal("clk", init="0")
    counter_c = Counter(sim_c, "c", clk_c, width=8)
    CycleEngine(sim_c, clk_c, period=10).run_cycles(20)

    assert counter_c.q.as_int() == counter_e.q.as_int() == 20


def test_generator_edge_waits_still_work():
    sim = Simulator()
    clk = sim.signal("clk", init="0")
    hits = []

    def waiter():
        for _ in range(3):
            yield RisingEdge(clk)
            hits.append(sim.now)

    sim.add_generator("w", waiter())
    CycleEngine(sim, clk, period=10).run_cycles(5)
    assert len(hits) == 3


def test_timed_events_are_honoured():
    sim = Simulator()
    clk = sim.signal("clk", init="0")
    s = sim.signal("s", init="0")
    s.drive("1", delay=25)
    CycleEngine(sim, clk, period=10).run_cycles(4)
    assert s.value == "1"


def test_cycle_based_uses_fewer_kernel_events():
    """The whole point: fewer scheduler operations per cycle."""
    def build(use_cycle_engine):
        sim = Simulator()
        clk = sim.signal("clk", init="0")
        Counter(sim, "c", clk, width=16)
        if use_cycle_engine:
            CycleEngine(sim, clk, period=10).run_cycles(500)
        else:
            sim.add_clock(clk, period=10)
            sim.run(until=5000)
        return sim

    event_driven = build(False)
    cycle_based = build(True)
    assert cycle_based.process_runs < event_driven.process_runs


def test_invalid_configs():
    sim = Simulator()
    clk = sim.signal("clk", init="0")
    with pytest.raises(ValueError):
        CycleEngine(sim, clk, period=1, attach=False)
    with pytest.raises(ValueError):
        CycleEngine(sim, clk, period=10, duty_ticks=10, attach=False)


def test_only_one_engine_attaches():
    from repro.hdl import SimulationError
    sim = Simulator()
    clk = sim.signal("clk", init="0")
    CycleEngine(sim, clk, period=10)
    with pytest.raises(SimulationError):
        CycleEngine(sim, clk, period=10)


def test_attached_engine_drives_sim_run():
    """sim.run(until=...) is engine-driven when an engine is attached:
    same edge schedule as the generator clock, no heap traffic."""
    sim = Simulator()
    clk = sim.signal("clk", init="0")
    CycleEngine(sim, clk, period=10)
    transitions = []
    sim.add_process("watch",
                    lambda s: transitions.append((s.now, clk.value)),
                    sensitivity=[clk])
    sim.run(until=30)
    assert sim.now == 30
    # same sequence the event-driven clock produces (test_clock_toggles)
    assert transitions == [(0, "0"), (5, "1"), (10, "0"), (15, "1"),
                           (20, "0"), (25, "1"), (30, "0")]
    # resume from the middle of a period
    sim.run(until=47)
    assert sim.now == 47
    assert transitions[-1] == (45, "1")
    assert clk.value == "1"


# ---------------------------------------------------------------------------
# Kernel-equivalence regression (tentpole guarantee)
# ---------------------------------------------------------------------------

def _build_fabric_bench(sim, clk, cells=6):
    """A small switch-fabric DUT with octet-serial senders/monitors."""
    fabric = AtmSwitchRtl(sim, "fabric", clk, num_ports=2,
                          queue_depth=16)
    receivers = []
    for port in range(2):
        vci = 100 + port
        fabric.install_connection(port, 1, vci, (port + 1) % 2, 1, vci)
        sender = CellSender(sim, f"gen{port}", clk,
                            port=fabric.rx_ports[port])
        receivers.append(CellReceiver(sim, f"mon{port}", clk,
                                      fabric.tx_ports[port]))
        for i in range(cells):
            sender.send(AtmCell.with_payload(1, vci, [i]).to_octets())
    return fabric, receivers


def _run_fabric(clocking, vcd_path, ticks=53 * 12 * 10):
    sim = Simulator()
    clk = sim.signal("clk", init="0")
    if clocking == "event":
        sim.add_clock(clk, period=10)
    else:
        CycleEngine(sim, clk, period=10)
    fabric, receivers = _build_fabric_bench(sim, clk)
    watched = [clk]
    for port in fabric.rx_ports + fabric.tx_ports:
        watched.extend(port.signals())
    with VcdWriter(sim, vcd_path, watched):
        sim.run(until=ticks)
    return sim, receivers, vcd_path.read_text()


def test_switch_fabric_trace_identical_under_both_clocks(tmp_path):
    """The fast-dispatch cycle path must be trace-identical to the
    seed event-driven clock: same VCD dump, byte-identical output cell
    streams, same kernel event counts."""
    sim_e, recv_e, vcd_e = _run_fabric("event", tmp_path / "event.vcd")
    sim_c, recv_c, vcd_c = _run_fabric("cycle", tmp_path / "cycle.vcd")

    assert vcd_c == vcd_e                       # identical waveforms
    for a, b in zip(recv_c, recv_e):
        assert a.cells == b.cells               # byte-identical cells
        assert a.framing_errors == b.framing_errors == 0
    assert sum(len(r.cells) for r in recv_c) == 12
    assert sim_c.events_executed == sim_e.events_executed
    assert sim_c.signal_events == sim_e.signal_events
    assert sim_c.now == sim_e.now
    # ... while doing strictly less scheduling work
    assert sim_c.process_runs < sim_e.process_runs
