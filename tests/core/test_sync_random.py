"""Randomised schedules for the conservative protocol (§3.1).

Complements the Hypothesis property test in test_sync.py with longer,
seeded, fully deterministic interleavings of every originator-side
operation — ``post`` on both queues, ``advance_time`` (including
deliberately stale stamps) and mid-run ``drain`` — checking after
every step that the HDL simulator never overtakes the originator, and
at the end that every posted message was delivered exactly once, per
queue in order.
"""

import random

import pytest

from repro.core import ConservativeSynchronizer, TimeBase
from repro.hdl import Simulator

SEEDS = [0, 1, 7, 42, 1998]
STEPS = 120


def build(delivered):
    tb = TimeBase(tick_seconds=1e-9, clock_period_ticks=10)
    hdl = Simulator()
    clk = hdl.signal("clk", init="0")
    hdl.add_clock(clk, period=tb.clock_period_ticks)
    sync = ConservativeSynchronizer(
        hdl, tb, {"cell": 55, "tick": 2},
        handlers={"cell": lambda m: delivered.append(("cell", m.payload)),
                  "tick": lambda m: delivered.append(("tick", m.payload))})
    return tb, hdl, sync


@pytest.mark.parametrize("seed", SEEDS)
def test_random_schedule_keeps_lag_invariant_and_delivers_all(seed):
    rng = random.Random(seed)
    delivered = []
    tb, hdl, sync = build(delivered)

    current = 0.0  # non-decreasing originator clock
    posted = {"cell": 0, "tick": 0}
    for _ in range(STEPS):
        op = rng.choices(["cell", "tick", "null", "stale_null", "drain"],
                         weights=[8, 4, 4, 2, 1])[0]
        if op == "drain":
            sync.drain(current + rng.randint(1, 2000) * 1e-9)
            # drain may advance the originator past the drain stamp
            # (the final processing window); keep posting ahead of it
            current = max(current, sync.originator_time, sync.t_cur)
        elif op == "stale_null":
            # a stamp at or behind the known originator time: must be
            # harmless and counted, never raise
            before = sync.stats.stale_advances
            sync.advance_time(current * rng.random())
            assert sync.stats.stale_advances >= before
        elif op == "null":
            current += rng.randint(1, 5000) * 1e-9
            sync.advance_time(current)
        else:
            current += rng.randint(0, 3000) * 1e-9
            sync.post(op, current, posted[op])
            posted[op] += 1
        # the safety property, after every single operation
        assert tb.to_seconds(hdl.now) <= sync.originator_time + 1e-12

    sync.drain(current + 1e-5)
    assert sync.queues.pending() == 0
    assert len(delivered) == posted["cell"] + posted["tick"]
    for name in ("cell", "tick"):
        payloads = [p for (kind, p) in delivered if kind == name]
        assert payloads == list(range(posted[name]))


@pytest.mark.parametrize("seed", SEEDS[:2])
def test_random_schedule_is_deterministic(seed):
    """Two runs of the same seed produce identical delivery traces and
    identical statistics — the reproducibility claim of the harness."""

    def run():
        rng = random.Random(seed)
        delivered = []
        tb, hdl, sync = build(delivered)
        current = 0.0
        for step in range(60):
            if rng.random() < 0.6:
                current += rng.randint(0, 2000) * 1e-9
                sync.post(rng.choice(["cell", "tick"]), current, step)
            else:
                current += rng.randint(1, 4000) * 1e-9
                sync.advance_time(current)
        sync.drain(current + 1e-5)
        return delivered, sync.stats.as_dict(), hdl.now

    assert run() == run()
