"""Reference-vs-DUT stream comparison (the "=?" of Figure 1).

"The responses from the device under test (DUT) are sent back to the
CASTANET interface node and can be compared to the reference model's
responses at the system level."

:class:`StreamComparator` collects two streams — reference and
observed — and produces a :class:`VerificationReport`.  Ordering
policies cover the realistic cases: strict in-order comparison, and
comparison after normalisation (sorting) for DUTs whose emission order
within a batch is an implementation detail (e.g. accounting records
within one tariff interval).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence

__all__ = ["StreamComparator", "VerificationReport", "Mismatch"]


@dataclass(frozen=True)
class Mismatch:
    """One divergence between the streams."""

    index: int
    expected: Any
    observed: Any


@dataclass
class VerificationReport:
    """Outcome of one reference-vs-DUT comparison."""

    name: str
    compared: int
    matched: int
    mismatches: List[Mismatch]
    missing: int          # reference items the DUT never produced
    unexpected: int       # DUT items with no reference counterpart

    @property
    def passed(self) -> bool:
        """True when the streams agree completely."""
        return (not self.mismatches and self.missing == 0
                and self.unexpected == 0)

    def summary(self) -> str:
        """One-line human-readable verdict."""
        verdict = "PASS" if self.passed else "FAIL"
        return (f"[{verdict}] {self.name}: {self.matched}/{self.compared} "
                f"matched, {len(self.mismatches)} mismatched, "
                f"{self.missing} missing, {self.unexpected} unexpected")


class StreamComparator:
    """Collects reference and observed items, then compares.

    Args:
        name: label for the report.
        key: optional projection applied to every item before
            comparison (e.g. drop a timestamp field).
        normalize: "ordered" for strict sequence comparison, or
            "sorted" to compare as multisets (sorted by the projected
            value) when emission order is not part of the contract.
    """

    def __init__(self, name: str = "dut-vs-reference",
                 key: Optional[Callable[[Any], Any]] = None,
                 normalize: str = "ordered") -> None:
        if normalize not in ("ordered", "sorted"):
            raise ValueError(f"unknown normalisation {normalize!r}")
        self.name = name
        self.key = key if key is not None else lambda item: item
        self.normalize = normalize
        self.reference: List[Any] = []
        self.observed: List[Any] = []

    # -- collection ---------------------------------------------------------
    def add_reference(self, item: Any) -> None:
        """Record one reference-model output."""
        self.reference.append(self.key(item))

    def add_observed(self, item: Any) -> None:
        """Record one DUT output."""
        self.observed.append(self.key(item))

    def extend_reference(self, items: Sequence[Any]) -> None:
        """Record many reference outputs."""
        for item in items:
            self.add_reference(item)

    def extend_observed(self, items: Sequence[Any]) -> None:
        """Record many DUT outputs."""
        for item in items:
            self.add_observed(item)

    # -- verdict ------------------------------------------------------------
    def compare(self) -> VerificationReport:
        """Produce the verification report for everything collected."""
        expected = list(self.reference)
        observed = list(self.observed)
        if self.normalize == "sorted":
            expected.sort(key=repr)
            observed.sort(key=repr)
        mismatches: List[Mismatch] = []
        matched = 0
        compared = min(len(expected), len(observed))
        for index in range(compared):
            if expected[index] == observed[index]:
                matched += 1
            else:
                mismatches.append(Mismatch(index, expected[index],
                                           observed[index]))
        return VerificationReport(
            name=self.name, compared=compared, matched=matched,
            mismatches=mismatches,
            missing=max(0, len(expected) - len(observed)),
            unexpected=max(0, len(observed) - len(expected)))
