"""E1 — co-simulation throughput vs a pure-RTL test bench (paper §2).

The paper's headline numbers: processing 10,000 ATM cells through a
switch of four port modules + one global control unit runs at about
1,300 clock cycles/second co-simulated, against about 300 clock
cycles/second for a pure RTL representation — a ~4.3x advantage for
the co-verification environment, because everything except the DUT
stays at the abstract level.

We reproduce the *shape*: the same cell workload runs (a) through the
co-verification setup (abstract switch + RTL accounting DUT via
CASTANET) and (b) through the fully-RTL bench (4 RTL port modules,
RTL stimulus senders and monitors, idle cells clocked at bit level).
Reported metric: simulated DUT clock cycles per wall-clock second.
Absolute numbers depend on the host; the co-sim/pure-RTL ratio should
land in the 2-10x band around the paper's 4.3x.
"""

import time


from repro.analysis import ExperimentResult, format_table, speedup

from .common import (build_cosim_accounting, build_pure_rtl_system,
                     run_cosim_accounting, save_table, scaled)

CELLS = scaled(160)


def _measure_cosim():
    env, dut, entity, reference = build_cosim_accounting(CELLS)
    start = time.perf_counter()
    stats = run_cosim_accounting(env, dut, entity, reference)
    elapsed = time.perf_counter() - start
    return stats, elapsed


def _measure_pure_rtl():
    sim, run = build_pure_rtl_system(CELLS // 4)
    start = time.perf_counter()
    stats = run()
    elapsed = time.perf_counter() - start
    return stats, elapsed


def test_e1_cosim_faster_than_pure_rtl(benchmark):
    cosim_stats, cosim_time = _measure_cosim()
    rtl_stats, rtl_time = _measure_pure_rtl()

    cosim_rate = cosim_stats["hdl_clocks"] / cosim_time
    rtl_rate = rtl_stats["hdl_clocks"] / rtl_time
    factor = speedup(1.0 / cosim_rate, 1.0 / rtl_rate)

    rows = [
        ExperimentResult("co-simulation (CASTANET)", {
            "cells": cosim_stats["cells"],
            "hdl_clocks": cosim_stats["hdl_clocks"],
            "wall_s": cosim_time,
            "clock_cycles_per_s": cosim_rate,
        }),
        ExperimentResult("pure RTL test bench", {
            "cells": rtl_stats["dut_cells"],
            "hdl_clocks": rtl_stats["hdl_clocks"],
            "wall_s": rtl_time,
            "clock_cycles_per_s": rtl_rate,
        }),
        ExperimentResult("speed-up (paper: ~4.3x)", {
            "clock_cycles_per_s": cosim_rate / rtl_rate,
        }),
    ]
    save_table("e1_cosim_vs_rtl.txt", format_table(
        "E1: co-simulation vs pure-RTL throughput "
        f"({CELLS} cells, 25% load)",
        ["cells", "hdl_clocks", "wall_s", "clock_cycles_per_s"], rows))

    # the paper's qualitative claim: co-simulation is markedly faster
    assert cosim_rate > 1.5 * rtl_rate, (
        f"co-sim {cosim_rate:.0f} cyc/s vs RTL {rtl_rate:.0f} cyc/s")
    # all cells crossed both systems
    assert cosim_stats["cells"] == CELLS

    # pytest-benchmark timing of the co-simulation path
    def run_once():
        env, dut, entity, reference = build_cosim_accounting(
            max(8, CELLS // 4))
        run_cosim_accounting(env, dut, entity, reference)

    benchmark.pedantic(run_once, rounds=1, iterations=1)


def test_e1_functional_equivalence_maintained(benchmark):
    """Throughput means nothing if the co-simulated DUT diverges: the
    records produced through the coupling must match the reference."""
    from repro.core import StreamComparator
    from .common import (collect_rtl_records, group_records,
                         reference_records)

    def run_once():
        env, dut, entity, reference = build_cosim_accounting(
            max(16, CELLS // 4))
        words = collect_rtl_records(env.hdl, env.clk, dut)
        run_cosim_accounting(env, dut, entity, reference)
        comparator = StreamComparator("e1", normalize="sorted")
        comparator.extend_reference(reference_records(reference))
        comparator.extend_observed(group_records(words))
        report = comparator.compare()
        assert report.passed, report.summary()
        return report

    report = benchmark.pedantic(run_once, rounds=1, iterations=1)
    assert report.matched == 4  # one record per registered connection
