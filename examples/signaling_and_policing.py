#!/usr/bin/env python
"""Signalling + traffic management: software and hardware layers
together.

The paper's introduction: ATM "HW functionality ... is interacting
with the complexity of embedded control software, that implements
higher-layer functionality, such as call admission control agents and
signaling protocols".  This example runs both layers:

1. a call-control FSM (software layer, network simulator) signals
   connections into a switch — setup, acknowledgement, hold, release;
2. while a call is connected, its cell stream is policed by the RTL
   UPC block (hardware layer, HDL simulator), with non-conforming
   cells CLP-tagged — and the RTL's verdicts are co-verified against
   the algorithmic GCRA.

Run:  python examples/signaling_and_policing.py
"""

from repro.atm import (AtmCell, AtmSwitch, CallControlProcess,
                       CallRequest, VirtualScheduling)
from repro.hdl import Simulator
from repro.netsim import Network, ProcessorModule
from repro.rtl import CellReceiver, CellSender, UpcPolicerRtl

HOLD_TIME = 2e-3
CONTRACT_CLOCKS = 120   # contracted inter-cell spacing (DUT clocks)
CDV_CLOCKS = 60
BURST = 14


def run_signalling():
    """Layer 1: the call-control FSM against the switch GCU."""
    net = Network()
    switch = AtmSwitch(net, "switch", num_ports=4)
    host = net.add_node("host")
    agent = CallControlProcess([
        CallRequest(in_port=0, vpi=1, vci=100, out_port=2, out_vpi=1,
                    out_vci=100, hold_time=HOLD_TIME),
        CallRequest(in_port=1, vpi=1, vci=200, out_port=3, out_vpi=1,
                    out_vci=200, hold_time=HOLD_TIME),
    ])
    module = ProcessorModule("cc", agent)
    host.add_module(module)
    host.bind_port_output(0, module, 0)
    host.bind_port_input(0, module, 0)
    net.add_duplex_link(host, 0, switch.node, switch.control_port,
                        delay=2e-5)
    net.run(until=0.05)
    print("-- signalling layer " + "-" * 44)
    print(f"calls established : {agent.calls_established}")
    print(f"calls released    : {agent.calls_released}")
    print(f"GCU messages      : {switch.gcu.control_messages} "
          f"(setup/teardown), final table size {len(switch.table)}")
    return agent


def run_policing():
    """Layer 2: the RTL UPC block on the connected call's cells."""
    sim = Simulator()
    clk = sim.signal("clk", init="0")
    sim.add_clock(clk, period=10)
    dut = UpcPolicerRtl(sim, "upc", clk, action="tag")
    dut.install_contract(1, 100, increment_clocks=CONTRACT_CLOCKS,
                         limit_clocks=CDV_CLOCKS)
    sender = CellSender(sim, "gen", clk, port=dut.rx, gap_octets=13)
    receiver = CellReceiver(sim, "mon", clk, dut.tx)
    for i in range(BURST):
        sender.send(AtmCell.with_payload(1, 100, [i]).to_octets())
    sim.run(until=10 * (66 * (BURST + 3) + 400))

    reference = VirtualScheduling(increment=float(CONTRACT_CLOCKS),
                                  limit=float(CDV_CLOCKS))
    mismatches = sum(
        1 for d in dut.decisions
        if reference.arrival(float(d.clock)) != d.conforming)

    print("\n-- traffic-management hardware " + "-" * 33)
    print(f"cells policed     : {len(dut.decisions)} "
          f"(burst at ~66-clock spacing vs {CONTRACT_CLOCKS}-clock "
          "contract)")
    print(f"conforming        : {dut.cells_conforming}")
    print(f"tagged (CLP=1)    : {dut.cells_non_conforming}")
    tagged_out = sum(
        1 for octs in receiver.cells if AtmCell.from_octets(octs).clp)
    print(f"tagged on the wire: {tagged_out} (HEC regenerated, "
          "verified on receive)")
    print(f"RTL vs reference GCRA verdict mismatches: {mismatches}")
    return dut, mismatches


def main() -> int:
    agent = run_signalling()
    dut, mismatches = run_policing()
    ok = (agent.calls_established == 2 and agent.calls_released == 2
          and dut.cells_non_conforming > 0 and mismatches == 0)
    print("\nverdict:", "both layers behave and agree with their "
          "references" if ok else "PROBLEM")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
