"""Lightweight metric primitives for the co-verification stack.

The paper's quantitative claims — deadlock-free conservative coupling
(§3.1), the ~1:400 time-granularity ratio, the E2 sync-exchange counts
— all rest on numbers that previously lived in ad-hoc counters.  This
module provides the shared vocabulary for measuring them:

* :class:`Counter` — a monotonically increasing integer;
* :class:`Histogram` — a fixed-bucket distribution (count/total/min/
  max plus per-bucket tallies) for lag, queue-wait and latency samples;
* :class:`SpanTimer` — a context manager recording wall-clock spans
  into a histogram;
* :class:`MetricsRegistry` — the named instrument store with a
  machine-readable :meth:`~MetricsRegistry.snapshot`.

Overhead discipline: a *disabled* registry hands out shared null
instruments whose mutators are no-ops, so instrumented call sites pay
one attribute lookup and one no-op call at most; hot kernel loops are
never instrumented per event at all — the kernels keep their own plain
integer counters and observability snapshots them (see
``Simulator.stats_snapshot`` and ``Kernel.stats_snapshot``).
"""

from __future__ import annotations

import json
import time
from bisect import bisect_left
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple, Union

__all__ = ["Counter", "Histogram", "SpanTimer", "MetricsRegistry",
           "NULL_REGISTRY", "DEFAULT_SECONDS_BOUNDS"]


def _decade_125_bounds(lo_exp: int, hi_exp: int) -> Tuple[float, ...]:
    """1-2-5 series bucket bounds covering 10^lo_exp .. 10^hi_exp."""
    bounds = []
    for exp in range(lo_exp, hi_exp + 1):
        for mantissa in (1.0, 2.0, 5.0):
            bounds.append(mantissa * 10.0 ** exp)
    return tuple(bounds)


#: default bucket bounds for seconds-valued samples: 1 ns .. 5 s in a
#: 1-2-5 series (lag, queue-wait and latency samples all fall here)
DEFAULT_SECONDS_BOUNDS = _decade_125_bounds(-9, 0)


class Counter:
    """A named monotonically increasing counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add *amount* (default 1)."""
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name}={self.value})"


class Histogram:
    """A fixed-bound bucket histogram over float samples.

    Args:
        name: instrument name.
        bounds: ascending upper bucket bounds; a sample lands in the
            first bucket whose bound is >= the sample, or in the
            overflow bucket past the last bound.  Defaults to
            :data:`DEFAULT_SECONDS_BOUNDS`.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total",
                 "min", "max")

    def __init__(self, name: str,
                 bounds: Optional[Sequence[float]] = None) -> None:
        self.name = name
        chosen = tuple(bounds) if bounds is not None \
            else DEFAULT_SECONDS_BOUNDS
        if list(chosen) != sorted(chosen):
            raise ValueError(f"histogram {name}: bounds not ascending")
        self.bounds: Tuple[float, ...] = chosen
        self.bucket_counts = [0] * (len(chosen) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def record(self, sample: float) -> None:
        """Add one sample."""
        self.count += 1
        self.total += sample
        if self.min is None or sample < self.min:
            self.min = sample
        if self.max is None or sample > self.max:
            self.max = sample
        self.bucket_counts[bisect_left(self.bounds, sample)] += 1

    @property
    def mean(self) -> float:
        """Arithmetic mean of all samples (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> Optional[float]:
        """Approximate *q*-quantile (the upper bound of the bucket the
        rank falls into); ``None`` when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        if self.count == 0:
            return None
        rank = q * self.count
        seen = 0
        for index, bucket in enumerate(self.bucket_counts):
            seen += bucket
            if seen >= rank and bucket:
                if index < len(self.bounds):
                    return self.bounds[index]
                return self.max
        return self.max

    def as_dict(self) -> Dict[str, object]:
        """Snapshot view: summary statistics plus non-empty buckets."""
        buckets = []
        for index, bucket in enumerate(self.bucket_counts):
            if bucket == 0:
                continue
            le: Union[float, str] = (self.bounds[index]
                                     if index < len(self.bounds)
                                     else "inf")
            buckets.append({"le": le, "count": bucket})
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.5),
            "p99": self.quantile(0.99),
            "buckets": buckets,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Histogram({self.name}: n={self.count}, "
                f"mean={self.mean:g})")


class SpanTimer:
    """Context manager recording a wall-clock span into a histogram.

    Example:
        >>> registry = MetricsRegistry()
        >>> with registry.timer("phase.run_wall_s"):
        ...     pass
        >>> registry.histogram("phase.run_wall_s").count
        1
    """

    __slots__ = ("histogram", "_start")

    def __init__(self, histogram: Histogram) -> None:
        self.histogram = histogram
        self._start = 0.0

    def __enter__(self) -> "SpanTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.histogram.record(time.perf_counter() - self._start)


class _NullCounter:
    """Shared no-op counter handed out by disabled registries."""

    __slots__ = ()
    name = "<null>"
    value = 0

    def inc(self, amount: int = 1) -> None:
        """Discard the increment."""


class _NullHistogram:
    """Shared no-op histogram handed out by disabled registries."""

    __slots__ = ()
    name = "<null>"
    count = 0
    total = 0.0
    min = None
    max = None
    mean = 0.0

    def record(self, sample: float) -> None:
        """Discard the sample."""

    def quantile(self, q: float) -> Optional[float]:
        """Return ``None`` — a null histogram has no samples."""
        return None

    def as_dict(self) -> Dict[str, object]:
        """Return the empty-histogram export shape."""
        return {"count": 0, "total": 0.0, "mean": 0.0, "min": None,
                "max": None, "p50": None, "p99": None, "buckets": []}


class _NullTimer:
    """Shared no-op span timer."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_HISTOGRAM = _NullHistogram()
_NULL_TIMER = _NullTimer()


class MetricsRegistry:
    """Named store of counters and histograms.

    Args:
        enabled: when ``False`` every accessor returns a shared no-op
            instrument and :meth:`snapshot` stays empty — the near-zero
            "observability off" mode.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument access -------------------------------------------------
    def counter(self, name: str) -> Counter:
        """The counter called *name*, created on first use."""
        if not self.enabled:
            return _NULL_COUNTER  # type: ignore[return-value]
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def histogram(self, name: str,
                  bounds: Optional[Sequence[float]] = None) -> Histogram:
        """The histogram called *name*, created on first use."""
        if not self.enabled:
            return _NULL_HISTOGRAM  # type: ignore[return-value]
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(name, bounds)
        return histogram

    def timer(self, name: str) -> SpanTimer:
        """A span timer recording into ``histogram(name)``."""
        if not self.enabled:
            return _NULL_TIMER  # type: ignore[return-value]
        return SpanTimer(self.histogram(name))

    # -- export ------------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Machine-readable view of every instrument."""
        return {
            "counters": {name: c.value
                         for name, c in sorted(self._counters.items())},
            "histograms": {name: h.as_dict()
                           for name, h in
                           sorted(self._histograms.items())},
        }

    def to_json(self, path: Union[str, Path]) -> Path:
        """Write :meth:`snapshot` as indented JSON; returns the path."""
        path = Path(path)
        path.write_text(json.dumps(self.snapshot(), indent=2,
                                   sort_keys=True) + "\n")
        return path


#: the shared disabled registry — hand this to components when
#: observability is off; every instrument it returns is a no-op
NULL_REGISTRY = MetricsRegistry(enabled=False)
