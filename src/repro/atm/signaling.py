"""Call-control signalling as communicating extended FSMs.

The paper's introduction places "call admission control agents and
signaling protocols" in the embedded-software / higher-layer part of
an ATM system — exactly the kind of behaviour the process domain's
extended FSMs exist to model.  :class:`CallControlProcess` is a
Q.2931-flavoured connection agent:

    idle ──(call request)──> setup-sent ──(ack)──> connected
      ▲                        │  (timeout: retry up to N, then fail)
      └──(release done)── teardown <──(hold timer expires)

The switch side is :class:`~repro.atm.switch.GlobalControlUnit`, which
acknowledges setups/teardowns on its control interface when the
``ack_port`` of the hosting node is wired.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..netsim.events import InterruptKind
from ..netsim.packet import Packet
from ..netsim.process import ProcessModel, State
from .accounting import Tariff
from .switch import make_setup_packet, make_teardown_packet

__all__ = ["CallControlProcess", "CallRequest", "CALL_TIMER",
           "HOLD_TIMER"]

#: SELF-interrupt codes
CALL_TIMER = 1
HOLD_TIMER = 2


@dataclass
class CallRequest:
    """One connection the agent should establish and hold."""

    in_port: int
    vpi: int
    vci: int
    out_port: int
    out_vpi: int
    out_vci: int
    hold_time: float
    tariff: Optional[Tariff] = None


class CallControlProcess(ProcessModel):
    """A signalling agent establishing calls through a switch GCU.

    Args:
        requests: the calls to place, one after the other.
        setup_timeout: seconds to wait for an acknowledgement.
        max_retries: setup retransmissions before declaring failure.

    The process sends control messages on output stream 0 (wire it to
    the switch's control port) and expects acknowledgement packets —
    ``{"op": "ack", "vpi": ..., "vci": ...}`` — on input stream 0.

    Outcome counters: :attr:`calls_established`, :attr:`calls_failed`,
    :attr:`calls_released`.
    """

    def __init__(self, requests: List[CallRequest],
                 setup_timeout: float = 1e-3,
                 max_retries: int = 3) -> None:
        super().__init__("call-control")
        if setup_timeout <= 0:
            raise ValueError("non-positive setup timeout")
        if max_retries < 0:
            raise ValueError("negative retry limit")
        self.requests = list(requests)
        self.setup_timeout = setup_timeout
        self.max_retries = max_retries
        self.calls_established = 0
        self.calls_failed = 0
        self.calls_released = 0
        self._active_request: Optional[CallRequest] = None
        self._retries = 0
        self._build_fsm()

    # ------------------------------------------------------------------
    # FSM construction
    # ------------------------------------------------------------------
    def _build_fsm(self) -> None:
        self.add_state(State("init", forced=True,
                             enter=self._next_call), initial=True)
        self.add_state(State("idle"))
        self.add_state(State("setup_sent"))
        self.add_state(State("retry", forced=True,
                             enter=self._on_retry))
        self.add_state(State("connected", enter=self._on_connected))
        self.add_state(State("release", forced=True,
                             enter=self._on_release))
        self.add_state(State("failed", forced=True,
                             enter=self._on_failed))
        self.add_state(State("done"))

        self.add_transition("init", "setup_sent",
                            guard=lambda p, i: p._active_request is not None)
        self.add_transition("init", "done")

        self.add_transition(
            "setup_sent", "connected",
            guard=lambda p, i: (i.kind == InterruptKind.STREAM
                                and p._is_my_ack(i.data)))
        self.add_transition(
            "setup_sent", "retry",
            guard=lambda p, i: (i.kind == InterruptKind.SELF
                                and i.code == CALL_TIMER
                                and p._retries < p.max_retries))
        self.add_transition(
            "setup_sent", "failed",
            guard=lambda p, i: (i.kind == InterruptKind.SELF
                                and i.code == CALL_TIMER))
        self.add_transition("retry", "setup_sent")

        self.add_transition(
            "connected", "release",
            guard=lambda p, i: (i.kind == InterruptKind.SELF
                                and i.code == HOLD_TIMER))
        self.add_transition("release", "init")
        self.add_transition("failed", "init")

    # ------------------------------------------------------------------
    # State executives
    # ------------------------------------------------------------------
    def _next_call(self, _p: ProcessModel) -> None:
        self._active_request = (self.requests.pop(0) if self.requests else None)
        self._retries = 0
        if self._active_request is not None:
            self._send_setup()

    def _send_setup(self) -> None:
        request = self._active_request
        self.send(make_setup_packet(
            request.in_port, request.vpi, request.vci,
            request.out_port, request.out_vpi, request.out_vci,
            tariff=request.tariff))
        self.schedule_self(self.setup_timeout, code=CALL_TIMER)

    def _on_retry(self, _p: ProcessModel) -> None:
        self._retries += 1
        self._send_setup()

    def _is_my_ack(self, packet: Packet) -> bool:
        return (isinstance(packet, Packet)
                and packet.get("op") == "ack"
                and packet.get("vpi") == self._active_request.vpi
                and packet.get("vci") == self._active_request.vci)

    def _on_connected(self, _p: ProcessModel) -> None:
        self.cancel_self_interrupts()
        self.calls_established += 1
        self.schedule_self(self._active_request.hold_time, code=HOLD_TIMER)

    def _on_release(self, _p: ProcessModel) -> None:
        request = self._active_request
        self.send(make_teardown_packet(request.in_port, request.vpi,
                                       request.vci))
        self.calls_released += 1

    def _on_failed(self, _p: ProcessModel) -> None:
        self.cancel_self_interrupts()
        self.calls_failed += 1
