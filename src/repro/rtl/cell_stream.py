"""Octet-serial cell stream interface (the bit-level side of Figure 4).

The paper's abstraction interface maps an OPNET packet to "an 8-bit
wide VHDL port signal ... it takes 53 clock cycles within the hardware
simulator to read the cell.  Additionally, the interface model
generates control signals such as a cell synchronization signal".

These components implement that signal-level convention, shared by the
RTL DUTs and by CASTANET's co-simulation entity:

* ``atmdata[7:0]`` — one cell octet per clock,
* ``cellsync``    — '1' together with octet 0 of each cell,
* ``valid``       — '1' while an octet is present.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional, Sequence

from ..hdl.logic import vector_to_int
from ..hdl.processes import RisingEdge
from ..hdl.signal import Signal
from ..hdl.simulator import Simulator
from .component import Component

__all__ = ["CellStreamPort", "CellSender", "CellReceiver", "CELL_OCTETS"]

CELL_OCTETS = 53


class CellStreamPort:
    """The signal bundle of one octet-serial cell interface."""

    def __init__(self, sim: Simulator, name: str) -> None:
        self.name = name
        self.atmdata = sim.signal(f"{name}.atmdata", width=8, init=0)
        self.cellsync = sim.signal(f"{name}.cellsync", init="0")
        self.valid = sim.signal(f"{name}.valid", init="0")

    def signals(self) -> List[Signal]:
        """All signals of the bundle (for VCD dumps)."""
        return [self.atmdata, self.cellsync, self.valid]


class CellSender(Component):
    """Clocks queued cells (53-octet sequences) onto a stream port.

    Cells are queued with :meth:`send`; the sender drives one octet per
    rising clock edge, inserting idle (valid='0') slots when the queue
    is empty.  ``gap_octets`` adds that many idle clocks between
    consecutive cells (inter-cell spacing).
    """

    def __init__(self, sim: Simulator, name: str, clk: Signal,
                 port: Optional[CellStreamPort] = None,
                 gap_octets: int = 0) -> None:
        super().__init__(sim, name)
        self.port = port if port is not None else CellStreamPort(sim, name)
        self.gap_octets = gap_octets
        self._queue: Deque[Sequence[int]] = deque()
        self.cells_sent = 0
        #: optional observer invoked after a cell's last octet has been
        #: driven (used for per-cell ingress-latency accounting)
        self.on_cell_sent: Optional[Callable[[], None]] = None

        def run():
            # One reusable wait object and local bindings: this loop
            # runs once per clock for the whole simulation.
            edge = RisingEdge(clk)
            queue = self._queue
            atmdata = self.port.atmdata
            cellsync = self.port.cellsync
            valid = self.port.valid
            while True:
                if not queue:
                    self._drive_idle()
                    yield edge
                    continue
                octets = queue.popleft()
                # Drive one octet after each rising edge; the consumer
                # samples it on the following edge.
                for index, octet in enumerate(octets):
                    atmdata.drive(octet)
                    cellsync.drive("1" if index == 0 else "0")
                    valid.drive("1")
                    yield edge
                self.cells_sent += 1
                if self.on_cell_sent is not None:
                    self.on_cell_sent()
                self._drive_idle()
                for _ in range(self.gap_octets):
                    yield edge

        sim.add_generator(f"{name}.sender", run())

    def _drive_idle(self) -> None:
        self.port.valid.drive("0")
        self.port.cellsync.drive("0")

    def send(self, octets: Sequence[int]) -> None:
        """Queue one cell (a 53-octet sequence) for transmission."""
        if len(octets) != CELL_OCTETS:
            raise ValueError(
                f"a cell is {CELL_OCTETS} octets, got {len(octets)}")
        self._queue.append(list(octets))

    @property
    def backlog(self) -> int:
        """Cells queued but not yet (fully) transmitted."""
        return len(self._queue)


class CellReceiver(Component):
    """Collects octets from a stream port back into 53-octet cells.

    Each completed cell is appended to :attr:`cells` and passed to the
    optional ``on_cell`` callback.  Octets arriving without a preceding
    cellsync are counted as :attr:`framing_errors` and discarded.
    """

    def __init__(self, sim: Simulator, name: str, clk: Signal,
                 port: CellStreamPort,
                 on_cell: Optional[Callable[[List[int]], None]] = None
                 ) -> None:
        super().__init__(sim, name)
        self.port = port
        self.on_cell = on_cell
        self.cells: List[List[int]] = []
        self._partial: Optional[List[int]] = None
        self.framing_errors = 0
        # hot-loop bindings (one sample per clock edge)
        self._valid = port.valid
        self._cellsync = port.cellsync
        self._atmdata = port.atmdata
        self.clocked(clk, self._tick)

    @property
    def collecting(self) -> bool:
        """True while a cell is partially received."""
        return self._partial is not None

    def _tick(self) -> None:
        if self._valid.value != "1":
            return
        octet = vector_to_int(self._atmdata.value)
        if self._cellsync.value == "1":
            if self._partial is not None:
                self.framing_errors += 1
            self._partial = [octet]
        elif self._partial is None:
            self.framing_errors += 1
            return
        else:
            self._partial.append(octet)
        if self._partial is not None and len(self._partial) == CELL_OCTETS:
            cell = self._partial
            self._partial = None
            self.cells.append(cell)
            if self.on_cell is not None:
                self.on_cell(cell)
