"""End-to-end system-level scenarios across the ATM stack.

Video frames ride AAL5 over the switch; the receiving side reassembles
and verifies — including the failure mode (cell loss under overload
breaking AAL5 CRCs), which is why charging/policing hardware needs to
exist in the first place.
"""


from repro.atm import (AalError, AtmCell, AtmSwitch, Reassembler,
                       STM1_CELL_TIME, segment)
from repro.netsim import Network, SinkModule
from repro.traffic import MpegTraceSynthesizer


def build_switched_path(queue_capacity=None, in_rate=155.52e6):
    net = Network()
    switch = AtmSwitch(net, "switch", num_ports=2,
                       queue_capacity=queue_capacity)
    switch.install_connection(0, 1, 100, 1, 2, 200)
    tx_host = net.add_node("tx")
    rx_host = net.add_node("rx")
    sink = SinkModule("sink", keep=True)
    rx_host.add_module(sink)
    rx_host.bind_port_input(0, sink, 0)
    net.add_link(tx_host, 0, switch.node, 0, rate_bps=in_rate)
    net.add_link(switch.node, 1, rx_host, 0, rate_bps=155.52e6)
    return net, switch, tx_host, sink


def send_cells(net, host, cells, spacing=2 * STM1_CELL_TIME):
    for index, cell in enumerate(cells):
        when = index * spacing
        net.kernel.schedule(
            when, lambda c=cell, t=when: host.transmit(c.to_packet(t), 0))


def test_aal5_pdu_survives_the_switch():
    net, switch, tx_host, sink = build_switched_path()
    pdu = list(range(200))
    send_cells(net, tx_host, segment(1, 100, pdu))
    net.run()
    reasm = Reassembler()
    result = None
    for packet in sink.received:
        out = reasm.push(AtmCell.from_packet(packet))
        if out is not None:
            result = out
    assert result == pdu  # byte-exact through VPI/VCI translation


def test_mpeg_frames_over_aal5_over_switch():
    """A short synthetic video sequence end to end."""
    net, switch, tx_host, sink = build_switched_path()
    synthesizer = MpegTraceSynthesizer(seed=11)
    frames = []
    cells = []
    for _ in range(6):
        _t, ftype, size = synthesizer.next_frame()
        payload = [(len(frames) * 7 + i) % 256
                   for i in range(min(size, 800))]
        frames.append(payload)
        cells.extend(segment(1, 100, payload))
    send_cells(net, tx_host, cells)
    net.run()
    reasm = Reassembler()
    received = []
    for packet in sink.received:
        out = reasm.push(AtmCell.from_packet(packet))
        if out is not None:
            received.append(out)
    assert received == frames


def test_cell_loss_breaks_aal5_and_is_detected():
    """Overflowing the output queue loses cells; the AAL5 CRC at the
    receiver exposes the damage instead of silently passing it."""
    # an unthrottled ingress (e.g. a fast internal fabric feed) so the
    # burst reaches the 4-cell output queue faster than the line drains
    net, switch, tx_host, sink = build_switched_path(queue_capacity=4,
                                                     in_rate=None)
    pdu = [i % 256 for i in range(1500)]  # ~32 cells
    cells = segment(1, 100, pdu)
    send_cells(net, tx_host, cells, spacing=STM1_CELL_TIME / 8)
    net.run()
    assert switch.total_queue_drops() > 0
    reasm = Reassembler()
    failures = 0
    completed = []
    for packet in sink.received:
        try:
            out = reasm.push(AtmCell.from_packet(packet))
        except AalError:
            failures += 1
            continue
        if out is not None:
            completed.append(out)
    assert completed == []  # the damaged PDU never reassembles cleanly
    assert failures >= 1 or reasm.pending_connections() == 1


def test_two_pdus_back_to_back():
    net, switch, tx_host, sink = build_switched_path()
    pdu_a = [1] * 120
    pdu_b = [2] * 90
    send_cells(net, tx_host, segment(1, 100, pdu_a)
               + segment(1, 100, pdu_b))
    net.run()
    reasm = Reassembler()
    received = []
    for packet in sink.received:
        out = reasm.push(AtmCell.from_packet(packet))
        if out is not None:
            received.append(out)
    assert received == [pdu_a, pdu_b]
