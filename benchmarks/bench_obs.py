"""Observability overhead benchmark — the tracing cost gate.

Runs the observed E1 workload (``repro.obs.scenario.run_observed_e1``)
three ways and writes ``BENCH_obs.json`` at the repo root:

* **disabled** — metrics registry off, no provenance, no trace: the
  overhead baseline (the same null-instrument fast paths the perf
  benchmarks measure);
* **observed** — metrics + cell provenance at the default production
  sampling (1 in ``DEFAULT_SAMPLE`` journeys) + profiling spans on the
  four kernel hot paths: the configuration a long co-verification run
  would actually ship with;
* **traced** — everything on: every journey traced (``sample=1``) and
  the full JSONL decision trace written to disk (informational — this
  is the debug configuration, not the production one).

The gate: the *observed* configuration must keep at least
``1 - REPRO_OBS_BUDGET`` (default 0.95, i.e. <= 5 % overhead) of the
disabled throughput.  Each configuration reports the best of
``REPEATS`` runs so scheduler noise does not masquerade as overhead.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_obs.py

``REPRO_BENCH_SCALE`` scales the cell workload exactly as it does for
the other benchmarks (CI smoke-runs at 0.25).
"""

import os
import sys
import tempfile
from pathlib import Path

if __package__ in (None, ""):  # script mode
    sys.path.insert(0, str(Path(__file__).parent))
    from common import save_bench_json, scale, scaled
else:
    from .common import save_bench_json, scale, scaled

from repro.obs.scenario import run_observed_e1

#: default production sampling: trace 1 in N cell journeys
DEFAULT_SAMPLE = 16

#: best-of-N repeats per configuration
REPEATS = 3


def _budget() -> float:
    """Allowed fractional throughput cost of the observed config."""
    return float(os.environ.get("REPRO_OBS_BUDGET", "0.05"))


def _measure(cells, repeats=REPEATS, **kwargs):
    """Best-of-*repeats* run of the observed E1 scenario; returns the
    workload stats of the fastest run plus the observability knobs."""
    best = None
    for _ in range(repeats):
        report = run_observed_e1(cells=cells, **kwargs)
        workload = report["workload"]
        if best is None or (workload["cycles_per_s"]
                            > best["cycles_per_s"]):
            best = dict(workload)
            provenance = report.get("provenance")
            if provenance is not None:
                best["provenance"] = provenance
            if "trace_records" in report:
                best["trace_records"] = report["trace_records"]
    return best


def bench_obs(cells=None):
    """Overhead of the observability layer on the E1 workload."""
    cells = scaled(160) if cells is None else cells

    disabled = _measure(cells, observe=False, sample=0)
    observed = _measure(cells, observe=True, sample=DEFAULT_SAMPLE,
                        profile=True)
    with tempfile.TemporaryDirectory() as tmp:
        traced = _measure(cells, repeats=1, observe=True, sample=1,
                          profile=True,
                          trace=Path(tmp) / "bench.trace.jsonl")

    base_rate = disabled["cycles_per_s"]
    payload = {
        "cells": cells,
        "sample": DEFAULT_SAMPLE,
        "budget": _budget(),
        "disabled": disabled,
        "observed": observed,
        "traced": traced,
        "observed_overhead": 1.0 - observed["cycles_per_s"] / base_rate,
        "traced_overhead": 1.0 - traced["cycles_per_s"] / base_rate,
    }
    return payload


def main():
    budget = _budget()
    print(f"observability overhead benchmark "
          f"(budget {budget:.0%}, REPRO_BENCH_SCALE={scale():g})")
    payload = bench_obs()
    path = save_bench_json("obs", payload)
    for key in ("disabled", "observed", "traced"):
        stats = payload[key]
        note = ""
        if key != "disabled":
            overhead = payload[f"{key}_overhead"]
            note = f"  ({overhead:+.1%} vs disabled)"
        print(f"  {key:<9}: {stats['cycles_per_s']:>10.0f} cyc/s "
              f"({stats['wall_s']:.3f} s){note}")
    print(f"  -> {path}")

    if payload["observed_overhead"] > budget:
        print(f"FAIL: observed overhead "
              f"{payload['observed_overhead']:.1%} exceeds the "
              f"{budget:.0%} budget at 1-in-{DEFAULT_SAMPLE} sampling")
        return 1
    print(f"observed overhead {payload['observed_overhead']:.1%} "
          f"within the {budget:.0%} budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
