"""Integration tests: the full co-verification loop of Figure 1/2.

Network-level traffic drives an RTL DUT through the co-simulation
entity; DUT responses are compared against the algorithm reference
model at the system level.
"""

import pytest

from repro.atm import AccountingUnit, AtmCell, Tariff
from repro.core import CoVerificationEnvironment, StreamComparator, TapModule
from repro.netsim import SinkModule
from repro.rtl import (AccountingUnitRtl, AtmPortModuleRtl, RECORD_WORDS)
from repro.traffic import ConstantBitRate, TrafficSource

CELL_PERIOD = 4e-6  # comfortably above the 53-clock cell time


def build_port_module_env(lockstep=False, cells=10):
    """Traffic -> tap -> sink in netsim; port-module RTL as the DUT."""
    env = CoVerificationEnvironment(lockstep=lockstep)
    dut = AtmPortModuleRtl(env.hdl, "dut", env.clk)
    dut.install(1, 100, 2, 200)
    entity = env.add_dut(rx_port=dut.rx, tx_port=dut.tx)

    node = env.network.add_node("host")
    source = TrafficSource(
        "src", ConstantBitRate(period=CELL_PERIOD),
        packet_factory=lambda i: AtmCell.with_payload(
            1, 100, [i % 256]).to_packet(),
        count=cells)
    tap = env.make_cell_tap("tap", entity)
    sink = SinkModule("sink", keep=True)
    for module in (source, tap, sink):
        node.add_module(module)
    node.connect(source, 0, tap, 0)
    node.connect(tap, 0, sink, 0)
    return env, dut, entity, sink


class TestPortModuleCoverification:
    def test_all_cells_cross_the_boundary(self):
        env, dut, entity, sink = build_port_module_env(cells=5)
        env.run()
        env.finish()
        assert entity.cells_in == 5
        assert dut.cells_translated == 5
        assert len(entity.output_cells) == 5

    def test_dut_output_matches_reference_translation(self):
        env, dut, entity, sink = build_port_module_env(cells=8)
        comparator = env.comparator("port-module")
        entity.on_output = lambda t, cell: comparator.add_observed(
            (cell.vpi, cell.vci, cell.payload[0]))
        env.run()
        env.finish()
        # reference: the abstract translation applied to the tapped cells
        for packet in sink.received:
            cell = AtmCell.from_packet(packet)
            comparator.add_reference((2, 200, cell.payload[0]))
        report = comparator.compare()
        assert report.passed, report.summary()
        assert report.matched == 8

    def test_injected_rtl_bug_is_caught(self):
        """Mis-programming the translation RAM must FAIL the compare —
        the whole point of the environment."""
        env, dut, entity, sink = build_port_module_env(cells=4)
        dut.install(1, 100, 2, 999)  # wrong outgoing VCI
        comparator = env.comparator("port-module-buggy")
        entity.on_output = lambda t, cell: comparator.add_observed(
            (cell.vpi, cell.vci))
        env.run()
        env.finish()
        for _packet in sink.received:
            comparator.add_reference((2, 200))
        assert not comparator.compare().passed

    def test_hdl_time_lags_netsim_time_throughout(self):
        env, dut, entity, sink = build_port_module_env(cells=6)
        env.run()
        assert (env.timebase.to_seconds(env.hdl.now)
                <= env.network.kernel.now + 1e-12)
        env.finish()

    def test_lockstep_gives_same_functional_result(self):
        results = {}
        for lockstep in (False, True):
            env, dut, entity, sink = build_port_module_env(
                lockstep=lockstep, cells=5)
            env.run()
            env.finish()
            results[lockstep] = [(c.vpi, c.vci, c.payload[0])
                                 for _t, c in entity.output_cells]
        assert results[False] == results[True]

    def test_conservative_needs_fewer_sync_exchanges(self):
        """The §3.1 performance claim: the timing-window protocol
        synchronises per message, the naive coupling per clock."""
        exchanges = {}
        for lockstep in (False, True):
            env, dut, entity, sink = build_port_module_env(
                lockstep=lockstep, cells=5)
            env.run()
            env.finish()
            stats = entity.sync.stats
            exchanges[lockstep] = (stats.messages_posted
                                   + stats.null_messages)
        assert exchanges[False] < exchanges[True]


def build_accounting_env(bug=None, cells=12, lockstep=False):
    env = CoVerificationEnvironment(lockstep=lockstep)
    dut = AccountingUnitRtl(env.hdl, "acct", env.clk, bug=bug)
    dut.register(1, 100, units_per_cell=2, units_per_cell_clp1=1)
    dut.register(1, 200, units_per_cell=3)
    entity = env.add_dut(rx_port=dut.rx, tick_signal=dut.tariff_tick)

    reference = AccountingUnit(drop_unknown=True)
    reference.register(1, 100, Tariff(units_per_cell=2,
                                      units_per_cell_clp1=1))
    reference.register(1, 200, Tariff(units_per_cell=3))

    def factory(i):
        if i % 3 == 2:
            return AtmCell.with_payload(1, 200, [i % 256]).to_packet()
        return AtmCell.with_payload(1, 100, [i % 256],
                                    clp=i % 2).to_packet()

    node = env.network.add_node("host")
    source = TrafficSource("src", ConstantBitRate(period=CELL_PERIOD),
                           packet_factory=factory, count=cells)
    tap = env.make_cell_tap("tap", entity, forward=False)
    tap.add_hook(lambda t, pkt: reference.cell_arrival(
        pkt["VPI"], pkt["VCI"], clp=pkt.get("CLP", 0)))
    node.add_module(source)
    node.add_module(tap)
    node.connect(source, 0, tap, 0)
    return env, dut, entity, reference


def collect_dut_records(env, dut):
    """Sample the record output bus for the whole drain period."""
    words = []

    def gen():
        from repro.hdl import RisingEdge
        while True:
            yield RisingEdge(env.clk)
            if dut.rec_valid.value == "1":
                words.append(dut.rec_word.as_int())

    env.hdl.add_generator("records", gen())
    return words


class TestAccountingCoverification:
    def run_case(self, bug=None):
        env, dut, entity, reference = build_accounting_env(bug=bug)
        words = collect_dut_records(env, dut)
        env.run()
        # close the tariff interval through the coupling
        entity.send_tariff_tick(env.network.kernel.now + CELL_PERIOD)
        env.finish()
        # let the record FIFO drain
        env.hdl.run(until=env.hdl.now
                    + 40 * env.timebase.clock_period_ticks)
        dut_records = [tuple(words[i:i + RECORD_WORDS])
                       for i in range(0, len(words), RECORD_WORDS)]
        ref_records = [(r.vpi, r.vci, r.interval, r.cells_clp0,
                        r.cells_clp1, r.charge_units)
                       for r in reference.close_interval()]
        comparator = StreamComparator("accounting", normalize="sorted")
        comparator.extend_reference(ref_records)
        comparator.extend_observed(dut_records)
        return comparator.compare()

    def test_correct_dut_passes(self):
        report = self.run_case(bug=None)
        assert report.passed, report.summary()
        assert report.matched == 2

    @pytest.mark.parametrize("bug", ["swap_clp", "charge_off_by_one"])
    def test_buggy_dut_fails(self, bug):
        report = self.run_case(bug=bug)
        assert not report.passed


class TestEnvironmentPlumbing:
    def test_tap_without_forwarding_terminates(self):
        env = CoVerificationEnvironment()
        tap = TapModule("tap", forward=False)
        node = env.network.add_node("n")
        node.add_module(tap)
        seen = []
        tap.add_hook(lambda t, p: seen.append(p))
        from repro.netsim import Packet
        tap.receive(Packet(), 0)
        assert len(seen) == 1

    def test_finish_is_idempotent(self):
        env, dut, entity, sink = build_port_module_env(cells=2)
        env.run()
        env.finish()
        outputs = len(entity.output_cells)
        env.finish()
        assert len(entity.output_cells) == outputs

    def test_reports_and_all_passed(self):
        env = CoVerificationEnvironment()
        comp = env.comparator("c")
        comp.add_reference(1)
        comp.add_observed(1)
        assert env.all_passed()
        assert len(env.reports()) == 1

    def test_tick_without_signal_rejected(self):
        env = CoVerificationEnvironment()
        dut = AtmPortModuleRtl(env.hdl, "dut", env.clk)
        entity = env.add_dut(rx_port=dut.rx, tx_port=dut.tx)
        with pytest.raises(ValueError):
            entity.send_tariff_tick(1e-6)
