"""Run journal: time-stamped, categorised event logging.

The "representation of errors and results" side of the environment: a
bounded journal that any layer can log into, with attach helpers for
the common sources (network-simulator taps, HDL signals, comparator
verdicts).  Dumps to plain text for post-mortem reading.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Deque, List, Optional, Union

__all__ = ["JournalEntry", "RunJournal"]


@dataclass(frozen=True)
class JournalEntry:
    """One journal line."""

    time: float
    category: str
    message: str

    def render(self) -> str:
        """Fixed-layout text form."""
        return f"{self.time:>16.9f}  {self.category:<10} {self.message}"


class RunJournal:
    """A bounded, categorised event log.

    Args:
        capacity: entries retained (oldest evicted first).

    Example:
        >>> journal = RunJournal()
        >>> journal.log(0.5, "cell", "VPI/VCI 1/100 tapped")
        >>> len(journal)
        1
    """

    def __init__(self, capacity: int = 100000) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: Deque[JournalEntry] = deque(maxlen=capacity)
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._entries)

    def log(self, time: float, category: str, message: str) -> None:
        """Append one entry (evicting the oldest when full)."""
        if len(self._entries) == self.capacity:
            self.dropped += 1
        self._entries.append(JournalEntry(time=time, category=category,
                                          message=message))

    def entries(self, category: Optional[str] = None,
                since: Optional[float] = None) -> List[JournalEntry]:
        """Entries, optionally filtered by category and start time."""
        result = []
        for entry in self._entries:
            if category is not None and entry.category != category:
                continue
            if since is not None and entry.time < since:
                continue
            result.append(entry)
        return result

    def categories(self) -> List[str]:
        """Distinct categories seen, sorted."""
        return sorted({entry.category for entry in self._entries})

    # ------------------------------------------------------------------
    # Attach helpers
    # ------------------------------------------------------------------
    def attach_tap(self, tap, category: str = "cell") -> None:
        """Log every packet observed by a
        :class:`~repro.core.environment.TapModule`."""
        tap.add_hook(lambda t, pkt: self.log(
            t, category,
            f"packet id={pkt.id} VPI={pkt.get('VPI')} "
            f"VCI={pkt.get('VCI')} CLP={pkt.get('CLP', 0)}"))

    def attach_hdl_signals(self, sim, signals,
                           category: str = "hdl") -> None:
        """Log value changes of selected HDL signals (times converted
        with the simulator's time unit)."""
        tracked = {id(s) for s in signals}

        def hook(signal):
            if id(signal) in tracked:
                shown = signal.value if signal.width is None \
                    else "".join(signal.value)
                self.log(sim.now * sim.time_unit, category,
                         f"{signal.name} -> {shown}")

        sim.signal_hooks.append(hook)

    def note_report(self, time: float, report,
                    category: str = "compare") -> None:
        """Log a :class:`~repro.core.comparison.VerificationReport`."""
        self.log(time, category, report.summary())

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------
    def render(self, category: Optional[str] = None) -> str:
        """The journal as text, one entry per line."""
        lines = [entry.render()
                 for entry in self.entries(category=category)]
        if self.dropped:
            lines.insert(0, f"... {self.dropped} earlier entries "
                            "evicted ...")
        return "\n".join(lines)

    def save(self, path: Union[str, Path],
             category: Optional[str] = None) -> None:
        """Write the rendered journal to *path*."""
        Path(path).write_text(self.render(category=category) + "\n")
