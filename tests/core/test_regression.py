"""Tests for the regression-suite machinery."""

import pytest

from repro.core import RegressionError, RegressionSuite


def make_suite(tmp_path, cases):
    suite = RegressionSuite("demo", golden_path=tmp_path / "golden.json")
    for name, fn in cases.items():
        suite.add_case(name, fn)
    return suite


def test_record_then_pass(tmp_path):
    suite = make_suite(tmp_path, {"a": lambda: {"x": 1},
                                  "b": lambda: [1, 2, 3]})
    suite.record_golden()
    report = suite.run()
    assert report.passed
    assert report.counts() == {"pass": 2}
    assert "2 pass" in report.summary()


def test_value_regression_detected_with_diff(tmp_path):
    state = {"value": 1}
    suite = make_suite(tmp_path,
                       {"a": lambda: {"x": state["value"], "y": 2}})
    suite.record_golden()
    state["value"] = 9
    report = suite.run()
    assert not report.passed
    (result,) = report.results
    assert result.status == "fail"
    assert result.diffs == ("x: 1 -> 9",)


def test_structure_changes_reported(tmp_path):
    state = {"extra": False}
    def case():
        result = {"x": 1}
        if state["extra"]:
            result["z"] = 3
        return result
    suite = make_suite(tmp_path, {"a": case})
    suite.record_golden()
    state["extra"] = True
    (result,) = suite.run().results
    assert result.status == "fail"
    assert any("unexpected new field" in d for d in result.diffs)


def test_list_length_change(tmp_path):
    items = [1, 2]
    suite = make_suite(tmp_path, {"a": lambda: list(items)})
    suite.record_golden()
    items.append(3)
    (result,) = suite.run().results
    assert any("length 2 -> 3" in d for d in result.diffs)


def test_crashing_case_is_an_error(tmp_path):
    behave = {"crash": False}
    def case():
        if behave["crash"]:
            raise ValueError("boom")
        return 1
    suite = make_suite(tmp_path, {"a": case})
    suite.record_golden()
    behave["crash"] = True
    report = suite.run()
    assert not report.passed
    assert report.results[0].status == "error"
    assert "boom" in report.results[0].error


def test_new_case_is_ok_but_flagged(tmp_path):
    suite = make_suite(tmp_path, {"a": lambda: 1})
    suite.record_golden()
    suite.add_case("b", lambda: 2)
    report = suite.run()
    assert report.passed
    assert report.counts() == {"pass": 1, "new": 1}


def test_run_without_golden_raises(tmp_path):
    suite = make_suite(tmp_path, {"a": lambda: 1})
    with pytest.raises(RegressionError):
        suite.run()


def test_wrong_suite_golden_rejected(tmp_path):
    suite_a = RegressionSuite("a", golden_path=tmp_path / "g.json")
    suite_a.add_case("c", lambda: 1)
    suite_a.record_golden()
    suite_b = RegressionSuite("b", golden_path=tmp_path / "g.json")
    suite_b.add_case("c", lambda: 1)
    with pytest.raises(RegressionError):
        suite_b.run()


def test_duplicate_case_rejected(tmp_path):
    suite = make_suite(tmp_path, {"a": lambda: 1})
    with pytest.raises(RegressionError):
        suite.add_case("a", lambda: 2)


def test_tuples_normalise_to_lists(tmp_path):
    """A bench returning tuples must compare equal to its JSON image."""
    suite = make_suite(tmp_path, {"a": lambda: [(1, 2), (3, 4)]})
    suite.record_golden()
    assert suite.run().passed


def test_realistic_use_with_coverification_bench(tmp_path):
    """The intended composition: a CASTANET verification run as a
    regression case."""
    from repro.atm import AtmCell
    from repro.core import CoVerificationEnvironment
    from repro.rtl import AtmPortModuleRtl

    def bench():
        env = CoVerificationEnvironment()
        dut = AtmPortModuleRtl(env.hdl, "dut", env.clk)
        dut.install(1, 100, 2, 200)
        entity = env.add_dut(rx_port=dut.rx, tx_port=dut.tx)
        for k in range(3):
            entity.send_cell((k + 1) * 4e-6,
                             AtmCell.with_payload(1, 100, [k]))
        entity.finish(16e-6)
        return [(c.vpi, c.vci, c.payload[0])
                for _t, c in entity.output_cells]

    suite = make_suite(tmp_path, {"port-module": bench})
    suite.record_golden()
    assert suite.run().passed
