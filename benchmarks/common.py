"""Shared builders for the experiment benchmarks.

Two system configurations recur across experiments:

* the **co-verification setup** (paper §2): the switch and the traffic
  live in the network simulator; only the device under test is RTL,
  coupled through CASTANET;
* the **pure-RTL test bench** (the paper's baseline): the same cell
  stream is produced, transported and checked entirely by RTL
  components in the event-driven HDL simulator — four port modules,
  their stimulus senders/monitors and the DUT.

Sizes are deliberately modest (Python kernels, not compiled
simulators) and scalable through the ``REPRO_BENCH_SCALE`` environment
variable: 1.0 reproduces the numbers quoted in EXPERIMENTS.md, larger
values stress the same shapes with more cells.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.atm import (AccountingUnit, AtmCell, AtmSwitch, Tariff)
from repro.behav import AccountingUnitBehav
from repro.core import CoVerificationEnvironment, TimeBase
from repro.hdl import CycleEngine, RisingEdge, Simulator
from repro.netsim import SinkModule
from repro.rtl import (AccountingUnitRtl, AtmSwitchRtl, CellReceiver,
                       CellSender, RECORD_WORDS)
from repro.traffic import ConstantBitRate, TrafficSource

RESULTS_DIR = Path(__file__).parent / "results"
REPO_ROOT = Path(__file__).parent.parent

#: cell slot time on the modelled 155.52 Mb/s line, octet-serial clock
TIMEBASE = TimeBase.for_line_rate()
CELL_TIME = TIMEBASE.cell_time_seconds


def scale() -> float:
    """Benchmark size multiplier from REPRO_BENCH_SCALE."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled(n: int) -> int:
    """Scale a default cell count, minimum 8."""
    return max(8, int(n * scale()))


def save_table(name: str, text: str) -> None:
    """Persist a rendered experiment table under benchmarks/results."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / name).write_text(text + "\n")
    print()
    print(text)


def save_bench_json(name: str, payload: Dict) -> Path:
    """Persist machine-readable benchmark results at the repo root
    (``BENCH_<name>.json``) so the perf trajectory is tracked across
    PRs; returns the written path."""
    path = REPO_ROOT / f"BENCH_{name}.json"
    payload = dict(payload)
    payload.setdefault("benchmark", name)
    payload.setdefault("scale", scale())
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


# ---------------------------------------------------------------------------
# Co-verification setup (abstract system + one RTL DUT)
# ---------------------------------------------------------------------------

def build_cosim_accounting(num_cells: int, load: float = 0.25,
                           lockstep: bool = False,
                           bug: Optional[str] = None,
                           clocking: str = "cycle",
                           observe: bool = True,
                           rtl_backend: Optional[str] = None,
                           level: Optional[str] = None):
    """Figure-1 setup: 4-port abstract switch, CBR sources at *load*
    per port, the accounting DUT coupled on the aggregate switched
    stream.

    *clocking* selects the DUT clock scheme ("cycle" fast dispatch,
    the default, or the seed "event" generator clock); *observe=False*
    disables the metrics registry (the perf benchmarks measure the
    un-instrumented stack); *level* selects the DUT abstraction
    ("rtl", the seed behaviour, or "behav" for the zero-delta twin —
    default: the environment's ``REPRO_DUT_LEVEL`` policy).

    Returns (env, dut, entity, reference, finish) where finish() runs
    the drain and returns DUT records.
    """
    env = CoVerificationEnvironment(timebase=TIMEBASE, lockstep=lockstep,
                                    clocking=clocking, observe=observe,
                                    rtl_backend=rtl_backend,
                                    dut_level=level)
    if env.resolved_dut_level() == "behav":
        dut = AccountingUnitBehav("acct", timebase=TIMEBASE, bug=bug)
        entity = env.add_dut(behav=dut)
    else:
        dut = AccountingUnitRtl(env.hdl, "acct", env.clk, bug=bug)
        entity = env.add_dut(rx_port=dut.rx,
                             tick_signal=dut.tariff_tick)
    reference = AccountingUnit(drop_unknown=True)

    switch = AtmSwitch(env.network, "switch", num_ports=4,
                       cell_time=CELL_TIME)
    per_port = max(1, num_cells // 4)
    period = CELL_TIME / load
    for port in range(4):
        vci = 100 + port
        switch.install_connection(port, 1, vci, (port + 1) % 4, 1, vci)
        dut.register(1, vci, units_per_cell=2)
        reference.register(1, vci, Tariff(units_per_cell=2))

        host = env.network.add_node(f"host{port}")
        source = TrafficSource(
            f"src{port}", ConstantBitRate(period=period, seed=port),
            packet_factory=lambda i, v=vci: AtmCell.with_payload(
                1, v, [i % 256]).to_packet(),
            count=per_port)
        tap = env.make_cell_tap(f"tap{port}", entity)
        tap.add_hook(lambda t, pkt: reference.cell_arrival(
            pkt["VPI"], pkt["VCI"], clp=pkt.get("CLP", 0)))
        sink = SinkModule("sink")
        for module in (source, tap, sink):
            host.add_module(module)
        host.connect(source, 0, tap, 0)
        host.bind_port_output(0, tap, 0)
        host.bind_port_input(0, sink, 0)
        env.network.add_link(host, 0, switch.node, port,
                             rate_bps=155.52e6)
        env.network.add_link(switch.node, port, host, 0,
                             rate_bps=155.52e6)
    return env, dut, entity, reference


def run_cosim_accounting(env, dut, entity, reference
                         ) -> Dict[str, float]:
    """Execute the co-simulation (either DUT level); returns the
    measurement dict."""
    env.run()
    entity.send_tariff_tick(env.network.kernel.now + CELL_TIME)
    env.finish()
    if entity.level == "behav":
        # no HDL kernel ran: clocks are the modelled activity span
        clocks = entity.modelled_clocks
        hdl_events = 0
    else:
        # drain the record FIFO
        env.hdl.run(until=env.hdl.now
                    + 64 * TIMEBASE.clock_period_ticks)
        clocks = env.hdl.now // TIMEBASE.clock_period_ticks
        hdl_events = env.hdl.events_executed
    return {
        "hdl_clocks": clocks,
        "hdl_events": hdl_events,
        "netsim_events": env.network.kernel.executed_events,
        "cells": entity.cells_in,
    }


def collect_rtl_records(hdl, clk, dut) -> List[int]:
    """Attach a monitor collecting the DUT's record words."""
    words: List[int] = []

    def gen():
        while True:
            yield RisingEdge(clk)
            if dut.rec_valid.value == "1":
                words.append(dut.rec_word.as_int())

    hdl.add_generator("records", gen())
    return words


def group_records(words: List[int]) -> List[Tuple[int, ...]]:
    """Flat word list -> 6-word record tuples."""
    whole = len(words) // RECORD_WORDS
    return [tuple(words[i * RECORD_WORDS:(i + 1) * RECORD_WORDS])
            for i in range(whole)]


def reference_records(reference: AccountingUnit) -> List[Tuple[int, ...]]:
    """Close the reference interval and format records like the RTL."""
    return [(r.vpi, r.vci, r.interval, r.cells_clp0, r.cells_clp1,
             r.charge_units) for r in reference.close_interval()]


# ---------------------------------------------------------------------------
# Pure-RTL baseline (everything event-driven in the HDL simulator)
# ---------------------------------------------------------------------------

def build_pure_rtl_system(cells_per_port: int, load: float = 0.25,
                          clocking: str = "cycle",
                          rtl_backend: Optional[str] = None):
    """The fully-RTL alternative — the paper's device list verbatim:
    an RTL switch of **four port modules and one global control unit**
    (:class:`repro.rtl.AtmSwitchRtl`), driven at line occupancy by RTL
    stimulus senders (idle cells fill the unused slots, as on the real
    wire), monitored on every output, with the accounting DUT listening
    on port 0's output stream.

    *clocking* selects the clock scheme ("cycle" fast dispatch, the
    default, or the seed "event" generator clock); *rtl_backend*
    selects the component execution backend ("event" | "compiled" |
    "auto", default: the simulator's REPRO_RTL_BACKEND/"auto").

    Returns (sim, run) where run() executes the bench and returns the
    measurement dict.
    """
    sim = Simulator(time_unit=TIMEBASE.tick_seconds)
    if rtl_backend is not None:
        sim.rtl_backend = rtl_backend
    clk = sim.signal("clk", init="0")
    if clocking == "cycle":
        CycleEngine(sim, clk, period=TIMEBASE.clock_period_ticks)
    elif clocking == "event":
        sim.add_clock(clk, period=TIMEBASE.clock_period_ticks)
    else:
        raise ValueError(
            f"clocking must be 'cycle' or 'event', got {clocking!r}")

    fabric = AtmSwitchRtl(sim, "fabric", clk, num_ports=4,
                          queue_depth=64)
    idle_per_cell = max(0, int(round(1.0 / load)) - 1)
    senders = []
    receivers = []
    for index in range(4):
        vci = 100 + index
        fabric.install_connection(index, 1, vci, index, 1, vci)
        sender = CellSender(sim, f"gen{index}", clk,
                            port=fabric.rx_ports[index])
        receivers.append(CellReceiver(sim, f"mon{index}", clk,
                                      fabric.tx_ports[index]))
        for i in range(cells_per_port):
            sender.send(AtmCell.with_payload(1, vci,
                                             [i % 256]).to_octets())
            for _ in range(idle_per_cell):
                sender.send(AtmCell.idle().to_octets())
        senders.append(sender)

    # the accounting DUT listens on port 0's translated output stream
    dut = AccountingUnitRtl(sim, "acct", clk, rx=fabric.tx_ports[0])
    dut.register(1, 100, units_per_cell=2)

    def run() -> Dict[str, float]:
        slots_per_port = cells_per_port * (1 + idle_per_cell)
        clocks_needed = 53 * (slots_per_port + 10)
        sim.run(until=clocks_needed * TIMEBASE.clock_period_ticks)
        return {
            "hdl_clocks": sim.now // TIMEBASE.clock_period_ticks,
            "hdl_events": sim.events_executed,
            "cells": fabric.cells_received,
            "translated": fabric.cells_switched,
            "dut_cells": dut.cells_seen,
        }

    return sim, run
