"""Declarative scenario-matrix specification for ``repro.sweep``.

A sweep is the cross product of five axes — traffic model × switch
port count × RNG seed × synchronisation mode × DUT abstraction level
— plus shared per-run workload knobs (cell budget, line load) and
execution knobs (worker count, per-run timeout).  :class:`SweepSpec` holds the matrix,
:meth:`SweepSpec.expand` turns it into the concrete list of
:class:`RunSpec` cells the runner fans out, and :meth:`SweepSpec.from_file`
reads either a TOML or a JSON spec file::

    [matrix]
    traffic = ["cbr", "poisson", "onoff"]
    ports = [2, 4]
    seeds = [0, 1]
    sync = ["conservative"]

    [run]
    cells = 24
    load = 0.25

    [execution]
    jobs = 2
    timeout_s = 120.0

TOML parsing needs :mod:`tomllib` (Python ≥ 3.11) or the ``tomli``
backport; when neither is importable the loader degrades gracefully —
JSON specs (the same structure as a JSON object) always work.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..core.contract import DUT_LEVELS

try:
    import tomllib as _toml
except ImportError:  # pragma: no cover - Python < 3.11
    try:
        import tomli as _toml  # type: ignore[no-redef]
    except ImportError:
        _toml = None  # JSON specs remain available

__all__ = ["RunSpec", "SweepSpec", "SweepSpecError", "SYNC_MODES",
           "TRAFFIC_MODELS"]

#: traffic models the worker scenario knows how to instantiate
TRAFFIC_MODELS = ("cbr", "poisson", "onoff")
#: synchronisation strategies of :mod:`repro.core.sync`
SYNC_MODES = ("conservative", "lockstep")

#: failure-injection hooks honoured by the worker (test instrumentation)
INJECT_MODES = ("crash", "crash_once", "hang", "error")


class SweepSpecError(ValueError):
    """Raised on an invalid or unreadable sweep specification."""


@dataclass(frozen=True)
class RunSpec:
    """One cell of the sweep matrix — everything a worker needs.

    Instances are plain data (no simulator handles) so they cross
    process boundaries by pickling the :meth:`as_dict` form.
    """

    name: str
    traffic: str
    ports: int
    seed: int
    sync: str
    cells: int
    load: float
    #: DUT abstraction level ("rtl" | "behav"); "rtl" is the seed
    #: behaviour and stays implicit in run *names*, but is always
    #: pinned on the wire — a spec'd level must not drift with the
    #: ``REPRO_DUT_LEVEL`` policy of whatever process executes the run
    level: str = "rtl"
    #: test-only failure injection: one of :data:`INJECT_MODES` or None
    inject: Optional[str] = None
    #: per-run JSONL decision-trace path (None = no trace)
    trace_file: Optional[str] = None

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict view (the pickle/JSON wire format)."""
        payload: Dict[str, Any] = {
            "name": self.name, "traffic": self.traffic,
            "ports": self.ports, "seed": self.seed, "sync": self.sync,
            "cells": self.cells, "load": self.load,
            "level": self.level,
        }
        if self.inject is not None:
            payload["inject"] = self.inject
        if self.trace_file is not None:
            payload["trace_file"] = self.trace_file
        return payload

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunSpec":
        """Rebuild a run spec from :meth:`as_dict` output."""
        return cls(name=data["name"], traffic=data["traffic"],
                   ports=int(data["ports"]), seed=int(data["seed"]),
                   sync=data["sync"], cells=int(data["cells"]),
                   load=float(data["load"]),
                   level=data.get("level", "rtl"),
                   inject=data.get("inject"),
                   trace_file=data.get("trace_file"))


@dataclass
class SweepSpec:
    """The declarative scenario matrix plus shared run/execution knobs.

    Attributes:
        traffic: traffic-model axis (subset of :data:`TRAFFIC_MODELS`).
        ports: switch port-count axis (each ≥ 2).
        seeds: RNG-seed axis.
        sync: synchronisation-mode axis (subset of :data:`SYNC_MODES`).
        level: DUT abstraction-level axis (subset of
            :data:`~repro.core.contract.DUT_LEVELS`); default
            ``["rtl"]``, the seed behaviour.
        cells: total cell budget per run, split across the ports.
        load: per-port line occupancy of every source.
        jobs: worker processes to fan runs out over (1 = serial).
        timeout_s: per-run wall-clock budget before the worker is
            killed.
        trace_dir: when set, every run writes its JSONL decision
            trace to ``<trace_dir>/<run-name>.trace.jsonl`` (one file
            per run — workers never share a sink).
        inject: per-run-name failure injection map (tests only).
    """

    traffic: List[str] = field(default_factory=lambda: ["cbr"])
    ports: List[int] = field(default_factory=lambda: [4])
    seeds: List[int] = field(default_factory=lambda: [0])
    sync: List[str] = field(default_factory=lambda: ["conservative"])
    level: List[str] = field(default_factory=lambda: ["rtl"])
    cells: int = 32
    load: float = 0.25
    jobs: int = 2
    timeout_s: float = 120.0
    trace_dir: Optional[str] = None
    inject: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        """Validate every axis and knob; raises :class:`SweepSpecError`."""
        for model in self.traffic:
            if model not in TRAFFIC_MODELS:
                raise SweepSpecError(
                    f"unknown traffic model {model!r}; "
                    f"known: {', '.join(TRAFFIC_MODELS)}")
        for mode in self.sync:
            if mode not in SYNC_MODES:
                raise SweepSpecError(
                    f"unknown sync mode {mode!r}; "
                    f"known: {', '.join(SYNC_MODES)}")
        for count in self.ports:
            if count < 2:
                raise SweepSpecError(f"need >= 2 switch ports, got {count}")
        for level in self.level:
            if level not in DUT_LEVELS:
                raise SweepSpecError(
                    f"unknown DUT level {level!r}; "
                    f"known: {', '.join(DUT_LEVELS)}")
        if not (self.traffic and self.ports and self.seeds and self.sync
                and self.level):
            raise SweepSpecError("every matrix axis needs >= 1 value")
        if self.cells < 1:
            raise SweepSpecError(f"need >= 1 cell, got {self.cells}")
        if not 0.0 < self.load <= 1.0:
            raise SweepSpecError(f"load {self.load} outside (0, 1]")
        if self.jobs < 1:
            raise SweepSpecError(f"need >= 1 job, got {self.jobs}")
        if self.timeout_s <= 0:
            raise SweepSpecError(f"non-positive timeout {self.timeout_s}")
        for name, mode in self.inject.items():
            if mode not in INJECT_MODES:
                raise SweepSpecError(
                    f"unknown inject mode {mode!r} for {name!r}; "
                    f"known: {', '.join(INJECT_MODES)}")

    # ------------------------------------------------------------------
    # Matrix expansion
    # ------------------------------------------------------------------
    def expand(self) -> List[RunSpec]:
        """The concrete run list: one :class:`RunSpec` per matrix cell.

        Order is deterministic (itertools.product over the axes in
        declaration order) — the runner preserves it in its output so
        identical specs yield identically ordered reports.
        """
        runs: List[RunSpec] = []
        for traffic, ports, seed, sync, level in itertools.product(
                self.traffic, self.ports, self.seeds, self.sync,
                self.level):
            name = f"{traffic}-p{ports}-s{seed}-{sync}"
            if level != "rtl":
                # The seed naming stays stable for RTL-only sweeps;
                # other levels are suffixed to keep names unique.
                name = f"{name}-{level}"
            trace_file = None
            if self.trace_dir is not None:
                trace_file = str(Path(self.trace_dir)
                                 / f"{name}.trace.jsonl")
            runs.append(RunSpec(
                name=name, traffic=traffic, ports=ports, seed=seed,
                sync=sync, cells=self.cells, load=self.load,
                level=level, inject=self.inject.get(name),
                trace_file=trace_file))
        return runs

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict view mirroring the spec-file structure."""
        execution: Dict[str, Any] = {"jobs": self.jobs,
                                     "timeout_s": self.timeout_s}
        if self.trace_dir is not None:
            execution["trace_dir"] = self.trace_dir
        matrix: Dict[str, Any] = {"traffic": list(self.traffic),
                                  "ports": list(self.ports),
                                  "seeds": list(self.seeds),
                                  "sync": list(self.sync)}
        if self.level != ["rtl"]:
            matrix["level"] = list(self.level)
        return {
            "matrix": matrix,
            "run": {"cells": self.cells, "load": self.load},
            "execution": execution,
        }

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    @classmethod
    def from_mapping(cls, data: Dict[str, Any]) -> "SweepSpec":
        """Build a spec from the parsed TOML/JSON structure."""
        if not isinstance(data, dict):
            raise SweepSpecError(
                f"spec root must be a table/object, got "
                f"{type(data).__name__}")
        matrix = data.get("matrix", {})
        run = data.get("run", {})
        execution = data.get("execution", {})
        for section, payload in (("matrix", matrix), ("run", run),
                                 ("execution", execution)):
            if not isinstance(payload, dict):
                raise SweepSpecError(f"[{section}] must be a table")
        unknown = set(data) - {"matrix", "run", "execution"}
        if unknown:
            raise SweepSpecError(
                f"unknown spec section(s): {', '.join(sorted(unknown))}")
        known_keys = {"matrix": {"traffic", "ports", "seeds", "sync",
                                 "level"},
                      "run": {"cells", "load", "inject"},
                      "execution": {"jobs", "timeout_s", "trace_dir"}}
        for section, payload in (("matrix", matrix), ("run", run),
                                 ("execution", execution)):
            extra = set(payload) - known_keys[section]
            if extra:
                raise SweepSpecError(
                    f"unknown key(s) in [{section}]: "
                    f"{', '.join(sorted(extra))}")

        def _listify(value: Any) -> List[Any]:
            return list(value) if isinstance(value, (list, tuple)) \
                else [value]

        kwargs: Dict[str, Any] = {}
        if "traffic" in matrix:
            kwargs["traffic"] = [str(v) for v in _listify(matrix["traffic"])]
        if "ports" in matrix:
            kwargs["ports"] = [int(v) for v in _listify(matrix["ports"])]
        if "seeds" in matrix:
            kwargs["seeds"] = [int(v) for v in _listify(matrix["seeds"])]
        if "sync" in matrix:
            kwargs["sync"] = [str(v) for v in _listify(matrix["sync"])]
        if "level" in matrix:
            kwargs["level"] = [str(v) for v in _listify(matrix["level"])]
        if "cells" in run:
            kwargs["cells"] = int(run["cells"])
        if "load" in run:
            kwargs["load"] = float(run["load"])
        if "inject" in run:
            kwargs["inject"] = dict(run["inject"])
        if "jobs" in execution:
            kwargs["jobs"] = int(execution["jobs"])
        if "timeout_s" in execution:
            kwargs["timeout_s"] = float(execution["timeout_s"])
        if "trace_dir" in execution:
            kwargs["trace_dir"] = str(execution["trace_dir"])
        return cls(**kwargs)

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "SweepSpec":
        """Read a spec file; format chosen by suffix (.toml / .json)."""
        path = Path(path)
        if not path.is_file():
            raise SweepSpecError(f"no sweep spec at {path}")
        if path.suffix == ".toml":
            if _toml is None:
                raise SweepSpecError(
                    "TOML specs need Python >= 3.11 (tomllib) or the "
                    "tomli backport — neither is available; use a JSON "
                    "spec instead")
            try:
                data = _toml.loads(path.read_text())
            except Exception as exc:
                raise SweepSpecError(f"invalid TOML in {path}: {exc}")
        elif path.suffix == ".json":
            try:
                data = json.loads(path.read_text())
            except json.JSONDecodeError as exc:
                raise SweepSpecError(f"invalid JSON in {path}: {exc}")
        else:
            raise SweepSpecError(
                f"unknown spec format {path.suffix!r} "
                "(expected .toml or .json)")
        return cls.from_mapping(data)
