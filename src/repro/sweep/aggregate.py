"""Aggregation, histogram merging and the determinism projection.

The runner's per-run results are condensed into one aggregate block
for ``BENCH_sweep.json``: run counts by status, pass/fail totals,
cells processed, summed kernel work, throughput, sync-exchange totals
and the merged per-cell ingress-latency histogram.

:func:`strip_volatile` defines the determinism contract: two sweeps of
the same matrix and seeds agree exactly on everything it keeps —
wall-clock figures, process placement and attempt counts are the only
permitted differences.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

__all__ = ["VOLATILE_KEYS", "aggregate_results",
           "merge_latency_histograms", "strip_volatile"]

#: keys whose values legitimately differ between identical sweeps:
#: wall-clock timing, worker placement and retry bookkeeping
VOLATILE_KEYS = frozenset({
    "wall_s", "cycles_per_s", "sweep_wall_s", "mode", "attempts",
    "execution", "detail",
})


def merge_latency_histograms(
        histograms: List[Optional[Dict[str, Any]]]) -> Dict[str, Any]:
    """Merge per-run histogram snapshots (the ``as_dict`` form of
    :class:`repro.obs.Histogram`) into one distribution.

    All runs share :data:`repro.obs.DEFAULT_SECONDS_BOUNDS`, so bucket
    counts merge by upper bound; p50/p99 are re-derived from the
    merged buckets with the same upper-bound convention the source
    histograms use.
    """
    merged_buckets: Dict[Any, int] = {}
    count = 0
    total = 0.0
    lo: Optional[float] = None
    hi: Optional[float] = None
    for hist in histograms:
        if not hist:
            continue
        count += hist["count"]
        total += hist["total"]
        for bucket in hist["buckets"]:
            merged_buckets[bucket["le"]] = \
                merged_buckets.get(bucket["le"], 0) + bucket["count"]
        if hist["min"] is not None and (lo is None or hist["min"] < lo):
            lo = hist["min"]
        if hist["max"] is not None and (hi is None or hist["max"] > hi):
            hi = hist["max"]

    def _key(le: Any) -> float:
        return float("inf") if le == "inf" else float(le)

    buckets = [{"le": le, "count": merged_buckets[le]}
               for le in sorted(merged_buckets, key=_key)]

    def _quantile(q: float) -> Optional[float]:
        if count == 0:
            return None
        rank = q * count
        seen = 0
        for bucket in buckets:
            seen += bucket["count"]
            if seen >= rank:
                return hi if bucket["le"] == "inf" else bucket["le"]
        return hi

    return {
        "count": count,
        "total": total,
        "mean": total / count if count else 0.0,
        "min": lo,
        "max": hi,
        "p50": _quantile(0.5),
        "p99": _quantile(0.99),
        "buckets": buckets,
    }


def aggregate_results(results: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Condense per-run results into the sweep-level aggregate."""
    by_status: Dict[str, int] = {}
    for result in results:
        status = result.get("status", "error")
        by_status[status] = by_status.get(status, 0) + 1
    completed = [r for r in results if r.get("status") == "ok"]
    cells = sum(r["cells_in"] for r in completed)
    clocks = sum(r["hdl_clocks"] for r in completed)
    wall = sum(r["wall_s"] for r in completed)
    return {
        "runs_total": len(results),
        "runs_by_status": by_status,
        "runs_passed": sum(1 for r in completed if r.get("passed")),
        "runs_failed": sum(1 for r in results if not r.get("passed")),
        "cells_processed": cells,
        "hdl_clocks": clocks,
        "hdl_events": sum(r["hdl_events"] for r in completed),
        "netsim_events": sum(r["netsim_events"] for r in completed),
        "sync_exchanges": sum(r["sync_exchanges"] for r in completed),
        "wall_s": wall,
        "cycles_per_s": clocks / wall if wall > 0 else 0.0,
        "latency": merge_latency_histograms(
            [r.get("latency") for r in completed]),
    }


def strip_volatile(payload: Any) -> Any:
    """A deep copy of *payload* with every volatile key removed.

    Two sweeps of the same spec must satisfy::

        strip_volatile(a) == strip_volatile(b)

    whatever their worker placement, retries or host speed.
    """
    if isinstance(payload, dict):
        return {key: strip_volatile(value)
                for key, value in payload.items()
                if key not in VOLATILE_KEYS}
    if isinstance(payload, list):
        return [strip_volatile(item) for item in payload]
    return payload
