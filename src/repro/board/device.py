"""Pin-level device-under-test adapters.

The board clocks a :class:`PinLevelDevice`: per board clock it presents
a 16-byte-lane stimulus frame and reads back a response frame.

:class:`RtlPinDevice` is the important adapter — it mounts any RTL
design built on :mod:`repro.hdl` behind the board's pins, so the *same*
device model can be driven (a) directly by the CASTANET co-simulation
and (b) through the hardware test board, the paper's two right-hand
verification paths in Figure 1.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Sequence

from ..hdl.signal import Signal
from ..hdl.simulator import Simulator
from .pinmap import ConfigurationDataSet, NUM_BYTE_LANES

__all__ = ["PinLevelDevice", "RtlPinDevice", "LoopbackDevice"]


class PinLevelDevice(abc.ABC):
    """Anything the board can clock through its bit I/O interface."""

    @abc.abstractmethod
    def clock(self, stimulus_frame: Sequence[int]) -> List[int]:
        """Apply one stimulus frame, advance one DUT clock, and return
        the response frame (16 byte lanes)."""

    def reset(self) -> None:
        """Optional: return the device to its power-on state."""


class LoopbackDevice(PinLevelDevice):
    """Echoes stimulus back with a configurable register delay.

    The board self-test device: response frame N equals stimulus frame
    N - latency.  Used to validate pin mappings and cycle timing.
    """

    def __init__(self, latency: int = 1) -> None:
        if latency < 0:
            raise ValueError(f"negative latency {latency}")
        self.latency = latency
        self._pipe: List[List[int]] = []

    def clock(self, stimulus_frame: Sequence[int]) -> List[int]:
        self._pipe.append(list(stimulus_frame))
        if len(self._pipe) > self.latency:
            return self._pipe.pop(0)
        return [0] * NUM_BYTE_LANES

    def reset(self) -> None:
        self._pipe.clear()


class RtlPinDevice(PinLevelDevice):
    """Mounts an RTL design (an :class:`repro.hdl.Simulator`) on pins.

    Args:
        sim: the simulator hosting the DUT.
        clk: the DUT clock signal; one board clock = one full period.
        config: the pin mapping; inports map to ``input_signals``,
            outports to ``output_signals`` by port number.
        input_signals: inport number -> DUT input signal.
        output_signals: outport number -> DUT output signal.
        clock_period_ticks: HDL ticks per DUT clock period.

    The adapter drives inputs just after the falling half of the clock
    (so values are stable at the next rising edge) and samples outputs
    at the end of the period.
    """

    def __init__(self, sim: Simulator, clk: Signal,
                 config: ConfigurationDataSet,
                 input_signals: Dict[int, Signal],
                 output_signals: Dict[int, Signal],
                 clock_period_ticks: int = 10) -> None:
        self.sim = sim
        self.clk = clk
        self.config = config
        self.input_signals = dict(input_signals)
        self.output_signals = dict(output_signals)
        self.period = clock_period_ticks
        self.clocks_applied = 0
        #: outport samples masked to zero because the signal held a
        #: metavalue ('U'/'X'/'Z') — surfaced by the board interface's
        #: stats snapshot so masked reads are observable, not silent.
        self.metavalue_reads = 0
        for number in config.inports:
            if number not in self.input_signals:
                raise ValueError(f"no DUT signal for inport {number}")
        for number in config.outports:
            if number not in self.output_signals:
                raise ValueError(f"no DUT signal for outport {number}")

    def clock(self, stimulus_frame: Sequence[int]) -> List[int]:
        values = self.config.unpack_inports(stimulus_frame)
        for number, value in values.items():
            signal = self.input_signals[number]
            if signal.width is None:
                signal.drive("1" if value & 1 else "0")
            else:
                signal.drive(value & ((1 << signal.width) - 1))
        self.sim.run(until=self.sim.now + self.period)
        self.clocks_applied += 1
        frame = [0] * NUM_BYTE_LANES
        responses: Dict[int, int] = {}
        for number, signal in self.output_signals.items():
            try:
                responses[number] = signal.as_int()
            except ValueError:
                # Metavalues ('U'/'X'/'Z') read back as zeros — that is
                # what a real pin sampler does with an undriven line.
                # Only logic-value errors are masked; programming bugs
                # (AttributeError, TypeError, ...) must propagate.
                responses[number] = 0
                self.metavalue_reads += 1
        for number, value in responses.items():
            mapping = self.config.outports[number]
            self.config._scatter(frame, mapping.bit_positions(), value,
                                 mapping.width, f"outport {number}")
        return frame
