"""Trace recording and replay.

CASTANET lets the user "run the simulation in the background while
dumping the output data into a file and ... re-run previously generated
test vectors".  A :class:`Trace` is the file format for that: a list of
time-stamped field dictionaries that can be saved, re-loaded and
replayed either into a network model (:class:`TraceReplayArrivals`) or
converted into board test vectors.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from .base import ArrivalProcess

__all__ = ["Trace", "TraceEntry", "TraceReplayArrivals", "TraceError"]

TraceEntry = Tuple[float, Dict[str, Any]]


class TraceError(Exception):
    """Raised on malformed trace files or out-of-order entries."""


class Trace:
    """A time-ordered sequence of (time, fields) records.

    Example:
        >>> t = Trace()
        >>> t.append(0.0, {"VPI": 1})
        >>> t.append(1.0, {"VPI": 2})
        >>> len(t)
        2
    """

    def __init__(self, entries: Optional[Iterable[TraceEntry]] = None,
                 name: str = "trace") -> None:
        self.name = name
        self.entries: List[TraceEntry] = []
        for time, fields in entries or []:
            self.append(time, fields)

    def append(self, time: float, fields: Dict[str, Any]) -> None:
        """Append one record; times must be non-decreasing."""
        if self.entries and time < self.entries[-1][0]:
            raise TraceError(
                f"trace {self.name!r}: entry at t={time} precedes "
                f"t={self.entries[-1][0]}")
        self.entries.append((float(time), dict(fields)))

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def __getitem__(self, index: int) -> TraceEntry:
        return self.entries[index]

    def duration(self) -> float:
        """Time span covered by the trace (0 when < 2 entries)."""
        if len(self.entries) < 2:
            return 0.0
        return self.entries[-1][0] - self.entries[0][0]

    # -- persistence -------------------------------------------------------
    def save(self, path: Union[str, Path]) -> None:
        """Write the trace as JSON lines: one ``[time, fields]`` per line."""
        path = Path(path)
        with path.open("w") as handle:
            handle.write(json.dumps({"trace": self.name}) + "\n")
            for time, fields in self.entries:
                handle.write(json.dumps([time, fields]) + "\n")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Trace":
        """Read a trace previously written by :meth:`save`."""
        path = Path(path)
        with path.open() as handle:
            lines = [line for line in handle if line.strip()]
        if not lines:
            raise TraceError(f"{path}: empty trace file")
        try:
            header = json.loads(lines[0])
            name = header["trace"]
        except (json.JSONDecodeError, KeyError, TypeError) as exc:
            raise TraceError(f"{path}: bad header line") from exc
        trace = cls(name=name)
        for lineno, line in enumerate(lines[1:], start=2):
            try:
                time, fields = json.loads(line)
            except (json.JSONDecodeError, ValueError) as exc:
                raise TraceError(f"{path}:{lineno}: bad entry") from exc
            trace.append(time, fields)
        return trace


class TraceReplayArrivals(ArrivalProcess):
    """Arrival process replaying the time stamps of a recorded trace.

    Replays cyclically when ``loop=True`` (the board's "test cycles run
    repeatedly until the simulation is finished" mode); otherwise raises
    ``StopIteration`` past the last entry.
    """

    def __init__(self, trace: Trace, loop: bool = False) -> None:
        if len(trace) == 0:
            raise TraceError("cannot replay an empty trace")
        self.trace = trace
        self.loop = loop
        self.reset()

    def reset(self) -> None:
        self._index = 0
        self._offset = 0.0
        self._last_time = 0.0

    def _mean_gap(self) -> float:
        first = self.trace[0][0]
        last = self.trace[-1][0]
        return (last - first) / max(1, len(self.trace) - 1)

    def next_interarrival(self) -> float:
        if self._index >= len(self.trace):
            if not self.loop:
                raise StopIteration("trace exhausted")
            # Restart the pattern one nominal gap after the last replayed
            # entry, preserving the trace's internal spacing.
            self._offset = (self._last_time + self._mean_gap()
                            - self.trace[0][0])
            self._index = 0
        time = self.trace[self._index][0] + self._offset
        self._index += 1
        gap = max(0.0, time - self._last_time)
        self._last_time = max(time, self._last_time)
        return gap
