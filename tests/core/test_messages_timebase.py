"""Unit tests for message queues and the time base."""

import pytest

from repro.core import (CausalityError, MessageQueue, MessageQueueSet,
                        STM1_LINE_RATE, TimeBase, TimestampedMessage)


class TestTimeBase:
    def test_octet_serial_cell_takes_53_clocks(self):
        tb = TimeBase.for_line_rate(STM1_LINE_RATE)
        assert tb.clocks_per_cell == 53

    def test_bit_serial_ratio_is_424(self):
        """The paper rounds 424 to 'a ratio of 1:400'."""
        assert TimeBase.bit_serial_ratio() == 424

    def test_clock_period_matches_line_rate(self):
        tb = TimeBase.for_line_rate(155.52e6, tick_seconds=1e-9)
        # one octet = 8 bits at 155.52 Mb/s = 51.44 ns -> 51 ticks
        assert tb.clock_period_ticks == 51

    def test_tick_second_round_trip(self):
        tb = TimeBase(tick_seconds=1e-9, clock_period_ticks=10)
        assert tb.to_ticks(1e-6) == 1000
        assert tb.to_seconds(1000) == pytest.approx(1e-6)

    def test_to_ticks_floors(self):
        tb = TimeBase(tick_seconds=1e-9, clock_period_ticks=10)
        assert tb.to_ticks(1.9e-9) == 1

    def test_negative_time_rejected(self):
        tb = TimeBase()
        with pytest.raises(ValueError):
            tb.to_ticks(-1.0)

    def test_clock_conversions(self):
        tb = TimeBase(clock_period_ticks=10)
        assert tb.clocks_to_ticks(5) == 50
        assert tb.ticks_to_clocks(59) == 5

    def test_cell_time_consistency(self):
        tb = TimeBase.for_line_rate()
        assert tb.cell_time_ticks == 53 * tb.clock_period_ticks
        assert tb.cell_time_seconds == pytest.approx(
            tb.cell_time_ticks * tb.tick_seconds)

    def test_word_parallel_interface(self):
        tb = TimeBase.for_line_rate(octets_per_clock=2)
        assert tb.clocks_per_cell == 27  # ceil(53/2)

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            TimeBase(tick_seconds=0)
        with pytest.raises(ValueError):
            TimeBase(clock_period_ticks=1)
        with pytest.raises(ValueError):
            TimeBase(octets_per_clock=0)


class TestMessageQueue:
    def test_fifo_and_times(self):
        q = MessageQueue("cell", delta_cycles=53)
        q.push(TimestampedMessage(1.0, "cell", "a"))
        q.push(TimestampedMessage(2.0, "cell", "b"))
        assert len(q) == 2
        assert q.head_time() == 1.0
        assert q.latest_time() == 2.0
        assert q.pop().payload == "a"

    def test_time_regression_rejected(self):
        q = MessageQueue("cell", delta_cycles=1)
        q.push(TimestampedMessage(2.0, "cell"))
        with pytest.raises(CausalityError):
            q.push(TimestampedMessage(1.0, "cell"))

    def test_equal_times_allowed(self):
        q = MessageQueue("cell", delta_cycles=1)
        q.push(TimestampedMessage(1.0, "cell"))
        q.push(TimestampedMessage(1.0, "cell"))
        assert len(q) == 2

    def test_null_message_advances_time_only(self):
        q = MessageQueue("cell", delta_cycles=1)
        q.advance_time(5.0)
        assert q.latest_time() == 5.0
        assert len(q) == 0
        q.advance_time(3.0)  # stale null messages are ignored
        assert q.latest_time() == 5.0

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            MessageQueue("x", delta_cycles=0)


class TestMessageQueueSet:
    def test_routing_and_counters(self):
        qs = MessageQueueSet({"cell": 53, "tick": 2})
        qs.push(TimestampedMessage(1.0, "cell"))
        qs.push(TimestampedMessage(0.5, "tick"))
        assert qs.pending() == 2
        assert qs.min_delta() == 2
        assert qs.earliest_head() == ("tick", 0.5)

    def test_unknown_type_rejected(self):
        qs = MessageQueueSet({"cell": 1})
        with pytest.raises(KeyError):
            qs.push(TimestampedMessage(0.0, "bogus"))

    def test_all_covered_to(self):
        qs = MessageQueueSet({"a": 1, "b": 1})
        qs.push(TimestampedMessage(2.0, "a"))
        assert not qs.all_covered_to(2.0)  # queue b silent
        qs["b"].advance_time(2.0)
        assert qs.all_covered_to(2.0)
        assert not qs.all_covered_to(3.0)

    def test_empty_set_rejected(self):
        with pytest.raises(ValueError):
            MessageQueueSet({})
