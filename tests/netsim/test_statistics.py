"""Unit tests for statistic probes."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.netsim import Probe, RateMeter, summary


def test_probe_mean_min_max():
    p = Probe("x")
    for t, v in enumerate([1.0, 2.0, 3.0]):
        p.record(float(t), v)
    assert p.mean() == 2.0
    assert p.minimum() == 1.0
    assert p.maximum() == 3.0
    assert len(p) == 3


def test_probe_empty_is_nan():
    p = Probe("x")
    assert math.isnan(p.mean())
    assert math.isnan(p.maximum())
    assert math.isnan(p.time_average())


def test_probe_rejects_time_regression():
    p = Probe("x")
    p.record(1.0, 0.0)
    with pytest.raises(ValueError):
        p.record(0.5, 0.0)


def test_probe_std():
    p = Probe("x")
    for t, v in enumerate([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]):
        p.record(float(t), v)
    assert p.std() == pytest.approx(2.0)


def test_percentile_interpolation():
    p = Probe("x")
    for t, v in enumerate([10.0, 20.0, 30.0, 40.0]):
        p.record(float(t), v)
    assert p.percentile(0) == 10.0
    assert p.percentile(100) == 40.0
    assert p.percentile(50) == 25.0


def test_percentile_bounds_checked():
    p = Probe("x")
    p.record(0.0, 1.0)
    with pytest.raises(ValueError):
        p.percentile(101)


def test_time_average_step_function():
    p = Probe("x")
    p.record(0.0, 0.0)   # 0 for 1s
    p.record(1.0, 10.0)  # 10 for 3s
    p.record(4.0, 0.0)
    assert p.time_average() == pytest.approx(30.0 / 4.0)


def test_rate_meter():
    m = RateMeter("cells")
    for t in range(11):
        m.tick(float(t))
    assert m.count == 11
    assert m.rate() == pytest.approx(1.1)


def test_rate_meter_empty_and_single():
    m = RateMeter("x")
    assert m.rate() == 0.0
    m.tick(5.0)
    assert m.rate() == 0.0


def test_summary_helper():
    mean, std, lo, hi = summary([1.0, 2.0, 3.0])
    assert mean == 2.0
    assert lo == 1.0
    assert hi == 3.0
    assert std == pytest.approx(math.sqrt(2.0 / 3.0))


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False), min_size=1, max_size=100))
def test_property_percentile_within_range(values):
    p = Probe("x")
    for t, v in enumerate(values):
        p.record(float(t), v)
    for q in (0, 25, 50, 75, 100):
        assert min(values) <= p.percentile(q) <= max(values)


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False), min_size=1, max_size=100))
def test_property_mean_between_min_and_max(values):
    p = Probe("x")
    for t, v in enumerate(values):
        p.record(float(t), v)
    assert min(values) - 1e-9 <= p.mean() <= max(values) + 1e-9
