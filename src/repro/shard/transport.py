"""Frame transports between the coordinator and shard processes.

The sharded co-simulation couples one coordinator process to N shard
worker processes; every coupling is a sequence of *frames* (picklable
``(kind, payload)`` tuples, see :mod:`repro.shard.protocol`) flowing
over a :class:`Transport`.  Two concrete transports exist:

* :class:`PipeTransport` — a :func:`multiprocessing.Pipe` connection;
  the default, fastest on a single host (frames are pickled by the
  connection itself, no extra framing layer).
* :class:`SocketTransport` — length-prefixed pickle frames over a TCP
  socket; the same wire discipline SCE-MI-style transaction pipes use,
  and the transport a future multi-host deployment would keep.

Both raise :class:`TransportClosed` on EOF — a shard process dying
mid-exchange (or a socket closing mid-frame) surfaces as a precise,
catchable signal rather than a hung ``recv``.  The synchronisation
protocol itself never notices which transport carries it: the
coordinator's :class:`~repro.shard.client.ShardHandle` and the worker
loop exchange the same frames either way.
"""

from __future__ import annotations

import abc
import pickle
import socket
import struct
from typing import Any, Dict, Optional, Tuple

__all__ = ["Transport", "PipeTransport", "SocketTransport",
           "TransportError", "TransportClosed", "open_listener",
           "accept_transport", "connect_transport"]

#: length-prefix format of a socket frame (payload byte count, big-endian)
_LEN = struct.Struct(">I")


class TransportError(RuntimeError):
    """Base error for transport-level failures."""


class TransportClosed(TransportError):
    """The peer end closed (EOF) — raised by ``recv``/``send`` when the
    other side of the coupling is gone.

    A socket EOF that lands *mid-frame* (the length prefix or payload
    was cut short) is reported with the partial byte count, which is
    the signature of a shard process dying inside an exchange.
    """


class Transport(abc.ABC):
    """One bidirectional frame stream to a peer process.

    Counts every frame in :attr:`frames_sent` / :attr:`frames_received`
    — the per-shard exchange metrics the coordinator aggregates into
    its report.
    """

    def __init__(self) -> None:
        self.frames_sent = 0
        self.frames_received = 0
        self._closed = False

    @property
    def closed(self) -> bool:
        """True once :meth:`close` ran."""
        return self._closed

    def stats(self) -> Dict[str, int]:
        """Frame counters as a plain dict (for snapshots)."""
        return {"frames_sent": self.frames_sent,
                "frames_received": self.frames_received}

    @abc.abstractmethod
    def send(self, frame: Any) -> None:
        """Ship one picklable frame to the peer."""

    @abc.abstractmethod
    def recv(self) -> Any:
        """Block for the next frame; :class:`TransportClosed` on EOF."""

    @abc.abstractmethod
    def poll(self, timeout: float = 0.0) -> bool:
        """True when a frame is ready within *timeout* seconds."""

    @abc.abstractmethod
    def close(self) -> None:
        """Close this end (idempotent)."""


class PipeTransport(Transport):
    """Frames over a :func:`multiprocessing.Pipe` connection.

    The connection pickles frames natively, so this is the cheapest
    transport on one host; it is also the only one whose endpoints can
    be inherited by a forked/spawned child directly (the topology
    passes the child connection as a process argument).
    """

    def __init__(self, conn) -> None:
        super().__init__()
        self.conn = conn

    def send(self, frame: Any) -> None:
        """Ship one frame; :class:`TransportClosed` on a broken pipe."""
        try:
            self.conn.send(frame)
        except (BrokenPipeError, OSError) as exc:
            raise TransportClosed(f"pipe peer is gone: {exc}") from exc
        self.frames_sent += 1

    def recv(self) -> Any:
        """Block for the next frame; :class:`TransportClosed` on EOF."""
        try:
            frame = self.conn.recv()
        except EOFError as exc:
            raise TransportClosed("pipe closed by peer (EOF)") from exc
        except OSError as exc:
            raise TransportClosed(f"pipe error: {exc}") from exc
        self.frames_received += 1
        return frame

    def poll(self, timeout: float = 0.0) -> bool:
        """True when a frame is ready within *timeout* seconds."""
        return self.conn.poll(timeout)

    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        if not self._closed:
            self._closed = True
            self.conn.close()


class SocketTransport(Transport):
    """Length-prefixed pickle frames over a connected TCP socket.

    Wire format: a 4-octet big-endian payload length followed by the
    pickled frame — the classic transaction-pipe framing.  ``recv``
    reads exactly one frame; an EOF inside the prefix or payload raises
    :class:`TransportClosed` naming how many bytes of the frame
    arrived.
    """

    def __init__(self, sock: socket.socket) -> None:
        super().__init__()
        self.sock = sock
        # Latency matters more than throughput for sync exchanges.
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - non-TCP sockets
            pass

    def send(self, frame: Any) -> None:
        """Ship one frame; :class:`TransportClosed` on a dead socket."""
        payload = pickle.dumps(frame, protocol=pickle.HIGHEST_PROTOCOL)
        try:
            self.sock.sendall(_LEN.pack(len(payload)) + payload)
        except (BrokenPipeError, ConnectionError, OSError) as exc:
            raise TransportClosed(f"socket peer is gone: {exc}") from exc
        self.frames_sent += 1

    def _recv_exact(self, count: int, context: str) -> bytes:
        """Read exactly *count* bytes or raise :class:`TransportClosed`
        reporting the partial read (*context* names the frame part)."""
        chunks = []
        got = 0
        while got < count:
            try:
                chunk = self.sock.recv(count - got)
            except (ConnectionError, OSError) as exc:
                raise TransportClosed(
                    f"socket error reading {context}: {exc}") from exc
            if not chunk:
                raise TransportClosed(
                    f"socket EOF mid-frame: got {got}/{count} bytes of "
                    f"the {context}")
            chunks.append(chunk)
            got += len(chunk)
        return b"".join(chunks)

    def recv(self) -> Any:
        """Block for one whole frame; :class:`TransportClosed` on EOF
        (including an EOF that truncates the frame)."""
        prefix = self._recv_exact(_LEN.size, "length prefix")
        (length,) = _LEN.unpack(prefix)
        payload = self._recv_exact(length, "payload")
        self.frames_received += 1
        return pickle.loads(payload)

    def poll(self, timeout: float = 0.0) -> bool:
        """True when at least the length prefix is readable."""
        import select
        ready, _, _ = select.select([self.sock], [], [], timeout)
        return bool(ready)

    def close(self) -> None:
        """Shut down and close the socket (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self.sock.close()


def open_listener(host: str = "127.0.0.1",
                  port: int = 0) -> Tuple[socket.socket,
                                          Tuple[str, int]]:
    """Open a listening TCP socket; returns ``(listener, address)``.

    ``port=0`` binds an ephemeral port — the returned address is what
    shard workers (or :class:`~repro.shard.service.ServeClient`)
    connect to.
    """
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener.bind((host, port))
    listener.listen()
    return listener, listener.getsockname()[:2]


def accept_transport(listener: socket.socket,
                     timeout: Optional[float] = 30.0) -> SocketTransport:
    """Accept one peer connection as a :class:`SocketTransport`."""
    listener.settimeout(timeout)
    try:
        sock, _ = listener.accept()
    except socket.timeout as exc:
        raise TransportError(
            f"no shard connected within {timeout} s") from exc
    sock.settimeout(None)
    return SocketTransport(sock)


def connect_transport(address: Tuple[str, int],
                      timeout: Optional[float] = 30.0) -> SocketTransport:
    """Connect to *address* and wrap the socket as a transport."""
    try:
        sock = socket.create_connection(address, timeout=timeout)
    except OSError as exc:
        raise TransportError(
            f"cannot reach coordinator at {address}: {exc}") from exc
    sock.settimeout(None)
    return SocketTransport(sock)
