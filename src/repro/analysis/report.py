"""Experiment result collection and plain-text rendering.

The benchmarks print their tables through these helpers so that the
rows EXPERIMENTS.md quotes come from one formatting path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

__all__ = ["EventAccounting", "ExperimentResult", "format_table",
           "histogram", "speedup"]


@dataclass
class EventAccounting:
    """Event/cycle counters gathered from the two simulators."""

    netsim_events: int = 0
    hdl_events: int = 0
    hdl_delta_cycles: int = 0
    hdl_process_runs: int = 0

    @property
    def event_ratio(self) -> float:
        """HDL events per network-simulator event (the paper's 'order
        of magnitude higher' observation)."""
        if self.netsim_events == 0:
            return float("inf") if self.hdl_events else 0.0
        return self.hdl_events / self.netsim_events


@dataclass
class ExperimentResult:
    """One experiment row: a label plus named measurements."""

    label: str
    values: Dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.values[key]


def speedup(baseline_seconds: float, improved_seconds: float) -> float:
    """Baseline-over-improved speed-up factor (inf when improved is
    instantaneous)."""
    if improved_seconds <= 0:
        return float("inf")
    return baseline_seconds / improved_seconds


def histogram(values: Sequence[float], bins: int = 10,
              width: int = 40, title: str = "") -> str:
    """Render a plain-text histogram of *values*.

    Example:
        >>> print(histogram([1, 1, 2, 5], bins=2))  # doctest: +SKIP
    """
    if bins < 1:
        raise ValueError(f"need >= 1 bin, got {bins}")
    lines = [title] if title else []
    if not values:
        lines.append("(no samples)")
        return "\n".join(lines)
    lo, hi = min(values), max(values)
    span = hi - lo
    if span == 0:
        lines.append(f"{lo:>12.4g} | {'#' * width} {len(values)}")
        return "\n".join(lines)
    counts = [0] * bins
    for value in values:
        index = min(bins - 1, int((value - lo) / span * bins))
        counts[index] += 1
    peak = max(counts)
    for index, count in enumerate(counts):
        left = lo + span * index / bins
        bar = "#" * int(round(count / peak * width)) if peak else ""
        lines.append(f"{left:>12.4g} | {bar} {count}")
    return "\n".join(lines)


def format_table(title: str, columns: Sequence[str],
                 rows: Sequence[ExperimentResult],
                 floatfmt: str = "{:.3g}") -> str:
    """Render rows as a fixed-width text table.

    Example:
        >>> rows = [ExperimentResult("a", {"x": 1.0})]
        >>> print(format_table("T", ["x"], rows))  # doctest: +SKIP
    """
    header = ["case"] + list(columns)
    body: List[List[str]] = []
    for row in rows:
        cells = [row.label]
        for column in columns:
            value = row.values.get(column, "")
            if isinstance(value, float):
                cells.append(floatfmt.format(value))
            else:
                cells.append(str(value))
        body.append(cells)
    widths = [max(len(header[i]), *(len(r[i]) for r in body))
              if body else len(header[i]) for i in range(len(header))]
    lines = [title, "-" * len(title)]
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    for cells in body:
        lines.append("  ".join(c.ljust(w) for c, w in zip(cells, widths)))
    return "\n".join(lines)
