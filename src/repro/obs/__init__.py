"""Observability layer for the co-verification stack.

Counters, histograms and span timers (:mod:`repro.obs.metrics`), a
structured JSON-lines trace of co-simulation decisions
(:mod:`repro.obs.trace`), and the observed E1 reference scenario
behind ``python -m repro stats`` (:mod:`repro.obs.scenario` — imported
lazily to keep this package free of a dependency cycle with
:mod:`repro.core`).

Wiring: :class:`repro.core.CoVerificationEnvironment` owns a
:class:`MetricsRegistry` (pass ``observe=False`` for the null
registry) and hands instruments to the synchronisers and co-simulation
entities; ``env.metrics()`` composes the registry snapshot with the
kernel statistics of both simulators.  Metric names and the trace
schema are documented in DESIGN.md §"Observability".
"""

from .metrics import (Counter, DEFAULT_SECONDS_BOUNDS, Histogram,
                      MetricsRegistry, NULL_REGISTRY, SpanTimer)
from .trace import TraceWriter

__all__ = ["Counter", "DEFAULT_SECONDS_BOUNDS", "Histogram",
           "MetricsRegistry", "NULL_REGISTRY", "SpanTimer",
           "TraceWriter"]
