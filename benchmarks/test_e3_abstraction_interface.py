"""E3 — abstraction interfaces and the time-scale gap (paper §3.2, Fig. 4).

Claims reproduced:

* one abstract cell event expands to 53 octet clocks in the HDL
  simulator (Figure 4), or 424 bit clocks — the paper's "ratio of
  1:400 for a simulation time step in OPNET and VSS";
* the mapping is lossless: struct -> bit-level -> struct is identity,
  including the generated cellsync control signal;
* "the number of events that event-driven simulators have to evaluate
  is an order of magnitude higher compared to the system-level
  simulation in OPNET" — measured directly from the two kernels'
  event counters.
"""


from repro.analysis import EventAccounting, ExperimentResult, format_table
from repro.atm import AtmCell
from repro.core import CellMapper, TimeBase
from repro.hdl import Simulator
from repro.rtl import CellReceiver, CellSender

from .common import (build_cosim_accounting, run_cosim_accounting, save_table,
                     scaled)

CELLS = scaled(60)


def test_e3_time_step_ratio(benchmark):
    """Figure 4's arithmetic: cell event vs HDL clock granularity."""
    tb = TimeBase.for_line_rate()
    rows = [
        ExperimentResult("octet-serial interface (Figure 4)", {
            "clocks_per_cell": tb.clocks_per_cell,
            "edges_per_cell": tb.time_step_ratio,
        }),
        ExperimentResult("bit-serial clock (paper's 1:400)", {
            "clocks_per_cell": TimeBase.bit_serial_ratio(),
            "edges_per_cell": 2 * TimeBase.bit_serial_ratio(),
        }),
    ]
    save_table("e3_time_step_ratio.txt", format_table(
        "E3a: network-simulator cell step vs HDL clock steps",
        ["clocks_per_cell", "edges_per_cell"], rows))
    assert tb.clocks_per_cell == 53
    assert TimeBase.bit_serial_ratio() == 424  # "1:400", exactly 424

    def measure():
        """One cell through an HDL stream costs >= 53 clock cycles."""
        sim = Simulator()
        clk = sim.signal("clk", init="0")
        sim.add_clock(clk, period=10)
        sender = CellSender(sim, "tx", clk)
        receiver = CellReceiver(sim, "rx", clk, sender.port)
        sender.send(AtmCell.with_payload(1, 1, [1]).to_octets())
        sim.run(until=10 * 80)
        first_cell_clock = sim.now
        return len(receiver.cells), receiver.cells

    count, cells = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert count == 1


def test_e3_mapping_round_trip_with_control_signals(benchmark):
    """struct -> 53-octet stream + cellsync -> struct is identity."""
    mapper = CellMapper()

    def run_once():
        sim = Simulator()
        clk = sim.signal("clk", init="0")
        sim.add_clock(clk, period=10)
        sender = CellSender(sim, "tx", clk)
        received = []
        syncs = []

        def watch(s):
            if clk.rising() and sender.port.cellsync.value == "1":
                syncs.append(sim.now)

        sim.add_process("sync_watch", watch, sensitivity=[clk])
        CellReceiver(sim, "rx", clk, sender.port,
                     on_cell=lambda octs: received.append(
                         mapper.octets_to_cell(octs)))
        cells = [AtmCell.with_payload(i + 1, 100 + i, [i], clp=i % 2)
                 for i in range(10)]
        for cell in cells:
            sender.send(mapper.cell_to_octets(cell))
        sim.run(until=10 * 53 * 14)
        return cells, received, syncs

    cells, received, syncs = benchmark.pedantic(run_once, rounds=1,
                                                iterations=1)
    assert received == cells          # lossless mapping
    assert len(syncs) == len(cells)   # one cellsync pulse per cell


def test_e3_event_count_gap(benchmark):
    """The conclusions' observation: HDL event counts dominate."""

    def run_once():
        env, dut, entity, reference = build_cosim_accounting(CELLS)
        stats = run_cosim_accounting(env, dut, entity, reference)
        return EventAccounting(
            netsim_events=stats["netsim_events"],
            hdl_events=stats["hdl_events"],
            hdl_delta_cycles=env.hdl.delta_cycles,
            hdl_process_runs=env.hdl.process_runs), stats

    accounting, stats = benchmark.pedantic(run_once, rounds=1,
                                           iterations=1)
    rows = [
        ExperimentResult("network simulator (OPNET side)", {
            "events": accounting.netsim_events,
            "events_per_cell": accounting.netsim_events / CELLS,
        }),
        ExperimentResult("HDL simulator (VSS side)", {
            "events": accounting.hdl_events,
            "events_per_cell": accounting.hdl_events / CELLS,
        }),
        ExperimentResult("ratio (paper: 'order of magnitude')", {
            "events": accounting.event_ratio,
        }),
    ]
    save_table("e3_event_count_gap.txt", format_table(
        f"E3b: events per simulator for {CELLS} cells",
        ["events", "events_per_cell"], rows))
    assert accounting.event_ratio > 10, (
        f"expected >=10x event gap, got {accounting.event_ratio:.1f}")


def test_e3_interface_width_ablation(benchmark):
    """DESIGN.md ablation: wider interfaces shrink the time-scale gap
    (word-parallel hardware needs fewer clocks per cell)."""
    rows = []
    for octets in (1, 2, 4):
        tb = TimeBase.for_line_rate(octets_per_clock=octets)
        rows.append(ExperimentResult(f"{octets} octet(s)/clock", {
            "clocks_per_cell": tb.clocks_per_cell,
            "clock_period_ticks": tb.clock_period_ticks,
            "cell_time_us": tb.cell_time_seconds * 1e6,
        }))
    save_table("e3_interface_width.txt", format_table(
        "E3c: interface width vs clocks per cell",
        ["clocks_per_cell", "clock_period_ticks", "cell_time_us"], rows))
    assert rows[0]["clocks_per_cell"] > rows[2]["clocks_per_cell"]
    benchmark.pedantic(lambda: TimeBase.for_line_rate(), rounds=1,
                       iterations=1)
