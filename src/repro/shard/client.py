"""Coordinator-side handles for driving one shard.

Two handle flavours share one public surface (queue ops → flush →
finish → result), so topology drivers are written once:

* :class:`ShardHandle` — the real thing: ships columnar op batches
  (:class:`~repro.shard.codec.OpBatch`) over a
  :class:`~repro.shard.transport.Transport` to a worker process,
  pipelining up to ``max_inflight`` unacknowledged frames so shard
  compute overlaps coordinator-side op generation (the distributed
  analogue of PR 4's ``post_many`` batching).
* :class:`LocalShardHandle` — the reference: applies the *identical*
  packed batches to an in-process
  :class:`~repro.shard.group.ShardGroup`.  Because both flavours
  funnel ops through the same ``ShardGroup.apply_packed`` replay
  path, a sharded run is byte-identical to its local twin by
  construction — the equivalence tests assert exactly this.

Ops are queued straight into the batch's columns (one f64 time
column, one i32 port column, one op-code byte string, one contiguous
cell blob) — no per-op tuple exists between the stimulus generator
and the wire.

:class:`ShardPortEndpoint` adapts one (handle, port) pair to the
:class:`~repro.core.contract.DutContract` surface, so a remote shard
port can stand wherever a :class:`CosimulationEntity` or behavioural
entity does — taps, comparators and drivers stay level- *and*
process-agnostic (mixed-level sharded topologies fall out of this).
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..atm.cell import AtmCell
from ..core.contract import DutContract
from . import protocol
from .codec import CELL_OCTETS, OpBatch, _UINT8
from .group import ShardGroup
from .transport import Transport, TransportClosed

__all__ = ["ShardHandle", "LocalShardHandle", "ShardPortEndpoint"]

#: default op-batch size per FRAME_OPS frame
DEFAULT_MAX_BATCH = 512
#: default number of unacknowledged frames kept in flight
DEFAULT_MAX_INFLIGHT = 4


class _HandleBase:
    """Shared queueing/bookkeeping of both handle flavours."""

    def __init__(self, shard_id: str, num_ports: int = 4) -> None:
        self.shard_id = shard_id
        self.num_ports = num_ports
        #: queued, not yet flushed ops (columnar)
        self._batch = OpBatch()
        #: collected output cells per port, columnar: one f64 time
        #: column, one u64 trace-id column (zeros when unobserved)
        #: plus one contiguous 53-octet-multiple blob each
        self._out_times: List[array] = [array("d")
                                        for _ in range(num_ports)]
        self._out_tids: List[array] = [array(_UINT8)
                                       for _ in range(num_ports)]
        self._out_blobs: List[bytearray] = [bytearray()
                                            for _ in range(num_ports)]
        self.result: Optional[Dict[str, Any]] = None
        self.ops_sent = 0
        self._last_null = float("-inf")
        self._closed = False

    # -- op queueing ---------------------------------------------------
    def queue_cell(self, time: float, port: int, cell,
                   tid: int = 0) -> None:
        """Queue one ingress cell for switch *port* at netsim *time*
        (an :class:`AtmCell` or ready-made 53 octets — ``bytes``,
        ``bytearray`` or a ``memoryview`` slice).  A non-zero *tid*
        stamps the cell with a provenance trace id that survives the
        shard boundary (observed topologies thread one id per cell so
        chained shards produce one connected journey)."""
        if not isinstance(cell, (bytes, bytearray, memoryview)):
            cell = bytes(cell.to_octets())
        self._batch.add_cell(time, port, cell, tid)

    def queue_null(self, time: float) -> None:
        """Queue a null message (time horizon announcement).

        Deduplicated per handle: several endpoints announcing the same
        horizon collapse to one op, so per-port fan-out cannot inflate
        the wire stream (nor change replay semantics — nulls are
        idempotent at equal time).
        """
        if time <= self._last_null:
            return
        self._last_null = time
        self._batch.add_null(time)

    def queue_tick(self, time: float) -> None:
        """Queue a tariff tick for the shard's accounting unit."""
        self._batch.add_tick(time)

    def _take_batch(self) -> OpBatch:
        batch, self._batch = self._batch, OpBatch()
        self.ops_sent += len(batch)
        return batch

    def _store_packed(self, packed) -> None:
        """File one ack's output columns into the per-port collectors
        (an :class:`~repro.shard.codec.PackedOutputs` view or an
        :class:`~repro.shard.codec.OutputBatch` — the octets are
        copied here, because wire views die with the next recv).

        ``new_outputs_packed`` emits cells grouped by ascending port,
        so each port's run is located with two bisects and copied as
        one column slice — no per-cell Python loop.  A batch that is
        *not* port-grouped (hand-built in tests) falls back to the
        per-cell walk.
        """
        n = len(packed)
        if n == 0:
            return
        times, ports, blob = packed.times, packed.ports, packed.blob
        tids = getattr(packed, "tids", None)
        out_times, out_blobs = self._out_times, self._out_blobs
        out_tids = self._out_tids
        covered = 0
        spans = []
        for port in range(self.num_ports):
            lo = bisect_left(ports, port)
            hi = bisect_left(ports, port + 1, lo)
            spans.append((port, lo, hi))
            covered += hi - lo
        if covered == n:
            for port, lo, hi in spans:
                if lo == hi:
                    continue
                chunk = times[lo:hi]
                if not hasattr(chunk, "tobytes"):
                    chunk = array("d", chunk)  # pragma: no cover
                out_times[port].frombytes(chunk.tobytes())
                if tids is None:
                    out_tids[port].frombytes(bytes(8 * (hi - lo)))
                else:
                    tid_chunk = tids[lo:hi]
                    if not hasattr(tid_chunk, "tobytes"):
                        tid_chunk = array(  # pragma: no cover
                            _UINT8, tid_chunk)
                    out_tids[port].frombytes(tid_chunk.tobytes())
                out_blobs[port] += blob[lo * CELL_OCTETS:
                                        hi * CELL_OCTETS]
            return
        for i in range(n):
            port = ports[i]
            out_times[port].append(times[i])
            out_tids[port].append(tids[i] if tids is not None else 0)
            out_blobs[port] += blob[i * CELL_OCTETS:
                                    (i + 1) * CELL_OCTETS]

    def _store_outputs(self, fresh: List[Tuple]) -> None:
        """Tuple-list twin of :meth:`_store_packed` (the residual
        outputs a ``FRAME_RESULT`` carries) — tuples are
        ``(port, t, octets)`` or ``(port, t, octets, tid)``."""
        for entry in fresh:
            port, when, octets = entry[0], entry[1], entry[2]
            self._out_times[port].append(when)
            self._out_tids[port].append(entry[3]
                                        if len(entry) > 3 else 0)
            self._out_blobs[port] += octets

    # -- views ---------------------------------------------------------
    def output_count(self, port: int) -> int:
        """Collected output cells of *port* so far."""
        return len(self._out_times[port])

    def output_cells(self, port: int) -> List[Tuple[float, AtmCell]]:
        """The collected output stream of *port* as
        ``(seconds, AtmCell)`` tuples (parsed on demand)."""
        times, blob = self._out_times[port], self._out_blobs[port]
        return [(times[i],
                 AtmCell.from_octets(
                     blob[i * CELL_OCTETS:(i + 1) * CELL_OCTETS],
                     verify_hec=False))
                for i in range(len(times))]

    def output_octets(self, port: int) -> List[bytes]:
        """The raw 53-octet images of *port*'s output stream — the
        byte-identical comparison basis of the equivalence tests."""
        blob = self._out_blobs[port]
        return [bytes(blob[i * CELL_OCTETS:(i + 1) * CELL_OCTETS])
                for i in range(len(self._out_times[port]))]

    def output_blob(self, port: int) -> bytes:
        """*port*'s whole output stream as one contiguous octet blob
        (53 octets per cell, stream order) — the per-port digests
        hash this in a single update."""
        return bytes(self._out_blobs[port])

    def drain_outputs(self, port: int,
                      start: int) -> List[Tuple[float, memoryview,
                                                int]]:
        """``(seconds, octets, tid)`` triples of *port*'s stream from
        index *start* on — the chain-forwarding feed (*tid* is 0 when
        unobserved, so re-queueing downstream preserves provenance
        exactly when it exists).  The octets are memoryview slices
        into the collector; consume them before the handle stores
        more outputs."""
        times = self._out_times[port]
        tids = self._out_tids[port]
        blob = memoryview(self._out_blobs[port])
        return [(times[i],
                 blob[i * CELL_OCTETS:(i + 1) * CELL_OCTETS],
                 tids[i])
                for i in range(start, len(times))]


class ShardHandle(_HandleBase):
    """Drives one shard worker process over a transport.

    Args:
        shard_id: shard name (error attribution).
        transport: the coordinator end of the worker coupling.
        num_ports: switch port count (shapes the output collectors).
        max_batch: max ops per ``FRAME_OPS`` frame.
        max_inflight: unacknowledged frames to keep in flight; 1
            degenerates to strict request/reply, larger values
            pipeline shard compute behind coordinator op generation.
        process: optional :class:`multiprocessing.Process` backing the
            shard — lets transport deaths report the exit code.
    """

    def __init__(self, shard_id: str, transport: Transport,
                 num_ports: int = 4,
                 max_batch: int = DEFAULT_MAX_BATCH,
                 max_inflight: int = DEFAULT_MAX_INFLIGHT,
                 process=None) -> None:
        super().__init__(shard_id, num_ports)
        self.transport = transport
        self.max_batch = max(1, max_batch)
        self.max_inflight = max(1, max_inflight)
        self.process = process
        self._seq = 0
        self._inflight = 0

    # -- failure shaping ----------------------------------------------
    def _died(self, exc: TransportClosed) -> protocol.ShardError:
        detail = f"shard process died mid-exchange: {exc}"
        if self.process is not None:
            self.process.join(timeout=2.0)
            detail += (f" (exitcode={self.process.exitcode})")
        return protocol.ShardError(
            self.shard_id, {"type": "TransportClosed",
                            "message": str(exc), "traceback": detail})

    def _recv(self) -> Tuple[str, Any]:
        try:
            return self.transport.recv()
        except TransportClosed as exc:
            raise self._died(exc) from exc

    def _send(self, frame: protocol.Frame) -> None:
        try:
            self.transport.send(frame)
        except TransportClosed as exc:
            raise self._died(exc) from exc

    def _drain_ack(self) -> None:
        kind, payload = self._recv()
        if kind == protocol.FRAME_ERROR:
            self._inflight = 0
            protocol.raise_remote(self.shard_id, payload)
        if kind != protocol.FRAME_ACK:
            raise protocol.ShardError(
                self.shard_id,
                {"type": "ProtocolError",
                 "message": f"expected ack, got {kind!r}",
                 "traceback": ""})
        _, outputs = payload
        self._store_packed(outputs)
        self._inflight -= 1

    # -- exchange ------------------------------------------------------
    def flush(self) -> None:
        """Ship all queued ops, draining acks only when the pipeline
        window is full — the coordinator keeps generating ops while
        the shard computes."""
        for batch in self._take_batch().split(self.max_batch):
            while self._inflight >= self.max_inflight:
                self._drain_ack()
            self._seq += 1
            self._send((protocol.FRAME_OPS, (self._seq, batch)))
            self._inflight += 1

    def barrier(self) -> None:
        """Flush and wait until every in-flight frame is acknowledged
        (all queued ops replayed, all outputs so far collected)."""
        self.flush()
        while self._inflight > 0:
            self._drain_ack()

    def finish(self, time: float) -> Dict[str, Any]:
        """Barrier, then drain/settle the shard at *time*; returns and
        stores the shard's result report."""
        self.barrier()
        self._send((protocol.FRAME_FINISH, time))
        kind, payload = self._recv()
        if kind == protocol.FRAME_ERROR:
            protocol.raise_remote(self.shard_id, payload)
        self._store_outputs(payload.pop("residual_outputs", []))
        self.result = payload
        return payload

    def snapshot(self) -> Dict[str, Any]:
        """A live result report without finishing the shard."""
        self.barrier()
        self._send((protocol.FRAME_SNAPSHOT, None))
        kind, payload = self._recv()
        if kind == protocol.FRAME_ERROR:
            protocol.raise_remote(self.shard_id, payload)
        return payload

    def telemetry(self) -> Dict[str, Any]:
        """The worker's observability payload (instruments, spans,
        coverage — see :meth:`ShardGroup.telemetry`), fetched over
        the wire with a ``FRAME_TELEMETRY`` exchange.  Callable both
        mid-run (after a barrier) and after :meth:`finish`."""
        self.barrier()
        self._send((protocol.FRAME_TELEMETRY, None))
        kind, payload = self._recv()
        if kind == protocol.FRAME_ERROR:
            protocol.raise_remote(self.shard_id, payload)
        if kind != protocol.FRAME_TELEMETRY:
            raise protocol.ShardError(
                self.shard_id,
                {"type": "ProtocolError",
                 "message": f"expected telemetry, got {kind!r}",
                 "traceback": ""})
        return payload

    def close(self) -> None:
        """Ask the worker to exit and close the transport
        (best-effort, idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            self.transport.send((protocol.FRAME_CLOSE, None))
        except TransportClosed:
            pass
        self.transport.close()

    def stats(self) -> Dict[str, int]:
        """Exchange counters: ops shipped plus transport frames *and
        octets* both ways (the per-shard sync/exchange metrics of the
        report — octets measure the codec's framing efficiency)."""
        stats = self.transport.stats()
        stats["ops_sent"] = self.ops_sent
        return stats


class LocalShardHandle(_HandleBase):
    """The in-process reference twin of :class:`ShardHandle`.

    Applies the identical packed op batches to a local
    :class:`~repro.shard.group.ShardGroup` — no processes, no
    transport — so a "sharded" topology can run single-process for
    debugging, CI determinism checks, and the byte-identical
    equivalence comparison.
    """

    def __init__(self, shard_id: str, num_ports: int = 4,
                 level: str = "auto", accounting: bool = True,
                 clocking: str = "cycle", observe: bool = False,
                 trace=None) -> None:
        super().__init__(shard_id, num_ports)
        self.group = ShardGroup(shard_id, level=level,
                                num_ports=num_ports,
                                accounting=accounting,
                                clocking=clocking, observe=observe,
                                trace=trace)

    def flush(self) -> None:
        """Replay all queued ops into the local group (through the
        same packed surface the worker uses) and collect the outputs
        they produced."""
        batch = self._take_batch()
        if len(batch):
            self.group.apply_packed(batch.packed())
            self._store_packed(self.group.new_outputs_packed())

    def barrier(self) -> None:
        """Same as :meth:`flush` — nothing is ever in flight
        locally."""
        self.flush()

    def finish(self, time: float) -> Dict[str, Any]:
        """Flush, drain/settle the local group at *time*, store and
        return its result report."""
        self.flush()
        self.group.finish(time)
        self._store_packed(self.group.new_outputs_packed())
        self.result = self.group.result()
        return self.result

    def snapshot(self) -> Dict[str, Any]:
        """A live result report of the local group."""
        self.flush()
        return self.group.result()

    def telemetry(self) -> Dict[str, Any]:
        """The local group's observability payload — same shape as
        the remote :meth:`ShardHandle.telemetry` reply."""
        self.flush()
        return self.group.telemetry()

    def close(self) -> None:
        """Flush the group's trace sink (idempotent)."""
        if not self._closed:
            self._closed = True
            self.group.close()

    def stats(self) -> Dict[str, int]:
        """Exchange counters (zero frames/octets — everything is
        local)."""
        return {"frames_sent": 0, "frames_received": 0,
                "bytes_sent": 0, "bytes_received": 0,
                "ops_sent": self.ops_sent}


class ShardPortEndpoint(DutContract):
    """One shard switch port presented as a
    :class:`~repro.core.contract.DutContract`.

    ``send_cell``/``advance_time``/``send_tariff_tick`` queue ops on
    the backing handle (nulls deduplicate per handle, so the per-port
    fan-out of an environment's time listener cannot inflate the wire
    stream); ``finish`` finishes the *handle* once — subsequent port
    endpoints of the same shard see it already settled.  Output cells
    are parsed lazily from the handle's collected octet stream.

    This is what makes mixed-level sharded topologies compose: a
    driver written against ``DutContract`` cannot tell a remote RTL
    shard from a local behavioural twin.
    """

    def __init__(self, handle, port: int) -> None:
        self.handle = handle
        self.port = port
        self.level = "rtl"
        self.on_output: Optional[Callable[[float, AtmCell],
                                          None]] = None
        self.cells_in = 0
        self.ticks_in = 0

    @property
    def output_cells(self) -> List[Tuple[float, AtmCell]]:
        """Collected output cells of this port (parsed on demand from
        the handle's octet stream)."""
        return self.handle.output_cells(self.port)

    def send_cell(self, time: float, cell) -> None:
        """Queue one cell for this shard port at netsim *time*."""
        self.cells_in += 1
        self.handle.queue_cell(time, self.port, cell)

    def send_tariff_tick(self, time: float) -> None:
        """Queue a tariff tick for the shard's accounting unit."""
        self.ticks_in += 1
        self.handle.queue_tick(time)

    def advance_time(self, time: float) -> None:
        """Queue a null message (deduplicated per handle)."""
        self.handle.queue_null(time)

    def finish(self, time: Optional[float] = None) -> None:
        """Finish the backing handle once (idempotent across the
        shard's port endpoints)."""
        if self.handle.result is None:
            self.handle.finish(time if time is not None else 0.0)

    def snapshot(self) -> Dict[str, object]:
        """Per-endpoint snapshot: identity, stimulus counters and the
        handle's exchange stats."""
        return {
            "level": self.level,
            "shard": self.handle.shard_id,
            "port": self.port,
            "cells_in": self.cells_in,
            "ticks_in": self.ticks_in,
            "output_cells": self.handle.output_count(self.port),
            "exchange": self.handle.stats(),
        }
