"""Self-similar traffic: superposed heavy-tailed on-off sources.

Mid-90s measurements (Leland et al., Willinger et al.) showed LAN and
video traffic to be self-similar — bursty at every time scale — which
reshaped ATM buffer dimensioning debates exactly when the paper's
switch hardware was being designed.  The standard constructive model:
aggregate many on-off sources whose sojourn times are Pareto
(infinite-variance) distributed; the superposition's Hurst parameter
is H = (3 - α) / 2 for Pareto shape 1 < α < 2.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from .base import ArrivalProcess

__all__ = ["ParetoOnOffSource", "SelfSimilarAggregate",
           "hurst_from_shape", "variance_time_slopes"]


def hurst_from_shape(alpha: float) -> float:
    """Theoretical Hurst parameter of a Pareto(α) on-off aggregate."""
    if not 1.0 < alpha < 2.0:
        raise ValueError(f"shape {alpha} outside (1, 2)")
    return (3.0 - alpha) / 2.0


class ParetoOnOffSource(ArrivalProcess):
    """An on-off source with Pareto-distributed sojourn times.

    Args:
        peak_period: inter-cell spacing while ON.
        mean_on: mean ON duration (sets the Pareto scale).
        mean_off: mean OFF duration.
        alpha: Pareto shape, 1 < α < 2 (heavy-tailed, finite mean,
            infinite variance — the self-similarity generator).
        seed: RNG seed.
    """

    def __init__(self, peak_period: float, mean_on: float,
                 mean_off: float, alpha: float = 1.5,
                 seed: int = 0) -> None:
        for label, value in (("peak_period", peak_period),
                             ("mean_on", mean_on),
                             ("mean_off", mean_off)):
            if value <= 0:
                raise ValueError(f"non-positive {label} {value}")
        if not 1.0 < alpha < 2.0:
            raise ValueError(f"shape {alpha} outside (1, 2)")
        self.peak_period = peak_period
        self.mean_on = mean_on
        self.mean_off = mean_off
        self.alpha = alpha
        self._seed = seed
        self.reset()

    def reset(self) -> None:
        self._rng = random.Random(self._seed)
        self._on_remaining = self._pareto(self.mean_on)

    def _pareto(self, mean: float) -> float:
        """A Pareto sample with the requested mean: scale
        x_m = mean * (α - 1) / α."""
        scale = mean * (self.alpha - 1.0) / self.alpha
        u = self._rng.random()
        while u <= 0.0:
            u = self._rng.random()
        return scale / (u ** (1.0 / self.alpha))

    def mean_rate(self) -> float:
        """Long-run average cell rate."""
        duty = self.mean_on / (self.mean_on + self.mean_off)
        return duty / self.peak_period

    def next_interarrival(self) -> float:
        gap = 0.0
        while self._on_remaining < self.peak_period:
            gap += self._on_remaining
            gap += self._pareto(self.mean_off)
            self._on_remaining = self._pareto(self.mean_on)
        self._on_remaining -= self.peak_period
        return gap + self.peak_period


class SelfSimilarAggregate(ArrivalProcess):
    """Superposition of N independent Pareto on-off sources.

    The constructive self-similar model: cells of all sources merge
    into one arrival stream.

    Args:
        sources: number of superposed on-off sources.
        peak_period, mean_on, mean_off, alpha: per-source parameters.
        seed: base RNG seed (source *i* uses ``seed + i``).
    """

    def __init__(self, sources: int, peak_period: float,
                 mean_on: float, mean_off: float,
                 alpha: float = 1.5, seed: int = 0) -> None:
        if sources < 1:
            raise ValueError(f"need >= 1 source, got {sources}")
        self._sources = [
            ParetoOnOffSource(peak_period=peak_period, mean_on=mean_on,
                              mean_off=mean_off, alpha=alpha,
                              seed=seed + index)
            for index in range(sources)]
        self.reset()

    @property
    def source_count(self) -> int:
        """Number of superposed sources."""
        return len(self._sources)

    def mean_rate(self) -> float:
        """Aggregate long-run cell rate."""
        return sum(s.mean_rate() for s in self._sources)

    def reset(self) -> None:
        for source in self._sources:
            source.reset()
        self._next_times = [source.next_interarrival()
                            for source in self._sources]
        self._now = 0.0

    def next_interarrival(self) -> float:
        index = min(range(len(self._next_times)),
                    key=lambda i: self._next_times[i])
        arrival = self._next_times[index]
        gap = arrival - self._now
        self._now = arrival
        self._next_times[index] = arrival \
            + self._sources[index].next_interarrival()
        return max(0.0, gap)


def variance_time_slopes(arrival_times: Sequence[float],
                         base_bin: float,
                         levels: int = 5) -> List[float]:
    """Variance-time analysis: log2 variance of per-bin counts at
    doubling aggregation levels, normalised to level 0.

    For self-similar traffic the variance of the aggregated
    (bin-averaged) process decays like m^(2H-2); for Poisson it decays
    like 1/m.  Comparing the decay slopes is the standard quick test —
    :mod:`tests.traffic` uses it to show the aggregate is burstier
    across scales than Poisson.
    """
    if not arrival_times:
        raise ValueError("no arrivals to analyse")
    if base_bin <= 0:
        raise ValueError(f"non-positive bin {base_bin}")
    horizon = max(arrival_times)
    results = []
    for level in range(levels):
        width = base_bin * (2 ** level)
        bins = max(1, int(horizon / width))
        # only whole bins count: arrivals past bins*width would pile
        # into an over-full partial bin and corrupt the variance
        span = bins * width
        counts = [0] * bins
        for t in arrival_times:
            if t >= span:
                continue
            counts[int(t / width)] += 1
        mean = sum(counts) / len(counts)
        variance = sum((c - mean) ** 2 for c in counts) / len(counts)
        # normalised variance of the *rate* in the bin
        rate_var = variance / (width * width)
        results.append(rate_var)
    return results
