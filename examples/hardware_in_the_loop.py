#!/usr/bin/env python
"""Hardware in the simulation loop (§3.3): functional chip
verification through the test board.

The RTL accounting unit is mounted behind the board's 128-pin
bit-stream interface using the Figure-5 configuration data set.  The
network-level stimulus is converted to per-clock pin vectors, executed
in bounded hardware test cycles (software activity -> hardware
activity -> software activity), and the records read back over the
modelled SCSI bus are checked against the algorithm reference.

Run:  python examples/hardware_in_the_loop.py
"""

import json

from repro.atm import AccountingUnit, AtmCell, Tariff
from repro.board import HardwareTestBoard, RtlPinDevice, ScsiBus
from repro.core import (BoardInterfaceModel, StreamComparator,
                        cell_stream_pin_config)
from repro.hdl import Simulator
from repro.rtl import AccountingUnitRtl

NUM_CELLS = 40
CYCLE_CLOCKS = 1024


def main() -> int:
    # --- the DUT: RTL accounting unit behind the board pins ---------
    sim = Simulator()
    clk = sim.signal("clk", init="0")
    sim.add_clock(clk, period=10)
    dut = AccountingUnitRtl(sim, "chip", clk)
    dut.register(1, 100, units_per_cell=2)

    config = cell_stream_pin_config()
    print("Figure-5 configuration data set:")
    print(json.dumps(config.to_dict(), indent=2)[:600], "...\n")

    device = RtlPinDevice(
        sim, clk, config,
        input_signals={1: dut.rx.atmdata, 2: dut.rx.cellsync,
                       3: dut.rx.valid, 4: dut.tariff_tick},
        output_signals={1: dut.rec_valid, 2: dut.rec_word})

    # --- the board: 20 MHz clock, SCSI attachment -------------------
    scsi = ScsiBus(bandwidth_bytes_per_s=10e6, command_overhead_s=500e-6)
    board = HardwareTestBoard(config, clock_hz=20e6,
                              memory_depth=1 << 16, scsi=scsi)
    interface = BoardInterfaceModel(board, device,
                                    cycle_clocks=CYCLE_CLOCKS)

    # --- reference model + shared stimulus --------------------------
    reference = AccountingUnit(drop_unknown=True)
    reference.register(1, 100, Tariff(units_per_cell=2))
    for i in range(NUM_CELLS):
        cell = AtmCell.with_payload(1, 100, [i % 256])
        interface.queue_cell(cell)
        reference.cell_arrival(1, 100)
    interface.queue_tariff_tick()
    interface.flush()

    # --- compare -----------------------------------------------------
    expected = [(r.vpi, r.vci, r.interval, r.cells_clp0, r.cells_clp1,
                 r.charge_units) for r in reference.close_interval()]
    comparator = StreamComparator("chip-on-board")
    comparator.extend_reference(expected)
    comparator.extend_observed(interface.records())
    report = comparator.compare()

    print(report.summary())
    print(f"\ntest cycles executed      : {board.cycles_run}")
    print(f"DUT clocks applied        : {board.total_clocks}")
    print(f"SCSI transactions         : {len(scsi.log)}")
    print(f"SCSI payload              : {scsi.total_bytes} bytes in "
          f"{scsi.total_time * 1e3:.2f} ms")
    wall = interface.total_wall_time()
    print(f"modelled wall-clock       : {wall * 1e3:.2f} ms")
    print("effective DUT clock       : "
          f"{interface.effective_clock_hz() / 1e3:.0f} kHz "
          f"(board clock: {board.clock_hz / 1e6:.0f} MHz)")
    hw = sum(s.hw_time for s in interface.cycle_stats)
    print(f"hardware-activity share   : {hw / wall * 100:.1f} % "
          "(longer test cycles raise this)")
    return 0 if report.passed else 1


if __name__ == "__main__":
    raise SystemExit(main())
