"""Integration tests for the abstract ATM switch model."""

import pytest

from repro.atm import (AccountingUnit, AtmCell, AtmSwitch, STM1_CELL_TIME,
                       Tariff, make_setup_packet, make_teardown_packet)
from repro.netsim import Network, SinkModule


def build_switch_network(num_ports=4, accounting=None, tariff_interval=None,
                         queue_capacity=64):
    """A switch with one traffic endpoint node per port."""
    net = Network()
    switch = AtmSwitch(net, "sw", num_ports=num_ports,
                       accounting=accounting,
                       tariff_interval=tariff_interval,
                       queue_capacity=queue_capacity)
    endpoints = []
    for port in range(num_ports):
        ep = net.add_node(f"ep{port}")
        sink = SinkModule("sink", keep=True)
        ep.add_module(sink)
        ep.bind_port_input(0, sink, 0)
        net.add_link(ep, 0, switch.node, port, rate_bps=155.52e6)
        net.add_link(switch.node, port, ep, 0, rate_bps=155.52e6)
        endpoints.append(ep)
    # control endpoint
    ctl = net.add_node("ctl")
    net.add_link(ctl, 0, switch.node, switch.control_port)
    return net, switch, endpoints, ctl


def send_cell(endpoint, cell, when, kernel):
    kernel.schedule(when, lambda: endpoint.transmit(cell.to_packet(when), 0))


def test_cell_routed_and_translated():
    net, switch, eps, _ctl = build_switch_network()
    switch.install_connection(0, 1, 100, 2, 7, 700)
    cell = AtmCell.with_payload(1, 100, [42])
    send_cell(eps[0], cell, 0.0, net.kernel)
    net.run()
    received = eps[2].modules["sink"].received
    assert len(received) == 1
    out = AtmCell.from_packet(received[0])
    assert (out.vpi, out.vci) == (7, 700)
    assert out.payload[0] == 42
    assert switch.cells_switched == 1


def test_unknown_connection_dropped():
    net, switch, eps, _ctl = build_switch_network()
    send_cell(eps[0], AtmCell.with_payload(9, 999, []), 0.0, net.kernel)
    net.run()
    assert switch.cells_dropped == 1
    assert all(not ep.modules["sink"].received for ep in eps)


def test_idle_cells_stripped():
    net, switch, eps, _ctl = build_switch_network()
    send_cell(eps[0], AtmCell.idle(), 0.0, net.kernel)
    net.run()
    assert switch.ports[0].idle_cells == 1
    assert switch.cells_switched == 0
    assert switch.cells_dropped == 0


def test_same_vpi_vci_different_input_ports():
    net, switch, eps, _ctl = build_switch_network()
    switch.install_connection(0, 1, 100, 1, 1, 100)
    switch.install_connection(2, 1, 100, 3, 1, 100)
    send_cell(eps[0], AtmCell.with_payload(1, 100, [1]), 0.0, net.kernel)
    send_cell(eps[2], AtmCell.with_payload(1, 100, [2]), 0.0, net.kernel)
    net.run()
    assert len(eps[1].modules["sink"].received) == 1
    assert len(eps[3].modules["sink"].received) == 1


def test_gcu_setup_via_control_message():
    net, switch, eps, ctl = build_switch_network()
    setup = make_setup_packet(0, 1, 100, 3, 2, 200)
    net.kernel.schedule(0.0, lambda: ctl.transmit(setup, 0))
    send_cell(eps[0], AtmCell.with_payload(1, 100, []), 1e-3, net.kernel)
    net.run()
    assert switch.gcu.control_messages == 1
    received = eps[3].modules["sink"].received
    assert len(received) == 1
    assert AtmCell.from_packet(received[0]).vci == 200


def test_gcu_teardown_via_control_message():
    net, switch, eps, ctl = build_switch_network()
    switch.install_connection(0, 1, 100, 1, 1, 100)
    teardown = make_teardown_packet(0, 1, 100)
    net.kernel.schedule(0.0, lambda: ctl.transmit(teardown, 0))
    send_cell(eps[0], AtmCell.with_payload(1, 100, []), 1e-3, net.kernel)
    net.run()
    assert switch.cells_dropped == 1


def test_gcu_rejects_bogus_control_message():
    net, switch, eps, ctl = build_switch_network()
    from repro.netsim import Packet
    bogus = Packet(fields={"op": "reboot"})
    net.kernel.schedule(0.0, lambda: ctl.transmit(bogus, 0))
    net.run()
    assert switch.gcu.rejected_messages == 1


def test_teardown_of_unknown_connection_rejected():
    net, switch, eps, ctl = build_switch_network()
    net.kernel.schedule(
        0.0, lambda: ctl.transmit(make_teardown_packet(0, 9, 9), 0))
    net.run()
    assert switch.gcu.rejected_messages == 1


def test_accounting_integration():
    accounting = AccountingUnit()
    net, switch, eps, _ctl = build_switch_network(accounting=accounting)
    switch.install_connection(0, 1, 100, 1, 1, 100,
                              tariff=Tariff(units_per_cell=1))
    for i in range(10):
        send_cell(eps[0], AtmCell.with_payload(1, 100, []),
                  i * STM1_CELL_TIME * 4, net.kernel)
    net.run()
    assert accounting.interval_cells(1, 100) == (10, 0)


def test_tariff_interval_timer():
    accounting = AccountingUnit()
    net, switch, eps, _ctl = build_switch_network(
        accounting=accounting, tariff_interval=1.0)
    switch.install_connection(0, 1, 100, 1, 1, 100,
                              tariff=Tariff(units_per_cell=1))
    net.run(until=3.5)
    assert accounting.interval == 3  # intervals closed at t=1,2,3


def test_output_queue_overflow_drops():
    """Two full-rate inputs converging on one output overflow its queue.

    A single input cannot overflow anything — the input link already
    serialises cells to the line rate the output drains at — so the
    test aggregates ports 0 and 2 onto output port 1.
    """
    net, switch, eps, _ctl = build_switch_network(queue_capacity=2)
    switch.install_connection(0, 1, 100, 1, 1, 100)
    switch.install_connection(2, 1, 100, 1, 1, 101)
    for i in range(25):
        when = i * STM1_CELL_TIME
        send_cell(eps[0], AtmCell.with_payload(1, 100, []), when,
                  net.kernel)
        send_cell(eps[2], AtmCell.with_payload(1, 100, []), when,
                  net.kernel)
    net.run()
    assert switch.total_queue_drops() > 0
    received = len(eps[1].modules["sink"].received)
    assert received + switch.total_queue_drops() == 50


def test_output_serialisation_rate():
    """Cells leave an output port no faster than one per cell time."""
    net, switch, eps, _ctl = build_switch_network(queue_capacity=None)
    switch.install_connection(0, 1, 100, 1, 1, 100)
    for i in range(10):
        send_cell(eps[0], AtmCell.with_payload(1, 100, []), 0.0, net.kernel)
    net.run()
    sink = eps[1].modules["sink"]
    assert len(sink.received) == 10
    # 10 cells each needing one cell_time of queue service, plus line
    # serialisation of the last cell.
    assert sink.last_arrival >= 10 * STM1_CELL_TIME


def test_switch_requires_ports():
    net = Network()
    with pytest.raises(ValueError):
        AtmSwitch(net, "bad", num_ports=0)


def test_install_connection_validates_port():
    net = Network()
    switch = AtmSwitch(net, "sw", num_ports=2)
    with pytest.raises(ValueError):
        switch.install_connection(0, 1, 1, 5, 1, 1)
