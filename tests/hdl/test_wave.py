"""Tests for VCD parsing and waveform comparison."""

import pytest

from repro.hdl import (Simulator, VcdData, VcdFormatError, VcdWriter,
                       compare_waveforms)


def dump_run(tmp_path, name, data_value=5, until=40):
    """Dump a small run: a clock plus a 4-bit data signal."""
    sim = Simulator()
    clk = sim.signal("clk", init="0")
    data = sim.signal("data", width=4, init=0)
    path = tmp_path / f"{name}.vcd"
    with VcdWriter(sim, path, [clk, data]):
        sim.add_clock(clk, period=10)
        data.drive(data_value, delay=17)
        sim.run(until=until)
    return path


class TestVcdParse:
    def test_round_trip_structure(self, tmp_path):
        path = dump_run(tmp_path, "a")
        wave = VcdData.parse(path)
        assert wave.timescale == "1ns"
        assert wave.signals() == ["clk", "data"]
        assert wave.widths["data"] == 4

    def test_values_reconstructed(self, tmp_path):
        path = dump_run(tmp_path, "a", data_value=5)
        wave = VcdData.parse(path)
        assert wave.value_at("data", 0) == "0000"
        assert wave.value_at("data", 16) == "0000"
        assert wave.value_at("data", 17) == "0101"
        assert wave.value_at("clk", 5) == "1"
        assert wave.value_at("clk", 10) == "0"

    def test_edges_and_last_time(self, tmp_path):
        path = dump_run(tmp_path, "a", until=40)
        wave = VcdData.parse(path)
        # clock edges at 5,10,15,20,25,30,35,40 = 8
        assert wave.edges("clk") == 8
        assert wave.last_time() == 40

    def test_unknown_signal_rejected(self, tmp_path):
        wave = VcdData.parse(dump_run(tmp_path, "a"))
        with pytest.raises(KeyError):
            wave.value_at("ghost", 0)

    def test_malformed_file_rejected(self, tmp_path):
        bad = tmp_path / "bad.vcd"
        bad.write_text("$var wire 1 ! clk $end\n#5\n1!\n")
        with pytest.raises(VcdFormatError):
            VcdData.parse(bad)  # no $enddefinitions

    def test_initial_metavalue_parsed(self, tmp_path):
        sim = Simulator()
        s = sim.signal("s")  # 'U' -> dumped as x
        path = tmp_path / "u.vcd"
        with VcdWriter(sim, path, [s]):
            sim.run(until=5)
        wave = VcdData.parse(path)
        assert wave.value_at("s", 0) == "x"


class TestCompareWaveforms:
    def test_identical_runs_are_equivalent(self, tmp_path):
        a = VcdData.parse(dump_run(tmp_path, "a"))
        b = VcdData.parse(dump_run(tmp_path, "b"))
        assert compare_waveforms(a, b) == []

    def test_value_divergence_detected(self, tmp_path):
        a = VcdData.parse(dump_run(tmp_path, "a", data_value=5))
        b = VcdData.parse(dump_run(tmp_path, "b", data_value=9))
        diffs = compare_waveforms(a, b)
        assert diffs
        first = diffs[0]
        assert first.signal == "data"
        assert first.time == 17
        assert first.value_a == "0101"
        assert first.value_b == "1001"

    def test_selected_signals_only(self, tmp_path):
        a = VcdData.parse(dump_run(tmp_path, "a", data_value=5))
        b = VcdData.parse(dump_run(tmp_path, "b", data_value=9))
        assert compare_waveforms(a, b, signals=["clk"]) == []

    def test_missing_signal_reported(self, tmp_path):
        a = VcdData.parse(dump_run(tmp_path, "a"))
        sim = Simulator()
        clk = sim.signal("clk", init="0")
        path = tmp_path / "clk_only.vcd"
        with VcdWriter(sim, path, [clk]):
            sim.add_clock(clk, period=10)
            sim.run(until=40)
        b = VcdData.parse(path)
        diffs = compare_waveforms(a, b)
        assert any(d.signal == "data" and d.value_b is None
                   for d in diffs)

    def test_golden_run_regression_use_case(self, tmp_path):
        """The regression pattern: same design, longer run — the common
        prefix matches, so only post-prefix changes could differ."""
        a = VcdData.parse(dump_run(tmp_path, "short", until=40))
        b = VcdData.parse(dump_run(tmp_path, "long", until=80))
        diffs = compare_waveforms(a, b)
        assert all(d.time > 40 for d in diffs)
