"""Behavioural (cell-granularity) twins of the swappable RTL designs.

One twin per RTL DUT — port module, switch fabric, UPC policer,
accounting unit — each implementing the *algorithm* of its RTL
counterpart on whole :class:`~repro.atm.cell.AtmCell` objects in
netsim time.  No octet serialisation, no HDL kernel, no synchroniser:
a cell arrival is one Python call, outputs are emitted eagerly with
timestamps from the fixed latency model (:mod:`repro.behav.latency`).

The twins mirror the RTL bit for bit where the equivalence harness
compares:

* header translation preserves GFC/PT/CLP and rewrites VPI/VCI (the
  HEC is regenerated implicitly — cells re-serialise with a fresh
  HEC);
* the policer runs the identical integer-clock GCRA (including the
  injected ``ignore_cdv``/``stale_tat`` defects);
* the accounting unit emits charging records in **registration order**
  (as the RTL output FIFO does — not the reference model's sorted
  order) with the same ``swap_clp``/``charge_off_by_one``/
  ``lost_tick`` defect hooks;
* all management-plane APIs (:meth:`AtmPortModuleBehav.install`,
  :meth:`AtmSwitchBehav.install_connection`,
  :meth:`UpcPolicerBehav.install_contract`,
  :meth:`AccountingUnitBehav.register`) validate exactly like their
  RTL namesakes.

``hec_errors`` counters exist for interface parity but stay zero: a
cell-level model cannot represent header corruption (octet streams do
not exist at this level), which is precisely the fidelity the RTL
level adds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..atm.cell import AtmCell
from ..core.timebase import TimeBase
from ..rtl.policer import PolicingDecision
from .latency import SerialLine, hop_latency_seconds

__all__ = ["BehavioralTwin", "AtmPortModuleBehav", "AtmSwitchBehav",
           "UpcPolicerBehav", "AccountingUnitBehav"]

_ACCOUNTING_BUGS = ("swap_clp", "charge_off_by_one", "lost_tick")
_POLICER_BUGS = ("ignore_cdv", "stale_tat")

OutputCallback = Callable[[float, AtmCell], None]


class BehavioralTwin:
    """Base class of the behavioural twins.

    A twin is driven through :meth:`cell_arrival` (whole cells stamped
    with netsim seconds) and emits response cells through per-output
    callbacks registered with :meth:`bind_output` — typically by one
    :class:`~repro.behav.entity.BehavioralEntity` per output port.

    Args:
        name: instance name (diagnostics only).
        timebase: the clock/cell arithmetic shared with the RTL level.
    """

    def __init__(self, name: str, timebase: Optional[TimeBase] = None
                 ) -> None:
        self.name = name
        self.timebase = timebase if timebase is not None \
            else TimeBase.for_line_rate()
        self.cell_seconds = self.timebase.cell_time_seconds
        self._outputs: Dict[int, OutputCallback] = {}

    def bind_output(self, callback: OutputCallback,
                    port: int = 0) -> None:
        """Register the consumer of output *port*'s cell stream."""
        self._outputs[port] = callback

    def _emit(self, when: float, cell: AtmCell, port: int = 0) -> None:
        """Deliver one output cell to *port*'s consumer (dropped
        silently when nothing is bound — an unmonitored port)."""
        callback = self._outputs.get(port)
        if callback is not None:
            callback(when, cell)

    def cell_arrival(self, time: float, cell: AtmCell,
                     port: int = 0) -> float:
        """Process one cell arriving at netsim *time* on input *port*;
        returns the modelled ingress-completion time."""
        raise NotImplementedError

    def counters(self) -> Dict[str, int]:
        """The twin's counter dict — same keys as the RTL
        counterpart's ``counters()`` (the shared contract surface the
        equivalence harness diffs)."""
        raise NotImplementedError


def _translate(cell: AtmCell, out_vpi: int, out_vci: int) -> AtmCell:
    """Header regeneration at cell level: VPI/VCI rewritten, GFC/PT/CLP
    and the payload preserved — exactly the RTL ``_forward`` image
    after octet re-parse (the fresh HEC is implicit)."""
    return AtmCell(gfc=cell.gfc, vpi=out_vpi, vci=out_vci, pt=cell.pt,
                   clp=cell.clp, payload=cell.payload,
                   trace_id=cell.trace_id)


class AtmPortModuleBehav(BehavioralTwin):
    """Behavioural twin of :class:`~repro.rtl.AtmPortModuleRtl`:
    VPI/VCI translation through a private connection RAM.

    Latency model: one cell time of ingress serialisation, one clock
    of pipeline (the RTL starts transmitting on the clock after the
    53rd octet), one cell time of egress serialisation.
    """

    def __init__(self, name: str, timebase: Optional[TimeBase] = None
                 ) -> None:
        super().__init__(name, timebase)
        self._table: Dict[Tuple[int, int], Tuple[int, int]] = {}
        self._rx_line = SerialLine()
        self._tx_line = SerialLine()
        self._pipeline_s = hop_latency_seconds(self.timebase, 1)
        self.cells_received = 0
        self.cells_translated = 0
        self.hec_errors = 0
        self.unknown_connections = 0
        self.idle_cells = 0

    def install(self, vpi: int, vci: int, out_vpi: int,
                out_vci: int) -> None:
        """Write one translation RAM entry (RTL-identical API)."""
        self._table[(vpi, vci)] = (out_vpi, out_vci)

    def remove(self, vpi: int, vci: int) -> None:
        """Clear one translation RAM entry."""
        self._table.pop((vpi, vci), None)

    def cell_arrival(self, time: float, cell: AtmCell,
                     port: int = 0) -> float:
        """Translate one cell; unknown connections and idle cells are
        counted and dropped like in the RTL fast path."""
        done = self._rx_line.occupy(time, self.cell_seconds)
        self.cells_received += 1
        if cell.is_idle:
            self.idle_cells += 1
            return done
        translation = self._table.get(cell.connection())
        if translation is None:
            self.unknown_connections += 1
            return done
        self.cells_translated += 1
        ready = done + self._pipeline_s
        out_done = self._tx_line.occupy(ready, self.cell_seconds)
        self._emit(out_done, _translate(cell, *translation))
        return done

    def counters(self) -> Dict[str, int]:
        """RTL-parity counter snapshot."""
        return {
            "cells_received": self.cells_received,
            "cells_translated": self.cells_translated,
            "hec_errors": self.hec_errors,
            "unknown_connections": self.unknown_connections,
            "idle_cells": self.idle_cells,
        }


class AtmSwitchBehav(BehavioralTwin):
    """Behavioural twin of :class:`~repro.rtl.AtmSwitchRtl`: N input
    ports routed through one shared connection table to N output
    ports.

    Latency model: per-input ingress serialisation, ``lookup_latency``
    clocks of pipeline (the GCU table walk), per-output egress
    serialisation.  An output whose modelled backlog reaches
    ``queue_depth`` cells drops the newcomer, mirroring the RTL's
    bounded transmit queues.
    """

    def __init__(self, name: str, timebase: Optional[TimeBase] = None,
                 num_ports: int = 4, lookup_latency: int = 4,
                 queue_depth: int = 16) -> None:
        super().__init__(name, timebase)
        if num_ports < 1:
            raise ValueError(f"need >= 1 port, got {num_ports}")
        if queue_depth < 1:
            raise ValueError("queue depth must be >= 1")
        self.num_ports = num_ports
        self.queue_depth = queue_depth
        self._table: Dict[Tuple[int, int, int],
                          Tuple[int, int, int]] = {}
        self._rx_lines = [SerialLine() for _ in range(num_ports)]
        self._tx_lines = [SerialLine() for _ in range(num_ports)]
        self._pipeline_s = hop_latency_seconds(self.timebase,
                                               lookup_latency)
        self.cells_received = 0
        self.cells_switched = 0
        self.cells_dropped_unknown = 0
        self.cells_dropped_overflow = 0
        self.hec_errors = 0
        self.idle_cells = 0

    def install_connection(self, in_port: int, vpi: int, vci: int,
                           out_port: int, out_vpi: int,
                           out_vci: int) -> None:
        """Program one connection (RTL-identical API and validation)."""
        if not 0 <= out_port < self.num_ports:
            raise ValueError(f"output port {out_port} out of range")
        self._table[(in_port, vpi, vci)] = (out_port, out_vpi, out_vci)

    def remove_connection(self, in_port: int, vpi: int,
                          vci: int) -> None:
        """Remove one connection from the table."""
        self._table.pop((in_port, vpi, vci), None)

    def cell_arrival(self, time: float, cell: AtmCell,
                     port: int = 0) -> float:
        """Switch one cell from input *port*; unknown connections,
        idle cells and output overflow are counted like in the RTL."""
        done = self._rx_lines[port].occupy(time, self.cell_seconds)
        self.cells_received += 1
        if cell.is_idle:
            self.idle_cells += 1
            return done
        route = self._table.get((port, cell.vpi, cell.vci))
        if route is None:
            self.cells_dropped_unknown += 1
            return done
        out_port, out_vpi, out_vci = route
        ready = done + self._pipeline_s
        tx = self._tx_lines[out_port]
        if tx.backlog_cells(ready, self.cell_seconds) >= self.queue_depth:
            self.cells_dropped_overflow += 1
            return done
        self.cells_switched += 1
        out_done = tx.occupy(ready, self.cell_seconds)
        self._emit(out_done, _translate(cell, out_vpi, out_vci),
                   port=out_port)
        return done

    def backlog(self) -> Dict[str, int]:
        """Modelled in-fabric backlog (interface parity with the RTL's
        :meth:`~repro.rtl.AtmSwitchRtl.backlog`; a zero-delta model
        holds no cells between calls, so ``awaiting_lookup`` is 0)."""
        free = max(line.free_at for line in self._tx_lines)
        return {
            "awaiting_lookup": 0,
            "awaiting_tx": sum(
                line.backlog_cells(free, self.cell_seconds)
                for line in self._tx_lines),
        }

    def counters(self) -> Dict[str, int]:
        """RTL-parity counter snapshot."""
        return {
            "cells_received": self.cells_received,
            "cells_switched": self.cells_switched,
            "cells_dropped_unknown": self.cells_dropped_unknown,
            "cells_dropped_overflow": self.cells_dropped_overflow,
            "hec_errors": self.hec_errors,
            "idle_cells": self.idle_cells,
        }


@dataclass
class _GcraState:
    """Per-connection GCRA virtual-scheduling state (clock ticks)."""

    increment_clocks: int
    limit_clocks: int
    tat_clocks: int = 0


class UpcPolicerBehav(BehavioralTwin):
    """Behavioural twin of :class:`~repro.rtl.UpcPolicerRtl`:
    per-connection GCRA policing with the drop/tag actions.

    The GCRA is the identical integer-clock virtual-scheduling
    formulation (including the ``ignore_cdv``/``stale_tat`` defect
    hooks); a cell's arrival clock is its modelled ingress-completion
    time converted to whole DUT clocks.  Because the algorithm is
    shift-invariant in the absolute clock (only inter-arrival deltas
    reach the conformance test), verdicts match the RTL exactly for
    slot-aligned stimulus even though the absolute clock counts differ
    by the RTL's start-up offset — the equivalence harness therefore
    diffs ``(vpi, vci, conforming)`` sequences, not raw clocks.
    """

    def __init__(self, name: str, timebase: Optional[TimeBase] = None,
                 action: str = "drop",
                 bug: Optional[str] = None) -> None:
        super().__init__(name, timebase)
        if action not in ("drop", "tag"):
            raise ValueError(f"unknown UPC action {action!r}")
        if bug is not None and bug not in _POLICER_BUGS:
            raise ValueError(
                f"unknown bug {bug!r}; known: {_POLICER_BUGS}")
        self.action = action
        self.bug = bug
        self._contracts: Dict[Tuple[int, int], _GcraState] = {}
        self._rx_line = SerialLine()
        self._tx_line = SerialLine()
        self._pipeline_s = hop_latency_seconds(self.timebase, 1)
        self.decisions: List[PolicingDecision] = []
        self.cells_conforming = 0
        self.cells_non_conforming = 0
        self.unpoliced_cells = 0
        self.idle_cells = 0

    def install_contract(self, vpi: int, vci: int,
                         increment_clocks: int,
                         limit_clocks: int = 0) -> None:
        """Install GCRA(T=increment, tau=limit) in DUT clock cycles
        (RTL-identical API and validation)."""
        if increment_clocks < 1:
            raise ValueError("increment must be >= 1 clock")
        if limit_clocks < 0:
            raise ValueError("negative CDV tolerance")
        self._contracts[(vpi, vci)] = _GcraState(
            increment_clocks=increment_clocks,
            limit_clocks=limit_clocks)

    def remove_contract(self, vpi: int, vci: int) -> None:
        """Remove a connection's policing contract."""
        self._contracts.pop((vpi, vci), None)

    def cell_arrival(self, time: float, cell: AtmCell,
                     port: int = 0) -> float:
        """Police one cell: unmanaged connections pass transparently,
        non-conforming cells are dropped or tagged (CLP := 1)."""
        done = self._rx_line.occupy(time, self.cell_seconds)
        if cell.is_idle:
            self.idle_cells += 1
            return done
        state = self._contracts.get(cell.connection())
        if state is None:
            self.unpoliced_cells += 1
            self._forward(done, cell)
            return done
        now = self.timebase.ticks_to_clocks(self.timebase.to_ticks(done))
        conforming = self._gcra_arrival(state, now)
        self.decisions.append(PolicingDecision(
            clock=now, vpi=cell.vpi, vci=cell.vci,
            conforming=conforming))
        if conforming:
            self.cells_conforming += 1
            self._forward(done, cell)
            return done
        self.cells_non_conforming += 1
        if self.action == "tag":
            tagged = AtmCell(gfc=cell.gfc, vpi=cell.vpi, vci=cell.vci,
                             pt=cell.pt, clp=1, payload=cell.payload,
                             trace_id=cell.trace_id)
            self._forward(done, tagged)
        # "drop": the cell simply vanishes at the UPC point
        return done

    def _gcra_arrival(self, state: _GcraState, now: int) -> bool:
        """Integer-arithmetic GCRA, virtual scheduling formulation —
        line for line the RTL's ``_gcra_arrival``."""
        tat = state.tat_clocks
        if now > tat:
            tat = now
        limit = 0 if self.bug == "ignore_cdv" else state.limit_clocks
        if tat - now > limit:
            return False
        increment = state.increment_clocks
        if self.bug == "stale_tat":
            increment = max(1, increment - 1)
        state.tat_clocks = tat + increment
        return True

    def _forward(self, done: float, cell: AtmCell) -> None:
        """Emit one passed cell after the pipeline + egress delays."""
        out_done = self._tx_line.occupy(done + self._pipeline_s,
                                        self.cell_seconds)
        self._emit(out_done, cell)

    def counters(self) -> Dict[str, int]:
        """RTL-parity counter snapshot."""
        return {
            "cells_conforming": self.cells_conforming,
            "cells_non_conforming": self.cells_non_conforming,
            "unpoliced_cells": self.unpoliced_cells,
            "idle_cells": self.idle_cells,
        }


@dataclass
class _Account:
    """One accounting-table entry with the open interval's counts."""

    vpi: int
    vci: int
    units_per_cell: int
    units_per_cell_clp1: int
    fixed_units: int
    cells_clp0: int = 0
    cells_clp1: int = 0


class AccountingUnitBehav(BehavioralTwin):
    """Behavioural twin of :class:`~repro.rtl.AccountingUnitRtl`: the
    paper's case-study charging unit, sink-only.

    Charging records accumulate in :attr:`records` as the same
    ``(vpi, vci, interval, cells_clp0, cells_clp1, charge)`` 6-tuples
    the RTL streams over its record bus — in **registration order**,
    which is the RTL FIFO order (the algorithmic reference model sorts
    instead).  The RTL's injected defects (``swap_clp``,
    ``charge_off_by_one``, ``lost_tick``) are replicated so the
    equivalence harness can verify that both levels diverge from the
    reference identically.
    """

    def __init__(self, name: str, timebase: Optional[TimeBase] = None,
                 table_size: int = 64,
                 bug: Optional[str] = None) -> None:
        super().__init__(name, timebase)
        if bug is not None and bug not in _ACCOUNTING_BUGS:
            raise ValueError(
                f"unknown bug {bug!r}; known: {_ACCOUNTING_BUGS}")
        self.table_size = table_size
        self.bug = bug
        self._entries: List[_Account] = []
        self._index: Dict[Tuple[int, int], _Account] = {}
        self._interval = 0
        self._tick_parity = 0
        self._rx_line = SerialLine()
        self.records: List[Tuple[int, ...]] = []
        self.cells_seen = 0
        self.unknown_cells = 0
        self.records_emitted = 0

    def register(self, vpi: int, vci: int, units_per_cell: int = 1,
                 units_per_cell_clp1: int = 0,
                 fixed_units: int = 0) -> None:
        """Install a connection (RTL-identical API and validation)."""
        if len(self._entries) >= self.table_size:
            raise ValueError(
                f"accounting table full ({self.table_size} entries)")
        if (vpi, vci) in self._index:
            raise ValueError(f"connection ({vpi}, {vci}) already present")
        entry = _Account(vpi=vpi, vci=vci,
                         units_per_cell=units_per_cell,
                         units_per_cell_clp1=units_per_cell_clp1,
                         fixed_units=fixed_units)
        self._entries.append(entry)
        self._index[(vpi, vci)] = entry

    @property
    def interval(self) -> int:
        """Index of the currently open tariff interval."""
        return self._interval

    @property
    def connection_count(self) -> int:
        """Number of registered connections."""
        return len(self._entries)

    def interval_cells(self, vpi: int, vci: int) -> Tuple[int, int]:
        """(CLP0, CLP1) counts of the open interval."""
        entry = self._index.get((vpi, vci))
        if entry is None:
            raise ValueError(f"connection ({vpi}, {vci}) not registered")
        return entry.cells_clp0, entry.cells_clp1

    def cell_arrival(self, time: float, cell: AtmCell,
                     port: int = 0) -> float:
        """Account one cell (idle cells are never charged)."""
        done = self._rx_line.occupy(time, self.cell_seconds)
        if cell.is_idle:
            return done
        self.cells_seen += 1
        entry = self._index.get(cell.connection())
        if entry is None:
            self.unknown_cells += 1
            return done
        if cell.clp and self.bug != "swap_clp":
            entry.cells_clp1 += 1
        else:
            entry.cells_clp0 += 1
        return done

    def tariff_tick(self, time: float) -> None:
        """Close the open tariff interval: one record per table entry
        in registration order (the ``lost_tick`` defect drops every
        second tick, like the RTL)."""
        if self.bug == "lost_tick":
            self._tick_parity ^= 1
            if self._tick_parity == 0:
                return
        for entry in self._entries:
            charge = (entry.fixed_units
                      + entry.cells_clp0 * entry.units_per_cell
                      + entry.cells_clp1 * entry.units_per_cell_clp1)
            if (self.bug == "charge_off_by_one"
                    and (entry.cells_clp0 or entry.cells_clp1)):
                charge += 1
            self.records.append((
                entry.vpi, entry.vci, self._interval,
                entry.cells_clp0, entry.cells_clp1, charge))
            entry.cells_clp0 = 0
            entry.cells_clp1 = 0
            self.records_emitted += 1
        self._interval += 1

    def counters(self) -> Dict[str, int]:
        """RTL-parity counter snapshot."""
        return {
            "cells_seen": self.cells_seen,
            "unknown_cells": self.unknown_cells,
            "records_emitted": self.records_emitted,
        }
