"""The per-run worker scenario behind ``repro.sweep``.

Each matrix cell runs one :class:`~repro.core.CoVerificationEnvironment`
scenario to completion inside a worker process: an abstract ATM switch
with one traffic source per port, the RTL accounting unit coupled as
the DUT on the aggregate switched stream, and the algorithmic
:class:`~repro.atm.AccountingUnit` as the reference model.  After the
drain, the DUT's charging records are compared against the reference
(:class:`~repro.core.StreamComparator`, sorted normalisation — record
order within a tariff interval is an implementation detail) and the
observability snapshot is condensed into the run result.

Like :mod:`repro.obs.scenario`, the builder is deliberately
self-contained (mirroring, not importing, ``benchmarks/common.py``) so
the installed package can sweep without the repo checkout — and so the
worker entry point pickles cleanly under every multiprocessing start
method.
"""

from __future__ import annotations

import os
import time as _time
from pathlib import Path
from typing import Any, Dict, List, Tuple

from ..atm import AccountingUnit, AtmCell, AtmSwitch, Tariff
from ..behav import AccountingUnitBehav
from ..core import CoVerificationEnvironment, StreamComparator, TimeBase
from ..hdl import RisingEdge
from ..netsim import SinkModule
from ..rtl import RECORD_WORDS, AccountingUnitRtl
from ..traffic import (ArrivalProcess, ConstantBitRate, OnOffSource,
                       PoissonArrivals, TrafficSource)
from .spec import SweepSpecError

__all__ = ["execute_run"]


def _arrival_process(traffic: str, load: float, cell_time: float,
                     seed: int) -> ArrivalProcess:
    """Instantiate the traffic model for one port at mean rate
    ``load / cell_time`` cells per second."""
    if traffic == "cbr":
        return ConstantBitRate(period=cell_time / load, seed=seed)
    if traffic == "poisson":
        return PoissonArrivals(rate=load / cell_time, seed=seed)
    if traffic == "onoff":
        # 50 % duty cycle: peak rate 2x the mean keeps the same
        # long-run load while exercising bursty arrivals.
        return OnOffSource(peak_period=0.5 * cell_time / load,
                           mean_on=20 * cell_time,
                           mean_off=20 * cell_time, seed=seed)
    raise SweepSpecError(f"unknown traffic model {traffic!r}")


def _apply_injection(run: Dict[str, Any], attempt: int,
                     in_worker: bool) -> None:
    """Honour the test-only failure-injection hook of *run*.

    Hard process death (``os._exit``) and hangs are only simulated in
    worker processes — in the parent (serial fallback) a would-be crash
    raises instead, so the degraded path stays survivable.
    """
    inject = run.get("inject")
    if not inject:
        return
    if inject == "error":
        raise RuntimeError(f"injected error in run {run['name']!r}")
    if inject == "crash" or (inject == "crash_once" and attempt == 1):
        if in_worker:
            os._exit(23)
        raise RuntimeError(
            f"injected crash in run {run['name']!r} (serial execution)")
    if inject == "hang" and in_worker:
        _time.sleep(3600.0)


def _build_and_run(run: Dict[str, Any]) -> Dict[str, Any]:
    """Build the scenario for one matrix cell, run it, condense the
    metrics snapshot into the result dict."""
    timebase = TimeBase.for_line_rate()
    cell_time = timebase.cell_time_seconds
    ports = int(run["ports"])
    load = float(run["load"])
    seed = int(run["seed"])
    lockstep = run["sync"] == "lockstep"

    trace_file = run.get("trace_file")
    if trace_file is not None:
        # One file per run: workers never share a sink, so the JSONL
        # stream cannot interleave across processes.
        Path(trace_file).parent.mkdir(parents=True, exist_ok=True)
    env = CoVerificationEnvironment(name=f"sweep.{run['name']}",
                                    timebase=timebase, lockstep=lockstep,
                                    trace=trace_file,
                                    dut_level=run.get("level"))
    level = env.resolved_dut_level()
    if level == "behav":
        dut = AccountingUnitBehav("acct", timebase=timebase)
        entity = env.add_dut(behav=dut)
    else:
        dut = AccountingUnitRtl(env.hdl, "acct", env.clk)
        entity = env.add_dut(rx_port=dut.rx,
                             tick_signal=dut.tariff_tick)
    reference = AccountingUnit(drop_unknown=True)

    switch = AtmSwitch(env.network, "switch", num_ports=ports,
                       cell_time=cell_time)
    per_port = max(1, int(run["cells"]) // ports)
    for port in range(ports):
        vci = 100 + port
        switch.install_connection(port, 1, vci, (port + 1) % ports, 1, vci)
        dut.register(1, vci, units_per_cell=2)
        reference.register(1, vci, Tariff(units_per_cell=2))

        host = env.network.add_node(f"host{port}")
        arrivals = _arrival_process(run["traffic"], load, cell_time,
                                    seed=seed * 1009 + port)
        source = TrafficSource(
            f"src{port}", arrivals,
            packet_factory=lambda i, v=vci: AtmCell.with_payload(
                1, v, [i % 256]).to_packet(),
            count=per_port, tracker=env.provenance)
        tap = env.make_cell_tap(f"tap{port}", entity)
        tap.add_hook(lambda t, pkt: reference.cell_arrival(
            pkt["VPI"], pkt["VCI"], clp=pkt.get("CLP", 0)))
        sink = SinkModule("sink",
                          on_packet=(env.provenance.sink_hook(
                              f"sink{port}")
                              if env.provenance is not None else None))
        for module in (source, tap, sink):
            host.add_module(module)
        host.connect(source, 0, tap, 0)
        host.bind_port_output(0, tap, 0)
        host.bind_port_input(0, sink, 0)
        env.network.add_link(host, 0, switch.node, port,
                             rate_bps=155.52e6)
        env.network.add_link(switch.node, port, host, 0,
                             rate_bps=155.52e6)

    # Record-bus monitor (RTL only): collect the DUT's 32-bit record
    # words.  The behavioural twin accumulates whole record tuples.
    words: List[int] = []
    if level == "rtl":
        def _monitor():
            while True:
                yield RisingEdge(env.clk)
                if dut.rec_valid.value == "1":
                    words.append(dut.rec_word.as_int())

        env.hdl.add_generator("sweep.records", _monitor())

    start = _time.perf_counter()
    try:
        env.run()
        entity.send_tariff_tick(env.network.kernel.now + cell_time)
        env.finish()
        if level == "rtl":
            # Drain the record FIFO: the tariff tick queues records
            # that keep clocking out after the protocol drain.
            env.hdl.run(until=env.hdl.now
                        + 64 * timebase.clock_period_ticks)
    finally:
        # A failed run still flushes its partial trace — that stream
        # is exactly the evidence needed to debug the failure.
        env.close()
    wall = _time.perf_counter() - start

    if level == "behav":
        dut_records: List[Tuple[int, ...]] = list(dut.records)
    else:
        whole = len(words) // RECORD_WORDS
        dut_records = [
            tuple(words[i * RECORD_WORDS:(i + 1) * RECORD_WORDS])
            for i in range(whole)]
    reference_records = [
        (r.vpi, r.vci, r.interval, r.cells_clp0, r.cells_clp1,
         r.charge_units) for r in reference.close_interval()]
    comparator = StreamComparator(f"{run['name']}-records",
                                  normalize="sorted")
    comparator.extend_reference(reference_records)
    comparator.extend_observed(dut_records)
    report = comparator.compare()

    if level == "behav":
        # No HDL kernel ran: clocks are the modelled activity span,
        # and there is no synchroniser to report exchanges for.
        hdl_clocks = entity.modelled_clocks
        sync = {}
        sync_exchanges = 0
    else:
        hdl_clocks = env.hdl.now // timebase.clock_period_ticks
        sync = entity.sync.stats.as_dict()
        sync_exchanges = int(sync["messages_posted"]
                             + sync["null_messages"])
    instruments = env.metrics_registry.snapshot()
    latency = instruments["histograms"].get(
        "cosim.cell_ingress_latency_s")
    result: Dict[str, Any] = {
        "name": run["name"],
        "params": {"traffic": run["traffic"], "ports": ports,
                   "seed": seed, "sync": run["sync"],
                   "cells": int(run["cells"]), "load": load,
                   "level": level},
        "status": "ok",
        "passed": report.passed,
        "comparison": {
            "compared": report.compared,
            "matched": report.matched,
            "mismatched": len(report.mismatches),
            "missing": report.missing,
            "unexpected": report.unexpected,
        },
        "cells_in": entity.cells_in,
        "records": len(dut_records),
        "hdl_clocks": hdl_clocks,
        "hdl_events": env.hdl.events_executed,
        "netsim_events": env.network.kernel.executed_events,
        "sync": sync,
        "sync_exchanges": sync_exchanges,
        "latency": latency,
        "wall_s": wall,
        "cycles_per_s": hdl_clocks / wall if wall > 0 else 0.0,
    }
    if trace_file is not None:
        result["trace_file"] = trace_file
        result["trace_records"] = env.trace.emitted
    if env.provenance is not None:
        result["provenance"] = env.provenance.stats_snapshot()
    return result


def execute_run(run: Dict[str, Any], attempt: int = 1,
                in_worker: bool = True) -> Dict[str, Any]:
    """Execute one matrix cell; returns the run-result dict.

    Args:
        run: a :meth:`~repro.sweep.RunSpec.as_dict` payload.
        attempt: 1-based attempt number (failure injection can key on
            it to model crash-then-recover).
        in_worker: True inside a pool worker process; False for the
            parent's serial/fallback execution, where hard-death
            injection is softened into a raised exception.
    """
    _apply_injection(run, attempt, in_worker)
    return _build_and_run(run)
