"""Conservative simulator synchronisation (§3.1).

The protocol, quoting the paper:

  "Upon receipt of a message with a time stamp t_k for input queue I_j
  and t_k > t_cur the VHDL simulator is allowed to process all events
  with a time stamp smaller than t_k, but not equal.  Following, the
  current simulation time is updated to t_cur = t_k.  The message at
  queue I_j remains queued until all other input queues received
  messages with time stamp t_k or an event with a greater time stamp
  arrives at an arbitrary message queue.  In the first case the local
  simulation time is advanced by the minimum of each message type's
  processing delay δ_j.  Applying this strategy the simulated time of
  the VHDL simulator always lags behind OPNET's simulated time.  The
  use of this specific conservative synchronization protocol resolves
  the possibility of deadlock."

:class:`ConservativeSynchronizer` implements exactly this;
:class:`LockstepSynchronizer` is the naive per-clock coupling used as
the E2 ablation baseline.  Both maintain — and check — the safety
invariant that the HDL simulator's local time never overtakes the
network simulator's.

Both strategies advance the HDL simulator only through
``hdl.run(until=tick)``, which delegates to the attached clock engine
when one is present — the synchronisation protocol is independent of
the clocking scheme.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from ..hdl.simulator import Simulator
from .messages import (CausalityError, MessageQueueSet, TimestampedMessage)
from .timebase import TimeBase

__all__ = ["ConservativeSynchronizer", "LockstepSynchronizer",
           "SyncStatistics"]

Handler = Callable[[TimestampedMessage], None]


class SyncStatistics:
    """Counters shared by the synchronisation strategies."""

    def __init__(self) -> None:
        self.messages_posted = 0
        self.null_messages = 0
        self.windows_granted = 0
        self.ticks_simulated = 0
        self.max_lag_seconds = 0.0

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view for reports."""
        return {
            "messages_posted": self.messages_posted,
            "null_messages": self.null_messages,
            "windows_granted": self.windows_granted,
            "ticks_simulated": self.ticks_simulated,
            "max_lag_seconds": self.max_lag_seconds,
        }


class _SynchronizerBase:
    def __init__(self, hdl: Simulator, timebase: TimeBase) -> None:
        self.hdl = hdl
        self.timebase = timebase
        self.stats = SyncStatistics()
        #: largest originator time stamp seen so far (netsim side)
        self.originator_time = 0.0

    # -- invariant -----------------------------------------------------------
    def _check_lag_invariant(self) -> None:
        hdl_seconds = self.timebase.to_seconds(self.hdl.now)
        if hdl_seconds > self.originator_time + 1e-12:
            raise CausalityError(
                f"HDL time {hdl_seconds}s overtook the network "
                f"simulator's {self.originator_time}s — the conservative "
                "protocol's lag invariant is broken")
        self.stats.max_lag_seconds = max(
            self.stats.max_lag_seconds,
            self.originator_time - hdl_seconds)

    def _run_hdl_until_tick(self, tick: int) -> None:
        if tick > self.hdl.now:
            before = self.hdl.now
            self.hdl.run(until=tick)
            self.stats.ticks_simulated += self.hdl.now - before


class ConservativeSynchronizer(_SynchronizerBase):
    """The paper's timing-window protocol.

    Args:
        hdl: the HDL simulator (the "VHDL side").
        timebase: second/tick conversion.
        deltas: message type -> δ_j in DUT clock cycles.
        handlers: message type -> delivery callable; invoked when the
            protocol releases a message for processing (typically this
            injects a cell into the DUT's stimulus machinery).

    Driving:
        ``post(msg_type, time, payload)`` — a data message from the
        network simulator.
        ``advance_time(time)`` — a null (time-only) message announcing
        the originator's clock on *all* queues; the standard
        Chandy-Misra deadlock-avoidance device, and the paper's
        "time-stamped messages updating the receiving simulator with
        the current simulation time of the originator".
        ``drain(time)`` — announce *time* and release every remaining
        queued message (end of simulation).
    """

    def __init__(self, hdl: Simulator, timebase: TimeBase,
                 deltas: Dict[str, int],
                 handlers: Optional[Dict[str, Handler]] = None) -> None:
        super().__init__(hdl, timebase)
        self.queues = MessageQueueSet(deltas)
        self.handlers: Dict[str, Handler] = dict(handlers or {})
        #: t_cur of §3.1 — the netsim-side time horizon granted to the
        #: HDL simulator (seconds)
        self.t_cur = 0.0

    def set_handler(self, msg_type: str, handler: Handler) -> None:
        """Install the delivery callable for *msg_type*."""
        self.handlers[msg_type] = handler

    # -- originator-side API ----------------------------------------------
    def post(self, msg_type: str, time: float, payload: Any = None) -> None:
        """Receive a data message from the network simulator."""
        if time < self.t_cur:
            raise CausalityError(
                f"message {msg_type!r} at t={time} in the past of the "
                f"granted horizon t_cur={self.t_cur}")
        self.queues.push(TimestampedMessage(time=time, msg_type=msg_type,
                                            payload=payload))
        self.stats.messages_posted += 1
        self.originator_time = max(self.originator_time, time)
        self._advance()

    def advance_time(self, time: float) -> None:
        """Receive a null message: all queues learn the originator has
        reached *time* (no payload)."""
        for queue in self.queues.queues.values():
            queue.advance_time(time)
        self.stats.null_messages += 1
        self.originator_time = max(self.originator_time, time)
        self._advance()

    def drain(self, time: Optional[float] = None) -> None:
        """End of run: release every queued message and settle the DUT.

        *time* defaults to far enough past the last message for every
        processing window to complete.
        """
        if time is not None:
            self.advance_time(time)
        while self.queues.pending():
            head = self.queues.earliest_head()
            assert head is not None
            name, t_k = head
            self._grant_window(t_k)
            self._release(name)
        # allow the last processing window to finish
        final_ticks = self.hdl.now + self.timebase.clocks_to_ticks(
            max(q.delta_cycles for q in self.queues.queues.values()))
        self.originator_time = max(
            self.originator_time, self.timebase.to_seconds(final_ticks))
        self._run_hdl_until_tick(final_ticks)
        self._check_lag_invariant()

    # -- protocol core ---------------------------------------------------------
    def _advance(self) -> None:
        while True:
            head = self.queues.earliest_head()
            if head is None:
                return
            name, t_k = head
            self._grant_window(t_k)
            if not self.queues.all_covered_to(t_k):
                # Other queues may still produce earlier messages; the
                # head message stays queued (the wait of §3.1).
                return
            self._release(name)

    def _grant_window(self, t_k: float) -> None:
        """Allow the HDL simulator to process events strictly before
        t_k, then update t_cur."""
        if t_k > self.t_cur:
            self.stats.windows_granted += 1
            self.t_cur = t_k
        self._run_hdl_until_tick(self.timebase.to_ticks(t_k))
        self._check_lag_invariant()

    def _release(self, msg_type: str) -> None:
        """Deliver the head message of *msg_type* and advance the local
        time by the minimum processing delay."""
        message = self.queues[msg_type].pop()
        handler = self.handlers.get(msg_type)
        if handler is not None:
            handler(message)
        grant_ticks = self.timebase.clocks_to_ticks(
            self.queues.min_delta())
        target = self.hdl.now + grant_ticks
        # The processing window never overtakes the originator.
        limit = self.timebase.to_ticks(self.originator_time)
        self._run_hdl_until_tick(min(target, limit))
        self._check_lag_invariant()


class LockstepSynchronizer(_SynchronizerBase):
    """Naive per-clock coupling: the ablation baseline of E2.

    Every DUT clock period is a synchronisation point — one message
    per clock in each direction — which is exactly the cost the
    timing-window protocol avoids.
    """

    def __init__(self, hdl: Simulator, timebase: TimeBase,
                 handler: Optional[Handler] = None) -> None:
        super().__init__(hdl, timebase)
        self.handler = handler

    def post(self, msg_type: str, time: float, payload: Any = None) -> None:
        """Deliver a message, synchronising clock by clock up to it."""
        if time < self.timebase.to_seconds(self.hdl.now):
            raise CausalityError(
                f"lockstep message at t={time} in the HDL past")
        self.originator_time = max(self.originator_time, time)
        self.stats.messages_posted += 1
        target = self.timebase.to_ticks(time)
        period = self.timebase.clock_period_ticks
        while self.hdl.now + period <= target:
            self._run_hdl_until_tick(self.hdl.now + period)
            self.stats.null_messages += 1  # one sync exchange per clock
        self._run_hdl_until_tick(target)
        self._check_lag_invariant()
        if self.handler is not None:
            self.handler(TimestampedMessage(time=time, msg_type=msg_type,
                                            payload=payload))

    def advance_time(self, time: float) -> None:
        """Clock the DUT up to *time*, one sync exchange per clock."""
        if time < self.timebase.to_seconds(self.hdl.now):
            return
        self.originator_time = max(self.originator_time, time)
        target = self.timebase.to_ticks(time)
        period = self.timebase.clock_period_ticks
        while self.hdl.now + period <= target:
            self._run_hdl_until_tick(self.hdl.now + period)
            self.stats.null_messages += 1
        self._check_lag_invariant()
