"""RTL usage-parameter-control (UPC) policer.

ATM traffic management in dedicated hardware (the paper's motivation:
"the largest part of ATM traffic management ... in dedicated
hardware"): a per-connection GCRA implemented in integer clock-tick
arithmetic, policing an octet-serial cell stream.  Non-conforming
cells are either discarded or *tagged* (CLP set to 1, HEC
regenerated), the two standardised UPC actions.

The algorithmic reference is :class:`repro.atm.policing.
VirtualScheduling`; the co-verification tests replay the policer's
logged arrival clocks through the reference and demand identical
verdicts — the same methodology as the accounting case study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..hdl.compiled import slot_int
from ..hdl.logic import vector_to_int
from ..hdl.signal import Signal
from ..hdl.simulator import Simulator
from .cell_stream import CELL_OCTETS, CellStreamPort
from .component import Component
from .hec_circuit import crc8_step

__all__ = ["UpcPolicerRtl", "PolicingDecision"]

_COSET = 0x55

_KNOWN_BUGS = ("ignore_cdv", "stale_tat")


@dataclass(frozen=True)
class PolicingDecision:
    """One logged policing decision."""

    clock: int
    vpi: int
    vci: int
    conforming: bool


@dataclass
class _GcraState:
    increment_clocks: int
    limit_clocks: int
    tat_clocks: int = 0


class UpcPolicerRtl(Component):
    """Per-connection GCRA policing of a cell stream.

    Args:
        sim, name, clk: as usual.
        rx: input cell stream (created when ``None``).
        tx: output cell stream (created when ``None``).
        action: ``"drop"`` discards non-conforming cells, ``"tag"``
            forwards them with CLP=1 (HEC regenerated).
        bug: optional injected defect (``"ignore_cdv"`` treats the
            CDV tolerance as zero; ``"stale_tat"`` updates the TAT one
            increment short).

    Cells on unregistered connections pass unpoliced (transparent UPC
    for unmanaged traffic), counted in :attr:`unpoliced_cells`.
    """

    def __init__(self, sim: Simulator, name: str, clk: Signal,
                 rx: Optional[CellStreamPort] = None,
                 tx: Optional[CellStreamPort] = None,
                 action: str = "drop",
                 bug: Optional[str] = None,
                 backend: Optional[str] = None) -> None:
        super().__init__(sim, name, backend=backend)
        if action not in ("drop", "tag"):
            raise ValueError(f"unknown UPC action {action!r}")
        if bug is not None and bug not in _KNOWN_BUGS:
            raise ValueError(f"unknown bug {bug!r}; known: {_KNOWN_BUGS}")
        self.rx = rx if rx is not None else CellStreamPort(sim, f"{name}.rx")
        self.tx = tx if tx is not None else CellStreamPort(sim, f"{name}.tx")
        self.action = action
        self.bug = bug
        self._contracts: Dict[Tuple[int, int], _GcraState] = {}
        self._clock_count = 0
        self._rx_buffer: List[int] = []
        self._tx_queue: List[List[int]] = []
        self._tx_offset = 0
        self.decisions: List[PolicingDecision] = []
        self.cells_conforming = 0
        self.cells_non_conforming = 0
        self.unpoliced_cells = 0
        self.idle_cells = 0
        self.clocked(clk, self._tick, compile_fn=self._compile_seq)

    # -- management plane ---------------------------------------------------
    def install_contract(self, vpi: int, vci: int,
                         increment_clocks: int,
                         limit_clocks: int = 0) -> None:
        """Install GCRA(T=increment, tau=limit) for a connection, in
        DUT clock cycles."""
        if increment_clocks < 1:
            raise ValueError("increment must be >= 1 clock")
        if limit_clocks < 0:
            raise ValueError("negative CDV tolerance")
        self._contracts[(vpi, vci)] = _GcraState(
            increment_clocks=increment_clocks, limit_clocks=limit_clocks)

    def remove_contract(self, vpi: int, vci: int) -> None:
        """Remove a connection's policing contract."""
        self._contracts.pop((vpi, vci), None)

    def counters(self) -> Dict[str, int]:
        """Management-plane counter snapshot — the level-agnostic
        surface the cross-level equivalence harness diffs."""
        return {
            "cells_conforming": self.cells_conforming,
            "cells_non_conforming": self.cells_non_conforming,
            "unpoliced_cells": self.unpoliced_cells,
            "idle_cells": self.idle_cells,
        }

    # -- fast path ------------------------------------------------------------
    def _tick(self) -> None:
        self._clock_count += 1
        self._receive_octet()
        self._transmit_octet()

    def _receive_octet(self) -> None:
        if self.rx.valid.value != "1":
            return
        octet = vector_to_int(self.rx.atmdata.value)
        if self.rx.cellsync.value == "1":
            self._rx_buffer = [octet]
        elif not self._rx_buffer:
            return
        else:
            self._rx_buffer.append(octet)
        if len(self._rx_buffer) == CELL_OCTETS:
            self._police_cell(self._rx_buffer)
            self._rx_buffer = []

    def _police_cell(self, octets: List[int]) -> None:
        vpi = ((octets[0] & 0xF) << 4) | ((octets[1] >> 4) & 0xF)
        vci = (((octets[1] & 0xF) << 12) | (octets[2] << 4)
               | ((octets[3] >> 4) & 0xF))
        if (vpi, vci) == (0, 0):
            self.idle_cells += 1
            return
        state = self._contracts.get((vpi, vci))
        if state is None:
            self.unpoliced_cells += 1
            self._tx_queue.append(list(octets))
            return
        now = self._clock_count
        conforming = self._gcra_arrival(state, now)
        self.decisions.append(PolicingDecision(
            clock=now, vpi=vpi, vci=vci, conforming=conforming))
        if conforming:
            self.cells_conforming += 1
            self._tx_queue.append(list(octets))
            return
        self.cells_non_conforming += 1
        if self.action == "tag":
            tagged = list(octets)
            tagged[3] |= 0x01          # CLP := 1
            crc = 0
            for octet in tagged[:4]:
                crc = crc8_step(crc, octet)
            tagged[4] = crc ^ _COSET   # regenerate the HEC
            self._tx_queue.append(tagged)
        # "drop": the cell simply vanishes at the UPC point

    def _gcra_arrival(self, state: _GcraState, now: int) -> bool:
        """Integer-arithmetic GCRA, virtual scheduling formulation."""
        tat = state.tat_clocks
        if now > tat:
            tat = now
        limit = 0 if self.bug == "ignore_cdv" else state.limit_clocks
        if tat - now > limit:
            return False
        increment = state.increment_clocks
        if self.bug == "stale_tat":
            increment = max(1, increment - 1)
        state.tat_clocks = tat + increment
        return True

    def _transmit_octet(self) -> None:
        if not self._tx_queue:
            self.tx.valid.drive("0")
            self.tx.cellsync.drive("0")
            return
        cell = self._tx_queue[0]
        self.tx.atmdata.drive(cell[self._tx_offset])
        self.tx.cellsync.drive("1" if self._tx_offset == 0 else "0")
        self.tx.valid.drive("1")
        self._tx_offset += 1
        if self._tx_offset == CELL_OCTETS:
            self._tx_queue.pop(0)
            self._tx_offset = 0

    # -- compiled twin --------------------------------------------------------
    def _compile_seq(self, ctx):
        """Compiled twin of :meth:`_tick` (policing reuses the pure
        :meth:`_police_cell`)."""
        valid = ctx.read(self.rx.valid)
        cellsync = ctx.read(self.rx.cellsync)
        atmdata = ctx.read(self.rx.atmdata)
        w_atmdata = ctx.write(self.tx.atmdata)
        w_cellsync = ctx.write(self.tx.cellsync)
        w_valid = ctx.write(self.tx.valid)
        queue = self._tx_queue
        #: idle levels already driven -> skip the per-edge '0' writes
        self._tx_idle = False

        def evaluate():
            self._clock_count += 1
            if valid.value == "1":
                octet = slot_int(atmdata.value)
                buffer = self._rx_buffer
                if cellsync.value == "1":
                    buffer = self._rx_buffer = [octet]
                elif buffer:
                    buffer.append(octet)
                else:
                    buffer = None
                if buffer is not None and len(buffer) == CELL_OCTETS:
                    self._police_cell(buffer)
                    self._rx_buffer = []
            if not queue:
                if not self._tx_idle:
                    w_valid("0")
                    w_cellsync("0")
                    self._tx_idle = True
            else:
                self._tx_idle = False
                cell = queue[0]
                offset = self._tx_offset
                w_atmdata(cell[offset])
                w_cellsync("1" if offset == 0 else "0")
                w_valid("1")
                offset += 1
                if offset == CELL_OCTETS:
                    queue.pop(0)
                    offset = 0
                self._tx_offset = offset

        return evaluate
