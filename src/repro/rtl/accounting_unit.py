"""RTL ATM accounting unit — the paper's case-study DUT.

Consumes an octet-serial cell stream, extracts VPI/VCI/CLP from each
header, matches the connection against an internal table and counts
cells per connection.  A pulse on ``tariff_tick`` closes the tariff
interval: one charging record per table entry is pushed into an output
FIFO and streamed out as six 32-bit words per record
(vpi, vci, interval, cells_clp0, cells_clp1, charge_units).

The unit must match :class:`repro.atm.accounting.AccountingUnit`
word for word — that equivalence is what CASTANET's stream comparator
verifies in the case study (E5).  ``bug`` injects realistic RTL defects
so the benchmarks can demonstrate that the environment *catches*
divergences:

* ``"swap_clp"``    — CLP=1 cells counted as CLP=0,
* ``"charge_off_by_one"`` — charge one unit high on active intervals,
* ``"lost_tick"``   — every second tariff tick ignored.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from ..hdl.compiled import slot_int
from ..hdl.logic import vector_to_int
from ..hdl.signal import Signal
from ..hdl.simulator import Simulator
from .cell_stream import CELL_OCTETS, CellStreamPort
from .component import Component

__all__ = ["AccountingUnitRtl", "RECORD_WORDS"]

#: 32-bit words per charging record on the output bus.
RECORD_WORDS = 6

_KNOWN_BUGS = ("swap_clp", "charge_off_by_one", "lost_tick")


@dataclass
class _Entry:
    vpi: int
    vci: int
    units_per_cell: int
    units_per_cell_clp1: int
    fixed_units: int
    cells_clp0: int = 0
    cells_clp1: int = 0


class AccountingUnitRtl(Component):
    """The RTL charging unit.

    Ports:
        rx — octet-serial cell stream (created when not given).
        tariff_tick — input; a '1' sampled on a rising clock edge
            closes the interval.
        rec_valid, rec_word[31:0] — record output bus, one word per
            clock while records drain.
    """

    def __init__(self, sim: Simulator, name: str, clk: Signal,
                 rx: Optional[CellStreamPort] = None,
                 table_size: int = 64,
                 bug: Optional[str] = None,
                 backend: Optional[str] = None) -> None:
        super().__init__(sim, name, backend=backend)
        if bug is not None and bug not in _KNOWN_BUGS:
            raise ValueError(
                f"unknown bug {bug!r}; known: {_KNOWN_BUGS}")
        self.rx = rx if rx is not None else CellStreamPort(sim, f"{name}.rx")
        self.tariff_tick = self.signal("tariff_tick", init="0")
        self.rec_valid = self.signal("rec_valid", init="0")
        self.rec_word = self.signal("rec_word", width=32, init=0)
        self.table_size = table_size
        self.bug = bug
        self._entries: List[_Entry] = []
        self._index: Dict[Tuple[int, int], _Entry] = {}
        self._interval = 0
        self._octet_count = 0
        self._header: List[int] = []
        self._out_fifo: Deque[int] = deque()
        #: True once rec_valid has been driven '0' with an empty FIFO —
        #: the idle drive is issued once, not on every idle clock (the
        #: resolved waveform is identical; repeating the no-change
        #: drive costs a kernel delta round per clock)
        self._rec_idle = False
        self._tick_parity = 0
        self.cells_seen = 0
        self.unknown_cells = 0
        self.records_emitted = 0
        self.clocked(clk, self._tick, compile_fn=self._compile_seq)

    # -- management plane ---------------------------------------------------
    def register(self, vpi: int, vci: int, units_per_cell: int = 1,
                 units_per_cell_clp1: int = 0,
                 fixed_units: int = 0) -> None:
        """Install a connection in the accounting table."""
        if len(self._entries) >= self.table_size:
            raise ValueError(
                f"accounting table full ({self.table_size} entries)")
        if (vpi, vci) in self._index:
            raise ValueError(f"connection ({vpi}, {vci}) already present")
        entry = _Entry(vpi=vpi, vci=vci, units_per_cell=units_per_cell,
                       units_per_cell_clp1=units_per_cell_clp1,
                       fixed_units=fixed_units)
        self._entries.append(entry)
        self._index[(vpi, vci)] = entry

    @property
    def interval(self) -> int:
        """Index of the currently open tariff interval."""
        return self._interval

    @property
    def connection_count(self) -> int:
        """Number of registered connections."""
        return len(self._entries)

    def interval_cells(self, vpi: int, vci: int) -> Tuple[int, int]:
        """(CLP0, CLP1) counts of the open interval (management read,
        mirrors the reference model's query)."""
        entry = self._index.get((vpi, vci))
        if entry is None:
            raise ValueError(f"connection ({vpi}, {vci}) not registered")
        return entry.cells_clp0, entry.cells_clp1

    @property
    def output_backlog_words(self) -> int:
        """Record words queued but not yet streamed out."""
        return len(self._out_fifo)

    def counters(self) -> Dict[str, int]:
        """Management-plane counter snapshot — the level-agnostic
        surface the cross-level equivalence harness diffs."""
        return {
            "cells_seen": self.cells_seen,
            "unknown_cells": self.unknown_cells,
            "records_emitted": self.records_emitted,
        }

    # -- fast path ------------------------------------------------------------
    def _tick(self) -> None:
        self._handle_tariff_tick()
        self._handle_cell_octet()
        self._stream_records()

    def _handle_tariff_tick(self) -> None:
        if self.tariff_tick.value != "1":
            return
        if self.bug == "lost_tick":
            self._tick_parity ^= 1
            if self._tick_parity == 0:
                return
        self._close_interval()

    def _close_interval(self) -> None:
        for entry in self._entries:
            charge = (entry.fixed_units
                      + entry.cells_clp0 * entry.units_per_cell
                      + entry.cells_clp1 * entry.units_per_cell_clp1)
            if (self.bug == "charge_off_by_one"
                    and (entry.cells_clp0 or entry.cells_clp1)):
                charge += 1
            self._out_fifo.extend([
                entry.vpi, entry.vci, self._interval,
                entry.cells_clp0, entry.cells_clp1, charge])
            entry.cells_clp0 = 0
            entry.cells_clp1 = 0
            self.records_emitted += 1
        self._interval += 1

    def _handle_cell_octet(self) -> None:
        if self.rx.valid.value != "1":
            return
        octet = vector_to_int(self.rx.atmdata.value)
        if self.rx.cellsync.value == "1":
            self._header = [octet]
            self._octet_count = 1
            return
        if self._octet_count == 0:
            return
        self._octet_count += 1
        if self._octet_count <= 4:
            self._header.append(octet)
            if self._octet_count == 4:
                self._account_header()
        if self._octet_count == CELL_OCTETS:
            self._octet_count = 0

    def _account_header(self) -> None:
        h = self._header
        vpi = ((h[0] & 0xF) << 4) | ((h[1] >> 4) & 0xF)
        vci = (((h[1] & 0xF) << 12) | (h[2] << 4) | ((h[3] >> 4) & 0xF))
        clp = h[3] & 1
        if (vpi, vci) == (0, 0):
            return  # idle cells are never charged
        self.cells_seen += 1
        entry = self._index.get((vpi, vci))
        if entry is None:
            self.unknown_cells += 1
            return
        if clp and self.bug != "swap_clp":
            entry.cells_clp1 += 1
        else:
            entry.cells_clp0 += 1

    def _stream_records(self) -> None:
        fifo = self._out_fifo
        if not fifo:
            if not self._rec_idle:
                self.rec_valid.drive("0")
                self._rec_idle = True
            return
        self._rec_idle = False
        self.rec_word.drive(fifo.popleft())
        self.rec_valid.drive("1")

    # -- compiled twin --------------------------------------------------------
    def _compile_seq(self, ctx):
        """Compiled twin of :meth:`_tick`.  The event path's
        ``_rec_idle`` once-only idle drive is dropped: the writer
        closure's change detection makes a repeated '0' write free."""
        tariff_tick = ctx.read(self.tariff_tick)
        valid = ctx.read(self.rx.valid)
        cellsync = ctx.read(self.rx.cellsync)
        atmdata = ctx.read(self.rx.atmdata)
        w_rec_valid = ctx.write(self.rec_valid)
        w_rec_word = ctx.write(self.rec_word)
        fifo = self._out_fifo
        lost_tick = self.bug == "lost_tick"

        def evaluate():
            # tariff tick
            if tariff_tick.value == "1":
                if lost_tick:
                    self._tick_parity ^= 1
                    if self._tick_parity:
                        self._close_interval()
                else:
                    self._close_interval()
            # cell octet
            if valid.value == "1":
                octet = slot_int(atmdata.value)
                if cellsync.value == "1":
                    self._header = [octet]
                    self._octet_count = 1
                elif self._octet_count:
                    self._octet_count += 1
                    if self._octet_count <= 4:
                        self._header.append(octet)
                        if self._octet_count == 4:
                            self._account_header()
                    if self._octet_count == CELL_OCTETS:
                        self._octet_count = 0
            # record stream
            if fifo:
                w_rec_word(fifo.popleft())
                w_rec_valid("1")
            else:
                w_rec_valid("0")

        return evaluate
