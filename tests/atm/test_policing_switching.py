"""Unit and property tests for GCRA policing and connection tables."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.atm import (ConnectionTable, LeakyBucket, RoutingEntry,
                       RoutingError, VirtualScheduling, police_stream)


class TestGcra:
    def test_nominal_cbr_stream_conforms(self):
        gcra = VirtualScheduling(increment=1.0, limit=0.0)
        assert all(gcra.arrival(float(t)) for t in range(10))
        assert gcra.conforming == 10

    def test_too_fast_stream_rejected(self):
        gcra = VirtualScheduling(increment=1.0, limit=0.0)
        assert gcra.arrival(0.0)
        assert not gcra.arrival(0.5)  # half a period early, no tolerance
        assert gcra.arrival(1.0)      # back on schedule

    def test_cdv_tolerance_allows_jitter(self):
        gcra = VirtualScheduling(increment=1.0, limit=0.5)
        assert gcra.arrival(0.0)
        assert gcra.arrival(0.6)   # 0.4 early, within tau
        assert not gcra.arrival(0.7)  # now 1.3 ahead of schedule

    def test_burst_size_matches_tau_over_t(self):
        """With tau = N*T, a burst of N+1 back-to-back cells conforms."""
        gcra = VirtualScheduling(increment=1.0, limit=3.0)
        verdicts = [gcra.arrival(0.0) for _ in range(6)]
        assert verdicts == [True, True, True, True, False, False]

    def test_leaky_bucket_requires_time_order(self):
        bucket = LeakyBucket(increment=1.0, limit=0.0)
        bucket.arrival(1.0)
        with pytest.raises(ValueError):
            bucket.arrival(0.5)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            VirtualScheduling(increment=0.0, limit=0.0)
        with pytest.raises(ValueError):
            VirtualScheduling(increment=1.0, limit=-1.0)
        with pytest.raises(ValueError):
            LeakyBucket(increment=-1.0, limit=0.0)

    def test_reset(self):
        gcra = VirtualScheduling(increment=1.0, limit=0.0)
        gcra.arrival(0.0)
        assert not gcra.arrival(0.1)
        gcra.reset()
        assert gcra.arrival(0.1)
        assert gcra.conforming == 1

    def test_police_stream_helper(self):
        verdicts, fraction = police_stream([0.0, 1.0, 1.1, 2.0], 1.0, 0.0)
        assert verdicts == [True, True, False, True]
        assert fraction == pytest.approx(0.75)

    def test_police_empty_stream(self):
        verdicts, fraction = police_stream([], 1.0, 0.0)
        assert verdicts == []
        assert fraction == 1.0

    # The two-formulation equivalence is an exact-arithmetic theorem;
    # sampling dyadic rationals (multiples of 1/64 with small magnitude)
    # keeps every addition/subtraction exact in binary floating point so
    # the property is tested without rounding artefacts.
    _dyadic = st.integers(min_value=0, max_value=64 * 100).map(
        lambda n: n / 64.0)

    @settings(max_examples=100, deadline=None)
    @given(st.lists(_dyadic, min_size=1, max_size=100),
           st.integers(min_value=1, max_value=64 * 10).map(
               lambda n: n / 64.0),
           _dyadic)
    def test_property_virtual_scheduling_equals_leaky_bucket(
            self, times, increment, limit):
        """ITU-T I.371: the two GCRA formulations are equivalent."""
        times = sorted(times)
        vs = VirtualScheduling(increment, limit)
        lb = LeakyBucket(increment, limit)
        for t in times:
            assert vs.arrival(t) == lb.arrival(t)

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=1, max_value=64 * 5).map(
               lambda n: n / 64.0),
           st.integers(min_value=0, max_value=64 * 5).map(
               lambda n: n / 64.0),
           st.integers(min_value=2, max_value=50))
    def test_property_nominal_rate_always_conforms(self, increment, limit,
                                                   n):
        gcra = VirtualScheduling(increment, limit)
        assert all(gcra.arrival(i * increment) for i in range(n))


class TestConnectionTable:
    def test_install_lookup(self):
        table = ConnectionTable()
        table.install(0, 1, 100, RoutingEntry(3, 2, 200))
        entry = table.lookup(0, 1, 100)
        assert (entry.out_port, entry.out_vpi, entry.out_vci) == (3, 2, 200)

    def test_lookup_miss_raises_and_counts(self):
        table = ConnectionTable()
        with pytest.raises(RoutingError):
            table.lookup(0, 1, 1)
        assert table.misses == 1
        assert table.lookups == 1

    def test_remove(self):
        table = ConnectionTable()
        table.install(0, 1, 100, RoutingEntry(1, 1, 100))
        table.remove(0, 1, 100)
        assert len(table) == 0
        with pytest.raises(RoutingError):
            table.remove(0, 1, 100)

    def test_replace_existing(self):
        table = ConnectionTable()
        table.install(0, 1, 100, RoutingEntry(1, 1, 1))
        table.install(0, 1, 100, RoutingEntry(2, 2, 2))
        assert table.lookup(0, 1, 100).out_port == 2
        assert len(table) == 1

    def test_contains_no_side_effects(self):
        table = ConnectionTable()
        table.install(0, 5, 50, RoutingEntry(1, 5, 50))
        assert table.contains(0, 5, 50)
        assert not table.contains(1, 5, 50)
        assert table.lookups == 0

    def test_iteration(self):
        table = ConnectionTable()
        table.install(0, 1, 2, RoutingEntry(1, 1, 2))
        table.install(1, 3, 4, RoutingEntry(0, 3, 4))
        assert len(dict(table)) == 2

    def test_port_disambiguates_same_vpi_vci(self):
        table = ConnectionTable()
        table.install(0, 1, 100, RoutingEntry(1, 0, 0))
        table.install(1, 1, 100, RoutingEntry(2, 0, 0))
        assert table.lookup(0, 1, 100).out_port == 1
        assert table.lookup(1, 1, 100).out_port == 2
