"""Aggregation of per-process telemetry into one coherent view.

The merge layer is the second half of distributed telemetry
(:mod:`repro.obs.distributed` builds one payload per process; this
module folds N of them together):

* **counters** sum;
* **histograms** bucket-merge — bucket tallies are keyed on their
  upper bound (``le``), counts/totals sum, min/max recombine, and the
  approximate quantiles are re-derived from the merged buckets (the
  same upper-bound approximation :meth:`Histogram.quantile` uses, so
  a merged p99 is exactly what one process-wide histogram would have
  reported);
* **span streams** concatenate shard-attributed and clock-domain
  tagged, ordered by originator time so the merged stream reads like
  one process's trace;
* **coverage** recombines: FSM visited-state sets union, sync-window
  occupancy re-derives from summed totals, hop latency tails
  re-derive from the merged histograms, residual backlogs
  concatenate.

Everything operates on plain dicts (the wire shapes), never on live
instruments — merging N workers' telemetry needs no simulator state
and works the same on payloads read back from JSON files.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

from .distributed import (hop_tail_coverage, residual_backlog,
                          sync_window_coverage)

__all__ = ["merge_counters", "merge_histograms",
           "merge_instrument_snapshots", "merge_spans",
           "merge_coverage", "merge_telemetry",
           "merge_trace_records", "load_trace_jsonl"]


def merge_counters(snapshots: Iterable[Dict[str, int]]
                   ) -> Dict[str, int]:
    """Sum counter maps name-by-name."""
    merged: Dict[str, int] = {}
    for snapshot in snapshots:
        for name, value in snapshot.items():
            merged[name] = merged.get(name, 0) + int(value)
    return dict(sorted(merged.items()))


def _bucket_key(le: Union[float, str]) -> float:
    return float("inf") if le == "inf" else float(le)


def _merged_quantile(q: float, count: int,
                     buckets: List[Dict[str, Any]],
                     maximum: Optional[float]) -> Optional[float]:
    """Quantile over merged buckets, matching
    :meth:`Histogram.quantile`'s upper-bound approximation (the
    overflow bucket reports the observed max)."""
    if count == 0:
        return None
    rank = q * count
    seen = 0
    for bucket in buckets:
        seen += bucket["count"]
        if seen >= rank and bucket["count"]:
            if bucket["le"] == "inf":
                return maximum
            return bucket["le"]
    return maximum


def merge_histograms(dicts: Iterable[Dict[str, Any]]
                     ) -> Dict[str, Any]:
    """Bucket-merge histogram snapshots (``Histogram.as_dict`` shape)
    into one snapshot of the same shape."""
    count = 0
    total = 0.0
    minimum: Optional[float] = None
    maximum: Optional[float] = None
    tallies: Dict[float, Dict[str, Any]] = {}
    for hist in dicts:
        count += int(hist.get("count", 0))
        total += float(hist.get("total", 0.0))
        for stat, fold in (("min", min), ("max", max)):
            value = hist.get(stat)
            if value is None:
                continue
            current = minimum if stat == "min" else maximum
            folded = value if current is None else fold(current, value)
            if stat == "min":
                minimum = folded
            else:
                maximum = folded
        for bucket in hist.get("buckets", []):
            key = _bucket_key(bucket["le"])
            slot = tallies.get(key)
            if slot is None:
                tallies[key] = {"le": bucket["le"],
                                "count": bucket["count"]}
            else:
                slot["count"] += bucket["count"]
    buckets = [tallies[key] for key in sorted(tallies)]
    return {
        "count": count,
        "total": total,
        "mean": total / count if count else 0.0,
        "min": minimum,
        "max": maximum,
        "p50": _merged_quantile(0.5, count, buckets, maximum),
        "p99": _merged_quantile(0.99, count, buckets, maximum),
        "buckets": buckets,
    }


def merge_instrument_snapshots(snapshots: Iterable[Dict[str, Any]]
                               ) -> Dict[str, Any]:
    """Fold N ``MetricsRegistry.snapshot()`` dicts into one coherent
    registry view (counter sum + histogram bucket-merge)."""
    snapshots = list(snapshots)
    merged_counters = merge_counters(
        snapshot.get("counters", {}) for snapshot in snapshots)
    by_name: Dict[str, List[Dict[str, Any]]] = {}
    for snapshot in snapshots:
        for name, hist in snapshot.get("histograms", {}).items():
            by_name.setdefault(name, []).append(hist)
    return {
        "counters": merged_counters,
        "histograms": {name: merge_histograms(dicts)
                       for name, dicts in sorted(by_name.items())},
    }


def _span_domain(span: Dict[str, Any]) -> str:
    if "t" in span and "hdl_s" in span:
        return "both"
    return "hdl" if "hdl_s" in span else "t"


def _span_order(span: Dict[str, Any]) -> float:
    when = span.get("t")
    if when is None:
        when = span.get("hdl_s")
    return when if when is not None else float("inf")


def merge_spans(span_streams: Iterable[List[Dict[str, Any]]]
                ) -> List[Dict[str, Any]]:
    """Concatenate per-process span streams into one stream ordered
    by originator time, each span tagged with its clock ``domain``
    (``"t"`` / ``"hdl"`` / ``"both"``); shard attribution is already
    on each span."""
    merged: List[Dict[str, Any]] = []
    for stream in span_streams:
        for span in stream:
            tagged = dict(span)
            tagged.setdefault("domain", _span_domain(span))
            merged.append(tagged)
    merged.sort(key=_span_order)  # stable: intra-shard order kept
    return merged


def merge_coverage(payloads: List[Dict[str, Any]],
                   instruments: Optional[Dict[str, Any]] = None
                   ) -> Dict[str, Any]:
    """Recombine per-shard coverage blocks.

    *instruments* is the already-merged registry snapshot (hop tails
    re-derive from it so the merged tail view matches the merged
    histograms exactly).
    """
    fsm: Dict[str, Dict[str, Any]] = {}
    sync_totals: Dict[str, int] = {}
    residual_entities: List[Dict[str, Any]] = []
    for payload in payloads:
        coverage = payload.get("coverage", {})
        for name, entry in coverage.get("fsm_states", {}).items():
            slot = fsm.get(name)
            if slot is None:
                fsm[name] = {"visited": list(entry["visited"]),
                             "states": entry["states"]}
            else:
                slot["visited"] = sorted(
                    set(slot["visited"]) | set(entry["visited"]))
                slot["states"] = max(slot["states"], entry["states"])
        for key, value in coverage.get("sync_windows", {}).items():
            if key == "messages_per_window":
                continue
            sync_totals[key] = sync_totals.get(key, 0) + int(value)
        for backlog in (coverage.get("residual_backlog", {})
                        .get("per_entity", [])):
            residual_entities.append({"sender_backlog": backlog})
    for entry in fsm.values():
        total = entry["states"]
        entry["visited"] = sorted(entry["visited"])
        entry["fraction"] = (len(entry["visited"]) / total
                             if total else 0.0)
    return {
        "fsm_states": fsm,
        "sync_windows": sync_window_coverage(sync_totals),
        "hop_latency_tail": hop_tail_coverage(instruments),
        "residual_backlog": residual_backlog(residual_entities),
    }


def merge_telemetry(payloads: Iterable[Dict[str, Any]]
                    ) -> Dict[str, Any]:
    """Fold N shard telemetry payloads
    (:func:`repro.obs.distributed.build_telemetry` shape) into one
    topology-wide payload of the same shape, plus a ``shards`` list
    naming the contributors."""
    payloads = [p for p in payloads if p]
    instruments = merge_instrument_snapshots(
        p.get("instruments", {}) for p in payloads)
    provenance: Dict[str, int] = {}
    for payload in payloads:
        stats = payload.get("provenance") or {}
        for key, value in stats.items():
            if key == "sample":
                provenance[key] = max(provenance.get(key, 1),
                                      int(value))
            else:
                provenance[key] = provenance.get(key, 0) + int(value)
    return {
        "schema": max((p.get("schema", 1) for p in payloads),
                      default=1),
        "shards": [p.get("shard") for p in payloads],
        "instruments": instruments,
        "provenance": provenance or None,
        "spans": merge_spans(p.get("spans", []) for p in payloads),
        "trace_records": sum(int(p.get("trace_records", 0))
                             for p in payloads),
        "coverage": merge_coverage(payloads, instruments),
    }


def merge_trace_records(streams: Iterable[List[Dict[str, Any]]]
                        ) -> List[Dict[str, Any]]:
    """Interleave per-process trace-record streams by originator time
    (stable, so each process's own record order is preserved) — the
    input the multi-process Chrome exporter consumes."""
    merged: List[Dict[str, Any]] = []
    for stream in streams:
        merged.extend(stream)
    merged.sort(key=_span_order)
    return merged


def load_trace_jsonl(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Read one JSONL trace file (``TraceWriter`` output) back into
    record dicts — blank lines skipped, everything else must parse."""
    records: List[Dict[str, Any]] = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if line:
            records.append(json.loads(line))
    return records
