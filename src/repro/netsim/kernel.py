"""Discrete-event simulation kernel.

This is the OPNET-equivalent substrate of the co-verification
environment.  It provides a single-threaded event-list scheduler with
the semantics section 3.1 of the paper relies on:

* events are managed in an event list ordered by time stamp;
* events execute in monotone non-decreasing time order;
* events may be scheduled for the current simulated time or any future
  time, but never for a past time (attempting to do so raises
  :class:`~repro.netsim.events.SchedulingError`);
* simultaneous events execute in deterministic (priority, FIFO) order.

The kernel knows nothing about networking; nodes, links and process
models are layered on top (see :mod:`repro.netsim.node`,
:mod:`repro.netsim.process`).
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional

from .events import Event, SchedulingError

__all__ = ["Kernel"]


class Kernel:
    """A discrete-event simulation kernel with a binary-heap event list.

    Example:
        >>> k = Kernel()
        >>> hits = []
        >>> k.schedule(2.0, lambda: hits.append(k.now))
        >>> k.schedule(1.0, lambda: hits.append(k.now))
        >>> k.run()
        >>> hits
        [1.0, 2.0]
    """

    def __init__(self) -> None:
        self._queue: List[Event] = []
        self._now: float = 0.0
        self._running = False
        self._executed_events = 0
        self._stop_requested = False
        #: largest event-list length ever reached (observability)
        self.peak_pending_events = 0
        #: number of distinct time advances (observability)
        self.time_advances = 0
        #: Hooks invoked with the kernel each time ``now`` advances.
        self.time_listeners: List[Callable[[float], None]] = []
        #: optional profiling hook — a zero-arg callable returning a
        #: context manager, wrapped around every :meth:`run` call (see
        #: :func:`repro.obs.profile.attach_profiling`)
        self.profile: Optional[Callable[[], object]] = None

    # ------------------------------------------------------------------
    # Time and introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def executed_events(self) -> int:
        """Number of events executed so far (for event accounting)."""
        return self._executed_events

    @property
    def pending_events(self) -> int:
        """Number of events currently in the event list (incl. cancelled)."""
        return sum(1 for e in self._queue if not e.cancelled)

    def stats_snapshot(self) -> dict:
        """Machine-readable kernel counters — plain reads, no reset."""
        return {
            "now_s": self._now,
            "executed_events": self._executed_events,
            "pending_events": self.pending_events,
            "peak_pending_events": self.peak_pending_events,
            "time_advances": self.time_advances,
        }

    def next_event_time(self) -> Optional[float]:
        """Time stamp of the earliest pending event, or ``None`` if empty."""
        self._drop_cancelled_head()
        if not self._queue:
            return None
        return self._queue[0].time

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, time: float, action: Callable[[], None],
                 priority: int = 0) -> Event:
        """Schedule *action* to run at absolute *time*.

        Raises:
            SchedulingError: if *time* lies in the simulator's past.
        """
        if time < self._now:
            raise SchedulingError(
                f"event scheduled at t={time} in the past of t={self._now}")
        event = Event(time=time, priority=priority, action=action)
        heapq.heappush(self._queue, event)
        if len(self._queue) > self.peak_pending_events:
            self.peak_pending_events = len(self._queue)
        return event

    def schedule_after(self, delay: float, action: Callable[[], None],
                       priority: int = 0) -> Event:
        """Schedule *action* to run *delay* time units from now."""
        if delay < 0:
            raise SchedulingError(f"negative delay {delay}")
        return self.schedule(self._now + delay, action, priority)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the single earliest pending event.

        Returns:
            ``True`` if an event was executed, ``False`` if the event
            list is empty.
        """
        self._drop_cancelled_head()
        if not self._queue:
            return False
        event = heapq.heappop(self._queue)
        if event.time < self._now:
            raise SchedulingError(
                f"causality violation: popped event at t={event.time} "
                f"behind current time t={self._now}")
        self._advance_time(event.time)
        event.action()
        self._executed_events += 1
        return True

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> float:
        """Run events until the list drains, *until* is reached, or
        *max_events* events have executed.

        When *until* is given, the kernel's clock is advanced to exactly
        *until* on return even if the last event fired earlier, so that
        coupled simulators observe a consistent horizon.

        Returns:
            The simulated time at which execution stopped.
        """
        profile = self.profile
        if profile is not None:
            with profile():
                return self._run_events(until, max_events)
        return self._run_events(until, max_events)

    def _run_events(self, until: Optional[float],
                    max_events: Optional[int]) -> float:
        self._stop_requested = False
        executed = 0
        while not self._stop_requested:
            if max_events is not None and executed >= max_events:
                break
            next_time = self.next_event_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                break
            self.step()
            executed += 1
        if until is not None and until > self._now:
            self._advance_time(until)
        return self._now

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stop_requested = True

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _advance_time(self, time: float) -> None:
        if time < self._now:
            raise SchedulingError(
                f"attempt to move time backwards: {self._now} -> {time}")
        if time != self._now:
            self._now = time
            self.time_advances += 1
            for listener in self.time_listeners:
                listener(time)

    def _drop_cancelled_head(self) -> None:
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
