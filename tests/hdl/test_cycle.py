"""Tests for the cycle-based clock engine (E6 substrate)."""

import pytest

from repro.hdl import CycleEngine, RisingEdge, Simulator
from repro.rtl import Counter


def test_cycle_engine_advances_time():
    sim = Simulator()
    clk = sim.signal("clk", init="0")
    engine = CycleEngine(sim, clk, period=10)
    engine.run_cycles(7)
    assert sim.now == 70
    assert engine.cycles_run == 7


def test_clocked_process_sees_identical_behaviour():
    """A counter gives the same result under both clocking schemes."""
    # event-driven
    sim_e = Simulator()
    clk_e = sim_e.signal("clk", init="0")
    sim_e.add_clock(clk_e, period=10)
    counter_e = Counter(sim_e, "c", clk_e, width=8)
    sim_e.run(until=200)

    # cycle-based
    sim_c = Simulator()
    clk_c = sim_c.signal("clk", init="0")
    counter_c = Counter(sim_c, "c", clk_c, width=8)
    CycleEngine(sim_c, clk_c, period=10).run_cycles(20)

    assert counter_c.q.as_int() == counter_e.q.as_int() == 20


def test_generator_edge_waits_still_work():
    sim = Simulator()
    clk = sim.signal("clk", init="0")
    hits = []

    def waiter():
        for _ in range(3):
            yield RisingEdge(clk)
            hits.append(sim.now)

    sim.add_generator("w", waiter())
    CycleEngine(sim, clk, period=10).run_cycles(5)
    assert len(hits) == 3


def test_timed_events_are_honoured():
    sim = Simulator()
    clk = sim.signal("clk", init="0")
    s = sim.signal("s", init="0")
    s.drive("1", delay=25)
    CycleEngine(sim, clk, period=10).run_cycles(4)
    assert s.value == "1"


def test_cycle_based_uses_fewer_kernel_events():
    """The whole point: fewer scheduler operations per cycle."""
    def build(use_cycle_engine):
        sim = Simulator()
        clk = sim.signal("clk", init="0")
        Counter(sim, "c", clk, width=16)
        if use_cycle_engine:
            CycleEngine(sim, clk, period=10).run_cycles(500)
        else:
            sim.add_clock(clk, period=10)
            sim.run(until=5000)
        return sim

    event_driven = build(False)
    cycle_based = build(True)
    assert cycle_based.process_runs < event_driven.process_runs


def test_invalid_configs():
    sim = Simulator()
    clk = sim.signal("clk", init="0")
    with pytest.raises(ValueError):
        CycleEngine(sim, clk, period=1)
    with pytest.raises(ValueError):
        CycleEngine(sim, clk, period=10, duty_ticks=10)
