"""Conformance test vectors (Figure 1's third stimulus category).

Beside stochastic traffic models and recorded traces, the environment
feeds DUTs with "customized or standardized conformance test vectors"
— deterministic corner-case stimuli that probe the cell format
handling itself: field boundary values, walking-bit payloads, HEC
corruption, idle-cell handling.

:func:`standard_conformance_suite` is the "standardised" set;
:class:`VectorBuilder` composes "customised" sequences.  Every vector
carries an expectation (``accept`` / ``drop`` / ``idle``) so a runner
can score a DUT, and :func:`run_cell_conformance` does exactly that
against any octet-stream DUT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from ..atm.cell import AtmCell, CELL_OCTETS

__all__ = ["ConformanceVector", "VectorBuilder",
           "standard_conformance_suite", "run_cell_conformance",
           "ConformanceReport"]

#: expectations a vector can carry
EXPECT_ACCEPT = "accept"
EXPECT_DROP = "drop"
EXPECT_IDLE = "idle"


@dataclass(frozen=True)
class ConformanceVector:
    """One stimulus cell plus the behaviour it must provoke."""

    name: str
    octets: Tuple[int, ...]
    expectation: str   # EXPECT_ACCEPT / EXPECT_DROP / EXPECT_IDLE

    def __post_init__(self) -> None:
        if len(self.octets) != CELL_OCTETS:
            raise ValueError(
                f"vector {self.name!r}: {len(self.octets)} octets")
        if self.expectation not in (EXPECT_ACCEPT, EXPECT_DROP,
                                    EXPECT_IDLE):
            raise ValueError(
                f"vector {self.name!r}: bad expectation "
                f"{self.expectation!r}")


class VectorBuilder:
    """Fluent builder for customised conformance sequences.

    Example:
        >>> vectors = (VectorBuilder(vpi=1, vci=100)
        ...            .cell("plain")
        ...            .corrupt_hec("hec-bit0", bit=0)
        ...            .idle("filler")
        ...            .build())
        >>> [v.expectation for v in vectors]
        ['accept', 'drop', 'idle']
    """

    def __init__(self, vpi: int = 1, vci: int = 100) -> None:
        self.vpi = vpi
        self.vci = vci
        self._vectors: List[ConformanceVector] = []

    def cell(self, name: str, payload: Sequence[int] = (),
             expectation: str = EXPECT_ACCEPT,
             **fields) -> "VectorBuilder":
        """A well-formed cell on the builder's connection."""
        cell = AtmCell.with_payload(fields.pop("vpi", self.vpi),
                                    fields.pop("vci", self.vci),
                                    payload, **fields)
        self._vectors.append(ConformanceVector(
            name=name, octets=tuple(cell.to_octets()),
            expectation=expectation))
        return self

    def corrupt_hec(self, name: str, bit: int = 0,
                    payload: Sequence[int] = ()) -> "VectorBuilder":
        """A cell whose HEC octet has one bit flipped (must drop)."""
        if not 0 <= bit < 8:
            raise ValueError(f"HEC bit {bit} outside 0..7")
        octets = AtmCell.with_payload(self.vpi, self.vci,
                                      payload).to_octets()
        octets[4] ^= 1 << bit
        self._vectors.append(ConformanceVector(
            name=name, octets=tuple(octets), expectation=EXPECT_DROP))
        return self

    def corrupt_header(self, name: str, octet: int,
                       bit: int) -> "VectorBuilder":
        """A cell with a flipped header bit (HEC then mismatches)."""
        if not 0 <= octet < 4:
            raise ValueError(f"header octet {octet} outside 0..3")
        octets = AtmCell.with_payload(self.vpi, self.vci, []).to_octets()
        octets[octet] ^= 1 << (bit % 8)
        self._vectors.append(ConformanceVector(
            name=name, octets=tuple(octets), expectation=EXPECT_DROP))
        return self

    def idle(self, name: str) -> "VectorBuilder":
        """An idle/unassigned cell (must be filtered, never routed)."""
        self._vectors.append(ConformanceVector(
            name=name, octets=tuple(AtmCell.idle().to_octets()),
            expectation=EXPECT_IDLE))
        return self

    def unknown_connection(self, name: str, vpi: int,
                           vci: int) -> "VectorBuilder":
        """A well-formed cell on a connection the DUT must not know."""
        cell = AtmCell.with_payload(vpi, vci, [])
        self._vectors.append(ConformanceVector(
            name=name, octets=tuple(cell.to_octets()),
            expectation=EXPECT_DROP))
        return self

    def build(self) -> List[ConformanceVector]:
        """The accumulated vector list."""
        return list(self._vectors)


def standard_conformance_suite(vpi: int = 1,
                               vci: int = 100
                               ) -> List[ConformanceVector]:
    """The standardised corner-case set for one configured connection.

    Covers: field boundary values (GFC/PT/CLP extremes, max VPI/VCI on
    a *second* configured connection is the caller's business — here
    boundaries ride the configured one), payload patterns (zeros,
    ones, 0xAA/0x55, walking bit), HEC single-bit errors on every bit,
    header corruption, and idle filtering.
    """
    builder = VectorBuilder(vpi=vpi, vci=vci)
    builder.cell("boundary/gfc-max", gfc=0xF)
    builder.cell("boundary/pt-user-max", pt=0b011)
    builder.cell("boundary/clp-set", clp=1)
    builder.cell("payload/all-zero", payload=[0x00] * 48)
    builder.cell("payload/all-ones", payload=[0xFF] * 48)
    builder.cell("payload/alternating-aa", payload=[0xAA] * 48)
    builder.cell("payload/alternating-55", payload=[0x55] * 48)
    for bit in range(8):
        builder.cell(f"payload/walking-bit-{bit}",
                     payload=[1 << bit] * 48)
    for bit in range(8):
        builder.corrupt_hec(f"hec/bit-{bit}", bit=bit)
    for octet in range(4):
        builder.corrupt_header(f"header/octet-{octet}", octet=octet,
                               bit=7)
    builder.idle("idle/filler")
    builder.unknown_connection("unknown/vc", vpi=0xFF, vci=0xFFFF)
    return builder.build()


@dataclass
class ConformanceReport:
    """Score of one conformance run."""

    total: int
    passed: int
    failures: List[Tuple[str, str, str]]  # (vector, expected, observed)

    @property
    def ok(self) -> bool:
        """True when every vector behaved as specified."""
        return not self.failures

    def summary(self) -> str:
        """One-line verdict."""
        verdict = "PASS" if self.ok else "FAIL"
        return (f"[{verdict}] conformance: {self.passed}/{self.total} "
                "vectors behaved as specified")


def run_cell_conformance(vectors: Sequence[ConformanceVector],
                         apply_cell: Callable[[Sequence[int]], str]
                         ) -> ConformanceReport:
    """Score a DUT against *vectors*.

    *apply_cell* feeds one 53-octet cell to the DUT and returns the
    observed behaviour: ``"accept"``, ``"drop"`` or ``"idle"`` (how the
    caller derives that — output appeared, drop counter bumped, idle
    counter bumped — is DUT-specific).
    """
    failures: List[Tuple[str, str, str]] = []
    passed = 0
    for vector in vectors:
        observed = apply_cell(vector.octets)
        if observed == vector.expectation:
            passed += 1
        else:
            failures.append((vector.name, vector.expectation, observed))
    return ConformanceReport(total=len(vectors), passed=passed,
                             failures=failures)
