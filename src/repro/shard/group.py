"""One DUT shard: a 4-port switch + accounting unit behind an op log.

:class:`ShardGroup` owns one
:class:`~repro.core.CoVerificationEnvironment` hosting the shard's
swappable DUTs (built through :func:`repro.behav.factory.build_dut`,
so ``level="rtl"|"behav"|"auto"`` works per shard) and exposes one
way to drive them: replaying the coordinator's op log in order —
:meth:`apply_packed` for the columnar batches the binary codec
produces (the hot path, decode-free: cells are sliced straight out of
the received blob) and :meth:`apply_ops` for classic op-tuple lists.

This is the linchpin of the sharded-equals-local guarantee: the shard
*worker process* replays ops it received over a transport, and the
*local reference mode* (:class:`~repro.shard.client.LocalShardHandle`)
replays the identical op list in-process — both through this one code
path.  Whatever the conservative synchronisers inside the environment
do (window grants, null coalescing, settle loops), they do identically
in both modes, so the output cell streams are byte-identical by
construction rather than by careful re-implementation.

The default shard shape follows the topology item in ROADMAP.md:
an N-port ATM switch fabric with a ring routing table (input *i* →
output *(i+1) mod N*, connection ``(1, 100+i)`` → ``(2, 200+i)``), and
an accounting unit metering the same connections off the ingress
stream.  ``accounting=False`` drops the accounting unit for pure
switching shards.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..atm.cell import AtmCell
from ..behav.factory import DutHandle, build_dut
from ..core.environment import CoVerificationEnvironment
from . import codec, protocol

__all__ = ["ShardGroup"]


class ShardGroup:
    """One shard's DUTs plus the op-replay surface.

    Args:
        shard_id: name of this shard (environment/trace naming, error
            attribution).
        level: DUT abstraction level ("rtl" | "behav" | "auto"; auto
            resolves through the usual precedence chain, see
            :func:`repro.core.contract.resolve_level`).
        num_ports: switch fabric port count (default 4, the paper's
            shape).
        accounting: couple an accounting unit metering the ingress
            stream (default True).
        clocking: HDL clocking scheme for RTL shards
            ("cycle" | "event").
        observe: enable the metrics registry (off by default — shards
            report sync stats regardless; full instrument histograms
            are opt-in).
        trace: optional trace sink path/writer, forwarded to the
            environment (the worker stamps its shard id on every
            record via ``TraceWriter`` defaults).
    """

    def __init__(self, shard_id: str, level: str = "auto",
                 num_ports: int = 4, accounting: bool = True,
                 clocking: str = "cycle", observe: bool = False,
                 trace=None) -> None:
        self.shard_id = shard_id
        self.num_ports = num_ports
        self.env = CoVerificationEnvironment(
            name=f"shard.{shard_id}", clocking=clocking,
            observe=observe, trace=trace, dut_level=level)
        #: the environment's provenance tracker (None when neither
        #: observe nor trace is on) — wire-stamped trace ids feed it
        self.prov = self.env.provenance
        self.switch: DutHandle = build_dut(
            self.env, "switch", name=f"{shard_id}.switch",
            num_ports=num_ports)
        self.level = self.switch.level
        for i in range(num_ports):
            # Ring routes: each output fed by exactly one input, so
            # per-output cell order is deterministic regardless of
            # fabric arbitration (same table the equivalence harness
            # uses).
            self.switch.design.install_connection(
                i, 1, 100 + i, (i + 1) % num_ports, 2, 200 + i)
            # Second-hop routes: a chained topology forwards shard
            # k's output port p into shard k+1's ingress port p, so
            # the translated (2, 200+i) headers arrive at port
            # (i+1) mod N and route onward as (3, 300+i).  Third-hop
            # cells are unknown by design — a chain longer than two
            # switches exercises the unknown-header path.
            self.switch.design.install_connection(
                (i + 1) % num_ports, 2, 200 + i,
                (i + 2) % num_ports, 3, 300 + i)
        self.accounting: Optional[DutHandle] = None
        if accounting:
            self.accounting = build_dut(
                self.env, "accounting", name=f"{shard_id}.acct")
            for i in range(num_ports):
                self.accounting.design.register(
                    1, 100 + i, units_per_cell=i + 1,
                    units_per_cell_clp1=i, fixed_units=2 * i)
        #: per-output-port read cursors into entity.output_cells
        self._out_cursor = [0] * num_ports
        self.ops_applied = 0
        self.finished = False

    # ------------------------------------------------------------------
    # Op replay
    # ------------------------------------------------------------------
    def apply_ops(self, ops: List[protocol.Op]) -> None:
        """Replay a batch of ops in order.

        Op shapes (see :mod:`repro.shard.protocol`):
        ``(OP_CELL, t, port, octets)`` delivers the 53-octet cell to
        switch ingress *port* and (when present) the accounting unit;
        ``(OP_NULL, t)`` advances every entity's horizon;
        ``(OP_TICK, t)`` pulses the accounting tariff tick.
        """
        switch_entities = self.switch.entities
        acct = self.accounting.entity if self.accounting else None
        for op in ops:
            code = op[0]
            if code == protocol.OP_CELL:
                _, t, port, octets = op
                cell = AtmCell.from_octets(octets, verify_hec=False)
                switch_entities[port].send_cell(t, cell)
                if acct is not None:
                    acct.send_cell(t, cell)
            elif code == protocol.OP_NULL:
                t = op[1]
                for entity in switch_entities:
                    entity.advance_time(t)
                if acct is not None:
                    acct.advance_time(t)
            elif code == protocol.OP_TICK:
                if acct is None:
                    raise ValueError(
                        f"shard {self.shard_id!r} has no accounting "
                        "unit to tick")
                acct.send_tariff_tick(op[1])
            else:
                raise ValueError(f"unknown op code {code!r}")
            self.ops_applied += 1

    def apply_packed(self, packed) -> None:
        """Replay one :class:`~repro.shard.codec.PackedOps` batch.

        The decode-free twin of :meth:`apply_ops`: cells are sliced
        straight out of the received blob (``memoryview`` slices into
        the transport's receive buffer — :meth:`AtmCell.from_octets`
        copies the 53 octets immediately, so nothing outlives the
        buffer) and no per-op tuple is ever built.  Both the worker
        process and the local reference mode replay through this one
        method, preserving the byte-identity-by-construction argument
        of :meth:`apply_ops`.
        """
        switch_entities = self.switch.entities
        acct = self.accounting.entity if self.accounting else None
        codes, times, ports, blob = (packed.codes, packed.times,
                                     packed.ports, packed.blob)
        tids = getattr(packed, "tids", None)
        prov = self.prov
        cell_at = 0
        for i in range(packed.n_ops):
            code = codes[i]
            if code == codec.CODE_CELL:
                t = times[i]
                cell = AtmCell.from_octets(
                    blob[cell_at * codec.CELL_OCTETS:
                         (cell_at + 1) * codec.CELL_OCTETS],
                    verify_hec=False)
                if tids is not None:
                    # Cross-shard provenance: the coordinator stamped
                    # this cell's trace id into the op log; restore it
                    # (metadata only — never part of the 53 octets, so
                    # byte-identity is untouched) and span the shard
                    # ingress hop with this process's attribution.
                    tid = tids[cell_at]
                    if tid:
                        cell.trace_id = tid
                        if prov is not None:
                            prov.record_hop(tid, "shard_in", t=t,
                                            shard=self.shard_id,
                                            port=ports[cell_at])
                switch_entities[ports[cell_at]].send_cell(t, cell)
                if acct is not None:
                    acct.send_cell(t, cell)
                cell_at += 1
            elif code == codec.CODE_NULL:
                t = times[i]
                for entity in switch_entities:
                    entity.advance_time(t)
                if acct is not None:
                    acct.advance_time(t)
            elif code == codec.CODE_TICK:
                if acct is None:
                    raise ValueError(
                        f"shard {self.shard_id!r} has no accounting "
                        "unit to tick")
                acct.send_tariff_tick(times[i])
            else:
                raise ValueError(f"unknown op code {chr(code)!r}")
        self.ops_applied += packed.n_ops

    def new_outputs_packed(self) -> codec.OutputBatch:
        """Output cells that appeared since the previous call, as one
        columnar :class:`~repro.shard.codec.OutputBatch` in per-port
        stream order — the piggy-back payload of each ``FRAME_ACK``
        (encoded column-for-column, no per-cell tuples)."""
        batch = codec.OutputBatch()
        prov = self.prov
        # Hop recording stops once the environment is closed (the
        # trace sink is flushed then); residual outputs drained after
        # finish() still carry their ids back on the wire.
        record = prov is not None and not self.finished
        for port, entity in enumerate(self.switch.entities):
            cells = entity.output_cells
            cursor = self._out_cursor[port]
            for when, cell in cells[cursor:]:
                tid = cell.trace_id or 0
                batch.add(port, when, cell.to_octets(), tid)
                if tid and record:
                    prov.record_hop(tid, "shard_out", t=when,
                                    shard=self.shard_id, port=port)
            self._out_cursor[port] = len(cells)
        return batch

    def new_outputs(self) -> List[Tuple[int, float, bytes, int]]:
        """Tuple-list form of :meth:`new_outputs_packed` (same cursor)
        — the residual-output field of ``FRAME_RESULT`` and tooling.
        Each tuple is ``(port, t, octets, tid)`` so residual cells
        keep their provenance ids across the result frame too."""
        packed = self.new_outputs_packed()
        blob = packed.blob
        return [(packed.ports[i], packed.times[i],
                 bytes(blob[i * codec.CELL_OCTETS:
                            (i + 1) * codec.CELL_OCTETS]),
                 packed.tids[i])
                for i in range(len(packed))]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def finish(self, time: float) -> None:
        """Drain and settle every entity up to *time*; RTL accounting
        shards additionally stream the queued record words off the
        record bus (one word per clock)."""
        if self.finished:
            return
        for entity in self.switch.entities:
            entity.finish(time)
        if self.accounting is not None:
            self.accounting.entity.finish(time)
            if self.accounting.level == "rtl":
                self.env.hdl.run(
                    until=self.env.hdl.now
                    + 256 * self.env.timebase.clock_period_ticks)
        self.env.close()
        self.finished = True

    def close(self) -> None:
        """Flush the trace sink without advancing any simulator
        (idempotent; safe after a failed replay)."""
        self.env.close()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def _clocks(self) -> int:
        """Executed (RTL) or modelled (behav) whole DUT clocks."""
        if self.level == "rtl":
            return int(self.env.hdl.now
                       // self.env.timebase.clock_period_ticks)
        entities = list(self.switch.entities)
        if self.accounting is not None:
            entities.append(self.accounting.entity)
        return max(entity.modelled_clocks for entity in entities)

    def sync_stats(self) -> Dict[str, int]:
        """Aggregated conservative-protocol statistics across this
        shard's entities (all zero at the behavioural level — no
        synchroniser exists there)."""
        totals = {"messages_posted": 0, "null_messages": 0,
                  "null_messages_coalesced": 0, "windows_granted": 0}
        entities = list(self.switch.entities)
        if self.accounting is not None:
            entities.append(self.accounting.entity)
        for entity in entities:
            sync = getattr(entity, "sync", None)
            if sync is None:
                continue
            stats = sync.stats.as_dict()
            for key in totals:
                totals[key] += int(stats.get(key, 0))
        return totals

    def telemetry(self) -> Dict[str, Any]:
        """This shard's distributed-telemetry payload: the metrics
        registry snapshot, the provenance span stream (shard-
        attributed, both time domains) and the coverage counters
        (FSM states, sync-window occupancy, hop latency tails,
        residual backlogs).  Plain data — the worker ships it back
        verbatim in a ``FRAME_TELEMETRY`` reply; merge N of these
        with :func:`repro.obs.merge.merge_telemetry`.  Callable
        mid-run and after :meth:`finish` alike."""
        from ..obs.distributed import build_telemetry
        entities = [entity.snapshot()
                    for entity in self.switch.entities]
        if self.accounting is not None:
            entities.append(self.accounting.entity.snapshot())
        return build_telemetry(self.shard_id, self.env,
                               level=self.level,
                               sync=self.sync_stats(),
                               entities=entities)

    def result(self) -> Dict[str, Any]:
        """The shard's end-of-run report: identity, counters, charging
        records, per-entity snapshots and clock/sync totals (the
        payload of the worker's ``FRAME_RESULT`` reply)."""
        entities = list(self.switch.entities)
        if self.accounting is not None:
            entities.append(self.accounting.entity)
        return {
            "shard": self.shard_id,
            "level": self.level,
            "ports": self.num_ports,
            "ops_applied": self.ops_applied,
            "cells_in": sum(e.cells_in
                            for e in self.switch.entities),
            "output_cells": sum(len(e.output_cells)
                                for e in self.switch.entities),
            "records": (list(self.accounting.records())
                        if self.accounting else []),
            "counters": {
                "switch": self.switch.counters(),
                "accounting": (self.accounting.counters()
                               if self.accounting else {}),
            },
            "clocks": self._clocks(),
            "sync": self.sync_stats(),
            "entities": [entity.snapshot() for entity in entities],
        }
