"""E7 — system-level design exploration (paper §2 advantage list).

"Support of iterations between system and implementation-level design
tools to explore the design trade-offs" and "because there exists
strong dependencies between decisions at the system level and hardware
costs of their actual implementation there is no one way (top-down)
transition" — the reason the algorithm reference lives in a network
simulator at all.

Two representative explorations, both pure system level (the stage
*before* committing a buffer-acceptance circuit or a UPC block to
RTL):

* partial-buffer-sharing threshold sweep: CLP0 vs CLP1 loss as the
  reservation headroom changes;
* UPC tagging + PBS interplay: cells tagged by the policer become the
  ones the buffer sacrifices under overload.
"""


from repro.analysis import ExperimentResult, format_table
from repro.atm import AtmCell, PbsQueueModule, STM1_CELL_TIME, \
    VirtualScheduling
from repro.netsim import Network, SinkModule
from repro.traffic import OnOffSource

from .common import save_table, scaled

CELLS = scaled(4000)
CAPACITY = 16


def overload_workload(seed=5):
    """A bursty ~1.5x-overload cell stream, 50% of it CLP=1."""
    source = OnOffSource(peak_period=STM1_CELL_TIME,
                         mean_on=60 * STM1_CELL_TIME,
                         mean_off=30 * STM1_CELL_TIME, seed=seed)
    t = 0.0
    cells = []
    for index in range(CELLS):
        t += source.next_interarrival()
        cells.append((t, index % 2))  # alternate CLP 0/1
    return cells


def run_pbs(threshold, workload):
    net = Network()
    node = net.add_node("n")
    queue = PbsQueueModule("pbs", capacity=CAPACITY,
                           clp1_threshold=threshold,
                           service_time=1.5 * STM1_CELL_TIME)
    sink = SinkModule("sink")
    node.add_module(queue)
    node.add_module(sink)
    node.connect(queue, 0, sink, 0)
    for t, clp in workload:
        net.kernel.schedule(t, lambda clp=clp: queue.receive(
            AtmCell.with_payload(1, 100, [], clp=clp).to_packet(), 0))
    net.run()
    return queue


def test_e7_pbs_threshold_sweep(benchmark):
    workload = overload_workload()
    rows = []
    clp0_losses = []
    clp1_losses = []
    for threshold in (0, 4, 8, 12, 16):
        queue = run_pbs(threshold, workload)
        clp0 = queue.dropped_clp0 / max(1, queue.dropped_clp0
                                        + queue.accepted_clp0)
        clp1 = queue.dropped_clp1 / max(1, queue.dropped_clp1
                                        + queue.accepted_clp1)
        clp0_losses.append(clp0)
        clp1_losses.append(clp1)
        rows.append(ExperimentResult(f"T={threshold}", {
            "clp0_loss": clp0, "clp1_loss": clp1,
            "max_occupancy": queue.max_occupancy}))
    save_table("e7_pbs_sweep.txt", format_table(
        f"E7a: PBS threshold sweep (K={CAPACITY}, ~1.5x overload, "
        f"{CELLS} cells)",
        ["clp0_loss", "clp1_loss", "max_occupancy"], rows))
    # the design trade-off: raising T admits more CLP1 ...
    assert clp1_losses[0] == 1.0           # T=0 blocks all CLP1
    assert clp1_losses == sorted(clp1_losses, reverse=True)
    # ... at the cost of CLP0 protection
    assert clp0_losses[-1] >= clp0_losses[0]
    # a mid threshold protects CLP0 strictly better than no threshold
    assert clp0_losses[1] < clp0_losses[-1]

    benchmark.pedantic(lambda: run_pbs(8, workload[:500]),
                       rounds=1, iterations=1)


def test_e7_tagging_feeds_pbs(benchmark):
    """UPC tagging upstream of a PBS buffer: tagged (non-conforming)
    cells are exactly the ones sacrificed under overload."""
    workload = overload_workload(seed=9)

    def run_once():
        # stage 1: GCRA tagging at the contract rate (2 x cell time)
        gcra = VirtualScheduling(increment=2 * STM1_CELL_TIME,
                                 limit=10 * STM1_CELL_TIME)
        tagged_stream = [(t, 0 if gcra.arrival(t) else 1)
                         for t, _clp in workload]
        # stage 2: PBS buffer under the same overload
        queue = run_pbs(CAPACITY // 2, tagged_stream)
        return gcra, queue

    gcra, queue = benchmark.pedantic(run_once, rounds=1, iterations=1)
    tagged_fraction = gcra.non_conforming / (gcra.conforming
                                             + gcra.non_conforming)
    clp0_loss = queue.dropped_clp0 / max(1, queue.dropped_clp0
                                         + queue.accepted_clp0)
    clp1_loss = queue.dropped_clp1 / max(1, queue.dropped_clp1
                                         + queue.accepted_clp1)
    rows = [ExperimentResult("UPC tagging stage", {
                "value": tagged_fraction}),
            ExperimentResult("conforming (CLP0) loss", {
                "value": clp0_loss}),
            ExperimentResult("tagged (CLP1) loss", {
                "value": clp1_loss})]
    save_table("e7_tagging_pbs.txt", format_table(
        "E7b: UPC tagging + PBS interplay", ["value"], rows))
    assert tagged_fraction > 0.1
    assert clp1_loss > clp0_loss  # tagged cells bear the loss
