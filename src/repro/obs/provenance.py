"""Causal cell tracing across the abstraction interface.

The paper's central claims are *temporal* — the conservative protocol
keeps the HDL simulator's local time lagging the network simulator's,
and one abstract cell event fans out into ~400 HDL clock events — yet
aggregate counters cannot show a single cell crossing that boundary.
This module adds **cell provenance**: every cell gets a cheap,
monotonically-assigned trace id at its source, and every hop of its
journey

``source`` → ``post`` (synchroniser input queue) → ``release``
(protocol delivery) → ``ingress`` (last stimulus octet clocked into
the DUT) → ``dut_out`` (capture on ``tx_port``) → ``sink`` (netsim
terminal module)

emits one ``span`` record stamped in *both* time domains where
available (``t`` netsim seconds, ``hdl_s`` HDL seconds).  Per-cell
journeys and per-hop latency histograms fall out directly; the
Chrome exporter (:mod:`repro.obs.chrome`) renders the spans as flow
events connecting the two time-domain tracks.

Overhead discipline: id assignment is one integer increment; the
``sample`` knob traces 1-in-N cells (all spans of unsampled cells are
skipped with a single modulo check), so production-scale runs keep the
tracker on at a low duty cycle while tests trace everything.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..netsim.packet import Packet
    from .metrics import MetricsRegistry
    from .trace import TraceWriter

__all__ = ["ProvenanceTracker", "HOPS", "TRACE_ID_FIELD"]

#: the canonical hop sequence of one cell journey (a sink-only DUT
#: skips ``dut_out``; a cell the tap does not forward skips ``sink``)
HOPS = ("source", "post", "release", "ingress", "dut_out", "sink")

#: packet field carrying the trace id across the network simulator
TRACE_ID_FIELD = "trace_id"


class ProvenanceTracker:
    """Assigns trace ids to cells and records their per-hop spans.

    Args:
        metrics: registry receiving the per-hop latency histograms
            (``prov.hop_s.<from>_to_<to>``); ``None`` or a disabled
            registry records no histograms.
        trace: trace writer receiving one ``span`` record per sampled
            hop; ``None`` keeps the tracker histogram-only.
        sample: trace 1 in *sample* cells (1 = every cell).  Ids are
            assigned to **all** cells either way, so sampled journeys
            stay identifiable across domains.

    One tracker serves one environment: sources call :meth:`stamp`,
    the co-simulation entity and netsim sinks call :meth:`record_hop`
    with the id recovered from the cell/packet.
    """

    def __init__(self, metrics: Optional["MetricsRegistry"] = None,
                 trace: Optional["TraceWriter"] = None,
                 sample: int = 1) -> None:
        if sample < 1:
            raise ValueError(f"sample must be >= 1, got {sample}")
        self.sample = sample
        self.trace = trace
        self._metrics = (metrics if metrics is not None
                         and metrics.enabled else None)
        self._next_id = 0
        #: cells that received a trace id
        self.cells_seen = 0
        #: cells whose journey is actually traced (1 in ``sample``)
        self.cells_sampled = 0
        #: span records emitted (histogram-only hops count too)
        self.spans_recorded = 0
        #: trace id -> {hop: (t, hdl_s)} for every recorded hop
        self._journeys: Dict[int, Dict[str, Tuple[Optional[float],
                                                  Optional[float]]]] = {}
        #: (from_hop, to_hop) -> histogram (lazily created)
        self._hop_hists: Dict[Tuple[str, str], object] = {}
        self._hop_rank = {hop: rank for rank, hop in enumerate(HOPS)}

    # ------------------------------------------------------------------
    # Id assignment (source side)
    # ------------------------------------------------------------------
    def next_id(self) -> int:
        """Assign the next monotone trace id (one integer increment)."""
        tid = self._next_id
        self._next_id += 1
        self.cells_seen += 1
        return tid

    def sampled(self, trace_id: Optional[int]) -> bool:
        """True when the journey of *trace_id* is being traced."""
        return trace_id is not None and trace_id % self.sample == 0

    def stamp(self, packet: "Packet", time: float,
              source: Optional[str] = None) -> int:
        """Assign an id to *packet* and record its ``source`` hop.

        Called by :class:`~repro.traffic.TrafficSource` at emission;
        the id rides the packet's field dict across the network
        simulator and survives the :class:`~repro.atm.AtmCell` bridge.
        """
        tid = self.next_id()
        packet[TRACE_ID_FIELD] = tid
        self.record_hop(tid, "source", t=time, src=source)
        return tid

    # ------------------------------------------------------------------
    # Hop recording
    # ------------------------------------------------------------------
    def record_hop(self, trace_id: Optional[int], hop: str,
                   t: Optional[float] = None,
                   hdl_s: Optional[float] = None, **extra) -> None:
        """Record one hop of a cell journey (no-op for unsampled ids).

        Emits a ``span`` trace record carrying both time domains where
        known, and records the latency against the cell's *canonical*
        predecessor — the nearest earlier hop of :data:`HOPS` already
        recorded — into ``prov.hop_s.<prev>_to_<hop>``.  Canonical
        (not emission) order matters because the domains interleave:
        the netsim ``sink`` arrival routinely precedes the lagging HDL
        ``ingress`` completion of the very same cell.
        """
        if trace_id is None or trace_id % self.sample:
            return
        self.spans_recorded += 1
        journey = self._journeys.get(trace_id)
        if journey is None:
            journey = self._journeys[trace_id] = {}
            self.cells_sampled += 1
        if self._metrics is not None and journey:
            prev_hop = self._predecessor(journey, hop)
            if prev_hop is not None:
                latency = self._hop_latency(journey[prev_hop],
                                            (t, hdl_s))
                if latency is not None:
                    key = (prev_hop, hop)
                    hist = self._hop_hists.get(key)
                    if hist is None:
                        hist = self._metrics.histogram(
                            f"prov.hop_s.{key[0]}_to_{key[1]}")
                        self._hop_hists[key] = hist
                    hist.record(latency)
        journey[hop] = (t, hdl_s)
        if self.trace is not None:
            fields: Dict[str, object] = {"cell": trace_id, "hop": hop}
            if t is not None:
                fields["t"] = t
            if hdl_s is not None:
                fields["hdl_s"] = hdl_s
            fields.update(extra)
            self.trace.emit("span", **fields)

    def _predecessor(self, journey: Dict[str, Tuple[Optional[float],
                                                    Optional[float]]],
                     hop: str) -> Optional[str]:
        """The nearest recorded canonical predecessor of *hop* (the
        last recorded hop for non-canonical names)."""
        rank = self._hop_rank.get(hop)
        if rank is None:
            return next(reversed(journey)) if journey else None
        best: Optional[str] = None
        best_rank = -1
        for name in journey:
            name_rank = self._hop_rank.get(name, -1)
            if best_rank < name_rank < rank:
                best, best_rank = name, name_rank
        return best

    @staticmethod
    def _hop_latency(prev: Tuple[Optional[float], Optional[float]],
                     this: Tuple[Optional[float], Optional[float]]
                     ) -> Optional[float]:
        """Non-negative seconds between two hop stamps.

        Prefers the shared HDL domain (that is where queue waits and
        clocking delays live), then shared netsim time; hops in
        different domains are differenced directly — both domains
        count seconds from the same epoch, the HDL merely lags.
        """
        prev_t, prev_hdl = prev
        t, hdl_s = this
        if hdl_s is not None and prev_hdl is not None:
            return max(0.0, hdl_s - prev_hdl)
        if t is not None and prev_t is not None:
            return max(0.0, t - prev_t)
        this_stamp = hdl_s if hdl_s is not None else t
        prev_stamp = prev_hdl if prev_hdl is not None else prev_t
        if this_stamp is None or prev_stamp is None:
            return None
        return max(0.0, this_stamp - prev_stamp)

    # ------------------------------------------------------------------
    # Convenience hooks
    # ------------------------------------------------------------------
    def sink_hook(self, name: Optional[str] = None):
        """A ``(time, packet)`` callback recording the ``sink`` hop —
        plug into :class:`~repro.netsim.SinkModule`'s ``on_packet`` or
        a tap hook."""
        def _hook(time: float, packet: "Packet") -> None:
            tid = packet.get(TRACE_ID_FIELD)
            if name is not None:
                self.record_hop(tid, "sink", t=time, dst=name)
            else:
                self.record_hop(tid, "sink", t=time)
        return _hook

    def journey(self, trace_id: int) -> Optional[Dict[str,
                                                      Tuple[Optional[float],
                                                            Optional[float]]]]:
        """The recorded ``{hop: (t, hdl_s)}`` map of *trace_id*, or
        ``None`` for an unknown/unsampled id (debug/test aid)."""
        return self._journeys.get(trace_id)

    def journeys(self) -> Dict[int, Dict[str, Tuple[Optional[float],
                                                    Optional[float]]]]:
        """Every recorded journey, ``{trace_id: {hop: (t, hdl_s)}}``,
        in recording order — the span stream distributed telemetry
        ships back from shard workers (see
        :func:`repro.obs.distributed.spans_from_tracker`)."""
        return self._journeys

    def hop_names(self) -> List[str]:
        """The ``<from>_to_<to>`` keys with recorded latency samples."""
        return [f"{a}_to_{b}" for a, b in sorted(self._hop_hists)]

    def stats_snapshot(self) -> Dict[str, int]:
        """Machine-readable tracker counters."""
        return {
            "sample": self.sample,
            "cells_seen": self.cells_seen,
            "cells_sampled": self.cells_sampled,
            "spans_recorded": self.spans_recorded,
        }
