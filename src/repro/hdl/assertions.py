"""Assertion and coverage library for HDL test benches.

The paper motivates the whole environment with the cost of test-bench
construction and the explosion of test-vector complexity; assertion
checkers and coverage collectors are the standard instruments for
judging what a vector set actually exercised.  This module provides:

* :class:`AssertionEngine` — clocked immediate assertions
  (``always``/``never``), bounded-response implications
  (*if A at an edge, then B within N edges*) and stability checks;
* :class:`ToggleCoverage` — per-bit 0→1 / 1→0 toggle collection;
* :class:`ValueCoverage` — binned value coverage of a signal.

Failures are recorded (with times) and optionally raised immediately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .signal import Signal
from .simulator import Simulator

__all__ = ["AssertionEngine", "AssertionFailure", "HdlAssertionError",
           "ToggleCoverage", "ValueCoverage"]

Predicate = Callable[[], bool]


class HdlAssertionError(AssertionError):
    """Raised when a check fails and the engine is strict."""


@dataclass(frozen=True)
class AssertionFailure:
    """One recorded check failure."""

    name: str
    time: int
    message: str


class _BoundedResponse:
    """Tracks one pending A-implies-B-within-N obligation set."""

    def __init__(self, name: str, antecedent: Predicate,
                 consequent: Predicate, within: int) -> None:
        self.name = name
        self.antecedent = antecedent
        self.consequent = consequent
        self.within = within
        #: remaining-edge counters of open obligations
        self.pending: List[int] = []
        self.triggered = 0
        self.discharged = 0

    def step(self) -> Optional[str]:
        """Advance one clock edge; returns a failure message or None."""
        if self.consequent():
            self.discharged += len(self.pending)
            self.pending.clear()
        else:
            self.pending = [n - 1 for n in self.pending]
            if self.pending and self.pending[0] < 0:
                expired = sum(1 for n in self.pending if n < 0)
                self.pending = [n for n in self.pending if n >= 0]
                return (f"consequent not seen within {self.within} "
                        f"edges ({expired} obligation(s) expired)")
        if self.antecedent():
            self.pending.append(self.within)
            self.triggered += 1
        return None


class AssertionEngine:
    """A clocked checker bound to one clock signal.

    Args:
        sim: the simulator.
        clk: checks evaluate on every rising edge of this clock.
        strict: raise :class:`HdlAssertionError` on the first failure
            (otherwise failures only accumulate in :attr:`failures`).
    """

    def __init__(self, sim: Simulator, clk: Signal,
                 strict: bool = False) -> None:
        self.sim = sim
        self.clk = clk
        self.strict = strict
        self.failures: List[AssertionFailure] = []
        self.checks_evaluated = 0
        self._always: List[Tuple[str, Predicate, str]] = []
        self._never: List[Tuple[str, Predicate, str]] = []
        self._responses: List[_BoundedResponse] = []
        self._stables: List[Tuple[str, Signal, Predicate, List[Any]]] = []
        sim.add_process("assertions", self._tick, sensitivity=[clk])

    # ------------------------------------------------------------------
    # Check registration
    # ------------------------------------------------------------------
    def assert_always(self, name: str, condition: Predicate,
                      message: str = "condition violated") -> None:
        """*condition* must hold on every rising edge."""
        self._always.append((name, condition, message))

    def assert_never(self, name: str, condition: Predicate,
                     message: str = "forbidden condition seen") -> None:
        """*condition* must never hold on a rising edge."""
        self._never.append((name, condition, message))

    def assert_implies_within(self, name: str, antecedent: Predicate,
                              consequent: Predicate,
                              within: int) -> None:
        """Whenever *antecedent* holds at an edge, *consequent* must
        hold at some edge within the next *within* edges."""
        if within < 1:
            raise ValueError(f"bound must be >= 1, got {within}")
        self._responses.append(
            _BoundedResponse(name, antecedent, consequent, within))

    def assert_stable_while(self, name: str, signal: Signal,
                            enable: Predicate) -> None:
        """*signal* must not change between edges where *enable*
        holds on consecutive edges."""
        self._stables.append((name, signal, enable, [None, False]))

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    @property
    def passed(self) -> bool:
        """True while no check has failed."""
        return not self.failures

    def check(self) -> None:
        """Raise if any failure was recorded (end-of-test gate)."""
        if self.failures:
            first = self.failures[0]
            raise HdlAssertionError(
                f"{len(self.failures)} assertion failure(s); first: "
                f"[{first.name}] at t={first.time}: {first.message}")

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def _fail(self, name: str, message: str) -> None:
        failure = AssertionFailure(name=name, time=self.sim.now,
                                   message=message)
        self.failures.append(failure)
        if self.strict:
            raise HdlAssertionError(
                f"[{name}] at t={failure.time}: {message}")

    def _tick(self, _sim: Simulator) -> None:
        if not self.clk.rising():
            return
        for name, condition, message in self._always:
            self.checks_evaluated += 1
            if not condition():
                self._fail(name, message)
        for name, condition, message in self._never:
            self.checks_evaluated += 1
            if condition():
                self._fail(name, message)
        for response in self._responses:
            self.checks_evaluated += 1
            message = response.step()
            if message is not None:
                self._fail(response.name, message)
        for name, signal, enable, state in self._stables:
            self.checks_evaluated += 1
            enabled = enable()
            if enabled and state[1] and signal.value != state[0]:
                self._fail(name,
                           f"{signal.name} changed from {state[0]!r} "
                           f"to {signal.value!r} while stable-enabled")
            state[0] = signal.value
            state[1] = enabled


class ToggleCoverage:
    """Per-bit toggle coverage of a set of signals.

    A bit is *covered* once it has been seen both rising and falling.
    """

    def __init__(self, sim: Simulator,
                 signals: Sequence[Signal]) -> None:
        self.signals = list(signals)
        self._previous: Dict[int, Any] = {
            id(s): s.value for s in self.signals}
        #: (signal id, bit index) -> [rise_seen, fall_seen]
        self._bits: Dict[Tuple[int, int], List[bool]] = {}
        for signal in self.signals:
            width = 1 if signal.width is None else signal.width
            for bit in range(width):
                self._bits[(id(signal), bit)] = [False, False]
        sim.signal_hooks.append(self._on_change)

    def _on_change(self, signal: Signal) -> None:
        key = id(signal)
        if key not in self._previous:
            return
        old = self._previous[key]
        new = signal.value
        self._previous[key] = new
        old_bits = [old] if signal.width is None else list(old)
        new_bits = [new] if signal.width is None else list(new)
        for index, (a, b) in enumerate(zip(old_bits, new_bits)):
            if a == "0" and b == "1":
                self._bits[(key, index)][0] = True
            elif a == "1" and b == "0":
                self._bits[(key, index)][1] = True

    @property
    def total_bits(self) -> int:
        """Number of tracked bits."""
        return len(self._bits)

    @property
    def covered_bits(self) -> int:
        """Bits that toggled in both directions."""
        return sum(1 for rise, fall in self._bits.values()
                   if rise and fall)

    def coverage(self) -> float:
        """Fraction of bits fully toggled (1.0 when nothing tracked)."""
        if not self._bits:
            return 1.0
        return self.covered_bits / self.total_bits

    def uncovered(self) -> List[str]:
        """Human-readable list of not-fully-toggled bits."""
        names = {id(s): s.name for s in self.signals}
        report = []
        for (key, bit), (rise, fall) in sorted(
                self._bits.items(), key=lambda kv: (names[kv[0][0]],
                                                    kv[0][1])):
            if not (rise and fall):
                missing = []
                if not rise:
                    missing.append("rise")
                if not fall:
                    missing.append("fall")
                report.append(f"{names[key]}[{bit}]: no {'/'.join(missing)}")
        return report


class ValueCoverage:
    """Binned value coverage of one vector signal.

    Args:
        sim, clk: samples on rising clock edges.
        signal: the observed signal.
        bins: explicit list of values (or ``(lo, hi)`` range tuples)
            that must each be hit at least once.
    """

    def __init__(self, sim: Simulator, clk: Signal, signal: Signal,
                 bins: Sequence) -> None:
        self.signal = signal
        self.bins = list(bins)
        self.hits: Dict[int, int] = {i: 0 for i in range(len(self.bins))}
        self.samples = 0

        def tick(_sim: Simulator) -> None:
            if not clk.rising():
                return
            try:
                value = signal.as_int()
            except Exception:
                return
            self.samples += 1
            for index, bin_ in enumerate(self.bins):
                if isinstance(bin_, tuple):
                    lo, hi = bin_
                    if lo <= value <= hi:
                        self.hits[index] += 1
                elif value == bin_:
                    self.hits[index] += 1

        sim.add_process(f"cov:{signal.name}", tick, sensitivity=[clk])

    def coverage(self) -> float:
        """Fraction of bins hit at least once."""
        if not self.bins:
            return 1.0
        return sum(1 for count in self.hits.values() if count) \
            / len(self.bins)

    def missed(self) -> List:
        """Bins never hit."""
        return [self.bins[i] for i, count in self.hits.items()
                if not count]
