"""finish() error path: the done-latch must only be set on success.

Regression tests for the bug where a raising entity latched
``_finished`` on the way in, so a retry after fixing the cause
silently skipped the drain and returned truncated outputs.
"""

import json

import pytest

from repro.core import CoVerificationEnvironment


class _ExplodingEntity:
    """A coupled entity whose drain raises a configurable number of
    times before succeeding."""

    def __init__(self, failures=1):
        self.failures = failures
        self.finish_calls = 0

    def finish(self, horizon):
        self.finish_calls += 1
        if self.finish_calls <= self.failures:
            raise RuntimeError("entity drain exploded")


def test_failed_finish_does_not_latch_done(tmp_path):
    trace_file = tmp_path / "finish.trace.jsonl"
    env = CoVerificationEnvironment(name="finish-err", observe=False,
                                    trace=trace_file)
    entity = _ExplodingEntity(failures=10)
    env.entities.append(entity)
    with pytest.raises(RuntimeError, match="drain exploded"):
        env.finish()
    # The latch stayed open: a second call retries the drain instead
    # of silently returning truncated outputs.
    assert not env._finished
    with pytest.raises(RuntimeError, match="drain exploded"):
        env.finish()
    assert entity.finish_calls == 2


def test_failed_finish_still_closes_trace(tmp_path):
    trace_file = tmp_path / "finish.trace.jsonl"
    env = CoVerificationEnvironment(name="finish-err", observe=False,
                                    trace=trace_file)
    env.entities.append(_ExplodingEntity(failures=1))
    env.trace.emit("partial-evidence", detail="emitted before failure")
    with pytest.raises(RuntimeError):
        env.finish()
    # The partial trace is flushed evidence, not lost.
    assert env.trace.closed
    lines = trace_file.read_text().splitlines()
    assert lines
    assert any(json.loads(line)["ev"] == "partial-evidence"
               for line in lines)


def test_finish_retry_succeeds_after_transient_failure():
    # No trace sink here: a closed TraceWriter refuses further
    # emits, so retrying finish() is only possible without one (or
    # with a fresh sink) — exactly the scenario the fix enables.
    env = CoVerificationEnvironment(name="finish-retry", observe=False)
    entity = _ExplodingEntity(failures=1)
    env.entities.append(entity)
    with pytest.raises(RuntimeError):
        env.finish()
    assert not env._finished
    env.finish()
    assert env._finished
    assert entity.finish_calls == 2
    # And the latch now holds: a third call is a no-op.
    env.finish()
    assert entity.finish_calls == 2
