"""The co-verification environment façade (Figure 1).

:class:`CoVerificationEnvironment` wires the three worlds together:

* the **network simulator** (``env.network``) where traffic models and
  the algorithm reference model live;
* the **HDL simulator** (``env.hdl``) hosting RTL DUTs, coupled through
  :class:`~repro.core.cosim.CosimulationEntity` objects with the
  conservative synchronisation protocol;
* optionally the **hardware test board** through
  :class:`~repro.core.board_interface.BoardInterfaceModel`.

:class:`TapModule` is the OPNET-side CASTANET interface process: a
netsim module that observes the packet stream at some point of the
topology, hands each packet to the reference model *and* to the
coupled DUT(s), and (optionally) forwards it unchanged.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from ..hdl.cycle import CycleEngine
from ..hdl.simulator import Simulator
from ..netsim.node import Module
from ..netsim.packet import Packet
from ..netsim.topology import Network
from ..obs.metrics import MetricsRegistry, NULL_REGISTRY
from ..obs.provenance import ProvenanceTracker
from ..obs.trace import TraceWriter
from ..rtl.cell_stream import CellStreamPort
from .board_interface import BoardInterfaceModel
from .comparison import StreamComparator, VerificationReport
from .contract import DUT_LEVELS, DutContract, resolve_level
from .cosim import CosimulationEntity
from .timebase import TimeBase

__all__ = ["CoVerificationEnvironment", "TapModule"]

PacketHook = Callable[[float, Packet], None]


class TapModule(Module):
    """Observes packets at a point in the network model.

    Every received packet is timestamped with the current simulated
    time and delivered to each registered hook; with ``forward=True``
    the packet then continues on output stream 0 (transparent tap),
    otherwise the tap terminates the stream.
    """

    def __init__(self, name: str, forward: bool = True) -> None:
        super().__init__(name)
        self.forward = forward
        self.hooks: List[PacketHook] = []

    def add_hook(self, hook: PacketHook) -> None:
        """Register an observer called as ``hook(time, packet)``."""
        self.hooks.append(hook)

    def receive(self, packet: Packet, stream: int) -> None:
        """Deliver *packet* to every hook, then forward it if transparent."""
        self.packets_in += 1
        now = self._kernel().now
        for hook in self.hooks:
            hook(now, packet)
        if self.forward:
            self.send(packet, stream=0)


class CoVerificationEnvironment:
    """One instance of the Figure-1 environment.

    Example (sketch)::

        env = CoVerificationEnvironment()
        node = env.network.add_node("source")
        ...                        # build the network model
        rx = CellStreamPort(env.hdl, "dut.rx")
        dut = AccountingUnitRtl(env.hdl, "dut", env.clk, rx=rx)
        entity = env.add_dut(rx_port=rx, tick_signal=dut.tariff_tick)
        tap = env.make_cell_tap("tap", entity)
        ...                        # insert the tap into the topology
        env.run(until=0.01)
        env.finish()
    """

    def __init__(self, name: str = "castanet",
                 timebase: Optional[TimeBase] = None,
                 lockstep: bool = False,
                 clocking: str = "cycle",
                 observe: bool = True,
                 trace: Optional[Union[str, Path,
                                       TraceWriter]] = None,
                 provenance_sample: Optional[int] = 1,
                 rtl_backend: Optional[str] = None,
                 dut_level: Optional[str] = None) -> None:
        self.name = name
        # Default abstraction level for swappable DUTs built on this
        # environment ("rtl" | "behav" | "auto"); ``None`` defers to
        # the REPRO_DUT_LEVEL environment variable, itself defaulting
        # to "auto" (which resolves to "rtl" — the seed behaviour).
        if dut_level is None:
            dut_level = os.environ.get("REPRO_DUT_LEVEL", "auto")
        if dut_level not in DUT_LEVELS + ("auto",):
            raise ValueError(
                f"dut_level must be one of {', '.join(DUT_LEVELS)} or "
                f"'auto', got {dut_level!r}")
        self.dut_level = dut_level
        # Observability: the registry collects lag/queue-wait/latency
        # histograms from the synchronisers and entities; *trace* (a
        # path or a TraceWriter) additionally streams every
        # co-simulation decision as JSON lines.  ``observe=False``
        # installs the shared null registry — instrumented sites then
        # cost one attribute check each, nothing is recorded.
        self.metrics_registry = MetricsRegistry() if observe \
            else NULL_REGISTRY
        if trace is not None and not isinstance(trace, TraceWriter):
            trace = TraceWriter(trace)
        self.trace: Optional[TraceWriter] = trace
        # Cell provenance: 1-in-N causal tracing of cell journeys
        # across the abstraction interface.  Active whenever there is
        # a consumer (the registry or a trace sink); ``None``/0
        # disables it outright.
        self.provenance: Optional[ProvenanceTracker] = None
        if provenance_sample and (observe or trace is not None):
            self.provenance = ProvenanceTracker(
                metrics=self.metrics_registry, trace=trace,
                sample=provenance_sample)
        self.timebase = timebase if timebase is not None \
            else TimeBase.for_line_rate()
        self.network = Network(f"{name}.net")
        self.hdl = Simulator(time_unit=self.timebase.tick_seconds)
        # RTL execution backend for components built on this
        # environment ("event" | "compiled" | "auto"); ``None`` keeps
        # the simulator default (REPRO_RTL_BACKEND env var or "auto").
        if rtl_backend is not None:
            self.hdl.rtl_backend = rtl_backend
        self.clk = self.hdl.signal("clk", init="0")
        # The DUT clock.  "cycle" (default since the hot-path overhaul)
        # attaches a CycleEngine: clock edges are applied by direct
        # dispatch with no heap/resume traffic, trace-identical to the
        # event-driven generator clock that "event" (the seed scheme,
        # kept for equivalence regression) still provides.
        self.clock_engine: Optional[CycleEngine] = None
        if clocking == "cycle":
            self.clock_engine = CycleEngine(
                self.hdl, self.clk,
                period=self.timebase.clock_period_ticks)
        elif clocking == "event":
            self.hdl.add_clock(self.clk,
                               period=self.timebase.clock_period_ticks)
        else:
            raise ValueError(
                f"clocking must be 'cycle' or 'event', got {clocking!r}")
        self.clocking = clocking
        self.lockstep = lockstep
        self.entities: List[DutContract] = []
        self.board_interfaces: List[BoardInterfaceModel] = []
        self.comparators: List[StreamComparator] = []
        self._finished = False
        self.network.kernel.time_listeners.append(self._on_netsim_time)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def resolved_dut_level(self, level: Optional[str] = None) -> str:
        """Resolve a per-DUT *level* override against this
        environment's ``dut_level`` policy (see
        :func:`~repro.core.contract.resolve_level`)."""
        return resolve_level(level, default=self.dut_level)

    def add_dut(self, rx_port: Optional[CellStreamPort] = None,
                tx_port: Optional[CellStreamPort] = None,
                tick_signal=None,
                deltas: Optional[Dict[str, int]] = None,
                *, level: Optional[str] = None,
                behav=None, behav_port: int = 0) -> DutContract:
        """Couple a DUT into the environment at either abstraction
        level.

        RTL form (the seed API, unchanged): pass the HDL-side ports —
        ``rx_port`` and optionally ``tx_port``/``tick_signal``/
        ``deltas`` — and a :class:`CosimulationEntity` with its own
        synchroniser is created.

        Behavioural form: pass ``behav=`` (a twin from
        :mod:`repro.behav.twins`, plus ``behav_port`` for multi-port
        twins) and a :class:`~repro.behav.entity.BehavioralEntity` is
        created — no HDL kernel or synchroniser involvement.

        *level* is a consistency assertion, not a selector: the form of
        the call already fixes the level, so an explicit *level*
        contradicting it raises.  (The environment's ``dut_level``
        policy influences *builders* — see
        :func:`repro.behav.factory.build_dut` — not direct couplings,
        so existing RTL call sites keep working under
        ``REPRO_DUT_LEVEL=behav``.)
        """
        if behav is not None:
            if resolve_level(level, default="behav") != "behav":
                raise ValueError(
                    f"level={level!r} contradicts the behavioural twin "
                    "passed via behav=")
            if (rx_port is not None or tx_port is not None
                    or tick_signal is not None):
                raise ValueError(
                    "behavioural DUTs take no HDL ports; drop "
                    "rx_port/tx_port/tick_signal or couple at "
                    "level='rtl'")
            from ..behav.entity import BehavioralEntity
            entity: DutContract = BehavioralEntity(
                behav, timebase=self.timebase, port=behav_port,
                metrics=self.metrics_registry, trace=self.trace,
                provenance=self.provenance)
            self.entities.append(entity)
            return entity
        if rx_port is None:
            raise TypeError(
                "add_dut requires rx_port for an RTL DUT (or behav= "
                "for a behavioural twin)")
        if resolve_level(level, default="rtl") != "rtl":
            raise ValueError(
                "level='behav' requires a behavioural twin — pass "
                "behav=<twin> instead of HDL ports")
        entity = CosimulationEntity(self.hdl, self.clk, self.timebase,
                                    rx_port=rx_port, tx_port=tx_port,
                                    tick_signal=tick_signal,
                                    deltas=deltas, lockstep=self.lockstep,
                                    metrics=self.metrics_registry,
                                    trace=self.trace,
                                    provenance=self.provenance)
        self.entities.append(entity)
        return entity

    def add_board_interface(self,
                            interface: BoardInterfaceModel) -> None:
        """Register a hardware-in-the-loop path (its cells come from
        taps, like any DUT's)."""
        self.board_interfaces.append(interface)

    def make_cell_tap(self, name: str,
                      *entities: DutContract,
                      forward: bool = True) -> TapModule:
        """Create a tap that feeds every given DUT entity (add it to a
        node and wire it into the topology yourself)."""
        tap = TapModule(name, forward=forward)
        for entity in entities:
            tap.add_hook(lambda t, pkt, e=entity: e.send_cell(t, pkt))
        return tap

    def comparator(self, name: str, **kwargs) -> StreamComparator:
        """Create and register a stream comparator."""
        comp = StreamComparator(name, **kwargs)
        self.comparators.append(comp)
        return comp

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> float:
        """Run the network simulation; coupled DUTs follow along via
        the synchronisation protocol."""
        with self.metrics_registry.timer("env.run_wall_s"):
            return self.network.run(until=until, max_events=max_events)

    def finish(self) -> None:
        """Drain every coupled simulator and board interface.

        The done-latch is set only after every entity drained and
        every board interface flushed: a raising entity used to latch
        ``_finished`` on the way in, so the retry after a fixed cause
        silently skipped the drain and returned truncated outputs.
        The trace sink is closed in a ``finally`` either way — on
        failure the records emitted so far are exactly the evidence
        needed to debug it.
        """
        if self._finished:
            return
        horizon = self.network.kernel.now
        try:
            with self.metrics_registry.timer("env.finish_wall_s"):
                for entity in self.entities:
                    entity.finish(horizon)
                for interface in self.board_interfaces:
                    interface.flush()
            self._finished = True
        finally:
            if self.trace is not None:
                self.trace.close()

    def close(self) -> None:
        """Close the trace sink unconditionally (idempotent).

        Unlike :meth:`finish` this never advances a simulator, so it is
        safe to call after a failed run — the trace records emitted so
        far are flushed instead of lost.
        """
        if self.trace is not None:
            self.trace.close()

    def __enter__(self) -> "CoVerificationEnvironment":
        """Enter a managed environment (``with CoVerification…() as env``)."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Finish on clean exit; always close the trace sink.

        When the body raised, the simulators may be in an inconsistent
        state, so only the trace is flushed/closed — the partial record
        stream is exactly the evidence needed to debug the failure.
        """
        if exc_type is None:
            self.finish()
        self.close()

    def reports(self) -> List[VerificationReport]:
        """Compare every registered comparator and collect reports."""
        return [comp.compare() for comp in self.comparators]

    def all_passed(self) -> bool:
        """True when every comparator's report passes."""
        return all(report.passed for report in self.reports())

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def metrics(self) -> Dict[str, object]:
        """One machine-readable snapshot of the whole environment:
        kernel counters of both simulators, per-entity synchronisation
        statistics, board-interface totals and every registry
        instrument (lag/queue-wait/latency histograms, span timers).

        The metric names and trace schema are documented in DESIGN.md
        §"Observability"."""
        snapshot: Dict[str, object] = {
            "name": self.name,
            "clocking": self.clocking,
            "lockstep": self.lockstep,
            "hdl_kernel": self.hdl.stats_snapshot(),
            "netsim_kernel": self.network.kernel.stats_snapshot(),
            "entities": [entity.snapshot()
                         for entity in self.entities],
            "board_interfaces": [
                interface.stats_snapshot()
                for interface in self.board_interfaces
            ],
        }
        if self.clock_engine is not None:
            snapshot["clock_engine"] = self.clock_engine.stats_snapshot()
        if self.metrics_registry.enabled:
            snapshot["instruments"] = self.metrics_registry.snapshot()
        if self.provenance is not None:
            snapshot["provenance"] = self.provenance.stats_snapshot()
        if self.trace is not None:
            snapshot["trace_records"] = self.trace.emitted
        return snapshot

    def export_metrics(self, path: Union[str, Path]) -> Path:
        """Write :meth:`metrics` as indented JSON; returns the path."""
        path = Path(path)
        path.write_text(json.dumps(self.metrics(), indent=2,
                                   sort_keys=True) + "\n")
        return path

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _on_netsim_time(self, time: float) -> None:
        # Null messages: every netsim time advance announces the new
        # originator time to all coupled simulators.
        for entity in self.entities:
            entity.advance_time(time)
