"""Unit and property tests for ATM cells and HEC."""

import pytest
from hypothesis import given, strategies as st

from repro.atm import (AtmCell, CELL_OCTETS, CellFormatError, PAYLOAD_OCTETS,
                       check_hec, crc8, hec_octet)


class TestHec:
    def test_crc8_empty_is_zero(self):
        assert crc8([]) == 0

    def test_crc8_known_vector(self):
        # CRC-8/ATM ("123456789") check value is 0xF4 for poly 0x07.
        data = [ord(c) for c in "123456789"]
        assert crc8(data) == 0xF4

    def test_hec_round_trip(self):
        header = [0x12, 0x34, 0x56, 0x78]
        assert check_hec(header + [hec_octet(header)])

    def test_hec_detects_single_bit_errors(self):
        header = [0x00, 0x11, 0x22, 0x33]
        full = header + [hec_octet(header)]
        for octet in range(5):
            for bit in range(8):
                corrupted = list(full)
                corrupted[octet] ^= 1 << bit
                assert not check_hec(corrupted)

    def test_hec_requires_four_octets(self):
        with pytest.raises(ValueError):
            hec_octet([1, 2, 3])

    def test_check_requires_five_octets(self):
        with pytest.raises(ValueError):
            check_hec([1, 2, 3, 4])

    def test_crc8_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            crc8([256])

    @given(st.lists(st.integers(0, 255), min_size=4, max_size=4))
    def test_property_hec_always_verifies(self, header):
        assert check_hec(header + [hec_octet(header)])


class TestAtmCell:
    def test_default_cell(self):
        cell = AtmCell()
        assert cell.is_idle
        assert len(cell.payload) == PAYLOAD_OCTETS

    def test_field_ranges_enforced(self):
        with pytest.raises(CellFormatError):
            AtmCell(vpi=256)
        with pytest.raises(CellFormatError):
            AtmCell(vci=65536)
        with pytest.raises(CellFormatError):
            AtmCell(pt=8)
        with pytest.raises(CellFormatError):
            AtmCell(clp=2)
        with pytest.raises(CellFormatError):
            AtmCell(gfc=16)

    def test_payload_length_enforced(self):
        with pytest.raises(CellFormatError):
            AtmCell(payload=(0,) * 47)

    def test_with_payload_pads(self):
        cell = AtmCell.with_payload(1, 2, [9, 8, 7])
        assert cell.payload[:3] == (9, 8, 7)
        assert cell.payload[3:] == (0,) * 45

    def test_with_payload_rejects_oversize(self):
        with pytest.raises(CellFormatError):
            AtmCell.with_payload(1, 2, [0] * 49)

    def test_octet_image_is_53_octets(self):
        assert len(AtmCell().to_octets()) == CELL_OCTETS

    def test_header_layout_known_values(self):
        cell = AtmCell(gfc=0xA, vpi=0xBC, vci=0xDEF0, pt=0b101, clp=1)
        h = cell.header_octets(with_hec=False)
        assert h[0] == 0xAB            # GFC | VPI[7:4]
        assert h[1] == 0xCD            # VPI[3:0] | VCI[15:12]
        assert h[2] == 0xEF            # VCI[11:4]
        assert h[3] == 0x0B            # VCI[3:0] | PT=101 | CLP=1

    def test_octet_round_trip(self):
        cell = AtmCell.with_payload(17, 4242, list(range(48)), pt=3,
                                    clp=1, gfc=5)
        assert AtmCell.from_octets(cell.to_octets()) == cell

    def test_from_octets_detects_corruption(self):
        octets = AtmCell.with_payload(1, 2, [3]).to_octets()
        octets[0] ^= 0x80
        with pytest.raises(CellFormatError):
            AtmCell.from_octets(octets)

    def test_from_octets_skip_hec_check(self):
        octets = AtmCell.with_payload(1, 2, [3]).to_octets()
        octets[4] ^= 0xFF
        cell = AtmCell.from_octets(octets, verify_hec=False)
        assert cell.vpi == 1

    def test_from_octets_length_enforced(self):
        with pytest.raises(CellFormatError):
            AtmCell.from_octets([0] * 52)

    def test_packet_round_trip(self):
        cell = AtmCell.with_payload(9, 99, [1, 2, 3], pt=1)
        packet = cell.to_packet(creation_time=2.5)
        assert packet.size_bits == 424
        assert packet["VPI"] == 9
        assert AtmCell.from_packet(packet) == cell

    def test_idle_cell(self):
        assert AtmCell.idle().is_idle
        assert not AtmCell(vpi=1, vci=1).is_idle

    @given(gfc=st.integers(0, 15), vpi=st.integers(0, 255),
           vci=st.integers(0, 65535), pt=st.integers(0, 7),
           clp=st.integers(0, 1),
           payload=st.lists(st.integers(0, 255), min_size=48, max_size=48))
    def test_property_octet_round_trip(self, gfc, vpi, vci, pt, clp,
                                       payload):
        cell = AtmCell(gfc=gfc, vpi=vpi, vci=vci, pt=pt, clp=clp,
                       payload=tuple(payload))
        again = AtmCell.from_octets(cell.to_octets())
        assert again == cell
