"""Signals: the state carriers of the HDL simulator.

A :class:`Signal` models a VHDL ``std_logic`` / ``std_logic_vector``
object: it has a *resolved* current value computed from the values of
all drivers, scheduled updates take effect in the next delta cycle (or
after an explicit delay), and value changes produce *events* that wake
sensitive processes.

Multiple drivers are resolved with the IEEE 1164 table, which is what
lets the test-board model share tristate byte lanes between the board
and the device under test.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union, TYPE_CHECKING

from .logic import (LogicError, resolve_many, to_vector, vector_to_int)

if TYPE_CHECKING:  # pragma: no cover
    from .simulator import Simulator
    from .processes import Process

__all__ = ["Signal", "DriveError"]

Value = Union[str, Tuple[str, ...]]


class DriveError(Exception):
    """Raised for malformed drive values or widths."""


class Signal:
    """A resolved, event-producing simulation object.

    Args:
        sim: owning simulator.
        name: hierarchical name (used in VCD dumps and error messages).
        width: ``None`` for a scalar ``std_logic``; an int for a
            ``std_logic_vector(width-1 downto 0)``.
        init: initial value (defaults to 'U' / all-'U').

    Reading:
        ``sig.value`` — current resolved value ('U'... char or tuple).
        ``sig.as_int()`` — integer view of a defined vector.
        ``sig.event`` — True during the delta cycle after a change.

    Writing: ``sig.drive(value, delay=0)`` from inside a process (the
    running process is the driver) or from test code (anonymous
    driver).  ``sig.release()`` removes the caller's driver ('Z').
    """

    __slots__ = ("sim", "name", "width", "_value", "_previous",
                 "_drivers", "_sensitive", "_sensitive_rise",
                 "_event_delta", "last_event_time", "change_count",
                 "_norm_cache", "_driver_gen", "_compiled_slot",
                 "_compiled_kernel")

    #: normalisation memo cap per signal (see :meth:`_normalize`)
    _NORM_CACHE_LIMIT = 4096

    def __init__(self, sim: "Simulator", name: str,
                 width: Optional[int] = None,
                 init: Optional[Value] = None) -> None:
        self.sim = sim
        self.name = name
        self.width = width
        #: memo of already-normalised drive values (vector signals)
        self._norm_cache: Dict[object, Value] = {}
        if init is None:
            init = "U" if width is None else ("U",) * width
        self._value: Value = self._normalize(init)
        self._previous: Value = self._value
        #: driver identity -> currently driven value
        self._drivers: Dict[object, Value] = {}
        #: processes statically sensitive to this signal
        self._sensitive: List["Process"] = []
        #: processes sensitive to rising edges only (woken when an
        #: event leaves the signal at '1' — the ``edge="rise"`` form
        #: of :meth:`repro.hdl.Simulator.add_process`)
        self._sensitive_rise: List["Process"] = []
        #: driver identity -> inertial-preemption generation; bumped by
        #: the kernel's O(1) cancellation (scheduled updates carrying a
        #: stale generation are tombstones, dropped when popped)
        self._driver_gen: Dict[object, int] = {}
        self._event_delta: int = -1
        self.last_event_time: Optional[int] = None
        self.change_count = 0
        #: compiled-backend view of this signal (see
        #: :mod:`repro.hdl.compiled`); kept in sync on every change
        self._compiled_slot = None
        #: the CompiledKernel clocked by this signal, if any — checked
        #: by the edge-dispatch paths after the signal's updates apply
        self._compiled_kernel = None
        sim._register_signal(self)

    # ------------------------------------------------------------------
    # Value access
    # ------------------------------------------------------------------
    @property
    def value(self) -> Value:
        """The current resolved value."""
        return self._value

    @property
    def previous(self) -> Value:
        """The value before the most recent event."""
        return self._previous

    def as_int(self) -> int:
        """Unsigned integer view; raises LogicError on metavalues."""
        if self.width is None:
            if self._value == "1":
                return 1
            if self._value == "0":
                return 0
            raise LogicError(
                f"signal {self.name}: scalar value {self._value!r} "
                "is not 0/1")
        return vector_to_int(self._value)

    @property
    def event(self) -> bool:
        """True while the current delta cycle follows a value change."""
        return self._event_delta == self.sim._delta_stamp

    def rising(self) -> bool:
        """VHDL ``rising_edge``: an event that left the signal at '1'."""
        return self.event and self._value == "1"

    def falling(self) -> bool:
        """VHDL ``falling_edge``: an event that left the signal at '0'."""
        return self.event and self._value == "0"

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def drive(self, value: Union[Value, int], delay: int = 0,
              inertial: bool = False) -> None:
        """Schedule this signal to take *value* after *delay* ticks.

        ``delay=0`` means "next delta cycle", exactly like a VHDL
        signal assignment.  The driver identity is the running process
        (or the anonymous test-bench driver outside processes).

        ``inertial=True`` gives VHDL's default *inertial* semantics:
        the new transaction cancels this driver's not-yet-applied
        future transactions on the signal, so pulses shorter than the
        delay are swallowed.  The default is *transport* semantics
        (every scheduled transaction applies).
        """
        normalized = self._normalize(value)
        driver = self.sim._current_driver()
        if inertial:
            self.sim._cancel_pending_updates(self, driver)
        self.sim._schedule_update(self, driver, normalized, delay)

    def release(self, delay: int = 0) -> None:
        """Remove the caller's driver (drive high-impedance)."""
        driver = self.sim._current_driver()
        self.sim._schedule_update(self, driver, None, delay)

    def force(self, value: Union[Value, int]) -> None:
        """Immediately set the resolved value, bypassing drivers.

        Debug/test aid equivalent to a simulator ``force``; does not
        produce an event and is overwritten by the next driver update.
        """
        self._value = self._normalize(value)
        if self._compiled_slot is not None:
            self._compiled_slot._sync(self._value)

    def normalize(self, value: Union[Value, int]) -> Value:
        """Validate and convert *value* to this signal's canonical
        form (the representation :meth:`drive` schedules).  Public for
        stimulus compilers that precompute transition lists for
        :meth:`repro.hdl.Simulator.schedule_waveform` with
        ``normalized=True``; memoised per signal for vectors."""
        return self._normalize(value)

    # ------------------------------------------------------------------
    # Kernel interface
    # ------------------------------------------------------------------
    def _normalize(self, value: Union[Value, int]) -> Value:
        if self.width is None:
            if isinstance(value, str) and len(value) == 1:
                if value not in "UX01ZWLH-":
                    raise DriveError(
                        f"signal {self.name}: bad scalar {value!r}")
                return value
            if isinstance(value, int):
                if value in (0, 1):
                    return "1" if value else "0"
                raise DriveError(
                    f"signal {self.name}: scalar int must be 0/1, "
                    f"got {value}")
            raise DriveError(
                f"signal {self.name}: bad scalar value {value!r}")
        # Vector path: memoise validated conversions per signal — the
        # same octets/words recur on every bus and cell stream, and
        # to_vector's per-bit validation dominates drive() otherwise.
        cache = self._norm_cache
        try:
            cached = cache.get(value)
        except TypeError:            # unhashable (e.g. a list literal)
            cached = None
            cacheable = False
        else:
            cacheable = True
        if cached is not None:
            return cached
        try:
            vector = to_vector(value, self.width)
        except LogicError as exc:
            raise DriveError(f"signal {self.name}: {exc}") from exc
        if cacheable and len(cache) < self._NORM_CACHE_LIMIT:
            cache[value] = vector
        return vector

    def _apply(self, driver: object, value: Optional[Value]) -> bool:
        """Install a driver value and recompute the resolution.

        Returns True when the resolved value changed (an event).
        """
        drivers = self._drivers
        if value is None:
            drivers.pop(driver, None)
            resolved = self._resolve()
        else:
            drivers[driver] = value
            # Single-driver fast path: the driven (already normalised)
            # value IS the resolution — no table walk, no list/zip.
            resolved = value if len(drivers) == 1 else self._resolve()
        if resolved == self._value:
            return False
        self._previous = self._value
        self._value = resolved
        self.change_count += 1
        if self._compiled_slot is not None:
            self._compiled_slot._sync(resolved)
        return True

    def _resolve(self) -> Value:
        drivers = self._drivers
        if not drivers:
            # No drivers: a signal keeps its current value (VHDL keeps
            # the initial value of an undriven signal).
            return self._value
        values = list(drivers.values())
        if len(values) == 1:
            return values[0]
        if self.width is None:
            return resolve_many(values)
        return tuple(resolve_many(column) for column in zip(*values))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        shown = (self._value if self.width is None
                 else "".join(self._value))
        return f"Signal({self.name}={shown})"
