"""Shard telemetry payloads: span flattening, coverage counters,
plain-data/codec safety of ``repro.obs.distributed``."""

from types import SimpleNamespace

from repro.atm import AtmSwitch, make_setup_packet
from repro.netsim import Network, SinkModule
from repro.obs import (MetricsRegistry, ProvenanceTracker,
                       TELEMETRY_SCHEMA, build_telemetry,
                       coverage_snapshot, fsm_coverage,
                       hop_tail_coverage, residual_backlog,
                       spans_from_tracker, sync_window_coverage)


# ----------------------------------------------------------------------
# Span flattening
# ----------------------------------------------------------------------
def test_spans_from_tracker_flattens_journeys_with_shard():
    tracker = ProvenanceTracker()
    tracker.record_hop(0, "source", t=1.0)
    tracker.record_hop(0, "ingress", t=2.0, hdl_s=1.5)
    tracker.record_hop(1, "source", t=3.0)
    spans = spans_from_tracker(tracker, shard="edge")
    assert len(spans) == 3
    assert all(s["ev"] == "span" and s["shard"] == "edge"
               for s in spans)
    ingress = next(s for s in spans if s["hop"] == "ingress")
    assert ingress["cell"] == 0
    assert (ingress["t"], ingress["hdl_s"]) == (2.0, 1.5)
    # hops stamped in one domain only carry only that key
    source = next(s for s in spans if s["cell"] == 1)
    assert "hdl_s" not in source


def test_spans_from_tracker_without_shard_omits_the_key():
    tracker = ProvenanceTracker()
    tracker.record_hop(0, "source", t=0.5)
    (span,) = spans_from_tracker(tracker)
    assert "shard" not in span


# ----------------------------------------------------------------------
# Coverage counters
# ----------------------------------------------------------------------
def _switch_network():
    net = Network()
    switch = AtmSwitch(net, "sw", num_ports=2)
    for port in range(2):
        ep = net.add_node(f"ep{port}")
        sink = SinkModule("sink", keep=True)
        ep.add_module(sink)
        ep.bind_port_input(0, sink, 0)
        net.add_link(ep, 0, switch.node, port, rate_bps=155.52e6)
        net.add_link(switch.node, port, ep, 0, rate_bps=155.52e6)
    ctl = net.add_node("ctl")
    net.add_link(ctl, 0, switch.node, switch.control_port)
    return net, switch, ctl


def test_fsm_coverage_counts_gcu_states_visited():
    """The GCU FSM (the paper's control-unit process model) reports
    which of its states a run actually entered."""
    net, switch, ctl = _switch_network()
    packet = make_setup_packet(0, 1, 100, 1, 7, 700)
    net.kernel.schedule(0.0, lambda: ctl.transmit(packet, 0))
    net.run()
    coverage = fsm_coverage(net)
    assert coverage, "no FSM process models found"
    (name, entry), = [(k, v) for k, v in coverage.items()]
    assert entry["states"] > 0
    assert entry["visited"], "setup packet drove no FSM state"
    assert 0.0 < entry["fraction"] <= 1.0
    assert len(entry["visited"]) == \
        round(entry["fraction"] * entry["states"])


def test_fsm_coverage_empty_for_entity_only_environments():
    """Shard groups build entity-based DUTs, not netsim switch nodes
    — their networks legitimately carry no FSM process models."""
    assert fsm_coverage(Network()) == {}
    assert fsm_coverage(None) == {}


def test_sync_window_coverage_derives_occupancy():
    occupancy = sync_window_coverage(
        {"messages_posted": 30, "windows_granted": 10,
         "null_messages": 4})
    assert occupancy["messages_per_window"] == 3.0
    assert occupancy["messages_posted"] == 30
    assert sync_window_coverage(None)["messages_per_window"] == 0.0


def test_hop_tail_coverage_keeps_buckets_at_or_above_p50():
    registry = MetricsRegistry()
    hist = registry.histogram("prov.hop_s.post_to_release")
    for sample in (1e-6, 1e-6, 1e-6, 5e-4, 2e-2):
        hist.record(sample)
    registry.histogram("sync.lag_s").record(1e-3)  # filtered out
    coverage = hop_tail_coverage(registry.snapshot())
    assert list(coverage) == ["post_to_release"]
    entry = coverage["post_to_release"]
    assert entry["count"] == 5
    assert entry["max"] == 2e-2
    assert all(b["le"] == "inf" or b["le"] >= entry["p50"]
               for b in entry["tail"])
    # the tail still accounts for the slow samples
    assert sum(b["count"] for b in entry["tail"]) >= 2


def test_residual_backlog_totals_per_entity():
    backlog = residual_backlog([{"sender_backlog": 2},
                                {"sender_backlog": 0},
                                {"other": 9}])
    assert backlog == {"total": 2, "per_entity": [2, 0, 0]}


# ----------------------------------------------------------------------
# The payload itself
# ----------------------------------------------------------------------
def _duck_env(observe=True):
    registry = MetricsRegistry(enabled=observe)
    registry.counter("cosim.latency_unmatched")
    tracker = ProvenanceTracker(metrics=registry)
    tracker.record_hop(0, "source", t=0.0)
    tracker.record_hop(0, "sink", t=1e-5)
    return SimpleNamespace(metrics_registry=registry,
                           provenance=tracker, trace=None,
                           network=None)


def test_build_telemetry_payload_shape():
    payload = build_telemetry("edge", _duck_env(), level="behav",
                              sync={"messages_posted": 4,
                                    "windows_granted": 2},
                              entities=[{"sender_backlog": 1}])
    assert payload["schema"] == TELEMETRY_SCHEMA
    assert (payload["shard"], payload["level"]) == ("edge", "behav")
    assert payload["provenance"]["spans_recorded"] == 2
    assert [s["hop"] for s in payload["spans"]] == ["source", "sink"]
    assert payload["trace_records"] == 0
    coverage = payload["coverage"]
    assert set(coverage) == {"fsm_states", "sync_windows",
                             "hop_latency_tail", "residual_backlog"}
    assert coverage["sync_windows"]["messages_per_window"] == 2.0
    assert coverage["residual_backlog"]["total"] == 1
    assert "source_to_sink" in coverage["hop_latency_tail"]


def test_build_telemetry_is_tag_codec_safe():
    """The whole payload must survive the shard wire's no-pickle tag
    codec byte-for-byte — the property FRAME_TELEMETRY rides on."""
    from repro.shard.codec import decode_frame, encode_frame
    from repro.shard.protocol import FRAME_TELEMETRY
    payload = build_telemetry("edge", _duck_env(), level="behav",
                              sync={"messages_posted": 4},
                              entities=[{"sender_backlog": 0}])
    kind, decoded = decode_frame(
        memoryview(encode_frame((FRAME_TELEMETRY, payload))))
    assert kind == FRAME_TELEMETRY
    assert decoded == payload


def test_build_telemetry_disabled_registry_yields_empty_instruments():
    payload = build_telemetry("core", _duck_env(observe=False))
    assert payload["instruments"] == {"counters": {},
                                      "histograms": {}}
