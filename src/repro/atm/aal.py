"""AAL5 segmentation and reassembly.

Higher-layer PDUs (e.g. the MPEG frames used as board stimuli) ride on
ATM as AAL5: the CPCS-PDU is padded so that payload + 8-octet trailer
fills a whole number of 48-octet cells; the trailer carries
CPCS-UU, CPI, a 16-bit length and a CRC-32; the last cell of a PDU is
marked with the AUU bit (PT bit 0).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .cell import AtmCell, PAYLOAD_OCTETS

__all__ = ["crc32_aal5", "segment", "Reassembler", "AalError",
           "TRAILER_OCTETS"]

TRAILER_OCTETS = 8
_CRC_POLY = 0x04C11DB7


class AalError(Exception):
    """Raised on CRC/length failures or oversized PDUs."""


def _build_crc_table() -> List[int]:
    table = []
    for byte in range(256):
        crc = byte << 24
        for _ in range(8):
            if crc & 0x80000000:
                crc = ((crc << 1) ^ _CRC_POLY) & 0xFFFFFFFF
            else:
                crc = (crc << 1) & 0xFFFFFFFF
        table.append(crc)
    return table


_CRC_TABLE = _build_crc_table()


def crc32_aal5(data: Sequence[int]) -> int:
    """AAL5 CRC-32 (MSB-first, init all-ones, complemented result)."""
    crc = 0xFFFFFFFF
    for byte in data:
        crc = (((crc << 8) & 0xFFFFFFFF)
               ^ _CRC_TABLE[((crc >> 24) ^ byte) & 0xFF])
    return crc ^ 0xFFFFFFFF


def segment(vpi: int, vci: int, pdu: Sequence[int],
            uu: int = 0, cpi: int = 0) -> List[AtmCell]:
    """Segment *pdu* (bytes) into AAL5 cells on connection (vpi, vci).

    The last cell carries PT=1 (AUU set).

    Raises:
        AalError: PDU longer than the 16-bit length field allows.
    """
    pdu = list(pdu)
    if len(pdu) > 0xFFFF:
        raise AalError(f"PDU of {len(pdu)} octets exceeds AAL5 maximum")
    content = len(pdu) + TRAILER_OCTETS
    pad = (-content) % PAYLOAD_OCTETS
    padded = pdu + [0] * pad
    trailer_wo_crc = [uu & 0xFF, cpi & 0xFF,
                      (len(pdu) >> 8) & 0xFF, len(pdu) & 0xFF]
    crc = crc32_aal5(padded + trailer_wo_crc)
    trailer = trailer_wo_crc + [(crc >> 24) & 0xFF, (crc >> 16) & 0xFF,
                                (crc >> 8) & 0xFF, crc & 0xFF]
    stream = padded + trailer
    cells = []
    for offset in range(0, len(stream), PAYLOAD_OCTETS):
        chunk = stream[offset:offset + PAYLOAD_OCTETS]
        last = offset + PAYLOAD_OCTETS >= len(stream)
        cells.append(AtmCell.with_payload(vpi, vci, chunk,
                                          pt=1 if last else 0))
    return cells


class Reassembler:
    """Per-connection AAL5 reassembly.

    Feed cells in arrival order with :meth:`push`; completed PDUs are
    returned (and CRC/length verified).  Cells of different connections
    may interleave freely.
    """

    def __init__(self, max_pdu_octets: int = 65535) -> None:
        self.max_pdu_octets = max_pdu_octets
        self._partial: Dict[Tuple[int, int], List[int]] = {}
        self.completed = 0
        self.crc_errors = 0

    def push(self, cell: AtmCell) -> Optional[List[int]]:
        """Add *cell*; returns the reassembled PDU when it completes.

        Raises:
            AalError: on CRC or length mismatch of a completed PDU, or
                when a partial PDU exceeds the size bound.
        """
        key = cell.connection()
        buffer = self._partial.setdefault(key, [])
        buffer.extend(cell.payload)
        if len(buffer) > self.max_pdu_octets + PAYLOAD_OCTETS + TRAILER_OCTETS:
            del self._partial[key]
            raise AalError(f"PDU on {key} exceeds {self.max_pdu_octets} "
                           "octets without completing")
        if not cell.pt & 1:
            return None
        # AUU set: this cell ends the CPCS-PDU.
        del self._partial[key]
        return self._finish(key, buffer)

    def pending_connections(self) -> int:
        """Number of connections with an incomplete PDU."""
        return len(self._partial)

    def _finish(self, key, buffer: List[int]) -> List[int]:
        trailer = buffer[-TRAILER_OCTETS:]
        body = buffer[:-TRAILER_OCTETS]
        length = (trailer[2] << 8) | trailer[3]
        received_crc = ((trailer[4] << 24) | (trailer[5] << 16)
                        | (trailer[6] << 8) | trailer[7])
        computed = crc32_aal5(body + trailer[:4])
        if computed != received_crc:
            self.crc_errors += 1
            raise AalError(f"CRC-32 mismatch on {key}")
        if length > len(body):
            self.crc_errors += 1
            raise AalError(f"length field {length} exceeds PDU body on {key}")
        self.completed += 1
        return body[:length]
