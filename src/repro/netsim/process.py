"""Process domain: communicating extended finite state machines.

The paper's process domain "specifies the behavior of processing nodes
as communicating extended FSMs".  :class:`ProcessModel` reproduces the
OPNET proto-C style: a process is an FSM whose states are *forced*
(executed and immediately exited) or *unforced* (the process blocks in
the state until the next interrupt); transitions carry guard conditions
evaluated against the triggering interrupt.

Processes live inside a :class:`~repro.netsim.node.ProcessorModule` and
receive :class:`~repro.netsim.events.Interrupt` objects: STREAM
interrupts for packet arrivals, SELF interrupts for timers, BEGIN/END
at simulation boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, TYPE_CHECKING

from .events import Event, Interrupt, InterruptKind

if TYPE_CHECKING:  # pragma: no cover
    from .node import ProcessorModule

__all__ = ["State", "Transition", "ProcessModel", "FsmError"]


class FsmError(Exception):
    """Raised on malformed FSM definitions or illegal transitions."""


@dataclass
class State:
    """One FSM state.

    Attributes:
        name: unique state name.
        enter: executive run on state entry (receives the process).
        exit: executive run on state exit.
        forced: a forced state immediately evaluates its outgoing
            transitions after the enter executive; an unforced state
            blocks until the next interrupt.
    """

    name: str
    enter: Optional[Callable[["ProcessModel"], None]] = None
    exit: Optional[Callable[["ProcessModel"], None]] = None
    forced: bool = False


@dataclass
class Transition:
    """A guarded transition between two states.

    The guard receives ``(process, interrupt)`` and returns truth; a
    ``None`` guard is the default transition taken when no other guard
    matches.
    """

    source: str
    target: str
    guard: Optional[Callable[["ProcessModel", Optional[Interrupt]], bool]] = None


class ProcessModel:
    """A communicating extended FSM driven by interrupts.

    Subclasses (or direct instantiation) populate states and transitions
    via :meth:`add_state` and :meth:`add_transition`, then the hosting
    module calls :meth:`start` once and :meth:`deliver` per interrupt.

    State variables live in :attr:`sv`, mirroring OPNET state variables.
    """

    def __init__(self, name: str = "process") -> None:
        self.name = name
        self.module: Optional["ProcessorModule"] = None
        self.sv: Dict[str, Any] = {}
        self._states: Dict[str, State] = {}
        self._transitions: Dict[str, List[Transition]] = {}
        self._initial: Optional[str] = None
        self._current: Optional[str] = None
        self._last_interrupt: Optional[Interrupt] = None
        self._pending_self: List[Event] = []
        #: names of every state entered at least once — the FSM
        #: coverage signal consumed by repro.obs (distributed
        #: telemetry / the future coverage-driven scenario generator)
        self.states_visited: set = set()

    # ------------------------------------------------------------------
    # FSM construction
    # ------------------------------------------------------------------
    def add_state(self, state: State, initial: bool = False) -> State:
        """Register *state*; the first state or ``initial=True`` becomes
        the FSM entry state."""
        if state.name in self._states:
            raise FsmError(f"duplicate state {state.name!r}")
        self._states[state.name] = state
        self._transitions.setdefault(state.name, [])
        if initial or self._initial is None:
            self._initial = state.name
        return state

    def add_transition(self, source: str, target: str,
                       guard: Optional[Callable] = None) -> Transition:
        """Register a guarded transition from *source* to *target*."""
        for end in (source, target):
            if end not in self._states:
                raise FsmError(f"unknown state {end!r}")
        tr = Transition(source, target, guard)
        self._transitions[source].append(tr)
        return tr

    # ------------------------------------------------------------------
    # Runtime context helpers (available inside executives)
    # ------------------------------------------------------------------
    @property
    def state(self) -> Optional[str]:
        """Name of the current FSM state."""
        return self._current

    @property
    def interrupt(self) -> Optional[Interrupt]:
        """The interrupt currently being processed."""
        return self._last_interrupt

    @property
    def now(self) -> float:
        """Current simulated time of the hosting kernel."""
        self._require_module()
        return self.module.node.kernel.now

    def send(self, packet, stream: int = 0, delay: float = 0.0) -> None:
        """Send *packet* on output *stream* (optionally after *delay*)."""
        self._require_module()
        self.module.send(packet, stream, delay)

    def schedule_self(self, delay: float, code: int = 0,
                      data: Any = None) -> Event:
        """Schedule a SELF interrupt *delay* time units from now."""
        self._require_module()
        interrupt = Interrupt(kind=InterruptKind.SELF, code=code, data=data)
        kernel = self.module.node.kernel
        event = kernel.schedule_after(delay,
                                      lambda: self.deliver(interrupt))
        self._pending_self.append(event)
        return event

    def cancel_self_interrupts(self) -> int:
        """Cancel every pending SELF interrupt; returns how many."""
        live = [e for e in self._pending_self if not e.cancelled]
        for event in live:
            event.cancel()
        self._pending_self.clear()
        return len(live)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Enter the initial state and deliver the BEGIN interrupt."""
        if self._initial is None:
            raise FsmError(f"process {self.name!r} has no states")
        self._current = None
        self._enter(self._initial)
        if self._states[self._current].forced:
            self._last_interrupt = Interrupt(kind=InterruptKind.BEGIN)
            self._follow_transitions()
        else:
            self.deliver(Interrupt(kind=InterruptKind.BEGIN))

    def deliver(self, interrupt: Interrupt) -> None:
        """Deliver *interrupt*: evaluate transitions out of the current
        (unforced) state and follow the matching one."""
        if self._current is None:
            raise FsmError(f"process {self.name!r} not started")
        self._last_interrupt = interrupt
        self._follow_transitions()

    def _follow_transitions(self) -> None:
        # Forced states chain immediately; guard against cycles.
        for _ in range(len(self._states) + 1):
            state = self._states[self._current]
            target = self._select_target(state)
            if target is None:
                return
            self._exit(state)
            self._enter(target)
            if not self._states[self._current].forced:
                return
        raise FsmError(
            f"process {self.name!r}: forced-state cycle detected at "
            f"{self._current!r}")

    def _select_target(self, state: State) -> Optional[str]:
        default: Optional[str] = None
        for tr in self._transitions[state.name]:
            if tr.guard is None:
                if default is not None:
                    raise FsmError(
                        f"state {state.name!r} has two default transitions")
                default = tr.target
            elif tr.guard(self, self._last_interrupt):
                return tr.target
        if default is not None:
            return default
        if state.forced:
            raise FsmError(
                f"forced state {state.name!r} has no enabled transition")
        return None

    def state_names(self) -> List[str]:
        """All registered state names (FSM coverage denominator)."""
        return list(self._states)

    def _enter(self, name: str) -> None:
        self._current = name
        self.states_visited.add(name)
        state = self._states[name]
        if state.enter is not None:
            state.enter(self)

    def _exit(self, state: State) -> None:
        if state.exit is not None:
            state.exit(self)

    def _require_module(self) -> None:
        if self.module is None:
            raise FsmError(
                f"process {self.name!r} is not attached to a module")
