"""Determinism: identical runs produce identical results.

Test benches are only *regression* benches if re-running them is
bit-reproducible — the property every golden-result comparison in
this repository quietly depends on.
"""


from repro.atm import AtmCell
from repro.core import CoVerificationEnvironment
from repro.rtl import AtmPortModuleRtl
from repro.traffic import (MarkovModulatedPoisson, PoissonArrivals,
                           TrafficSource)
from repro.netsim import Network, SinkModule


def run_coverification_once(clocking="cycle"):
    env = CoVerificationEnvironment(clocking=clocking)
    dut = AtmPortModuleRtl(env.hdl, "dut", env.clk)
    dut.install(1, 100, 2, 200)
    entity = env.add_dut(rx_port=dut.rx, tx_port=dut.tx)
    host = env.network.add_node("host")
    source = TrafficSource(
        "src", PoissonArrivals(rate=1e5, seed=42),
        packet_factory=lambda i: AtmCell.with_payload(
            1, 100, [i % 256]).to_packet(),
        count=20)
    tap = env.make_cell_tap("tap", entity, forward=False)
    host.add_module(source)
    host.add_module(tap)
    host.connect(source, 0, tap, 0)
    env.run()
    env.finish()
    return ([(round(t, 12), c.to_octets())
             for t, c in entity.output_cells],
            env.hdl.events_executed,
            env.network.kernel.executed_events)


def test_full_coverification_run_is_reproducible():
    assert run_coverification_once() == run_coverification_once()


def test_clocking_schemes_are_trace_identical():
    """Kernel-equivalence regression: the fast-dispatch cycle engine
    (the default since the hot-path overhaul) and the seed event-driven
    generator clock must yield byte-identical DUT output cell streams,
    identical timestamps and identical kernel event counts."""
    cycle = run_coverification_once(clocking="cycle")
    event = run_coverification_once(clocking="event")
    assert cycle[0] == event[0]     # (time, octets) byte-identical
    assert len(cycle[0]) == 20
    assert cycle[1] == event[1]     # same kernel events executed
    assert cycle[2] == event[2]     # same netsim events


def run_network_once(seed):
    net = Network()
    node = net.add_node("n")
    source = TrafficSource(
        "src", MarkovModulatedPoisson(rate_a=1e4, rate_b=1e5,
                                      mean_sojourn_a=1e-4,
                                      mean_sojourn_b=1e-4, seed=seed),
        count=200)
    sink = SinkModule("sink", keep=True)
    node.add_module(source)
    node.add_module(sink)
    node.connect(source, 0, sink, 0)
    net.run()
    return ([p.creation_time for p in sink.received],
            net.kernel.executed_events)


def test_network_simulation_is_reproducible():
    assert run_network_once(7) == run_network_once(7)


def test_different_seeds_differ():
    assert run_network_once(7) != run_network_once(8)


def test_hdl_simulation_is_reproducible():
    from repro.hdl import Simulator
    from repro.rtl import AtmPortModuleRtl, CellReceiver, CellSender

    def run():
        sim = Simulator()
        clk = sim.signal("clk", init="0")
        sim.add_clock(clk, period=10)
        dut = AtmPortModuleRtl(sim, "pm", clk)
        dut.install(1, 100, 2, 200)
        sender = CellSender(sim, "gen", clk, port=dut.rx, gap_octets=3)
        receiver = CellReceiver(sim, "mon", clk, dut.tx)
        for i in range(5):
            sender.send(AtmCell.with_payload(1, 100, [i]).to_octets())
        sim.run(until=10 * 500)
        return (receiver.cells, sim.events_executed,
                sim.delta_cycles, sim.process_runs)

    assert run() == run()
