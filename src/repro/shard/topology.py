"""Sharded multi-switch topologies: spec, process fleet, driver.

:class:`TopologySpec` declares a topology the way
:class:`~repro.sweep.SweepSpec` declares a matrix (TOML/JSON loadable,
strict unknown-key validation); :class:`ShardedTopology` spawns one
worker process per shard and hands back the driving
:class:`~repro.shard.client.ShardHandle` fleet; :func:`run_topology`
is the whole workflow — seeded stimulus, windowed conservative
driving, optional chained forwarding, finish, report.

The driver is *mode-agnostic by design*: ``mode="sharded"`` drives
:class:`ShardHandle` objects (worker processes over pipes/sockets),
``mode="local"`` drives :class:`~repro.shard.client.LocalShardHandle`
objects (everything in this process) — through the identical handle
API, producing the identical op stream, replayed by the identical
:class:`~repro.shard.group.ShardGroup` code.  That is why the two
modes' output cell streams are byte-identical, which the equivalence
tests assert per port via SHA-256 digests.

Timing discipline: events are applied in *windows* of
``window_slots`` cell slots.  Within a window the coordinator queues
each shard's events (cells/ticks, each followed by a null at its
timestamp), closes the window with a null at the window-end time, and
flushes — the pipelined frames overlap shard compute with coordinator
op generation.  At the window barrier, chained topologies forward the
fresh output cells of shard *k* into shard *k+1*, re-stamped
``max(output_time, window_end)`` so the forwarded post can never land
behind the downstream shard's horizon (the distributed form of the
conservative protocol's lookahead guarantee).
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import random
import time as _time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..behav.equiv import make_events
from ..core.timebase import TimeBase
from . import protocol
from .client import LocalShardHandle, ShardHandle
from .transport import (PipeTransport, accept_transport, open_listener,
                        shm_ring_pair)
from .worker import (shard_worker_main, shard_worker_shm_main,
                     shard_worker_socket_main)

try:
    import tomllib as _toml
except ImportError:  # pragma: no cover - Python < 3.11
    try:
        import tomli as _toml  # type: ignore[no-redef]
    except ImportError:
        _toml = None  # JSON specs remain available

__all__ = ["ShardSpec", "TopologySpec", "ShardSpecError",
           "ShardedTopology", "run_topology", "TRANSPORTS", "MODES"]

#: transports a topology can couple its shards over
TRANSPORTS = ("pipe", "socket", "shm")
#: run modes of :func:`run_topology`
MODES = ("sharded", "local")


class ShardSpecError(ValueError):
    """Raised on an invalid or unreadable topology specification."""


@dataclass(frozen=True)
class ShardSpec:
    """One shard of the topology: identity and DUT shape.

    Attributes:
        id: shard name (process naming, error attribution, report
            keys).
        level: DUT abstraction level ("rtl" | "behav" | "auto") — the
            per-shard knob that makes mixed-level topologies (cheap
            behavioural shards around the RTL shard under scrutiny)
            declarative.
        num_ports: switch fabric port count.
        accounting: couple an accounting unit on this shard.
    """

    id: str
    level: str = "auto"
    num_ports: int = 4
    accounting: bool = True

    def config(self) -> Dict[str, Any]:
        """The worker-process config dict for this shard."""
        return {"id": self.id, "level": self.level,
                "num_ports": self.num_ports,
                "accounting": self.accounting}


@dataclass
class TopologySpec:
    """A declarative sharded topology plus run/execution knobs.

    Attributes:
        shards: the shard list (build via ``levels``/``count`` in
            :meth:`from_mapping`, or directly).
        cells: seeded stimulus cells per shard.
        seed: stimulus RNG seed (each shard derives its own stream).
        window_slots: cell slots per driving window (the conservative
            exchange granularity).
        drain_windows: extra empty windows after the last event so
            chained forwards still in flight can surface and hop.
        chain: forward shard *k*'s output cells into shard *k+1*
            (two-switch cell flows; off = independent shards).
        transport: "pipe" | "socket" | "shm" shard coupling ("shm" is
            the same-host shared-memory ring).
        max_batch: max ops per frame (see
            :class:`~repro.shard.client.ShardHandle`).
        max_inflight: pipelined unacknowledged frames per shard.
        inject: per-shard-id failure injection (tests only), e.g.
            ``{"shard1": {"kind": "exit", "at_op": 40}}``.
        trace_dir: when set, every shard worker writes its JSONL
            decision trace to ``<trace_dir>/<shard-id>.trace.jsonl``
            with the shard id stamped on every record (local-mode
            twins write ``<shard-id>.local.trace.jsonl`` so a
            ``--mode both`` comparison keeps both sides).
        observe: enable the metrics/provenance instruments inside
            every shard.  Stimulus cells get coordinator-assigned
            trace ids stamped into the op stream, each shard records
            per-hop spans, and :func:`run_topology` collects and
            merges the per-shard telemetry into the report.
    """

    shards: List[ShardSpec] = field(default_factory=lambda: [
        ShardSpec("shard0"), ShardSpec("shard1")])
    cells: int = 48
    seed: int = 0
    window_slots: int = 64
    drain_windows: int = 2
    chain: bool = False
    transport: str = "pipe"
    max_batch: int = 512
    max_inflight: int = 4
    inject: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    trace_dir: Optional[str] = None
    observe: bool = False

    def __post_init__(self) -> None:
        """Validate the shard list and knobs; raises
        :class:`ShardSpecError`."""
        if not self.shards:
            raise ShardSpecError("a topology needs >= 1 shard")
        ids = [shard.id for shard in self.shards]
        if len(set(ids)) != len(ids):
            raise ShardSpecError(f"duplicate shard ids in {ids}")
        for shard in self.shards:
            if shard.num_ports < 2:
                raise ShardSpecError(
                    f"shard {shard.id!r}: need >= 2 ports, got "
                    f"{shard.num_ports}")
        if self.cells < 1:
            raise ShardSpecError(f"need >= 1 cell, got {self.cells}")
        if self.window_slots < 1:
            raise ShardSpecError(
                f"need >= 1 window slot, got {self.window_slots}")
        if self.drain_windows < 0:
            raise ShardSpecError(
                f"negative drain_windows {self.drain_windows}")
        if self.transport not in TRANSPORTS:
            raise ShardSpecError(
                f"unknown transport {self.transport!r}; known: "
                f"{', '.join(TRANSPORTS)}")
        if self.chain and len(self.shards) < 2:
            raise ShardSpecError("chained topologies need >= 2 shards")
        unknown = set(self.inject) - set(ids)
        if unknown:
            raise ShardSpecError(
                f"inject names unknown shard(s): "
                f"{', '.join(sorted(unknown))}")

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict view mirroring the spec-file structure."""
        return {
            "topology": {
                "shards": [{"id": s.id, "level": s.level,
                            "ports": s.num_ports,
                            "accounting": s.accounting}
                           for s in self.shards],
                "chain": self.chain,
            },
            "run": {"cells": self.cells, "seed": self.seed,
                    "window_slots": self.window_slots,
                    "drain_windows": self.drain_windows},
            "execution": {"transport": self.transport,
                          "max_batch": self.max_batch,
                          "max_inflight": self.max_inflight,
                          "observe": self.observe},
        }

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    @classmethod
    def from_mapping(cls, data: Dict[str, Any]) -> "TopologySpec":
        """Build a spec from the parsed TOML/JSON structure.

        The ``[topology]`` table takes either an explicit ``shards``
        list of tables (``id``/``level``/``ports``/``accounting``) or
        the shorthand ``count`` + shared ``level``/``ports``/
        ``accounting`` (shards named ``shard0..shardN-1``).
        """
        if not isinstance(data, dict):
            raise ShardSpecError(
                f"spec root must be a table/object, got "
                f"{type(data).__name__}")
        topology = data.get("topology", {})
        run = data.get("run", {})
        execution = data.get("execution", {})
        for section, payload in (("topology", topology), ("run", run),
                                 ("execution", execution)):
            if not isinstance(payload, dict):
                raise ShardSpecError(f"[{section}] must be a table")
        unknown = set(data) - {"topology", "run", "execution"}
        if unknown:
            raise ShardSpecError(
                f"unknown spec section(s): {', '.join(sorted(unknown))}")
        known = {"topology": {"shards", "count", "level", "ports",
                              "accounting", "chain"},
                 "run": {"cells", "seed", "window_slots",
                         "drain_windows"},
                 "execution": {"transport", "max_batch",
                               "max_inflight", "trace_dir",
                               "observe"}}
        for section, payload in (("topology", topology), ("run", run),
                                 ("execution", execution)):
            extra = set(payload) - known[section]
            if extra:
                raise ShardSpecError(
                    f"unknown key(s) in [{section}]: "
                    f"{', '.join(sorted(extra))}")

        level = str(topology.get("level", "auto"))
        ports = int(topology.get("ports", 4))
        accounting = bool(topology.get("accounting", True))
        if "shards" in topology:
            if "count" in topology:
                raise ShardSpecError(
                    "[topology] takes shards OR count, not both")
            shards = []
            for index, entry in enumerate(topology["shards"]):
                if not isinstance(entry, dict):
                    raise ShardSpecError(
                        "[topology] shards entries must be tables")
                extra = set(entry) - {"id", "level", "ports",
                                      "accounting"}
                if extra:
                    raise ShardSpecError(
                        f"unknown key(s) in shard entry: "
                        f"{', '.join(sorted(extra))}")
                shards.append(ShardSpec(
                    id=str(entry.get("id", f"shard{index}")),
                    level=str(entry.get("level", level)),
                    num_ports=int(entry.get("ports", ports)),
                    accounting=bool(entry.get("accounting",
                                              accounting))))
        else:
            count = int(topology.get("count", 2))
            if count < 1:
                raise ShardSpecError(f"need >= 1 shard, got {count}")
            shards = [ShardSpec(id=f"shard{index}", level=level,
                                num_ports=ports, accounting=accounting)
                      for index in range(count)]

        kwargs: Dict[str, Any] = {"shards": shards}
        if "chain" in topology:
            kwargs["chain"] = bool(topology["chain"])
        if "cells" in run:
            kwargs["cells"] = int(run["cells"])
        if "seed" in run:
            kwargs["seed"] = int(run["seed"])
        if "window_slots" in run:
            kwargs["window_slots"] = int(run["window_slots"])
        if "drain_windows" in run:
            kwargs["drain_windows"] = int(run["drain_windows"])
        if "transport" in execution:
            kwargs["transport"] = str(execution["transport"])
        if "max_batch" in execution:
            kwargs["max_batch"] = int(execution["max_batch"])
        if "max_inflight" in execution:
            kwargs["max_inflight"] = int(execution["max_inflight"])
        if "trace_dir" in execution:
            kwargs["trace_dir"] = str(execution["trace_dir"])
        if "observe" in execution:
            kwargs["observe"] = bool(execution["observe"])
        return cls(**kwargs)

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "TopologySpec":
        """Read a spec file; format chosen by suffix (.toml / .json)."""
        path = Path(path)
        if not path.is_file():
            raise ShardSpecError(f"no topology spec at {path}")
        if path.suffix == ".toml":
            if _toml is None:
                raise ShardSpecError(
                    "TOML specs need Python >= 3.11 (tomllib) or the "
                    "tomli backport — neither is available; use a "
                    "JSON spec instead")
            try:
                data = _toml.loads(path.read_text())
            except Exception as exc:
                raise ShardSpecError(f"invalid TOML in {path}: {exc}")
        elif path.suffix == ".json":
            try:
                data = json.loads(path.read_text())
            except json.JSONDecodeError as exc:
                raise ShardSpecError(f"invalid JSON in {path}: {exc}")
        else:
            raise ShardSpecError(
                f"unknown spec format {path.suffix!r} "
                "(expected .toml or .json)")
        return cls.from_mapping(data)


def _mp_context():
    """Fork-preferred multiprocessing context (same policy as the
    sweep runner); overridable via ``REPRO_SHARD_START``."""
    methods = multiprocessing.get_all_start_methods()
    chosen = os.environ.get("REPRO_SHARD_START")
    if chosen is None:
        chosen = "fork" if "fork" in methods else "spawn"
    return multiprocessing.get_context(chosen)


class ShardedTopology:
    """The worker-process fleet of one topology.

    Spawns one process per shard on :meth:`start` (pipe transports
    are inherited; shm workers attach to the coordinator's shared-
    memory rings via a picklable descriptor; socket transports dial
    back to an ephemeral listener and identify with a hello frame)
    and tears everything down on :meth:`close` — use as a context
    manager.
    """

    def __init__(self, spec: TopologySpec) -> None:
        self.spec = spec
        self.handles: List[ShardHandle] = []
        self._processes: List[Any] = []
        self._listener = None
        self._started = False

    def _shard_config(self, shard: ShardSpec) -> Dict[str, Any]:
        config = shard.config()
        if shard.id in self.spec.inject:
            config["inject"] = dict(self.spec.inject[shard.id])
        if self.spec.observe:
            config["observe"] = True
        if self.spec.trace_dir is not None:
            trace_dir = Path(self.spec.trace_dir)
            trace_dir.mkdir(parents=True, exist_ok=True)
            config["trace_file"] = str(
                trace_dir / f"{shard.id}.trace.jsonl")
        return config

    def start(self) -> List[ShardHandle]:
        """Spawn the fleet; returns one connected
        :class:`~repro.shard.client.ShardHandle` per shard, in spec
        order."""
        if self._started:
            return self.handles
        self._started = True
        ctx = _mp_context()
        spec = self.spec
        if spec.transport == "pipe":
            for shard in spec.shards:
                parent_conn, child_conn = ctx.Pipe(duplex=True)
                process = ctx.Process(
                    target=shard_worker_main,
                    args=(child_conn, self._shard_config(shard)),
                    name=f"shard-{shard.id}", daemon=True)
                process.start()
                child_conn.close()
                self._processes.append(process)
                self.handles.append(ShardHandle(
                    shard.id, PipeTransport(parent_conn),
                    num_ports=shard.num_ports,
                    max_batch=spec.max_batch,
                    max_inflight=spec.max_inflight, process=process))
        elif spec.transport == "shm":
            for shard in spec.shards:
                transport, descriptor = shm_ring_pair(ctx)
                process = ctx.Process(
                    target=shard_worker_shm_main,
                    args=(descriptor, self._shard_config(shard)),
                    name=f"shard-{shard.id}", daemon=True)
                process.start()
                # Blocking ring waits watch the worker's liveness so
                # a hard crash mid-window surfaces as TransportClosed.
                transport.peer_alive = process.is_alive
                self._processes.append(process)
                self.handles.append(ShardHandle(
                    shard.id, transport,
                    num_ports=shard.num_ports,
                    max_batch=spec.max_batch,
                    max_inflight=spec.max_inflight, process=process))
        else:
            self._listener, address = open_listener()
            for shard in spec.shards:
                process = ctx.Process(
                    target=shard_worker_socket_main,
                    args=(address, self._shard_config(shard)),
                    name=f"shard-{shard.id}", daemon=True)
                process.start()
                self._processes.append(process)
            # Accept order is connect order, not spec order: map the
            # connections back through their hello frames.
            by_id: Dict[str, Any] = {}
            for _ in spec.shards:
                transport = accept_transport(self._listener)
                kind, shard_id = transport.recv()
                if kind != protocol.FRAME_HELLO:
                    raise protocol.ShardError(
                        "?", {"type": "ProtocolError",
                              "message": f"expected hello, got "
                                         f"{kind!r}",
                              "traceback": ""})
                by_id[shard_id] = transport
            for shard, process in zip(spec.shards, self._processes):
                self.handles.append(ShardHandle(
                    shard.id, by_id[shard.id],
                    num_ports=shard.num_ports,
                    max_batch=spec.max_batch,
                    max_inflight=spec.max_inflight, process=process))
        if spec.transport != "socket":
            # Pipe/shm couplings know their shard a priori; the hello
            # is purely the ready signal — wait for it here so group
            # construction and the worker's first-touch page faults
            # count as startup, not driving time (the accept loop
            # above already did this implicitly for sockets).
            for handle in self.handles:
                kind, shard_id = handle._recv()
                if kind != protocol.FRAME_HELLO or \
                        shard_id != handle.shard_id:
                    raise protocol.ShardError(
                        handle.shard_id,
                        {"type": "ProtocolError",
                         "message": f"expected hello from "
                                    f"{handle.shard_id!r}, got "
                                    f"{(kind, shard_id)!r}",
                         "traceback": ""})
        return self.handles

    def close(self) -> None:
        """Close every handle, reap every process (idempotent)."""
        for handle in self.handles:
            handle.close()
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        for process in self._processes:
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - stubborn
                process.kill()
                process.join()
        self._processes = []

    def __enter__(self) -> "ShardedTopology":
        """Start the fleet on scope entry."""
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        """Tear the fleet down on scope exit, exception or not."""
        self.close()


# ----------------------------------------------------------------------
# The mode-agnostic driver
# ----------------------------------------------------------------------
def _shard_events(spec: TopologySpec) -> List[List[tuple]]:
    """Seeded per-shard stimulus, pre-encoded for the wire: each entry
    is ``("cell", slot, port, octets, tid)`` or ``("tick", slot, 0,
    None, 0)`` (octet encoding happens here, outside the timed
    region).

    When the spec observes (``observe`` or ``trace_dir``), every
    stimulus cell gets a coordinator-assigned trace id — sequential
    from 1 across the whole topology, deterministic, so the local and
    sharded replays of the same spec stamp identical ids and the
    digests stay comparable.  Unobserved specs keep tid 0
    (= unstamped): the encoder drops the all-zero column and the wire
    frames stay octet-identical to a pre-telemetry coordinator's.
    """
    observing = spec.observe or spec.trace_dir is not None
    next_tid = 1
    streams: List[List[tuple]] = []
    for index, shard in enumerate(spec.shards):
        rng = random.Random(spec.seed + 8111 * index)
        connections = [[(1, 100 + i)]
                       for i in range(shard.num_ports)]
        events = make_events(rng, spec.cells, connections,
                             with_ticks=shard.accounting)
        encoded = []
        for ev, slot, port, cell in events:
            if ev == "cell":
                tid = next_tid if observing else 0
                next_tid += 1
                encoded.append((ev, slot, port,
                                bytes(cell.to_octets()), tid))
            else:
                encoded.append((ev, slot, 0, None, 0))
        streams.append(encoded)
    return streams


def _forward(src, dst, cursors: List[int], not_before: float) -> None:
    """Forward *src*'s fresh output cells into *dst*'s matching
    ingress ports, re-stamped ``max(output_time, not_before)`` so the
    post can never land behind the downstream horizon.  The trace id
    rides along, so an observed cell hopping shards keeps one
    provenance chain."""
    for port in range(src.num_ports):
        count = src.output_count(port)
        for when, octets, tid in src.drain_outputs(port,
                                                   cursors[port]):
            dst.queue_cell(max(when, not_before), port, octets, tid)
        cursors[port] = count


def _digest(handle) -> Dict[str, str]:
    """Per-port SHA-256 digests over the raw output octet streams —
    the byte-identity witness the equivalence tests compare (one
    update over each port's contiguous blob; hashing the
    concatenation is byte-for-byte the cell-at-a-time digest)."""
    digests: Dict[str, str] = {}
    for port in range(handle.num_ports):
        digests[str(port)] = hashlib.sha256(
            handle.output_blob(port)).hexdigest()
    return digests


def run_topology(spec: TopologySpec,
                 mode: str = "sharded") -> Dict[str, Any]:
    """Run one seeded topology end to end; returns the report dict.

    ``mode="sharded"`` spawns worker processes per
    :class:`ShardedTopology`; ``mode="local"`` drives in-process
    :class:`~repro.shard.client.LocalShardHandle` twins with the
    identical op stream (the single-process reference the
    byte-identity guarantee is stated against).  The timed region
    covers driving and finishing only — stimulus generation and
    process spawning are setup.
    """
    if mode not in MODES:
        raise ShardSpecError(
            f"unknown mode {mode!r}; known: {', '.join(MODES)}")
    streams = _shard_events(spec)
    cell_s = TimeBase.for_line_rate().cell_time_seconds
    last_slot = max(events[-1][1] for events in streams)

    fleet: Optional[ShardedTopology] = None
    if mode == "sharded":
        fleet = ShardedTopology(spec)
        handles: List[Any] = fleet.start()
    else:
        handles = []
        for shard in spec.shards:
            trace = None
            if spec.trace_dir is not None:
                # Suffixed ``.local`` so a ``--mode both`` run keeps
                # the worker-written traces next to the reference's.
                trace_dir = Path(spec.trace_dir)
                trace_dir.mkdir(parents=True, exist_ok=True)
                from ..obs.trace import TraceWriter
                trace = TraceWriter(
                    trace_dir / f"{shard.id}.local.trace.jsonl",
                    defaults={"shard": shard.id})
            handles.append(LocalShardHandle(
                shard.id, num_ports=shard.num_ports,
                level=shard.level, accounting=shard.accounting,
                observe=spec.observe, trace=trace))

    started = _time.perf_counter()
    try:
        cursors = [0] * len(handles)
        fwd_cursors = [[0] * handle.num_ports for handle in handles]
        window_end = 0
        while window_end <= last_slot + spec.window_slots * \
                spec.drain_windows:
            window_end += spec.window_slots
            t_end = window_end * cell_s
            for index, handle in enumerate(handles):
                events = streams[index]
                cursor = cursors[index]
                while (cursor < len(events)
                       and events[cursor][1] < window_end):
                    ev, slot, port, octets, tid = events[cursor]
                    t = slot * cell_s
                    if ev == "cell":
                        handle.queue_cell(t, port, octets, tid)
                    else:
                        handle.queue_tick(t)
                    handle.queue_null(t)
                    cursor += 1
                cursors[index] = cursor
                handle.queue_null(t_end)
                handle.flush()
            if spec.chain:
                # Chained topologies need every shard's window outputs
                # before forwarding, so the window ends in a barrier.
                # Independent shards skip it: the pipeline window
                # (max_inflight) is the only throttle, and the op
                # stream — hence the replay — is identical either way.
                for handle in handles:
                    handle.barrier()
                for index in range(len(handles) - 1):
                    _forward(handles[index], handles[index + 1],
                             fwd_cursors[index], t_end)
                    handles[index + 1].flush()
        t_final = (window_end + 8) * cell_s
        results = []
        for index, handle in enumerate(handles):
            results.append(handle.finish(t_final))
            if spec.chain and index + 1 < len(handles):
                # Residual outputs surfaced by the drain still make
                # their final hop before the downstream shard settles.
                _forward(handles[index], handles[index + 1],
                         fwd_cursors[index], t_final)
        wall = _time.perf_counter() - started
        telemetry: Optional[Dict[str, Any]] = None
        if spec.observe or spec.trace_dir is not None:
            # Telemetry collection rides the same frames as the data
            # but *after* the timed region — observability overhead
            # inside the measured window is the instruments only, not
            # the shipping.
            from ..obs.merge import merge_telemetry
            telemetry = merge_telemetry(
                handle.telemetry() for handle in handles)
    finally:
        if fleet is not None:
            fleet.close()
        else:
            for handle in handles:
                handle.close()

    shards = []
    combined = hashlib.sha256()
    for handle, result in zip(handles, results):
        digests = _digest(handle)
        for port in sorted(digests):
            combined.update(digests[port].encode())
        shards.append({
            "id": handle.shard_id,
            "level": result["level"],
            "digests": digests,
            "exchange": handle.stats(),
            "result": result,
        })
    total_clocks = sum(r["clocks"] for r in results)
    total_frames = sum(s["exchange"]["frames_sent"]
                       + s["exchange"]["frames_received"]
                       for s in shards)
    total_bytes = sum(s["exchange"]["bytes_sent"]
                      + s["exchange"]["bytes_received"]
                      for s in shards)
    report: Dict[str, Any] = {
        "benchmark": "shard_topology",
        "mode": mode,
        "spec": spec.as_dict(),
        "shards": shards,
        "digest": combined.hexdigest(),
        "totals": {
            "cells_in": sum(r["cells_in"] for r in results),
            "output_cells": sum(r["output_cells"] for r in results),
            "records": sum(len(r["records"]) for r in results),
            "clocks": total_clocks,
            "frames": total_frames,
            "bytes": total_bytes,
            "sync": {
                key: sum(r["sync"][key] for r in results)
                for key in ("messages_posted", "null_messages",
                            "null_messages_coalesced",
                            "windows_granted")},
        },
        "wall_s": wall,
        "cycles_per_s": total_clocks / wall if wall > 0 else 0.0,
    }
    if telemetry is not None:
        report["telemetry"] = telemetry
    return report
