#!/usr/bin/env python
"""The paper's case study: functional verification of an ATM
accounting unit (§4).

A bursty traffic mix (on-off voice-like + Poisson data-like sources)
is generated once at the network level and drives

* the charging algorithm's reference model, and
* the RTL accounting unit coupled through CASTANET.

Charging records of two tariff intervals are compared.  The script
then repeats the experiment with an injected RTL defect (CLP=1 cells
counted at the CLP=0 tariff) to show the environment *catching* a
realistic bug.

Run:  python examples/accounting_coverification.py
"""

from repro.atm import AccountingUnit, AtmCell, Tariff
from repro.core import (CoVerificationEnvironment, StreamComparator,
                        TimeBase)
from repro.hdl import RisingEdge
from repro.rtl import AccountingUnitRtl, RECORD_WORDS
from repro.traffic import OnOffSource, PoissonArrivals

TIMEBASE = TimeBase.for_line_rate()
CELL_TIME = TIMEBASE.cell_time_seconds
NUM_CELLS = 60

CONNECTIONS = [
    # (vpi, vci, units/cell, units/CLP1-cell, fixed units/interval)
    (1, 100, 2, 1, 5),   # premium CBR-like contract
    (1, 200, 3, 0, 0),   # volume-only contract
]


def build_workload():
    """One authored stimulus: (time, cell) list from the traffic
    library, alternating a bursty and a memoryless source."""
    bursty = OnOffSource(peak_period=CELL_TIME, mean_on=15 * CELL_TIME,
                        mean_off=30 * CELL_TIME, seed=1)
    smooth = PoissonArrivals(rate=0.25 / CELL_TIME, seed=2)
    cells, t1, t2 = [], 0.0, 0.0
    for i in range(NUM_CELLS):
        if i % 2:
            t2 += smooth.next_interarrival()
            cells.append((t2, AtmCell.with_payload(1, 200, [i % 256])))
        else:
            t1 += bursty.next_interarrival()
            cells.append((t1, AtmCell.with_payload(
                1, 100, [i % 256], clp=(i // 2) % 2)))
    cells.sort(key=lambda item: item[0])
    spaced, t_prev = [], 0.0
    for t, cell in cells:
        t = max(t, t_prev + CELL_TIME)
        spaced.append((t, cell))
        t_prev = t
    return spaced


def run_reference(workload):
    reference = AccountingUnit(drop_unknown=True)
    for vpi, vci, upc, upc1, fixed in CONNECTIONS:
        reference.register(vpi, vci, Tariff(units_per_cell=upc,
                                            units_per_cell_clp1=upc1,
                                            fixed_units=fixed))
    records = []
    split = len(workload) // 2
    for i, (_t, cell) in enumerate(workload):
        if i == split:
            records.extend(reference.close_interval())
        reference.cell_arrival(cell.vpi, cell.vci, clp=cell.clp)
    records.extend(reference.close_interval())
    return [(r.vpi, r.vci, r.interval, r.cells_clp0, r.cells_clp1,
             r.charge_units) for r in records]


def run_rtl(workload, bug=None):
    env = CoVerificationEnvironment(timebase=TIMEBASE)
    dut = AccountingUnitRtl(env.hdl, "accounting", env.clk, bug=bug)
    for vpi, vci, upc, upc1, fixed in CONNECTIONS:
        dut.register(vpi, vci, units_per_cell=upc,
                     units_per_cell_clp1=upc1, fixed_units=fixed)
    entity = env.add_dut(rx_port=dut.rx, tick_signal=dut.tariff_tick)

    words = []

    def monitor():
        while True:
            yield RisingEdge(env.clk)
            if dut.rec_valid.value == "1":
                words.append(dut.rec_word.as_int())

    env.hdl.add_generator("records", monitor())

    split = len(workload) // 2
    for i, (t, cell) in enumerate(workload):
        if i == split:
            entity.send_tariff_tick((workload[i - 1][0] + t) / 2.0)
        entity.send_cell(t, cell)
    last = workload[-1][0]
    entity.send_tariff_tick(last + 2 * CELL_TIME)
    entity.finish(last + 3 * CELL_TIME)
    env.hdl.run(until=env.hdl.now + 64 * TIMEBASE.clock_period_ticks)
    return [tuple(words[i:i + RECORD_WORDS])
            for i in range(0, len(words) - len(words) % RECORD_WORDS,
                           RECORD_WORDS)]


def compare(expected, observed, label):
    comparator = StreamComparator(label, normalize="sorted")
    comparator.extend_reference(expected)
    comparator.extend_observed(observed)
    report = comparator.compare()
    print(report.summary())
    for mismatch in report.mismatches[:3]:
        print(f"   expected {mismatch.expected}")
        print(f"   observed {mismatch.observed}")
    return report


def main() -> int:
    workload = build_workload()
    print(f"authored one network-level test bench: {len(workload)} cells, "
          "2 tariff intervals\n")
    expected = run_reference(workload)

    print("-- correct RTL through CASTANET " + "-" * 30)
    good = compare(expected, run_rtl(workload), "accounting-rtl")

    print("\n-- RTL with injected CLP-swap defect " + "-" * 25)
    bad = compare(expected, run_rtl(workload, bug="swap_clp"),
                  "accounting-rtl-buggy")

    ok = good.passed and not bad.passed
    print("\ncase study verdict:",
          "environment verifies AND discriminates" if ok else "PROBLEM")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
