"""Tests for the parallel sweep runner's failure policy.

The worker-death paths are driven through the spec's failure-injection
hooks (``inject``): ``crash_once`` dies on the first attempt only,
``crash`` dies on every worker attempt, ``hang`` sleeps past any
timeout, ``error`` raises a Python exception inside the scenario.
"""

import pytest

from repro.sweep import SweepRunner, SweepSpec


def _spec(seeds, inject=None, jobs=2, timeout_s=60.0, cells=8):
    return SweepSpec(traffic=["cbr"], ports=[2], seeds=seeds,
                     sync=["conservative"], cells=cells,
                     jobs=jobs, timeout_s=timeout_s,
                     inject=inject or {})


def _by_name(payload):
    return {run["name"]: run for run in payload["runs"]}


def test_parallel_sweep_completes_and_aggregates():
    payload = SweepRunner(_spec(seeds=[0, 1, 2, 3])).run()
    aggregate = payload["aggregate"]
    assert aggregate["runs_total"] == 4
    assert aggregate["runs_passed"] == 4
    assert aggregate["runs_by_status"] == {"ok": 4}
    assert aggregate["cells_processed"] == 32
    assert aggregate["sync_exchanges"] > 0
    assert aggregate["latency"]["count"] == 32
    assert payload["execution"]["jobs"] == 2
    assert payload["execution"]["workers_spawned"] == 4
    assert all(run["mode"] == "pool" for run in payload["runs"])


def test_results_stay_in_matrix_order():
    spec = _spec(seeds=[5, 3, 1])
    payload = SweepRunner(spec).run()
    assert [r["name"] for r in payload["runs"]] == \
        [r.name for r in spec.expand()]


def test_serial_mode_with_one_job():
    payload = SweepRunner(_spec(seeds=[0, 1], jobs=1)).run()
    assert payload["aggregate"]["runs_passed"] == 2
    assert all(run["mode"] == "serial" for run in payload["runs"])
    assert payload["execution"]["workers_spawned"] == 0


def test_crash_is_retried_once_then_succeeds():
    inject = {"cbr-p2-s0-conservative": "crash_once"}
    payload = SweepRunner(_spec(seeds=[0, 1], inject=inject)).run()
    runs = _by_name(payload)
    crashed = runs["cbr-p2-s0-conservative"]
    assert crashed["status"] == "ok"
    assert crashed["passed"]
    assert crashed["attempts"] == 2
    assert payload["execution"]["crashes"] == 1
    assert payload["execution"]["retries"] == 1
    # the healthy run is unaffected
    assert runs["cbr-p2-s1-conservative"]["status"] == "ok"


def test_persistent_crash_degrades_to_serial_without_losing_others():
    inject = {"cbr-p2-s1-conservative": "crash"}
    payload = SweepRunner(_spec(seeds=[0, 1, 2], inject=inject)).run()
    runs = _by_name(payload)
    doomed = runs["cbr-p2-s1-conservative"]
    # two worker deaths, then the run lands in the parent where the
    # injected crash surfaces as a caught error — not a lost sweep
    assert doomed["status"] == "error"
    assert doomed["mode"] == "serial-fallback"
    assert payload["execution"]["crashes"] == 2
    assert payload["execution"]["serial_fallbacks"] == 1
    for name in ("cbr-p2-s0-conservative", "cbr-p2-s2-conservative"):
        assert runs[name]["status"] == "ok"
        assert runs[name]["passed"]
    assert payload["aggregate"]["runs_by_status"] == \
        {"ok": 2, "error": 1}


def test_hanging_worker_is_killed_and_reported_as_timeout():
    inject = {"cbr-p2-s0-conservative": "hang"}
    payload = SweepRunner(
        _spec(seeds=[0, 1], inject=inject, timeout_s=1.0)).run()
    runs = _by_name(payload)
    hung = runs["cbr-p2-s0-conservative"]
    assert hung["status"] == "timeout"
    assert not hung["passed"]
    assert hung["detail"]["timeout_s"] == 1.0
    assert payload["execution"]["timeouts"] == 2  # first try + retry
    # a timed-out run is never re-executed serially in the parent
    assert hung["mode"] == "pool"
    assert runs["cbr-p2-s1-conservative"]["status"] == "ok"


def test_scenario_exception_is_an_error_without_retry():
    inject = {"cbr-p2-s0-conservative": "error"}
    payload = SweepRunner(_spec(seeds=[0, 1], inject=inject)).run()
    runs = _by_name(payload)
    failed = runs["cbr-p2-s0-conservative"]
    assert failed["status"] == "error"
    assert failed["attempts"] == 1
    assert failed["detail"]["type"] == "RuntimeError"
    assert payload["execution"]["retries"] == 0


def test_lockstep_and_bursty_traffic_cells_survive_the_pool():
    spec = SweepSpec(traffic=["onoff"], ports=[2], seeds=[0],
                     sync=["lockstep"], cells=8, jobs=2)
    payload = SweepRunner(spec).run()
    assert payload["aggregate"]["runs_passed"] == 1


def test_runner_rejects_bad_overrides():
    with pytest.raises(ValueError):
        SweepRunner(_spec(seeds=[0]), jobs=0)
    with pytest.raises(ValueError):
        SweepRunner(_spec(seeds=[0]), timeout_s=0.0)


def test_worker_error_detail_carries_the_traceback():
    # The exception object dies with the worker process — the
    # formatted traceback in the detail payload is the only record of
    # where the failure happened.
    inject = {"cbr-p2-s0-conservative": "error"}
    payload = SweepRunner(_spec(seeds=[0], inject=inject)).run()
    failed = _by_name(payload)["cbr-p2-s0-conservative"]
    assert failed["mode"] == "pool"
    tb = failed["detail"]["traceback"]
    assert "Traceback (most recent call last)" in tb
    assert "RuntimeError: injected error" in tb
    assert "_apply_injection" in tb  # the actual raise site


def test_serial_error_detail_carries_the_traceback():
    inject = {"cbr-p2-s0-conservative": "error"}
    payload = SweepRunner(_spec(seeds=[0], inject=inject, jobs=1)).run()
    failed = _by_name(payload)["cbr-p2-s0-conservative"]
    assert failed["mode"] == "serial"
    tb = failed["detail"]["traceback"]
    assert "Traceback (most recent call last)" in tb
    assert "_apply_injection" in tb


def test_retry_log_records_the_motivating_failure():
    inject = {"cbr-p2-s0-conservative": "crash_once"}
    payload = SweepRunner(_spec(seeds=[0, 1], inject=inject)).run()
    retry_log = payload["execution"]["retry_log"]
    assert len(retry_log) == 1
    entry = retry_log[0]
    assert entry["name"] == "cbr-p2-s0-conservative"
    assert entry["attempt"] == 1
    assert entry["kind"] == "crash"
    assert entry["detail"]["exitcode"] == 23


def test_retry_log_covers_serial_degradation():
    inject = {"cbr-p2-s0-conservative": "crash"}
    payload = SweepRunner(_spec(seeds=[0], inject=inject)).run()
    retry_log = payload["execution"]["retry_log"]
    # first crash -> retry entry; second crash -> degradation entry
    assert [e["attempt"] for e in retry_log] == [1, 2]
    assert all(e["kind"] == "crash" for e in retry_log)


def test_failure_details_render_in_the_report():
    from repro.sweep import render_sweep_report

    inject = {"cbr-p2-s0-conservative": "error"}
    payload = SweepRunner(_spec(seeds=[0], inject=inject)).run()
    report = render_sweep_report(payload)
    assert "failures:" in report
    assert "RuntimeError: injected error" in report
    assert "Traceback (most recent call last)" in report
