"""CASTANET reproduction: system-level co-verification for ATM hardware.

Reproduction of G. Post, A. Müller, T. Grötker, "A System-Level
Co-Verification Environment for ATM Hardware Design", DATE 1998.

Subpackages:

* :mod:`repro.netsim` — OPNET-equivalent discrete-event network simulator.
* :mod:`repro.traffic` — traffic model library (CBR, Poisson, on-off,
  MMPP, MPEG traces).
* :mod:`repro.atm` — ATM model suite (cells, HEC, switching, policing,
  accounting reference algorithm).
* :mod:`repro.hdl` — VSS-equivalent event-driven HDL simulation kernel.
* :mod:`repro.rtl` — RTL device-under-test designs built on the HDL kernel.
* :mod:`repro.board` — RAVEN-equivalent hardware test board model.
* :mod:`repro.core` — CASTANET itself: simulator coupling, conservative
  synchronisation, abstraction interfaces, comparison machinery.
* :mod:`repro.analysis` — result collection and report rendering.
"""

__version__ = "1.0.0"
