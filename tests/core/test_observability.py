"""Tests for the environment-level observability surface.

Covers ``env.metrics()`` / ``export_metrics``, the observe/trace
wiring, the stale-advance accounting of both synchronisers and the
finish-residual warning (satellites 1 and 2).
"""

import json
import warnings

import pytest

from repro.atm import AtmCell
from repro.core import (CoVerificationEnvironment,
                        ResidualBacklogWarning, TimeBase)
from repro.rtl import AccountingUnitRtl, CellStreamPort

TB = TimeBase(tick_seconds=1e-9, clock_period_ticks=10)


def build_env(**kwargs):
    env = CoVerificationEnvironment(timebase=TB, **kwargs)
    dut = AccountingUnitRtl(env.hdl, "acct", env.clk)
    dut.register(1, 100, units_per_cell=2)
    entity = env.add_dut(rx_port=dut.rx, tick_signal=dut.tariff_tick)
    return env, entity


def drive(env, entity, cells=4):
    for k in range(cells):
        entity.send_cell((k + 1) * 1e-5, AtmCell.with_payload(1, 100,
                                                              [k]))
    entity.advance_time(cells * 1e-5 + 1e-5)
    env.finish()


class TestMetrics:
    def test_metrics_report_required_keys(self):
        env, entity = build_env()
        drive(env, entity)
        report = env.metrics()
        sync = report["entities"][0]["sync"]
        for key in ("windows_granted", "null_messages", "stale_advances",
                    "messages_posted", "messages_released", "drains",
                    "max_lag_seconds"):
            assert key in sync
        assert sync["windows_granted"] > 0
        assert sync["drains"] == 1
        assert report["hdl_kernel"]["events_executed"] > 0
        assert report["hdl_kernel"]["delta_cycles"] > 0
        assert report["netsim_kernel"]["executed_events"] == 0
        hists = report["instruments"]["histograms"]
        assert hists["sync.lag_s"]["count"] > 0
        assert hists["cosim.cell_ingress_latency_s"]["count"] == 4
        assert report["instruments"]["counters"][
            "cosim.latency_unmatched"] == 0

    def test_observe_false_omits_instruments(self):
        env, entity = build_env(observe=False)
        drive(env, entity)
        report = env.metrics()
        assert "instruments" not in report
        # the always-on protocol statistics still work
        assert report["entities"][0]["sync"]["messages_posted"] == 4

    def test_export_metrics_roundtrip(self, tmp_path):
        env, entity = build_env()
        drive(env, entity)
        path = env.export_metrics(tmp_path / "metrics.json")
        data = json.loads(path.read_text())
        assert data["entities"][0]["cells_in"] == 4

    def test_trace_records_schema(self, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        env, entity = build_env(trace=trace_path)
        drive(env, entity)
        records = [json.loads(line)
                   for line in trace_path.read_text().splitlines()]
        kinds = {r["ev"] for r in records}
        assert {"post", "null", "window", "release", "drain",
                "finish"} <= kinds
        assert env.metrics()["trace_records"] == len(records)
        for record in records:
            if record["ev"] == "post":
                assert record["type"] == "cell"
                assert record["t"] > 0


class TestStaleAdvances:
    def test_conservative_counts_stale_nulls(self):
        env, entity = build_env()
        entity.advance_time(1e-5)
        entity.advance_time(0.5e-5)  # behind the known originator time
        stats = entity.sync.stats
        assert stats.stale_advances == 1
        assert stats.null_messages == 2

    def test_lockstep_stale_null_is_counted_noop(self):
        env, entity = build_env(lockstep=True)
        entity.advance_time(1e-5)
        before_now = env.hdl.now
        before_nulls = entity.sync.stats.null_messages
        entity.advance_time(0.5e-5)  # in the HDL past: no-op, counted
        assert env.hdl.now == before_now
        assert entity.sync.stats.stale_advances == 1
        assert entity.sync.stats.null_messages == before_nulls
        # the originator lower bound is never lowered
        assert entity.sync.originator_time == 1e-5


class TestFinishResidual:
    def test_residual_backlog_warns(self):
        env, entity = build_env(lockstep=True, observe=False)
        # all cells land at one instant: the sender's backlog cannot
        # clear within a one-cell-time settle budget
        for k in range(6):
            entity.send_cell(1e-5, AtmCell.with_payload(1, 100, [k]))
        with pytest.warns(ResidualBacklogWarning,
                          match=r"\d+ stimulus cell\(s\) still queued"):
            entity.finish(1e-5, max_settle_cells=1)
        assert entity.sender.backlog > 0

    def test_clean_finish_does_not_warn(self):
        env, entity = build_env()
        with warnings.catch_warnings():
            warnings.simplefilter("error", ResidualBacklogWarning)
            drive(env, entity)
        assert entity.sender.backlog == 0
