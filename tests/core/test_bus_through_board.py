"""Integration: a µP bus interface behind the hardware test board.

Paper §3.3: "The hardware test board allows to interface
unidirectional hardware ports as well as bidirectional ports, e.g. µP
or bus interfaces.  Since bit-level data flows are generated at an
unidirectional single source, bus interfaces need to be modeled by
three bit-level signals input, output and a control signal indicating
the direction through predefined read/write flags."

Here the accounting unit's register bus is mounted behind the board:
the 16-bit data bus is one I/O port (inport wdata + outport rdata +
direction control), and open-loop stimulus vectors perform register
writes and read-backs through the pins.
"""


from repro.board import (ConfigurationDataSet, CtrlPortMapping,
                         HardwareTestBoard, IoPortMapping, PinSegment,
                         PortMapping, RtlPinDevice)
from repro.hdl import Simulator
from repro.rtl import (AccountingMgmtSlave, AccountingUnitRtl,
                       CTRL_REGISTER, REG_CONN_COUNT, REG_CTRL, REG_VCI,
                       REG_VPI)

# logical board ports
P_ADDR = 0      # inport: bus address
P_WDATA = 1     # inport: write data (I/O with P_RDATA)
P_WR = 2        # inport: write strobe
P_RD = 3        # inport: read strobe
P_RDATA = 1     # outport: read data (shares pins with P_WDATA)
P_READY = 2     # outport: slave ready
P_DIR = 0       # ctrlport: data-bus direction (1 = board drives)


def bus_pin_config():
    config = ConfigurationDataSet()
    config.add_inport(PortMapping(P_ADDR, 8, (PinSegment(0, 7, 8),)))
    config.add_inport(PortMapping(P_WDATA, 16, (PinSegment(1, 7, 8),
                                                PinSegment(2, 7, 8))))
    config.add_inport(PortMapping(P_WR, 1, (PinSegment(3, 0, 1),)))
    config.add_inport(PortMapping(P_RD, 1, (PinSegment(3, 1, 1),)))
    config.add_outport(PortMapping(P_RDATA, 16, (PinSegment(1, 7, 8),
                                                 PinSegment(2, 7, 8))))
    config.add_outport(PortMapping(P_READY, 1, (PinSegment(4, 0, 1),)))
    config.add_ctrlport(CtrlPortMapping(P_DIR, 1,
                                        (PinSegment(3, 7, 1),),
                                        write_value=1))
    config.add_io_port(IoPortMapping(P_WDATA, P_RDATA, P_DIR))
    config.validate()
    return config


def make_board_bus_setup():
    sim = Simulator()
    clk = sim.signal("clk", init="0")
    sim.add_clock(clk, period=10)
    unit = AccountingUnitRtl(sim, "acct", clk)
    slave = AccountingMgmtSlave(sim, "mgmt", clk, unit)
    config = bus_pin_config()
    device = RtlPinDevice(
        sim, clk, config,
        input_signals={P_ADDR: slave.port.addr,
                       P_WDATA: slave.port.wdata,
                       P_WR: slave.port.wr, P_RD: slave.port.rd},
        output_signals={P_RDATA: slave.port.rdata,
                        P_READY: slave.port.ready})
    board = HardwareTestBoard(config, memory_depth=4096)
    return unit, slave, board, device


def write_vectors(addr, data):
    """Open-loop stimulus for one register write (strobe + settle)."""
    idle = {P_ADDR: 0, P_WDATA: 0, P_WR: 0, P_RD: 0}
    strobe = {P_ADDR: addr, P_WDATA: data, P_WR: 1, P_RD: 0}
    return [strobe, dict(strobe), idle, dict(idle)], \
           [{P_DIR: 1}] * 4


def read_vectors(addr):
    """Open-loop stimulus for one register read."""
    idle = {P_ADDR: 0, P_WDATA: 0, P_WR: 0, P_RD: 0}
    strobe = {P_ADDR: addr, P_WDATA: 0, P_WR: 0, P_RD: 1}
    return [strobe, dict(strobe), idle, dict(idle)], \
           [{P_DIR: 0}] * 4


def run_transactions(board, device, transactions):
    """Execute a list of (vectors, ctrl) pairs; return all responses."""
    responses = []
    for vectors, ctrl in transactions:
        result = board.run_test_cycle(device, vectors, ctrl=ctrl)
        responses.extend(result.responses)
    return responses


def ready_data(responses):
    """rdata values sampled on clocks where the slave was ready."""
    return [r[P_RDATA] for r in responses if r[P_READY] == 1]


def test_register_write_through_board_pins():
    unit, slave, board, device = make_board_bus_setup()
    run_transactions(board, device, [
        write_vectors(REG_VPI, 1),
        write_vectors(REG_VCI, 100),
        write_vectors(REG_CTRL, CTRL_REGISTER),
    ])
    assert unit.connection_count == 1
    assert slave.writes == 3


def test_read_back_through_bidirectional_lane():
    unit, slave, board, device = make_board_bus_setup()
    run_transactions(board, device, [
        write_vectors(REG_VPI, 1),
        write_vectors(REG_VCI, 100),
        write_vectors(REG_CTRL, CTRL_REGISTER),
    ])
    responses = run_transactions(board, device,
                                 [read_vectors(REG_CONN_COUNT)])
    values = ready_data(responses)
    assert values, "slave never raised ready through the board"
    assert values[0] == 1


def test_staging_register_round_trip_over_pins():
    unit, slave, board, device = make_board_bus_setup()
    run_transactions(board, device, [write_vectors(REG_VPI, 0xAB)])
    responses = run_transactions(board, device, [read_vectors(REG_VPI)])
    assert ready_data(responses)[0] == 0xAB


def test_direction_flag_is_visible_in_config():
    config = bus_pin_config()
    frame_write = config.pack_stimulus({P_ADDR: 0}, {P_DIR: 1})
    frame_read = config.pack_stimulus({P_ADDR: 0}, {P_DIR: 0})
    assert config.unpack_ctrlports(frame_write)[P_DIR] == 1
    assert config.unpack_ctrlports(frame_read)[P_DIR] == 0
