"""Verify that every dotted name in docs/api/ still imports.

Scans the markdown pages under docs/api/ for backticked dotted names
rooted at ``repro.`` (for example ```repro.core.TimeBase```), then
resolves each one: import the longest importable module prefix and
getattr the remaining attribute chain.  Any name that fails to resolve
is reported and the script exits non-zero, so the API reference cannot
silently drift from the code.

Pages may additionally declare themselves *complete* for a package
with an HTML-comment marker::

    <!-- api:complete repro.shard -->

For every marker the checker imports the named module and requires
each entry of its ``__all__`` to appear as a backticked dotted name on
that page — so adding a public name without documenting it fails the
same gate that catches stale names.

Usage::

    PYTHONPATH=src python tools/check_api_docs.py [docs/api]
"""

from __future__ import annotations

import importlib
import re
import sys
from pathlib import Path

NAME_RE = re.compile(r"`(repro(?:\.\w+)+)`")
COMPLETE_RE = re.compile(r"<!--\s*api:complete\s+(repro(?:\.\w+)*)\s*-->")


def iter_documented_names(docs_dir: Path):
    """Yield ``(page, dotted_name)`` for every backticked name in docs_dir."""
    for page in sorted(docs_dir.glob("*.md")):
        for match in NAME_RE.finditer(page.read_text(encoding="utf-8")):
            yield page.name, match.group(1)


def iter_completeness_claims(docs_dir: Path):
    """Yield ``(page, module_name)`` for every ``api:complete`` marker."""
    for page in sorted(docs_dir.glob("*.md")):
        for match in COMPLETE_RE.finditer(page.read_text(encoding="utf-8")):
            yield page.name, match.group(1)


def missing_public_names(docs_dir: Path, page: str, module_name: str) -> list[str]:
    """Public names of ``module_name`` (its ``__all__``) that *page* never
    mentions as a backticked ``module_name.X``."""
    module = importlib.import_module(module_name)
    public = getattr(module, "__all__", None)
    if public is None:
        raise AttributeError(f"{module_name} defines no __all__ to check against")
    documented = {dotted for p, dotted in iter_documented_names(docs_dir) if p == page}
    return sorted(name for name in public
                  if f"{module_name}.{name}" not in documented)


def resolve(dotted: str) -> None:
    """Import/getattr ``dotted``; raise if any step fails."""
    parts = dotted.split(".")
    module = None
    index = len(parts)
    # Longest importable prefix first, so "repro.core.TimeBase" imports
    # repro.core and getattrs TimeBase rather than importing a module
    # named repro.core.TimeBase.
    while index > 0:
        try:
            module = importlib.import_module(".".join(parts[:index]))
            break
        except ImportError:
            index -= 1
    if module is None:
        raise ImportError(f"no importable prefix of {dotted!r}")
    obj = module
    for attr in parts[index:]:
        obj = getattr(obj, attr)


def main(argv: list[str]) -> int:
    docs_dir = Path(argv[1]) if len(argv) > 1 else Path("docs/api")
    if not docs_dir.is_dir():
        print(f"check_api_docs: no such directory: {docs_dir}", file=sys.stderr)
        return 2
    checked = 0
    failures = []
    for page, dotted in iter_documented_names(docs_dir):
        checked += 1
        try:
            resolve(dotted)
        except Exception as exc:  # noqa: BLE001 - report every resolution failure
            failures.append((page, dotted, exc))
    claims = 0
    incomplete = []
    for page, module_name in iter_completeness_claims(docs_dir):
        claims += 1
        try:
            missing = missing_public_names(docs_dir, page, module_name)
        except Exception as exc:  # noqa: BLE001 - report every claim failure
            incomplete.append((page, module_name, str(exc)))
            continue
        if missing:
            incomplete.append(
                (page, module_name,
                 "undocumented public names: " + ", ".join(missing)))
    if failures or incomplete:
        for page, dotted, exc in failures:
            print(f"FAIL {page}: `{dotted}` does not resolve: {exc}", file=sys.stderr)
        for page, module_name, detail in incomplete:
            print(f"FAIL {page}: api:complete {module_name}: {detail}",
                  file=sys.stderr)
        print(
            f"check_api_docs: {len(failures)}/{checked} documented names broken, "
            f"{len(incomplete)}/{claims} completeness claims unmet",
            file=sys.stderr,
        )
        return 1
    print(f"check_api_docs: OK ({checked} documented names resolve, "
          f"{claims} completeness claim(s) hold)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
