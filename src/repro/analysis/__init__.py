"""Result collection and report rendering."""

from .journal import JournalEntry, RunJournal
from .report import (EventAccounting, ExperimentResult, format_table,
                     histogram, speedup)

__all__ = ["JournalEntry", "RunJournal",
           "EventAccounting", "ExperimentResult", "format_table",
           "histogram", "speedup"]
