"""Exchange-counter aggregation: ShardHandle.stats() /
Transport.stats() across every transport, the piggy-backed-ACK drain
path, post-crash readout and the report-level totals."""

import pytest

from repro.shard import ShardError, ShardSpec, TopologySpec, run_topology
from repro.shard.topology import ShardedTopology

BEHAV2 = dict(shards=[ShardSpec("shard0", level="behav"),
                      ShardSpec("shard1", level="behav")])

STAT_KEYS = {"frames_sent", "frames_received",
             "bytes_sent", "bytes_received", "ops_sent"}


# ----------------------------------------------------------------------
# Live-handle counters, every transport
# ----------------------------------------------------------------------
@pytest.mark.parametrize("transport", ["pipe", "socket", "shm"])
def test_handle_stats_count_frames_and_octets(transport):
    """Each exchange moves the frame AND octet counters on every
    transport; ops_sent tracks exactly the ops queued."""
    spec = TopologySpec(cells=4, seed=0, window_slots=32,
                        transport=transport, **BEHAV2)
    with ShardedTopology(spec) as topo:
        handle = topo.handles[0]
        start = handle.stats()
        assert set(start) == STAT_KEYS
        # the hello ready-signal is already on the receive counters
        assert start["frames_received"] >= 1
        assert start["ops_sent"] == 0

        handle.queue_null(1e-4)
        handle.queue_null(2e-4)
        handle.barrier()
        after = handle.stats()
        assert after["ops_sent"] == 2
        assert after["frames_sent"] > start["frames_sent"]
        assert after["frames_received"] > start["frames_received"]
        assert after["bytes_sent"] > start["bytes_sent"]
        assert after["bytes_received"] > start["bytes_received"]

        handle.finish(3e-4)
        done = handle.stats()
        # finish ships the remaining ops frame plus the finish
        # request/summary exchange
        assert done["frames_sent"] >= after["frames_sent"] + 1
        assert done["frames_received"] >= after["frames_received"] + 1
        # after the final barrier every shipped frame is acknowledged:
        # received = hello + one ack per ops frame + finish summary
        assert done["frames_received"] == done["frames_sent"] + 1


def test_stats_snapshots_are_independent_dicts():
    spec = TopologySpec(cells=4, seed=0, window_slots=32, **BEHAV2)
    with ShardedTopology(spec) as topo:
        handle = topo.handles[0]
        before = handle.stats()
        before["frames_sent"] = -999  # mutating a snapshot is safe
        handle.queue_null(1e-4)
        handle.barrier()
        assert handle.stats()["frames_sent"] >= 0


# ----------------------------------------------------------------------
# The piggy-backed-ACK drain path
# ----------------------------------------------------------------------
def test_flush_drains_piggybacked_acks_when_pipeline_is_full():
    """With max_inflight=1 and one-op batches, flush() itself must
    drain the piggy-backed ACKs (it cannot pipeline), so the receive
    counters advance before any explicit barrier."""
    spec = TopologySpec(cells=4, seed=0, window_slots=32,
                        max_batch=1, max_inflight=1, **BEHAV2)
    with ShardedTopology(spec) as topo:
        handle = topo.handles[0]
        hello_frames = handle.stats()["frames_received"]
        for slot in range(3):
            handle.queue_null((slot + 1) * 1e-4)
        handle.flush()
        mid = handle.stats()
        assert mid["frames_sent"] == 3
        # at most one frame may still be unacknowledged
        assert mid["frames_received"] - hello_frames >= 2
        handle.barrier()
        done = handle.stats()
        assert done["frames_received"] - hello_frames == 3


def test_tiny_pipeline_knobs_keep_the_run_byte_identical():
    """Forcing the drain path (max_inflight=1, max_batch=1) must only
    change the framing, never the replayed stream: same digest as the
    default pipelining, far more frames on the wire."""
    base = dict(cells=12, seed=3, chain=True, window_slots=32,
                **BEHAV2)
    roomy = run_topology(TopologySpec(**base), mode="sharded")
    tight = run_topology(TopologySpec(max_batch=1, max_inflight=1,
                                      **base), mode="sharded")
    assert tight["digest"] == roomy["digest"]
    assert tight["totals"]["frames"] > roomy["totals"]["frames"]


# ----------------------------------------------------------------------
# Post-crash readout
# ----------------------------------------------------------------------
def test_stats_remain_readable_after_a_shard_crash():
    """A handle whose worker died must still hand back its exchange
    counters — the post-mortem evidence of how far the run got."""
    spec = TopologySpec(cells=4, seed=0, window_slots=32, max_batch=1,
                        inject={"shard1": {"kind": "exit",
                                           "at_op": 2}},
                        **BEHAV2)
    with ShardedTopology(spec) as topo:
        handle = topo.handles[1]
        for slot in range(6):
            handle.queue_null((slot + 1) * 1e-4)
        with pytest.raises(ShardError) as excinfo:
            handle.barrier()
        assert "shard1" in str(excinfo.value)
        post = handle.stats()
        assert set(post) == STAT_KEYS
        assert post["ops_sent"] == 6
        assert post["frames_sent"] > 0
        assert post["bytes_sent"] > 0


# ----------------------------------------------------------------------
# Report-level aggregation
# ----------------------------------------------------------------------
@pytest.mark.parametrize("transport", ["pipe", "socket", "shm"])
def test_report_totals_sum_the_per_shard_exchanges(transport):
    report = run_topology(
        TopologySpec(cells=8, seed=1, window_slots=32,
                     transport=transport, **BEHAV2),
        mode="sharded")
    exchanges = [shard["exchange"] for shard in report["shards"]]
    assert all(set(ex) == STAT_KEYS for ex in exchanges)
    assert all(ex["frames_sent"] > 0 and ex["bytes_sent"] > 0
               for ex in exchanges)
    assert report["totals"]["frames"] == sum(
        ex["frames_sent"] + ex["frames_received"] for ex in exchanges)
    assert report["totals"]["bytes"] == sum(
        ex["bytes_sent"] + ex["bytes_received"] for ex in exchanges)


def test_local_mode_exchange_counts_ops_but_no_wire_traffic():
    """The in-process twin replays the identical op stream without a
    transport: ops_sent matches the sharded run, wire counters are
    structurally zero."""
    base = dict(cells=8, seed=1, window_slots=32, **BEHAV2)
    local = run_topology(TopologySpec(**base), mode="local")
    sharded = run_topology(TopologySpec(**base), mode="sharded")
    for shard_local, shard_wire in zip(local["shards"],
                                       sharded["shards"]):
        ex = shard_local["exchange"]
        assert set(ex) == STAT_KEYS
        assert ex["ops_sent"] == shard_wire["exchange"]["ops_sent"]
        assert ex["ops_sent"] > 0
        for key in STAT_KEYS - {"ops_sent"}:
            assert ex[key] == 0
    assert local["totals"]["frames"] == 0
    assert local["totals"]["bytes"] == 0
