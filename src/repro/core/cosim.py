"""The co-simulation entity (§3, Figure 2).

"In the VSS simulation a C-language based co-simulation entity is
instantiated, that receives messages from [the] OPNET-side interface
process.  It also performs signal conditioning, e.g. mapping a data
structure to bit or word-level signal streams and generation of
additional control signals."

:class:`CosimulationEntity` is that component: it owns the HDL-side
machinery (cell sender on the DUT input port, cell receiver on the DUT
output port, the conservative synchroniser) and exposes the
message-level API the network-simulator side drives.
"""

from __future__ import annotations

import warnings
from collections import deque
from typing import (Callable, Deque, Dict, List, Optional, Tuple,
                    TYPE_CHECKING)

from ..atm.cell import AtmCell
from ..hdl.signal import Signal
from ..hdl.simulator import Simulator
from ..netsim.packet import Packet
from ..rtl.cell_stream import CellReceiver, CellSender, CellStreamPort
from .contract import DutContract
from .mapping import CellMapper
from .messages import TimestampedMessage
from .sync import ConservativeSynchronizer, LockstepSynchronizer
from .timebase import TimeBase

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.metrics import MetricsRegistry
    from ..obs.provenance import ProvenanceTracker
    from ..obs.trace import TraceWriter

__all__ = ["CosimulationEntity", "ResidualBacklogWarning", "CELL_MSG",
           "TICK_MSG"]

#: message type of a data cell crossing into the HDL simulator
CELL_MSG = "cell"
#: message type of a tariff-interval tick (accounting case study)
TICK_MSG = "tariff_tick"


class ResidualBacklogWarning(RuntimeWarning):
    """Issued when :meth:`CosimulationEntity.finish` exhausts its
    settle budget with stimulus still queued or a cell still being
    collected — ``output_cells`` is then truncated."""


class CosimulationEntity(DutContract):
    """The HDL-side endpoint of the simulator coupling.

    Args:
        hdl: the HDL simulator hosting the DUT.
        clk: the DUT clock signal.
        timebase: second/tick conversion (must match *clk*'s period).
        rx_port: the DUT's input cell-stream port (stimulus side).
        tx_port: the DUT's output cell-stream port (response side),
            optional for sink-only DUTs such as the accounting unit.
        tick_signal: optional scalar DUT input pulsed by TICK_MSG
            messages (the accounting unit's ``tariff_tick``).
        deltas: per-message-type processing delays δ_j in DUT clocks;
            defaults cover CELL_MSG (53 octet clocks + pipeline slack)
            and TICK_MSG.
        lockstep: use the naive per-clock synchroniser instead of the
            conservative timing-window protocol (the E2 ablation).
        provenance: optional cell-journey tracker
            (:class:`repro.obs.provenance.ProvenanceTracker`); the
            entity then records the ``post``/``release``/``ingress``/
            ``dut_out`` hops of every sampled cell crossing the
            abstraction interface.

    Outputs captured from ``tx_port`` are collected in
    :attr:`output_cells` as ``(hdl_seconds, AtmCell)`` tuples and
    passed to :attr:`on_output` when set.

    The entity advances the DUT exclusively through ``hdl.run(until=...)``
    (via the synchroniser), so it is clocking-agnostic: with a
    :class:`~repro.hdl.cycle.CycleEngine` attached (the environment's
    default) every granted window executes through the engine's fast
    edge dispatch, with the event-driven generator clock it runs the
    seed scheduler — byte-identical traces either way.
    """

    level = "rtl"

    def __init__(self, hdl: Simulator, clk: Signal, timebase: TimeBase,
                 rx_port: CellStreamPort,
                 tx_port: Optional[CellStreamPort] = None,
                 tick_signal: Optional[Signal] = None,
                 deltas: Optional[Dict[str, int]] = None,
                 lockstep: bool = False,
                 metrics: Optional["MetricsRegistry"] = None,
                 trace: Optional["TraceWriter"] = None,
                 provenance: Optional["ProvenanceTracker"] = None
                 ) -> None:
        self.hdl = hdl
        self.clk = clk
        self.timebase = timebase
        self.mapper = CellMapper()
        self.sender = CellSender(hdl, "castanet.stim", clk, port=rx_port)
        self.tick_signal = tick_signal
        self.output_cells: List[Tuple[float, AtmCell]] = []
        self.on_output: Optional[Callable[[float, AtmCell], None]] = None
        self.receiver: Optional[CellReceiver] = None
        if tx_port is not None:
            self.receiver = CellReceiver(hdl, "castanet.resp", clk,
                                         tx_port, on_cell=self._on_cell_out)

        if deltas is None:
            deltas = {CELL_MSG: timebase.clocks_per_cell + 2}
            if tick_signal is not None:
                deltas[TICK_MSG] = 2
        self.lockstep = lockstep
        if lockstep:
            self.sync = LockstepSynchronizer(hdl, timebase,
                                             handler=self._deliver)
        else:
            handlers = {CELL_MSG: self._deliver}
            if TICK_MSG in deltas:
                handlers[TICK_MSG] = self._deliver
            self.sync = ConservativeSynchronizer(hdl, timebase, deltas,
                                                 handlers=handlers,
                                                 coalesce_nulls=True)
        self.cells_in = 0
        self.ticks_in = 0
        #: earliest HDL tick at which the next tariff pulse may start
        #: (pulses are serialised so every tick has a distinct edge)
        self._tick_free = 0

        # -- observability (None-guarded; zero cost when absent) ------
        self._trace = trace
        self._prov = provenance
        self._ingress_hist = None
        self._e2e_hist = None
        self._latency_unmatched = None
        # The in-flight deques carry (netsim_time, trace_id) pairs so
        # FIFO latency matching and provenance share one bookkeeping
        # path; active when either consumer is wired in.
        self._track_cells = (provenance is not None
                             or (metrics is not None and metrics.enabled))
        self._inflight_ingress: Deque[Tuple[float,
                                            Optional[int]]] = deque()
        self._inflight_e2e: Deque[Tuple[float, Optional[int]]] = deque()
        self.sync.attach_observability(metrics, trace)
        if self._track_cells:
            self.sender.on_cell_sent = self._on_cell_ingress
        if metrics is not None and metrics.enabled:
            self._ingress_hist = metrics.histogram(
                "cosim.cell_ingress_latency_s")
            self._latency_unmatched = metrics.counter(
                "cosim.latency_unmatched")
            if self.receiver is not None:
                self._e2e_hist = metrics.histogram(
                    "cosim.cell_e2e_latency_s")

    # ------------------------------------------------------------------
    # Network-simulator-side API
    # ------------------------------------------------------------------
    def send_cell(self, time: float, cell) -> None:
        """Post one cell (an :class:`AtmCell` or a netsim packet)
        stamped with netsim *time*."""
        if isinstance(cell, Packet):
            cell = AtmCell.from_packet(cell)
        if self._track_cells:
            tid = cell.trace_id
            self._inflight_ingress.append((time, tid))
            if self.receiver is not None:
                self._inflight_e2e.append((time, tid))
            if self._prov is not None:
                self._prov.record_hop(
                    tid, "post", t=time,
                    hdl_s=self.timebase.to_seconds(self.hdl.now))
        self.sync.post(CELL_MSG, time, cell)

    def send_tariff_tick(self, time: float) -> None:
        """Post a tariff-interval tick stamped with netsim *time*."""
        if self.tick_signal is None:
            raise ValueError("entity has no tick signal configured")
        self.sync.post(TICK_MSG, time, None)

    def advance_time(self, time: float) -> None:
        """Null message: the network simulator reached *time*."""
        self.sync.advance_time(time)

    def finish(self, time: Optional[float] = None,
               max_settle_cells: int = 64) -> None:
        """Release all pending messages and settle the DUT.

        After the protocol drain, the DUT may still be clocking its
        last responses out (a cell in flight on ``tx_port``); the
        entity keeps the clock running, one cell time per round, until
        the output has been quiet for a full cell time.

        If *max_settle_cells* rounds pass with the DUT still busy
        (stimulus cells queued, or a cell partially collected on
        ``tx_port``), :attr:`output_cells` is truncated; a
        :class:`ResidualBacklogWarning` reporting the residual backlog
        is issued rather than returning silently.
        """
        if isinstance(self.sync, ConservativeSynchronizer):
            self.sync.drain(time)
        elif time is not None:
            self.sync.advance_time(time)
        cell_ticks = self.timebase.cell_time_ticks
        still_busy = (self.sender.backlog > 0
                      or (self.receiver is not None
                          and self.receiver.collecting))
        for _ in range(max_settle_cells):
            before = len(self.output_cells)
            target = self.hdl.now + cell_ticks
            # Keep the lag invariant formally intact while settling.
            self.sync.originator_time = max(
                self.sync.originator_time,
                self.timebase.to_seconds(target))
            self.hdl.run(until=target)
            still_busy = (self.sender.backlog > 0
                          or (self.receiver is not None
                              and self.receiver.collecting))
            if not still_busy and len(self.output_cells) == before:
                break
        if self._trace is not None:
            self._trace.emit("finish",
                             hdl_s=self.timebase.to_seconds(self.hdl.now),
                             residual=self.sender.backlog)
        if still_busy:
            collecting = (self.receiver is not None
                          and self.receiver.collecting)
            warnings.warn(
                f"CosimulationEntity.finish: settle budget of "
                f"{max_settle_cells} cell times exhausted with "
                f"{self.sender.backlog} stimulus cell(s) still queued"
                + (" and a cell partially collected on tx_port"
                   if collecting else "")
                + " — output_cells is truncated; raise max_settle_cells",
                ResidualBacklogWarning, stacklevel=2)

    def snapshot(self) -> Dict[str, object]:
        """Per-entity metrics snapshot: stimulus/response counters,
        sender statistics and the synchroniser's exchange counts."""
        return {
            "level": self.level,
            "cells_in": self.cells_in,
            "ticks_in": self.ticks_in,
            "output_cells": len(self.output_cells),
            "sender_backlog": self.sender.backlog,
            "sender_playback": self.sender.playback,
            "sender_template_hits": self.sender.template_hits,
            "sender_template_misses": self.sender.template_misses,
            "sync": self.sync.stats.as_dict(),
        }

    # ------------------------------------------------------------------
    # HDL-side internals
    # ------------------------------------------------------------------
    def _deliver(self, message: TimestampedMessage) -> None:
        if message.msg_type == CELL_MSG:
            self.cells_in += 1
            if self._prov is not None:
                self._prov.record_hop(
                    getattr(message.payload, "trace_id", None),
                    "release", t=message.time,
                    hdl_s=self.timebase.to_seconds(self.hdl.now))
            self.sender.send(self.mapper.cell_to_octets(message.payload))
        elif message.msg_type == TICK_MSG:
            self.ticks_in += 1
            # Pulses are serialised: back-to-back ticks within one
            # clock period would otherwise merge into a single high
            # level (one observable edge for several ticks).  Each
            # pulse is one period high followed by one period low, so
            # every tick produces a distinct rising edge on the DUT.
            period = self.timebase.clock_period_ticks
            start = max(self.hdl.now, self._tick_free)
            delay = start - self.hdl.now
            self.tick_signal.drive("1", delay=delay)
            self.tick_signal.drive("0", delay=delay + period)
            self._tick_free = start + 2 * period
            if self._trace is not None:
                self._trace.emit("tick_pulse", hdl_tick=start,
                                 deferred_ticks=delay)
        else:  # pragma: no cover - future message types
            raise KeyError(f"unhandled message type {message.msg_type!r}")

    def _on_cell_ingress(self) -> None:
        """Observability hook: a stimulus cell finished clocking into
        the DUT — record netsim-injection → ingress-complete latency
        and the cell's ``ingress`` provenance hop."""
        if not self._inflight_ingress:
            if self._latency_unmatched is not None:
                self._latency_unmatched.inc()
            return
        injected, tid = self._inflight_ingress.popleft()
        hdl_s = self.timebase.to_seconds(self.hdl.now)
        if self._ingress_hist is not None:
            self._ingress_hist.record(max(0.0, hdl_s - injected))
        if self._prov is not None:
            self._prov.record_hop(tid, "ingress", hdl_s=hdl_s)

    def _on_cell_out(self, octets: List[int]) -> None:
        cell = self.mapper.octets_to_cell(octets)
        when = self.timebase.to_seconds(self.hdl.now)
        self.output_cells.append((when, cell))
        if self._track_cells and self.receiver is not None:
            # FIFO matching: exact for in-order DUTs; a dropped cell
            # skews subsequent samples (counted via latency_unmatched
            # when the deque underruns).
            if self._inflight_e2e:
                injected, tid = self._inflight_e2e.popleft()
                latency = max(0.0, when - injected)
                if self._e2e_hist is not None:
                    self._e2e_hist.record(latency)
                    if self._trace is not None:
                        self._trace.emit("cell_out", hdl_s=when,
                                         latency_s=latency)
                if self._prov is not None:
                    cell.trace_id = tid
                    self._prov.record_hop(tid, "dut_out", hdl_s=when)
            elif self._latency_unmatched is not None:
                self._latency_unmatched.inc()
        if self.on_output is not None:
            self.on_output(when, cell)
