"""The hardware test board: memories, clocking and test cycles.

Models the RAVEN board of [16]: a control part and multiple memory
units for intermediate test-vector storage, a 128-pin bit-stream
interface (16 byte lanes, each configurable in direction and speed)
and a clock interface, maximum board clock 20 MHz.

"The real-time verification process consists of repeated hardware
activity cycles, interrupted by a software activity cycle, in which
the hardware is stopped immediately.  One test cycle contains a
software activity cycle to generate stimuli, configure the board and
store stimuli to the hardware test board.  This is followed by a
hardware activity cycle to run the hardware under test and a software
activity cycle to read the results back to the simulator."
:meth:`HardwareTestBoard.run_test_cycle` is exactly that loop body;
:class:`TestCycleStats` carries the timing split the E4 benchmark
sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from .device import PinLevelDevice
from .pinmap import ConfigurationDataSet, NUM_BYTE_LANES
from .scsi import ScsiBus

__all__ = ["HardwareTestBoard", "TestCycleStats", "BoardError",
           "MAX_BOARD_CLOCK_HZ", "MIN_CYCLE_CLOCKS", "MAX_CYCLE_CLOCKS"]

MAX_BOARD_CLOCK_HZ = 20e6
#: test-cycle duration limits from the board's memory configuration
MIN_CYCLE_CLOCKS = 1
MAX_CYCLE_CLOCKS = 1 << 20


class BoardError(Exception):
    """Raised on invalid board configuration or operation."""


@dataclass
class TestCycleStats:
    """Timing breakdown of one complete test cycle."""

    clocks: int
    hw_time: float           # hardware activity (real-time run)
    sw_load_time: float      # stimulus download over SCSI
    sw_read_time: float      # response upload over SCSI
    sw_overhead_time: float  # host-side stimulus generation/configure

    @property
    def total_time(self) -> float:
        """Wall-clock of the full cycle."""
        return (self.hw_time + self.sw_load_time + self.sw_read_time
                + self.sw_overhead_time)

    @property
    def effective_clock_hz(self) -> float:
        """DUT clocks per second of wall-clock, the E4 metric."""
        if self.total_time <= 0:
            return 0.0
        return self.clocks / self.total_time

    @property
    def hw_utilization(self) -> float:
        """Fraction of the cycle spent actually clocking the DUT."""
        total = self.total_time
        return self.hw_time / total if total > 0 else 0.0


class HardwareTestBoard:
    """The board model.

    Args:
        config: pin-mapping configuration data set (validated here).
        clock_hz: board clock; must not exceed 20 MHz.
        memory_depth: stimulus/response vectors storable per test
            cycle; bounds the hardware-activity-cycle duration.
        scsi: the host attachment (a default bus is created if
            omitted).
        sw_overhead_s: host software cost per cycle (stimulus
            generation + board configuration), charged to the SW
            activity phase.
    """

    def __init__(self, config: ConfigurationDataSet,
                 clock_hz: float = MAX_BOARD_CLOCK_HZ,
                 memory_depth: int = MAX_CYCLE_CLOCKS,
                 scsi: Optional[ScsiBus] = None,
                 sw_overhead_s: float = 2e-3) -> None:
        if not 0 < clock_hz <= MAX_BOARD_CLOCK_HZ:
            raise BoardError(
                f"board clock {clock_hz} outside (0, {MAX_BOARD_CLOCK_HZ}]")
        if not MIN_CYCLE_CLOCKS <= memory_depth <= MAX_CYCLE_CLOCKS:
            raise BoardError(
                f"memory depth {memory_depth} outside "
                f"{MIN_CYCLE_CLOCKS}..{MAX_CYCLE_CLOCKS}")
        config.validate()
        self.config = config
        self.clock_hz = clock_hz
        self.memory_depth = memory_depth
        self.scsi = scsi if scsi is not None else ScsiBus()
        self.sw_overhead_s = sw_overhead_s
        self._stimulus_memory: List[List[int]] = []
        self._response_memory: List[List[int]] = []
        #: byte lane -> clock divisor ("each of 16 byte lanes is
        #: configurable in direction and speed"); a lane with divisor N
        #: updates its driven value every Nth board clock.
        self._lane_speed: Dict[int, int] = {}
        self.cycles_run = 0
        self.total_clocks = 0

    # ------------------------------------------------------------------
    # Byte-lane speed configuration
    # ------------------------------------------------------------------
    def set_lane_speed(self, lane: int, divisor: int) -> None:
        """Clock byte *lane* at 1/*divisor* of the board clock: its
        driven value is held for *divisor* board clocks."""
        if not 0 <= lane < NUM_BYTE_LANES:
            raise BoardError(f"byte lane {lane} outside 0..15")
        if divisor < 1:
            raise BoardError(f"lane divisor must be >= 1, got {divisor}")
        if divisor == 1:
            self._lane_speed.pop(lane, None)
        else:
            self._lane_speed[lane] = divisor

    def lane_speed(self, lane: int) -> int:
        """The configured divisor of byte *lane* (1 = full speed)."""
        return self._lane_speed.get(lane, 1)

    def _effective_frame(self, index: int) -> List[int]:
        """The pin frame the DUT sees at clock *index*, with slow
        lanes holding their last update."""
        frame = list(self._stimulus_memory[index])
        for lane, divisor in self._lane_speed.items():
            held = index - (index % divisor)
            frame[lane] = self._stimulus_memory[held][lane]
        return frame

    # ------------------------------------------------------------------
    # Software activity: load / read
    # ------------------------------------------------------------------
    def load_stimuli(self, frames: Sequence[Sequence[int]]) -> float:
        """Store stimulus pin frames into board memory (SW activity).

        Returns the SCSI transfer time.

        Raises:
            BoardError: more frames than the memory holds, or malformed
                frames.
        """
        frames = [list(frame) for frame in frames]
        if len(frames) > self.memory_depth:
            raise BoardError(
                f"{len(frames)} stimulus vectors exceed memory depth "
                f"{self.memory_depth}")
        for frame in frames:
            if len(frame) != NUM_BYTE_LANES:
                raise BoardError(
                    f"a pin frame has {NUM_BYTE_LANES} lanes, "
                    f"got {len(frame)}")
        self._stimulus_memory = frames
        return self.scsi.transfer("LOAD_STIMULI",
                                  len(frames) * NUM_BYTE_LANES)

    def load_port_vectors(self, vectors: Sequence[Dict[int, int]],
                          ctrl: Optional[Sequence[Dict[int, int]]] = None
                          ) -> float:
        """Convenience: pack per-clock logical port values and load
        them (one dict of {inport: value} per clock)."""
        ctrl = list(ctrl) if ctrl is not None else [None] * len(vectors)
        if len(ctrl) != len(vectors):
            raise BoardError("ctrl vector list length mismatch")
        frames = [self.config.pack_stimulus(values, ctrl_values)
                  for values, ctrl_values in zip(vectors, ctrl)]
        return self.load_stimuli(frames)

    def read_responses(self) -> List[List[int]]:
        """Read captured response frames back (SW activity)."""
        self.scsi.transfer("READ_RESPONSES",
                           len(self._response_memory) * NUM_BYTE_LANES)
        return [list(frame) for frame in self._response_memory]

    def read_port_responses(self) -> List[Dict[int, int]]:
        """Responses unpacked through the outport mappings."""
        return [self.config.unpack_response(frame)
                for frame in self.read_responses()]

    # ------------------------------------------------------------------
    # Hardware activity
    # ------------------------------------------------------------------
    def run_hardware_cycle(self, device: PinLevelDevice,
                           clocks: Optional[int] = None) -> float:
        """Clock the DUT through the stored stimuli at board speed.

        The duration is "automatically calculated" as the number of
        stored stimulus vectors unless *clocks* trims it.  Returns the
        (modelled) real-time duration in seconds.
        """
        available = len(self._stimulus_memory)
        if available == 0:
            raise BoardError("no stimuli loaded")
        n = available if clocks is None else clocks
        if not MIN_CYCLE_CLOCKS <= n <= available:
            raise BoardError(
                f"cycle of {n} clocks outside 1..{available}")
        self._response_memory = []
        for index in range(n):
            response = device.clock(self._effective_frame(index))
            self._response_memory.append(list(response))
        self.cycles_run += 1
        self.total_clocks += n
        return n / self.clock_hz

    def stats_snapshot(self) -> Dict[str, object]:
        """Machine-readable board counters for observability."""
        return {
            "cycles_run": self.cycles_run,
            "total_clocks": self.total_clocks,
            "clock_hz": self.clock_hz,
            "scsi": self.scsi.stats_snapshot(),
        }

    # ------------------------------------------------------------------
    # Complete test cycle
    # ------------------------------------------------------------------
    def run_test_cycle(self, device: PinLevelDevice,
                       vectors: Sequence[Dict[int, int]],
                       ctrl: Optional[Sequence[Dict[int, int]]] = None
                       ) -> "TestCycleResult":
        """One full SW → HW → SW test cycle.

        Returns the responses and the timing breakdown.
        """
        load_time = self.load_port_vectors(vectors, ctrl)
        hw_time = self.run_hardware_cycle(device)
        responses = self.read_port_responses()
        read_time = self.scsi.log[-1].duration
        stats = TestCycleStats(clocks=len(vectors), hw_time=hw_time,
                               sw_load_time=load_time,
                               sw_read_time=read_time,
                               sw_overhead_time=self.sw_overhead_s)
        return TestCycleResult(responses=responses, stats=stats)


@dataclass
class TestCycleResult:
    """Responses plus timing of one test cycle."""

    responses: List[Dict[int, int]]
    stats: TestCycleStats
