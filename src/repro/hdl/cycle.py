"""Cycle-based clock evaluation (the paper's outlook, experiment E6).

"Because of the time scale problem, event-driven VHDL-simulators are
obviously a bottleneck in the co-verification process. ... Thus, the
integration of cycle-based simulation techniques is required."

:class:`CycleEngine` drives a clock signal *without* the event-driven
machinery the generator-based clock needs: no heap push/pop per edge
and no process resume for the clock generator itself — each edge is a
direct delta evaluation.  Everything else (sensitivity lists, delta
cycles, generator waits on clock edges) behaves identically, so the
same RTL design runs under both schemes and E6 measures the gap.

Since the hot-path overhaul the engine is also the *default* clocking
scheme of the co-verification environment (it attaches itself to the
simulator, and ``Simulator.run(until=...)`` delegates to it), with two
further accelerations:

* the initial clock level is primed during initialisation exactly like
  the generator clock's first drive, so the two schemes are
  event-count-identical (this fixed the historic one-event E6b gap);
* clock edges are applied by *fast dispatch*: the edge's delta cycle
  is evaluated inline against a precomputed edge-sensitivity table (a
  snapshot of the clock's sensitivity list, refreshed only when
  processes are added) plus the current edge waiters, skipping the
  general delta loop's changed-signal bookkeeping.

Restrictions:
* the clock signal must not have another driver (do not also call
  ``sim.add_clock`` on it);
* timed events scheduled by other processes are honoured — the engine
  drains the heap up to each edge time before evaluating the edge.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .processes import Process
from .signal import Signal
from .simulator import Simulator

__all__ = ["CycleEngine"]


class CycleEngine:
    """Clocks a simulator cycle-by-cycle.

    Args:
        sim: the simulator to clock.
        clk: the clock signal (must have no other driver).
        period: clock period in ticks.
        duty_ticks: high time in ticks (default ``period // 2``).
        attach: register the engine as *sim*'s clocking scheme so that
            ``sim.run(until=...)`` is engine-driven (the default; pass
            ``False`` to keep the engine purely manual).

    Example:
        >>> sim = Simulator()
        >>> clk = sim.signal("clk", init="0")
        >>> engine = CycleEngine(sim, clk, period=10)
        >>> engine.run_cycles(100)
        >>> sim.now
        1000
    """

    def __init__(self, sim: Simulator, clk: Signal, period: int,
                 duty_ticks: Optional[int] = None,
                 attach: bool = True) -> None:
        if period < 2:
            raise ValueError("clock period must be >= 2 ticks")
        high = duty_ticks if duty_ticks is not None else period // 2
        if not 0 < high < period:
            raise ValueError(f"duty {high} outside (0, {period})")
        self.sim = sim
        self.clk = clk
        self.period = period
        self.high_ticks = high
        self.low_ticks = period - high
        self._driver = object()
        self._primed = False
        #: absolute tick of the next edge and the level it drives
        self._next_edge_time: Optional[int] = None
        self._next_edge_value = "1"
        #: cached snapshots of clk's sensitivity lists (edge tables);
        #: ``_edge_table_all`` is the rising-edge dispatch list (any
        #: sensitivity + rise-only sensitivity), ``_edge_table`` the
        #: falling-edge one
        self._edge_table: Tuple[Process, ...] = ()
        self._edge_table_len = -1
        self._edge_table_rise_len = -1
        self._edge_table_all: Tuple[Process, ...] = ()
        self._clk_id = id(clk)
        self.cycles_run = 0
        #: clock edges applied through fast dispatch (observability)
        self.edges_applied = 0
        # Publish the clock geometry so bulk-stimulus compilers (e.g.
        # CellSender's waveform fast path) can place transitions on
        # edges of this clock; _prime() refreshes the anchor.
        sim._register_clock(clk, period, sim.now + self.low_ticks)
        if attach:
            sim._attach_engine(self)

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def run_cycles(self, cycles: int) -> None:
        """Advance the design by *cycles* full clock periods."""
        sim = self.sim
        sim.initialize()
        self._prime()
        sim._execute_deltas()
        heap = sim._heap
        wave = sim._wave_heap
        for _ in range(cycles):
            for _edge in (0, 1):                 # rising, falling
                target = self._next_edge_time
                if (heap and heap[0][0] <= target) or (
                        wave and wave[0][0] < target):
                    self._advance_to(target, wave_at_target=False)
                else:
                    sim.now = target
                self._apply_edge()
                if wave and wave[0][0] == target:
                    self._drain_wave_now()
            self.cycles_run += 1

    def _run_until(self, until: Optional[int]) -> int:
        """Engine-driven equivalent of ``Simulator.run(until=...)``:
        apply every clock edge up to *until*, draining timed heap
        events and bulk waveforms in between, and land exactly on
        *until*."""
        sim = self.sim
        sim.initialize()
        self._prime()
        sim._execute_deltas()
        if until is None:
            # No horizon: interleave edges with heap/waveform events
            # until both drain (the clock itself never schedules, so
            # this terminates exactly when an event-driven run of the
            # non-clock events would).  Same-time ordering matches the
            # event-driven kernel: heap events apply before the edge,
            # waveform batches after it.
            heap = sim._heap
            wave = sim._wave_heap
            while True:
                next_time = sim.next_event_time()
                if next_time is None:
                    return sim.now
                while self._next_edge_time < next_time:
                    target = self._next_edge_time
                    if (heap and heap[0][0] <= target) or (
                            wave and wave[0][0] < target):
                        self._advance_to(target, wave_at_target=False)
                    else:
                        sim.now = target
                    self._apply_edge()
                    if wave and wave[0][0] == target:
                        self._drain_wave_now()
                self._advance_to(next_time, wave_at_target=False)
                if wave and wave[0][0] == next_time:
                    if self._next_edge_time == next_time:
                        self._apply_edge()
                    self._drain_wave_now()
        if until < sim.now:
            return sim.now
        heap = sim._heap
        wave = sim._wave_heap
        while self._next_edge_time <= until:
            target = self._next_edge_time
            if (heap and heap[0][0] <= target) or (
                    wave and wave[0][0] < target):
                self._advance_to(target, wave_at_target=False)
            else:
                sim.now = target
            self._apply_edge()
            if wave and wave[0][0] == target:
                self._drain_wave_now()
        self._advance_to(until)
        return sim.now

    def schedule_waveform(self, *args, **kwargs):
        """Bulk event injection — delegates to
        :meth:`repro.hdl.Simulator.schedule_waveform`."""
        return self.sim.schedule_waveform(*args, **kwargs)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _prime(self) -> None:
        """Apply the pre-first-edge clock level once, mirroring the
        generator clock's initial drive (this keeps the two clocking
        schemes event-identical, including kernel event counts)."""
        if self._primed:
            return
        self._primed = True
        self.sim._pending_updates.append((self.clk, self._driver, "0"))
        if self._next_edge_time is None:
            self._next_edge_time = self.sim.now + self.low_ticks
            self._next_edge_value = "1"
        if self._next_edge_value == "1":
            # Authoritative first-rise anchor for bulk stimulus.
            self.sim._register_clock(self.clk, self.period,
                                     self._next_edge_time)

    def _apply_edge(self) -> None:
        """Drive the scheduled edge at the current time by direct
        dispatch: one inline delta cycle waking the edge table and the
        current waiters, then the general loop for any follow-up
        deltas."""
        sim = self.sim
        clk = self.clk
        self.edges_applied += 1
        value = self._next_edge_value
        if value == "1":
            self._next_edge_value = "0"
            self._next_edge_time += self.high_ticks
        else:
            self._next_edge_value = "1"
            self._next_edge_time += self.low_ticks

        if sim._pending_updates or sim._pending_resumes:
            # Coincident same-time work: keep strict delta ordering by
            # going through the general kernel path.
            sim._pending_updates.append((clk, self._driver, value))
            sim._execute_deltas()
            return

        # -- fast dispatch: the edge is the only delta-0 work ---------
        stamp = sim._delta_stamp + 1
        sim._delta_stamp = stamp
        sim.delta_cycles += 1
        sim.events_executed += 1
        drivers = clk._drivers
        drivers[self._driver] = value
        if len(drivers) == 1:
            # Inlined single-driver Signal._apply (the engine owns the
            # clock, so this is the per-edge common case).
            if value == clk._value:
                sim._delta_stamp = stamp + 1  # settle, as the loop would
                return
            clk._previous = clk._value
            clk._value = value
            clk.change_count += 1
            slot = clk._compiled_slot
            if slot is not None:
                slot._sync(value)
        elif not clk._apply(self._driver, value):
            sim._delta_stamp = stamp + 1  # settle, as the loop would
            return
        clk._event_delta = stamp
        clk.last_event_time = sim.now
        sim.signal_events += 1

        kernel = clk._compiled_kernel
        if kernel is not None and value == "1":
            kernel._on_edge()

        sensitive = clk._sensitive
        rise = clk._sensitive_rise
        if (len(sensitive) != self._edge_table_len
                or len(rise) != self._edge_table_rise_len):
            self._edge_table = tuple(sensitive)
            self._edge_table_len = len(sensitive)
            self._edge_table_rise_len = len(rise)
            self._edge_table_all = self._edge_table + tuple(rise)
        table = self._edge_table_all if value == "1" else self._edge_table
        runnable: List[Process] = [
            p for p in table if not p.finished] if table else []
        if sim._waiters.get(self._clk_id):
            # The edge table already carries clk's sensitivity lists
            # (and, on falling edges, value == '1' never holds), so the
            # shared dispatch rule only adds the satisfied waiters.
            sim._wake_observers(clk, runnable, set(runnable))

        if runnable:
            try:
                for process in runnable:
                    sim._current_process = process
                    process._run(sim)
                sim.process_runs += len(runnable)
            finally:
                sim._current_process = None

        hooks = sim.signal_hooks
        if hooks:
            for hook in hooks:
                hook(clk)

        if sim._pending_updates or sim._pending_resumes:
            sim._execute_deltas()    # follow-up deltas + settle stamp
        else:
            sim._delta_stamp += 1    # settle stamp

    def stats_snapshot(self) -> dict:
        """Engine counters for observability snapshots."""
        return {
            "period_ticks": self.period,
            "cycles_run": self.cycles_run,
            "edges_applied": self.edges_applied,
        }

    def _advance_to(self, target: int,
                    wave_at_target: bool = True) -> None:
        """Drain heap and waveform events up to *target*, then land on
        it.  With ``wave_at_target=False``, waveform batches due
        exactly at *target* are left for :meth:`_drain_wave_now` —
        the caller applies the edge at *target* first, preserving the
        event-kernel ordering (edge before waveform batch)."""
        sim = self.sim
        heap = sim._heap
        wave = sim._wave_heap
        while True:
            due_heap = bool(heap) and heap[0][0] <= target
            if wave:
                wave_head = wave[0][0]
                due_wave = (wave_head <= target if wave_at_target
                            else wave_head < target)
            else:
                due_wave = False
            if not due_heap and not due_wave:
                break
            if due_heap and (not due_wave or heap[0][0] <= wave[0][0]):
                next_time = heap[0][0]
            else:
                next_time = wave[0][0]
            sim.now = next_time
            if heap and heap[0][0] == next_time:
                sim._pop_due(next_time)
                sim._execute_deltas()
            if wave and wave[0][0] == next_time and (
                    wave_at_target or next_time < target):
                sim._collect_wave_due(next_time)
                sim._execute_deltas()
        sim.now = target

    def _drain_wave_now(self) -> None:
        """Apply waveform batches due at the current time (used right
        after an edge so that edge-coincident transitions land in
        their own post-edge delta, exactly like the event kernel)."""
        sim = self.sim
        wave = sim._wave_heap
        while wave and wave[0][0] == sim.now:
            sim._collect_wave_due(sim.now)
            sim._execute_deltas()
