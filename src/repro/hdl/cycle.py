"""Cycle-based clock evaluation (the paper's outlook, experiment E6).

"Because of the time scale problem, event-driven VHDL-simulators are
obviously a bottleneck in the co-verification process. ... Thus, the
integration of cycle-based simulation techniques is required."

:class:`CycleEngine` drives a clock signal *without* the event-driven
machinery the generator-based clock needs: no heap push/pop per edge
and no process resume for the clock generator itself — each cycle is
two direct delta evaluations.  Everything else (sensitivity lists,
delta cycles, generator waits on clock edges) behaves identically, so
the same RTL design runs under both schemes and E6 measures the gap.

Restrictions:
* the clock signal must not have another driver (do not also call
  ``sim.add_clock`` on it);
* timed events scheduled by other processes are honoured — the engine
  drains the heap up to each edge time before evaluating the edge.
"""

from __future__ import annotations

import heapq
from typing import Optional

from .signal import Signal
from .simulator import Simulator

__all__ = ["CycleEngine"]


class CycleEngine:
    """Clocks a simulator cycle-by-cycle.

    Example:
        >>> sim = Simulator()
        >>> clk = sim.signal("clk", init="0")
        >>> engine = CycleEngine(sim, clk, period=10)
        >>> engine.run_cycles(100)
        >>> sim.now
        1000
    """

    def __init__(self, sim: Simulator, clk: Signal, period: int,
                 duty_ticks: Optional[int] = None) -> None:
        if period < 2:
            raise ValueError("clock period must be >= 2 ticks")
        high = duty_ticks if duty_ticks is not None else period // 2
        if not 0 < high < period:
            raise ValueError(f"duty {high} outside (0, {period})")
        self.sim = sim
        self.clk = clk
        self.period = period
        self.high_ticks = high
        self.low_ticks = period - high
        self._driver = object()
        self.cycles_run = 0

    def run_cycles(self, cycles: int) -> None:
        """Advance the design by *cycles* full clock periods."""
        sim = self.sim
        sim.initialize()
        for _ in range(cycles):
            self._advance_to(sim.now + self.low_ticks)
            self._edge("1")
            self._advance_to(sim.now + self.high_ticks)
            self._edge("0")
            self.cycles_run += 1

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _edge(self, value: str) -> None:
        sim = self.sim
        sim._pending_updates.append((self.clk, self._driver, value))
        sim._execute_deltas()

    def _advance_to(self, target: int) -> None:
        """Drain heap events up to *target*, then land on it."""
        sim = self.sim
        while sim._heap and sim._heap[0][0] <= target:
            next_time = sim._heap[0][0]
            sim.now = next_time
            while sim._heap and sim._heap[0][0] == next_time:
                _t, _s, item = heapq.heappop(sim._heap)
                if item[0] == "update":
                    sim._pending_updates.append(item[1:])
                else:
                    sim._pending_resumes.append(item[1])
            sim._execute_deltas()
        sim.now = target
