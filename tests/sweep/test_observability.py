"""Observability under the multiprocessing sweep.

Two properties the trace/provenance layer must keep under fan-out:

* the shared :data:`~repro.obs.NULL_REGISTRY` singleton stays a
  disabled no-op in the parent — worker-side instrumentation must
  never leak state back across the process boundary;
* a traced sweep writes **one uncorrupted JSONL file per run** (never
  a shared sink two workers could interleave), each parseable and
  Chrome-exportable, with the record count reported in the result.
"""

import json

from repro.obs import NULL_REGISTRY, export_chrome_trace, \
    load_trace_jsonl, validate_chrome_trace
from repro.sweep import SweepRunner, SweepSpec


def _spec(tmp_path=None, seeds=(0, 1), jobs=2):
    return SweepSpec(traffic=["cbr"], ports=[2], seeds=list(seeds),
                     sync=["conservative"], cells=8, jobs=jobs,
                     timeout_s=60.0,
                     trace_dir=None if tmp_path is None
                     else str(tmp_path / "traces"))


def test_null_registry_stays_null_across_sweep():
    assert not NULL_REGISTRY.enabled
    payload = SweepRunner(_spec()).run()
    assert payload["aggregate"]["runs_passed"] == 2
    # the parent's shared no-op singleton is untouched by worker runs
    assert not NULL_REGISTRY.enabled
    snapshot = NULL_REGISTRY.snapshot()
    assert snapshot["counters"] == {}
    assert snapshot["histograms"] == {}


def test_traced_sweep_writes_one_file_per_run(tmp_path):
    spec = _spec(tmp_path)
    payload = SweepRunner(spec).run()
    assert payload["aggregate"]["runs_passed"] == 2
    trace_dir = tmp_path / "traces"
    files = sorted(trace_dir.glob("*.trace.jsonl"))
    assert [f.name for f in files] == [
        "cbr-p2-s0-conservative.trace.jsonl",
        "cbr-p2-s1-conservative.trace.jsonl"]
    for run in payload["runs"]:
        path = trace_dir / f"{run['name']}.trace.jsonl"
        assert run["trace_file"] == str(path)
        # every line is whole, valid JSON (no cross-process tearing)
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        assert len(records) == run["trace_records"] > 0
        assert {"post", "release", "span"} <= \
            {record["ev"] for record in records}
        # and each file independently exports to a valid Chrome trace
        payload_chrome = export_chrome_trace(load_trace_jsonl(path))
        assert validate_chrome_trace(payload_chrome)["events"] > 0
        assert run["provenance"]["cells_seen"] == 8


def test_serial_fallback_also_writes_traces(tmp_path):
    spec = _spec(tmp_path, seeds=(0,), jobs=1)
    payload = SweepRunner(spec).run()
    run = payload["runs"][0]
    assert run["mode"] == "serial"
    assert load_trace_jsonl(run["trace_file"])


def test_spec_round_trips_trace_dir(tmp_path):
    spec = _spec(tmp_path)
    clone = SweepSpec.from_mapping(spec.as_dict())
    assert clone.trace_dir == spec.trace_dir
    runs = clone.expand()
    assert all(r.trace_file.endswith(f"{r.name}.trace.jsonl")
               for r in runs)
    assert runs[0].trace_file == \
        SweepSpec.from_mapping(spec.as_dict()).expand()[0].trace_file
    # and the RunSpec wire format carries it
    from repro.sweep import RunSpec
    rebuilt = RunSpec.from_dict(runs[0].as_dict())
    assert rebuilt == runs[0]
