"""Tests for the sharded multi-switch co-simulation (repro.shard)."""
