"""Unit tests for extended-FSM process models."""

import pytest

from repro.netsim import (FsmError, InterruptKind, Network, Packet,
                          ProcessModel, ProcessorModule, SinkModule, State)


def make_hosted_process(process):
    """Attach *process* to a processor module inside a one-node network."""
    net = Network("t")
    node = net.add_node("n")
    module = ProcessorModule("proc", process)
    node.add_module(module)
    return net, node, module


def test_initial_state_entered_on_start():
    p = ProcessModel("p")
    entered = []
    p.add_state(State("init", enter=lambda pr: entered.append("init")))
    net, node, module = make_hosted_process(p)
    p.start()
    assert entered == ["init"]
    assert p.state == "init"


def test_begin_interrupt_transition():
    p = ProcessModel("p")
    p.add_state(State("init"))
    p.add_state(State("run"))
    p.add_transition(
        "init", "run",
        guard=lambda pr, it: it.kind == InterruptKind.BEGIN)
    make_hosted_process(p)
    p.start()
    assert p.state == "run"


def test_forced_state_chains_immediately():
    p = ProcessModel("p")
    trace = []
    p.add_state(State("a", enter=lambda pr: trace.append("a"), forced=True))
    p.add_state(State("b", enter=lambda pr: trace.append("b"), forced=True))
    p.add_state(State("idle", enter=lambda pr: trace.append("idle")))
    p.add_transition("a", "b")
    p.add_transition("b", "idle")
    make_hosted_process(p)
    p.start()
    assert trace == ["a", "b", "idle"]
    assert p.state == "idle"


def test_forced_cycle_detected():
    p = ProcessModel("p")
    p.add_state(State("a", forced=True))
    p.add_state(State("b", forced=True))
    p.add_transition("a", "b")
    p.add_transition("b", "a")
    make_hosted_process(p)
    with pytest.raises(FsmError):
        p.start()


def test_guard_selection_over_default():
    p = ProcessModel("p")
    p.add_state(State("idle"))
    p.add_state(State("hit"))
    p.add_state(State("miss"))
    p.add_transition("idle", "hit",
                     guard=lambda pr, it: it.kind == InterruptKind.STREAM)
    p.add_transition("idle", "miss")  # default
    make_hosted_process(p)
    p.start()
    assert p.state == "miss"  # BEGIN doesn't match the stream guard


def test_unmatched_interrupt_stays_in_unforced_state():
    p = ProcessModel("p")
    p.add_state(State("idle"))
    p.add_state(State("other"))
    p.add_transition("idle", "other",
                     guard=lambda pr, it: it.kind == InterruptKind.STREAM)
    make_hosted_process(p)
    p.start()
    assert p.state == "idle"


def test_duplicate_state_rejected():
    p = ProcessModel("p")
    p.add_state(State("a"))
    with pytest.raises(FsmError):
        p.add_state(State("a"))


def test_transition_to_unknown_state_rejected():
    p = ProcessModel("p")
    p.add_state(State("a"))
    with pytest.raises(FsmError):
        p.add_transition("a", "ghost")


def test_two_default_transitions_rejected_at_runtime():
    p = ProcessModel("p")
    p.add_state(State("a"))
    p.add_state(State("b"))
    p.add_state(State("c"))
    p.add_transition("a", "b")
    p.add_transition("a", "c")
    make_hosted_process(p)
    with pytest.raises(FsmError):
        p.start()


def test_self_interrupt_scheduling_and_delivery():
    p = ProcessModel("timer")
    fired = []

    p.add_state(State("init", forced=True,
                      enter=lambda pr: pr.schedule_self(5.0, code=42)))
    p.add_state(State("wait"))
    p.add_state(State("done",
                      enter=lambda pr: fired.append((pr.now,
                                                     pr.interrupt.code))))
    p.add_transition("init", "wait")
    p.add_transition("wait", "done",
                     guard=lambda pr, it: it.kind == InterruptKind.SELF)
    net, node, module = make_hosted_process(p)
    net.run()
    assert fired == [(5.0, 42)]


def test_cancel_self_interrupts():
    p = ProcessModel("timer")
    fired = []
    p.add_state(State("init", forced=True,
                      enter=lambda pr: pr.schedule_self(5.0)))
    p.add_state(State("wait"))
    p.add_state(State("done", enter=lambda pr: fired.append(pr.now)))
    p.add_transition("init", "wait")
    p.add_transition("wait", "done",
                     guard=lambda pr, it: it.kind == InterruptKind.SELF)
    net, node, module = make_hosted_process(p)
    net.start()
    assert p.cancel_self_interrupts() == 1
    net.run()
    assert fired == []


def test_stream_interrupt_carries_packet():
    p = ProcessModel("rx")
    got = []
    p.add_state(State("idle"))
    p.add_state(State("rx", forced=True,
                      enter=lambda pr: got.append(pr.interrupt.data)))
    p.add_transition("idle", "rx",
                     guard=lambda pr, it: it.kind == InterruptKind.STREAM)
    p.add_transition("rx", "idle")
    net, node, module = make_hosted_process(p)
    p.start()
    pkt = Packet(fields={"n": 1})
    module.receive(pkt, stream=0)
    assert got == [pkt]
    assert p.state == "idle"


def test_send_through_module_wiring():
    p = ProcessModel("tx")
    p.add_state(State("init", forced=True,
                      enter=lambda pr: pr.send(Packet(fields={"hello": 1}))))
    p.add_state(State("idle"))
    p.add_transition("init", "idle")

    net = Network("t")
    node = net.add_node("n")
    module = ProcessorModule("proc", p)
    sink = SinkModule("sink", keep=True)
    node.add_module(module)
    node.add_module(sink)
    node.connect(module, 0, sink, 0)
    net.run()
    assert len(sink.received) == 1
    assert sink.received[0]["hello"] == 1


def test_unattached_process_send_raises():
    p = ProcessModel("lonely")
    p.add_state(State("a"))
    with pytest.raises(FsmError):
        p.send(Packet())


def test_state_variables_persist():
    p = ProcessModel("counter")
    def bump(pr):
        pr.sv["count"] = pr.sv.get("count", 0) + 1
    p.add_state(State("idle"))
    p.add_state(State("bump", forced=True, enter=bump))
    p.add_transition("idle", "bump",
                     guard=lambda pr, it: it.kind == InterruptKind.STREAM)
    p.add_transition("bump", "idle")
    net, node, module = make_hosted_process(p)
    p.start()
    for _ in range(3):
        module.receive(Packet(), 0)
    assert p.sv["count"] == 3


def test_exit_executive_runs():
    p = ProcessModel("p")
    trace = []
    p.add_state(State("a", exit=lambda pr: trace.append("exit-a"),
                      forced=True))
    p.add_state(State("b", enter=lambda pr: trace.append("enter-b")))
    p.add_transition("a", "b")
    make_hosted_process(p)
    p.start()
    assert trace == ["exit-a", "enter-b"]
