"""Simulation processes: callback (RTL) and generator (test bench) styles.

Two process flavours cover the paper's uses:

* :class:`CallbackProcess` — a function with a static sensitivity list,
  the shape of a synthesisable VHDL process (``process(clk, rst)``).
  It runs once during initialisation and on every event of a
  sensitivity-list signal.

* :class:`GeneratorProcess` — a Python generator that ``yield``-s wait
  statements, the shape of a behavioural VHDL test-bench process
  (``wait for 10 ns; wait until rising_edge(clk);``).  Yield values:

  - ``int`` *n* — wait for *n* ticks,
  - a :class:`~repro.hdl.signal.Signal` or tuple of signals — wait for
    an event on any of them,
  - :class:`RisingEdge` / :class:`FallingEdge` — wait for that edge.

  Returning (or ``StopIteration``) ends the process.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Generator, Sequence, Tuple, TYPE_CHECKING

from .signal import Signal

if TYPE_CHECKING:  # pragma: no cover
    from .simulator import Simulator

__all__ = ["Process", "CallbackProcess", "GeneratorProcess",
           "RisingEdge", "FallingEdge", "ProcessError"]

_process_ids = itertools.count()


class ProcessError(Exception):
    """Raised on malformed process definitions or yields."""


@dataclass(frozen=True)
class RisingEdge:
    """Wait condition: next rising edge of *signal*."""

    signal: "Signal"


@dataclass(frozen=True)
class FallingEdge:
    """Wait condition: next falling edge of *signal*."""

    signal: "Signal"


class Process:
    """Base class: identity + bookkeeping for simulator processes."""

    __slots__ = ("id", "name", "runs", "finished")

    def __init__(self, name: str) -> None:
        self.id = next(_process_ids)
        self.name = name
        self.runs = 0
        self.finished = False

    def _run(self, sim: "Simulator") -> None:
        raise NotImplementedError


class CallbackProcess(Process):
    """A function re-run on every event of its sensitivity list.

    ``edge="rise"`` registers on the signals' rising-edge sensitivity
    lists instead: the process is woken only by events that leave a
    signal at '1' (the dominant RTL shape — a ``process(clk)`` whose
    body is guarded by ``rising_edge(clk)`` does nothing on the other
    edge, so not waking it halves the per-clock process dispatch).
    """

    __slots__ = ("fn", "sensitivity", "edge")

    def __init__(self, name: str, fn: Callable[["Simulator"], None],
                 sensitivity: Sequence["Signal"] = (),
                 edge: str = "any") -> None:
        super().__init__(name)
        if edge not in ("any", "rise"):
            raise ProcessError(
                f"process {name}: edge must be 'any' or 'rise', "
                f"got {edge!r}")
        self.fn = fn
        self.sensitivity = tuple(sensitivity)
        self.edge = edge
        target = "_sensitive" if edge == "any" else "_sensitive_rise"
        for signal in self.sensitivity:
            getattr(signal, target).append(self)

    def _run(self, sim: "Simulator") -> None:
        self.runs += 1
        self.fn(sim)


class GeneratorProcess(Process):
    """A generator-based behavioural process."""

    __slots__ = ("generator", "_waiting_on")

    def __init__(self, name: str,
                 generator: Generator, ) -> None:
        super().__init__(name)
        self.generator = generator
        #: signals currently waited on -> edge filter ('any'/'rise'/'fall')
        self._waiting_on: Tuple[Tuple["Signal", str], ...] = ()

    # -- wait bookkeeping --------------------------------------------------
    def _arm(self, sim: "Simulator", yielded) -> None:
        """Interpret a yield value and arm the corresponding wakeup."""
        # Edge waits dominate RTL benches (one per clocked consumer per
        # cycle), so they are tested first.
        if isinstance(yielded, RisingEdge):
            self._waiting_on = ((yielded.signal, "rise"),)
            sim._add_waiter(yielded.signal, self)
            return
        if isinstance(yielded, int):
            if yielded < 0:
                raise ProcessError(
                    f"process {self.name}: negative wait {yielded}")
            sim._schedule_resume(self, yielded)
            self._waiting_on = ()
            return
        if isinstance(yielded, Signal):
            self._waiting_on = ((yielded, "any"),)
        elif isinstance(yielded, FallingEdge):
            self._waiting_on = ((yielded.signal, "fall"),)
        elif isinstance(yielded, (tuple, list)):
            conditions = []
            for item in yielded:
                if isinstance(item, Signal):
                    conditions.append((item, "any"))
                elif isinstance(item, RisingEdge):
                    conditions.append((item.signal, "rise"))
                elif isinstance(item, FallingEdge):
                    conditions.append((item.signal, "fall"))
                else:
                    raise ProcessError(
                        f"process {self.name}: bad wait item {item!r}")
            self._waiting_on = tuple(conditions)
        else:
            raise ProcessError(
                f"process {self.name}: cannot wait on {yielded!r}")
        for signal, _mode in self._waiting_on:
            sim._add_waiter(signal, self)

    def _satisfied_by(self, signal: "Signal") -> bool:
        """Does an event on *signal* (already applied) wake this
        process?"""
        for waited, mode in self._waiting_on:
            if waited is not signal:
                continue
            if mode == "any":
                return True
            if mode == "rise" and signal.value == "1":
                return True
            if mode == "fall" and signal.value == "0":
                return True
        return False

    def _disarm(self, sim: "Simulator") -> None:
        for signal, _mode in self._waiting_on:
            sim._remove_waiter(signal, self)
        self._waiting_on = ()

    # -- execution ---------------------------------------------------------
    def _run(self, sim: "Simulator") -> None:
        self.runs += 1
        try:
            yielded = next(self.generator)
        except StopIteration:
            self.finished = True
            return
        self._arm(sim, yielded)
