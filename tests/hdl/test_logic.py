"""Unit and property tests for nine-value logic."""

import pytest
from hypothesis import given, strategies as st

from repro.hdl import (LogicError, STD_LOGIC_VALUES, bits, is_defined,
                       resolve, resolve_many, to_vector, vector_to_int)

LOGIC = st.sampled_from(STD_LOGIC_VALUES)


class TestResolve:
    def test_strong_conflict_is_x(self):
        assert resolve("0", "1") == "X"
        assert resolve("1", "0") == "X"

    def test_z_yields_to_anything(self):
        for v in STD_LOGIC_VALUES:
            if v == "Z":
                continue
            expected = "X" if v == "-" else v
            assert resolve("Z", v) == expected

    def test_weak_loses_to_strong(self):
        assert resolve("L", "1") == "1"
        assert resolve("H", "0") == "0"

    def test_weak_conflict_is_w(self):
        assert resolve("L", "H") == "W"

    def test_u_dominates(self):
        for v in STD_LOGIC_VALUES:
            assert resolve("U", v) == "U"
            assert resolve(v, "U") == "U"

    def test_invalid_value_rejected(self):
        with pytest.raises(LogicError):
            resolve("0", "Q")

    def test_resolve_many_empty_is_z(self):
        assert resolve_many([]) == "Z"

    def test_resolve_many_single(self):
        assert resolve_many(["1"]) == "1"

    def test_resolve_many_three_drivers(self):
        assert resolve_many(["Z", "Z", "0"]) == "0"
        assert resolve_many(["1", "Z", "0"]) == "X"

    @given(LOGIC, LOGIC)
    def test_property_commutative(self, a, b):
        assert resolve(a, b) == resolve(b, a)

    @given(LOGIC, LOGIC, LOGIC)
    def test_property_associative(self, a, b, c):
        assert resolve(resolve(a, b), c) == resolve(a, resolve(b, c))

    @given(LOGIC)
    def test_property_idempotent_except_dontcare(self, a):
        expected = {"-": "X"}.get(a, a)
        assert resolve(a, a) == expected

    @given(LOGIC)
    def test_property_z_is_identity(self, a):
        expected = "X" if a == "-" else a
        assert resolve(a, "Z") == expected


class TestVectors:
    def test_to_vector_from_int(self):
        assert to_vector(5, 4) == ("0", "1", "0", "1")
        assert to_vector(0, 2) == ("0", "0")

    def test_to_vector_overflow_rejected(self):
        with pytest.raises(LogicError):
            to_vector(16, 4)
        with pytest.raises(LogicError):
            to_vector(-1, 4)

    def test_to_vector_from_string(self):
        assert to_vector("1Z0X", 4) == ("1", "Z", "0", "X")

    def test_to_vector_width_mismatch(self):
        with pytest.raises(LogicError):
            to_vector("101", 4)

    def test_to_vector_bad_char(self):
        with pytest.raises(LogicError):
            to_vector("10Q1", 4)

    def test_zero_width_rejected(self):
        with pytest.raises(LogicError):
            to_vector(0, 0)

    def test_vector_to_int(self):
        assert vector_to_int(("1", "0", "1", "0")) == 10

    def test_vector_to_int_metavalue_rejected(self):
        with pytest.raises(LogicError):
            vector_to_int(("1", "X"))

    def test_bits_shorthand(self):
        assert bits("01") == ("0", "1")

    def test_is_defined(self):
        assert is_defined("0")
        assert not is_defined("Z")
        assert is_defined(("0", "1"))
        assert not is_defined(("0", "U"))

    @given(st.integers(min_value=0, max_value=2**16 - 1))
    def test_property_int_round_trip(self, value):
        assert vector_to_int(to_vector(value, 16)) == value
