"""Tests for the sweep specification and matrix expansion."""

import json

import pytest

from repro.sweep import RunSpec, SweepSpec, SweepSpecError


def test_expand_is_the_full_cross_product():
    spec = SweepSpec(traffic=["cbr", "poisson", "onoff"],
                     ports=[2, 4], seeds=[0, 1],
                     sync=["conservative"])
    runs = spec.expand()
    assert len(runs) == 12
    assert len({run.name for run in runs}) == 12
    assert runs[0].name == "cbr-p2-s0-conservative"
    assert runs[-1].name == "onoff-p4-s1-conservative"


def test_expand_order_is_deterministic():
    spec = SweepSpec(traffic=["onoff", "cbr"], ports=[4, 2],
                     seeds=[1, 0], sync=["lockstep", "conservative"])
    assert [r.name for r in spec.expand()] == \
        [r.name for r in spec.expand()]


def test_runspec_round_trips_through_dict():
    run = SweepSpec(traffic=["poisson"], seeds=[7]).expand()[0]
    assert RunSpec.from_dict(run.as_dict()) == run


@pytest.mark.parametrize("kwargs", [
    {"traffic": ["warp"]},
    {"sync": ["optimistic"]},
    {"ports": [1]},
    {"seeds": []},
    {"cells": 0},
    {"load": 0.0},
    {"load": 1.5},
    {"jobs": 0},
    {"timeout_s": -1.0},
    {"inject": {"x": "explode"}},
])
def test_invalid_specs_are_rejected(kwargs):
    with pytest.raises(SweepSpecError):
        SweepSpec(**kwargs)


def test_toml_spec_loads(tmp_path):
    pytest.importorskip("tomllib")
    path = tmp_path / "sweep.toml"
    path.write_text(
        '[matrix]\ntraffic = ["cbr", "poisson"]\nports = [2]\n'
        'seeds = [0, 1]\nsync = ["conservative"]\n'
        '[run]\ncells = 16\nload = 0.5\n'
        '[execution]\njobs = 3\ntimeout_s = 9.0\n')
    spec = SweepSpec.from_file(path)
    assert spec.traffic == ["cbr", "poisson"]
    assert spec.cells == 16
    assert spec.load == 0.5
    assert spec.jobs == 3
    assert spec.timeout_s == 9.0
    assert len(spec.expand()) == 4


def test_json_spec_loads(tmp_path):
    path = tmp_path / "sweep.json"
    path.write_text(json.dumps({
        "matrix": {"traffic": "onoff", "ports": [2, 4], "seeds": 3,
                   "sync": "lockstep"},
        "run": {"cells": 8},
    }))
    spec = SweepSpec.from_file(path)
    # scalars are promoted to one-element axes
    assert spec.traffic == ["onoff"]
    assert spec.seeds == [3]
    assert len(spec.expand()) == 2


def test_example_spec_parses():
    pytest.importorskip("tomllib")
    from repro.cli import _repo_root
    spec = SweepSpec.from_file(
        _repo_root() / "examples" / "sweep_small.toml")
    assert len(spec.expand()) == 12


@pytest.mark.parametrize("content,needle", [
    ("{not json", "invalid JSON"),
    ('{"matrix": [], "run": {}}', "must be a table"),
    ('{"surprise": {}}', "unknown spec section"),
    # a misplaced key must fail loudly, not silently drop the knob
    # (inject lives in [run], not [execution])
    ('{"execution": {"inject": {}}}', r"unknown key\(s\) in \[execution\]"),
    ('{"matrix": {"trafic": ["cbr"]}}', r"unknown key\(s\) in \[matrix\]"),
])
def test_malformed_spec_files_are_rejected(tmp_path, content, needle):
    path = tmp_path / "sweep.json"
    path.write_text(content)
    with pytest.raises(SweepSpecError, match=needle):
        SweepSpec.from_file(path)


def test_missing_and_unknown_suffix_rejected(tmp_path):
    with pytest.raises(SweepSpecError, match="no sweep spec"):
        SweepSpec.from_file(tmp_path / "absent.toml")
    path = tmp_path / "sweep.yaml"
    path.write_text("matrix: {}")
    with pytest.raises(SweepSpecError, match="unknown spec format"):
        SweepSpec.from_file(path)
