"""Unit tests for registers, counters and the synchronous FIFO."""

import pytest

from repro.hdl import Simulator
from repro.rtl import Counter, Register, SyncFifo


def make_clocked_sim(period=10):
    sim = Simulator()
    clk = sim.signal("clk", init="0")
    sim.add_clock(clk, period=period)
    return sim, clk


class TestRegister:
    def test_q_follows_d_one_edge_later(self):
        sim, clk = make_clocked_sim()
        d = sim.signal("d", width=8, init=0)
        reg = Register(sim, "r", clk, d)
        d.drive(0x42, delay=1)
        sim.run(until=4)       # before the first rising edge (t=5)
        assert reg.q.value == ("U",) * 8
        sim.run(until=6)
        assert reg.q.as_int() == 0x42

    def test_enable_holds_value(self):
        sim, clk = make_clocked_sim()
        d = sim.signal("d", width=4, init=1)
        en = sim.signal("en", init="1")
        reg = Register(sim, "r", clk, d, enable=en)
        sim.run(until=6)
        assert reg.q.as_int() == 1
        en.drive("0")
        d.drive(9)
        sim.run(until=26)
        assert reg.q.as_int() == 1  # enable low: value held

    def test_sync_reset(self):
        sim, clk = make_clocked_sim()
        d = sim.signal("d", width=4, init=5)
        rst = sim.signal("rst", init="0")
        reg = Register(sim, "r", clk, d, reset=rst, reset_value=0)
        sim.run(until=6)
        assert reg.q.as_int() == 5
        rst.drive("1")
        sim.run(until=16)
        assert reg.q.as_int() == 0

    def test_scalar_register(self):
        sim, clk = make_clocked_sim()
        d = sim.signal("d", init="1")
        reg = Register(sim, "r", clk, d)
        sim.run(until=6)
        assert reg.q.value == "1"


class TestCounter:
    def test_counts_rising_edges(self):
        sim, clk = make_clocked_sim()
        counter = Counter(sim, "c", clk, width=8)
        sim.run(until=55)  # edges at 5,15,25,35,45,55
        assert counter.q.as_int() == 6

    def test_wraps_at_width(self):
        sim, clk = make_clocked_sim()
        counter = Counter(sim, "c", clk, width=2)
        sim.run(until=55)  # 6 edges mod 4 = 2
        assert counter.q.as_int() == 2

    def test_enable(self):
        sim, clk = make_clocked_sim()
        en = sim.signal("en", init="0")
        counter = Counter(sim, "c", clk, width=8, enable=en)
        sim.run(until=25)
        assert counter.q.as_int() == 0
        en.drive("1")
        sim.run(until=55)
        assert counter.q.as_int() == 3

    def test_reset_dominates_enable(self):
        sim, clk = make_clocked_sim()
        en = sim.signal("en", init="1")
        rst = sim.signal("rst", init="0")
        counter = Counter(sim, "c", clk, width=8, enable=en, reset=rst)
        sim.run(until=25)
        rst.drive("1")
        sim.run(until=35)
        assert counter.q.as_int() == 0

    def test_invalid_width(self):
        sim, clk = make_clocked_sim()
        with pytest.raises(ValueError):
            Counter(sim, "c", clk, width=0)


class TestSyncFifo:
    def write_word(self, sim, fifo, value, edges=1):
        fifo.wr_data.drive(value)
        fifo.wr_en.drive("1")
        sim.run_for(10 * edges)
        fifo.wr_en.drive("0")

    def test_write_then_read(self):
        sim, clk = make_clocked_sim()
        fifo = SyncFifo(sim, "f", clk, width=8, depth=4)
        sim.run(until=2)
        self.write_word(sim, fifo, 0xAB)
        sim.run_for(10)
        assert fifo.empty.value == "0"
        assert fifo.rd_data.as_int() == 0xAB

    def test_fifo_order(self):
        sim, clk = make_clocked_sim()
        fifo = SyncFifo(sim, "f", clk, width=8, depth=8)
        sim.run(until=2)
        for value in (1, 2, 3):
            self.write_word(sim, fifo, value)
        seen = []
        for _ in range(3):
            seen.append(fifo.rd_data.as_int())
            fifo.rd_en.drive("1")
            sim.run_for(10)
            fifo.rd_en.drive("0")
        assert seen == [1, 2, 3]
        assert fifo.empty.value == "1"

    def test_full_flag_and_overflow_drop(self):
        sim, clk = make_clocked_sim()
        fifo = SyncFifo(sim, "f", clk, width=8, depth=2)
        sim.run(until=2)
        for value in (1, 2, 3):
            self.write_word(sim, fifo, value)
        assert fifo.full.value == "1"
        assert fifo.overflow_drops == 1
        assert len(fifo) == 2

    def test_simultaneous_read_write_when_full(self):
        sim, clk = make_clocked_sim()
        fifo = SyncFifo(sim, "f", clk, width=8, depth=2)
        sim.run(until=2)
        self.write_word(sim, fifo, 1)
        self.write_word(sim, fifo, 2)
        # read+write on the same edge: pop 1, push 3
        fifo.rd_en.drive("1")
        fifo.wr_en.drive("1")
        fifo.wr_data.drive(3)
        sim.run_for(10)
        fifo.rd_en.drive("0")
        fifo.wr_en.drive("0")
        sim.run_for(10)
        assert fifo.rd_data.as_int() == 2
        assert len(fifo) == 2
        assert fifo.overflow_drops == 0

    def test_read_empty_ignored(self):
        sim, clk = make_clocked_sim()
        fifo = SyncFifo(sim, "f", clk, width=8, depth=2)
        fifo.rd_en.drive("1")
        sim.run(until=30)
        assert fifo.empty.value == "1"

    def test_max_level_tracked(self):
        sim, clk = make_clocked_sim()
        fifo = SyncFifo(sim, "f", clk, width=8, depth=8)
        sim.run(until=2)
        for value in range(5):
            self.write_word(sim, fifo, value)
        assert fifo.max_level == 5

    def test_invalid_depth(self):
        sim, clk = make_clocked_sim()
        with pytest.raises(ValueError):
            SyncFifo(sim, "f", clk, width=8, depth=0)
