"""Property tests over randomly generated topologies."""

from hypothesis import given, settings, strategies as st

from repro.netsim import Network, Packet, QueueModule, SinkModule


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=2, max_value=8),
       st.integers(min_value=1, max_value=20),
       st.floats(min_value=0.0, max_value=1e-3, allow_nan=False))
def test_property_chain_delivers_all_packets_in_order(hops, packets,
                                                      delay):
    """A chain of store-and-forward nodes delivers every packet, in
    order, with total latency = hops * (delay + service)."""
    net = Network()
    nodes = [net.add_node(f"n{i}") for i in range(hops + 1)]
    service = 1e-6
    for i in range(hops):
        if i == 0:
            pass  # the head node transmits directly
        net.add_link(nodes[i], 0, nodes[i + 1], 0, delay=delay)
    for i in range(1, hops):
        queue = QueueModule("fwd", service_time=service)
        nodes[i].add_module(queue)
        nodes[i].bind_port_input(0, queue, 0)
        nodes[i].bind_port_output(0, queue, 0)
    sink = SinkModule("sink", keep=True)
    nodes[hops].add_module(sink)
    nodes[hops].bind_port_input(0, sink, 0)

    spacing = 2 * service + 1e-9
    for k in range(packets):
        when = k * spacing
        net.kernel.schedule(
            when,
            lambda k=k, t=when: nodes[0].transmit(
                Packet(fields={"seq": k}, creation_time=t), 0))
    net.run()
    received = [p["seq"] for p in sink.received]
    assert received == list(range(packets))
    # conservation at every hop
    for i in range(1, hops):
        queue = nodes[i].modules["fwd"]
        assert queue.packets_in == packets
        assert queue.dropped == 0


@settings(max_examples=25, deadline=None)
@given(st.data())
def test_property_fan_in_conserves_packets(data):
    """N sources feeding one unbounded queue: nothing is lost and the
    queue drains completely."""
    sources = data.draw(st.integers(min_value=1, max_value=6))
    per_source = data.draw(st.integers(min_value=1, max_value=15))
    net = Network()
    hub = net.add_node("hub")
    queue = QueueModule("q", service_time=1e-6)
    sink = SinkModule("sink", keep=True)
    hub.add_module(queue)
    hub.add_module(sink)
    hub.connect(queue, 0, sink, 0)
    # fan-in at module level: every source delivers into the queue
    total = sources * per_source
    for s in range(sources):
        for k in range(per_source):
            when = (s + k * sources) * 1e-7
            net.kernel.schedule(
                when, lambda: queue.receive(Packet(), 0))
    net.run()
    assert len(sink.received) == total
    assert len(queue) == 0
