"""RTL ATM switch slice: port modules + shared global control unit.

The hardware configuration of the paper's E1 measurement — "an ATM
switch consisting of four port modules, one global control unit" — as
one RTL top.  Unlike :class:`~repro.rtl.port_module.AtmPortModuleRtl`
(which owns a private translation RAM), the fabric's ports hold no
routing state: every received cell triggers a lookup request to the
shared :class:`~repro.rtl.control_unit.GlobalControlUnitRtl` over its
request/grant interface, and the translated cell is queued towards
the destination port's transmit stream.

This is the "HW functionality ... distributed over a number of
hardware devices" of the introduction, and the RTL counterpart of
:class:`repro.atm.switch.AtmSwitch` — the two are co-verified against
each other in ``tests/rtl/test_switch_fabric.py``.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from ..hdl.compiled import slot_int
from ..hdl.logic import vector_to_int
from ..hdl.signal import Signal
from ..hdl.simulator import Simulator
from .cell_stream import CELL_OCTETS, CellStreamPort
from .component import Component
from .control_unit import GlobalControlUnitRtl
from .hec_circuit import crc8_step

__all__ = ["AtmSwitchRtl"]

_COSET = 0x55


class _PortState:
    """Per-port fast-path state (receive assembly + lookup + transmit)."""

    def __init__(self) -> None:
        self.rx_buffer: List[int] = []
        self.rx_crc = 0
        #: complete cells waiting for their GCU lookup
        self.lookup_fifo: Deque[List[int]] = deque()
        self.lookup_in_flight = False
        #: cells queued for transmission out of this port
        self.tx_queue: Deque[List[int]] = deque()
        self.tx_offset = 0
        #: compiled-backend shortcut: the idle levels are already
        #: driven, so the per-edge '0' writes can be skipped
        self.tx_idle = False


class AtmSwitchRtl(Component):
    """An N-port RTL switch built around the shared control unit.

    Args:
        sim, name, clk: as usual.
        num_ports: port-module count (the paper's setup: 4).
        lookup_latency: GCU table-walk latency in clocks.
        queue_depth: per-output-port cell queue bound (overflowing
            cells are dropped and counted).

    Per-port stream bundles live in :attr:`rx_ports` / :attr:`tx_ports`;
    connections are installed with :meth:`install_connection`.
    """

    def __init__(self, sim: Simulator, name: str, clk: Signal,
                 num_ports: int = 4, lookup_latency: int = 4,
                 queue_depth: int = 16,
                 backend: Optional[str] = None) -> None:
        super().__init__(sim, name, backend=backend)
        if num_ports < 1:
            raise ValueError(f"need >= 1 port, got {num_ports}")
        if queue_depth < 1:
            raise ValueError("queue depth must be >= 1")
        self.num_ports = num_ports
        self.queue_depth = queue_depth
        self.gcu = GlobalControlUnitRtl(sim, f"{name}.gcu", clk,
                                        num_clients=num_ports,
                                        lookup_latency=lookup_latency,
                                        backend=self.backend)
        self.rx_ports = [CellStreamPort(sim, f"{name}.p{i}.rx")
                         for i in range(num_ports)]
        self.tx_ports = [CellStreamPort(sim, f"{name}.p{i}.tx")
                         for i in range(num_ports)]
        self._ports = [_PortState() for _ in range(num_ports)]
        self.cells_received = 0
        self.cells_switched = 0
        self.cells_dropped_unknown = 0
        self.cells_dropped_overflow = 0
        self.hec_errors = 0
        self.idle_cells = 0
        self.clocked(clk, self._tick, compile_fn=self._compile_seq)

    # ------------------------------------------------------------------
    # Management plane
    # ------------------------------------------------------------------
    def install_connection(self, in_port: int, vpi: int, vci: int,
                           out_port: int, out_vpi: int,
                           out_vci: int) -> None:
        """Program one connection into the GCU's table."""
        if not 0 <= out_port < self.num_ports:
            raise ValueError(f"output port {out_port} out of range")
        self.gcu.install(in_port, vpi, vci, out_port, out_vpi, out_vci)

    def remove_connection(self, in_port: int, vpi: int,
                          vci: int) -> None:
        """Remove one connection from the GCU's table."""
        self.gcu.remove(in_port, vpi, vci)

    def counters(self) -> Dict[str, int]:
        """Management-plane counter snapshot — the level-agnostic
        surface the cross-level equivalence harness diffs."""
        return {
            "cells_received": self.cells_received,
            "cells_switched": self.cells_switched,
            "cells_dropped_unknown": self.cells_dropped_unknown,
            "cells_dropped_overflow": self.cells_dropped_overflow,
            "hec_errors": self.hec_errors,
            "idle_cells": self.idle_cells,
        }

    # ------------------------------------------------------------------
    # Fast path
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        for index in range(self.num_ports):
            self._receive(index)
            self._lookup(index)
            self._transmit(index)

    def _receive(self, index: int) -> None:
        rx = self.rx_ports[index]
        state = self._ports[index]
        if rx.valid.value != "1":
            return
        octet = vector_to_int(rx.atmdata.value)
        if rx.cellsync.value == "1":
            state.rx_buffer = [octet]
            state.rx_crc = crc8_step(0, octet)
        elif not state.rx_buffer:
            return
        else:
            state.rx_buffer.append(octet)
            if len(state.rx_buffer) <= 4:
                state.rx_crc = crc8_step(state.rx_crc, octet)
        if len(state.rx_buffer) == CELL_OCTETS:
            self._accept_cell(index, state)
            state.rx_buffer = []

    def _accept_cell(self, index: int, state: _PortState) -> None:
        octets = state.rx_buffer
        self.cells_received += 1
        if (state.rx_crc ^ _COSET) != octets[4]:
            self.hec_errors += 1
            return
        vpi = ((octets[0] & 0xF) << 4) | ((octets[1] >> 4) & 0xF)
        vci = (((octets[1] & 0xF) << 12) | (octets[2] << 4)
               | ((octets[3] >> 4) & 0xF))
        if (vpi, vci) == (0, 0):
            self.idle_cells += 1
            return
        state.lookup_fifo.append(list(octets))

    def _lookup(self, index: int) -> None:
        state = self._ports[index]
        client = self.gcu.clients[index]
        if state.lookup_in_flight:
            if client.done.value != "1":
                return
            client.req.drive("0")
            state.lookup_in_flight = False
            octets = state.lookup_fifo.popleft()
            if client.found.value != "1":
                self.cells_dropped_unknown += 1
                return
            self._forward(octets, client.out_port.as_int(),
                          client.out_vpi.as_int(),
                          client.out_vci.as_int())
            return
        if not state.lookup_fifo:
            return
        head = state.lookup_fifo[0]
        vpi = ((head[0] & 0xF) << 4) | ((head[1] >> 4) & 0xF)
        vci = (((head[1] & 0xF) << 12) | (head[2] << 4)
               | ((head[3] >> 4) & 0xF))
        client.vpi_in.drive(vpi)
        client.vci_in.drive(vci)
        client.req.drive("1")
        state.lookup_in_flight = True

    def _forward(self, octets: List[int], out_port: int, out_vpi: int,
                 out_vci: int) -> None:
        target = self._ports[out_port]
        if len(target.tx_queue) >= self.queue_depth:
            self.cells_dropped_overflow += 1
            return
        header = [
            (octets[0] & 0xF0) | ((out_vpi >> 4) & 0xF),
            ((out_vpi & 0xF) << 4) | ((out_vci >> 12) & 0xF),
            (out_vci >> 4) & 0xFF,
            ((out_vci & 0xF) << 4) | (octets[3] & 0x0F),
        ]
        crc = 0
        for octet in header:
            crc = crc8_step(crc, octet)
        header.append(crc ^ _COSET)
        self.cells_switched += 1
        target.tx_queue.append(header + octets[5:])

    def _transmit(self, index: int) -> None:
        state = self._ports[index]
        tx = self.tx_ports[index]
        if not state.tx_queue:
            tx.valid.drive("0")
            tx.cellsync.drive("0")
            return
        cell = state.tx_queue[0]
        tx.atmdata.drive(cell[state.tx_offset])
        tx.cellsync.drive("1" if state.tx_offset == 0 else "0")
        tx.valid.drive("1")
        state.tx_offset += 1
        if state.tx_offset == CELL_OCTETS:
            state.tx_queue.popleft()
            state.tx_offset = 0

    # ------------------------------------------------------------------
    # Compiled twin
    # ------------------------------------------------------------------
    def _compile_seq(self, ctx):
        """Compiled twin of :meth:`_tick` — per-port receive/lookup/
        transmit over raw slots (the GCU compiles separately; the two
        evaluations exchange values through the shared commit phase,
        exactly like the two event processes exchange them through
        delta cycles)."""
        rx_reads = [(ctx.read(rx.valid), ctx.read(rx.cellsync),
                     ctx.read(rx.atmdata)) for rx in self.rx_ports]
        cl_reads = [(ctx.read(c.done), ctx.read(c.found),
                     ctx.read(c.out_port), ctx.read(c.out_vpi),
                     ctx.read(c.out_vci)) for c in self.gcu.clients]
        cl_writes = [(ctx.write(c.req), ctx.write(c.vpi_in),
                      ctx.write(c.vci_in)) for c in self.gcu.clients]
        tx_writes = [(ctx.write(tx.atmdata), ctx.write(tx.cellsync),
                      ctx.write(tx.valid)) for tx in self.tx_ports]
        # One flat record per port, iterated directly — no per-edge
        # list indexing in the hot loop.
        lanes = [
            (index, state) + rx_reads[index] + cl_reads[index]
            + cl_writes[index] + tx_writes[index]
            for index, state in enumerate(self._ports)]
        accept = self._accept_cell
        forward = self._forward
        crc8 = crc8_step
        as_int = slot_int
        to_int = vector_to_int
        octets_per_cell = CELL_OCTETS

        def evaluate():
            for (index, state, valid, cellsync, atmdata,
                 done, found, out_port, out_vpi, out_vci,
                 w_req, w_vpi_in, w_vci_in,
                 w_atmdata, w_cellsync, w_valid) in lanes:
                # -- receive --------------------------------------
                if valid.value == "1":
                    raw = atmdata.value
                    octet = raw if type(raw) is int else to_int(raw)
                    if cellsync.value == "1":
                        state.rx_buffer = [octet]
                        state.rx_crc = crc8(0, octet)
                        filled = 1
                    else:
                        buffer = state.rx_buffer
                        if buffer:
                            buffer.append(octet)
                            filled = len(buffer)
                            if filled <= 4:
                                state.rx_crc = crc8(state.rx_crc,
                                                    octet)
                        else:
                            filled = 0
                    if filled == octets_per_cell:
                        accept(index, state)
                        state.rx_buffer = []
                # -- lookup ---------------------------------------
                if state.lookup_in_flight:
                    if done.value == "1":
                        w_req("0")
                        state.lookup_in_flight = False
                        octets = state.lookup_fifo.popleft()
                        if found.value != "1":
                            self.cells_dropped_unknown += 1
                        else:
                            forward(octets,
                                    as_int(out_port.value),
                                    as_int(out_vpi.value),
                                    as_int(out_vci.value))
                elif state.lookup_fifo:
                    head = state.lookup_fifo[0]
                    vpi = ((head[0] & 0xF) << 4) | ((head[1] >> 4)
                                                    & 0xF)
                    vci = (((head[1] & 0xF) << 12) | (head[2] << 4)
                           | ((head[3] >> 4) & 0xF))
                    w_vpi_in(vpi)
                    w_vci_in(vci)
                    w_req("1")
                    state.lookup_in_flight = True
                # -- transmit -------------------------------------
                queue = state.tx_queue
                if not queue:
                    if not state.tx_idle:
                        w_valid("0")
                        w_cellsync("0")
                        state.tx_idle = True
                else:
                    state.tx_idle = False
                    cell = queue[0]
                    offset = state.tx_offset
                    w_atmdata(cell[offset])
                    w_cellsync("1" if offset == 0 else "0")
                    w_valid("1")
                    offset += 1
                    if offset == octets_per_cell:
                        queue.popleft()
                        offset = 0
                    state.tx_offset = offset

        return evaluate

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def backlog(self) -> Dict[str, int]:
        """Cells queued inside the fabric (per stage)."""
        return {
            "awaiting_lookup": sum(len(p.lookup_fifo)
                                   for p in self._ports),
            "awaiting_tx": sum(len(p.tx_queue) for p in self._ports),
        }
