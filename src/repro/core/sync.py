"""Conservative simulator synchronisation (§3.1).

The protocol, quoting the paper:

  "Upon receipt of a message with a time stamp t_k for input queue I_j
  and t_k > t_cur the VHDL simulator is allowed to process all events
  with a time stamp smaller than t_k, but not equal.  Following, the
  current simulation time is updated to t_cur = t_k.  The message at
  queue I_j remains queued until all other input queues received
  messages with time stamp t_k or an event with a greater time stamp
  arrives at an arbitrary message queue.  In the first case the local
  simulation time is advanced by the minimum of each message type's
  processing delay δ_j.  Applying this strategy the simulated time of
  the VHDL simulator always lags behind OPNET's simulated time.  The
  use of this specific conservative synchronization protocol resolves
  the possibility of deadlock."

:class:`ConservativeSynchronizer` implements exactly this;
:class:`LockstepSynchronizer` is the naive per-clock coupling used as
the E2 ablation baseline.  Both maintain — and check — the safety
invariant that the HDL simulator's local time never overtakes the
network simulator's.

Both strategies advance the HDL simulator only through
``hdl.run(until=tick)``, which delegates to the attached clock engine
when one is present — the synchronisation protocol is independent of
the clocking scheme.
"""

from __future__ import annotations

from typing import (Any, Callable, Dict, Iterable, Optional, Tuple,
                    TYPE_CHECKING)

from ..hdl.simulator import Simulator
from .messages import (CausalityError, MessageQueueSet, TimestampedMessage)
from .timebase import TimeBase

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.metrics import MetricsRegistry
    from ..obs.trace import TraceWriter

__all__ = ["ConservativeSynchronizer", "LockstepSynchronizer",
           "SyncStatistics"]

Handler = Callable[[TimestampedMessage], None]


class SyncStatistics:
    """Counters shared by the synchronisation strategies.

    Always-on (plain integer adds): the E2 sync-exchange accounting
    must be available even with the observability registry disabled.
    """

    def __init__(self) -> None:
        self.messages_posted = 0
        self.null_messages = 0
        self.windows_granted = 0
        self.ticks_simulated = 0
        self.max_lag_seconds = 0.0
        #: messages released from their input queue to a handler
        self.messages_released = 0
        #: null messages whose stamp could not advance anything —
        #: behind the known originator time (conservative) or at/behind
        #: the HDL's local time (lockstep)
        self.stale_advances = 0
        #: null messages absorbed by horizon batching: their stamp was
        #: folded into a deferred bound instead of running a full
        #: protocol advance (see ``coalesce_nulls``)
        self.null_messages_coalesced = 0
        #: end-of-run drains executed
        self.drains = 0

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view for reports."""
        return {
            "messages_posted": self.messages_posted,
            "null_messages": self.null_messages,
            "windows_granted": self.windows_granted,
            "ticks_simulated": self.ticks_simulated,
            "max_lag_seconds": self.max_lag_seconds,
            "messages_released": self.messages_released,
            "stale_advances": self.stale_advances,
            "null_messages_coalesced": self.null_messages_coalesced,
            "drains": self.drains,
        }


class _SynchronizerBase:
    def __init__(self, hdl: Simulator, timebase: TimeBase) -> None:
        self.hdl = hdl
        self.timebase = timebase
        self.stats = SyncStatistics()
        #: largest originator time stamp seen so far (netsim side)
        self.originator_time = 0.0
        self._lag_hist = None
        self._trace: Optional["TraceWriter"] = None

    def attach_observability(self,
                             metrics: Optional["MetricsRegistry"] = None,
                             trace: Optional["TraceWriter"] = None
                             ) -> None:
        """Wire the optional metrics registry (lag histogram) and
        structured trace stream into this synchroniser.  Without a
        call, only the always-on :class:`SyncStatistics` counters run."""
        if metrics is not None and metrics.enabled:
            self._lag_hist = metrics.histogram("sync.lag_s")
        self._trace = trace

    # -- invariant -----------------------------------------------------------
    def _check_lag_invariant(self) -> None:
        hdl_seconds = self.timebase.to_seconds(self.hdl.now)
        if hdl_seconds > self.originator_time + 1e-12:
            raise CausalityError(
                f"HDL time {hdl_seconds}s overtook the network "
                f"simulator's {self.originator_time}s — the conservative "
                "protocol's lag invariant is broken")
        lag = self.originator_time - hdl_seconds
        if lag > self.stats.max_lag_seconds:
            self.stats.max_lag_seconds = lag
        if self._lag_hist is not None:
            self._lag_hist.record(lag)

    def _run_hdl_until_tick(self, tick: int) -> None:
        if tick > self.hdl.now:
            before = self.hdl.now
            self.hdl.run(until=tick)
            self.stats.ticks_simulated += self.hdl.now - before


class ConservativeSynchronizer(_SynchronizerBase):
    """The paper's timing-window protocol.

    Args:
        hdl: the HDL simulator (the "VHDL side").
        timebase: second/tick conversion.
        deltas: message type -> δ_j in DUT clock cycles.
        handlers: message type -> delivery callable; invoked when the
            protocol releases a message for processing (typically this
            injects a cell into the DUT's stimulus machinery).
        coalesce_nulls: batch null messages into cell-sized horizon
            grants.  A burst of ``advance_time`` stamps is folded into
            one deferred lower bound (the maximum stamp) that is
            applied — one queue sweep, one protocol advance — when the
            stamp crosses the next cell-time boundary or a data message
            arrives.  HDL-visible timing is unchanged: deliveries still
            happen at ``tick(t_k)`` because every release follows a
            ``_grant_window(t_k)``, and a deferred null carries no
            payload to deliver.  Off by default (the E2 ablation
            measures the raw per-null protocol cost).

    Driving:
        ``post(msg_type, time, payload)`` — a data message from the
        network simulator.
        ``post_many(messages)`` — a batch of data messages; queued
        together, then a single protocol advance.
        ``advance_time(time)`` — a null (time-only) message announcing
        the originator's clock on *all* queues; the standard
        Chandy-Misra deadlock-avoidance device, and the paper's
        "time-stamped messages updating the receiving simulator with
        the current simulation time of the originator".
        ``drain(time)`` — announce *time* and release every remaining
        queued message (end of simulation).
    """

    def __init__(self, hdl: Simulator, timebase: TimeBase,
                 deltas: Dict[str, int],
                 handlers: Optional[Dict[str, Handler]] = None,
                 coalesce_nulls: bool = False) -> None:
        super().__init__(hdl, timebase)
        self.queues = MessageQueueSet(deltas)
        self.handlers: Dict[str, Handler] = dict(handlers or {})
        #: t_cur of §3.1 — the netsim-side time horizon granted to the
        #: HDL simulator (seconds)
        self.t_cur = 0.0
        self.coalesce_nulls = coalesce_nulls
        #: deferred null bound: max stamp not yet applied to the queues
        self._null_pending: Optional[float] = None
        #: stamp threshold that forces the next flush (last applied
        #: bound + one cell time)
        self._null_flush_at = 0.0
        #: msg_type -> queue-wait histogram (observability, see
        #: :meth:`attach_observability`)
        self._wait_hists: Dict[str, Any] = {}
        self._metrics: Optional["MetricsRegistry"] = None
        #: optional profiling hook — a zero-arg callable returning a
        #: context manager, wrapped around every protocol queue sweep
        #: (see :func:`repro.obs.profile.attach_profiling`)
        self.profile: Optional[Callable[[], Any]] = None

    def attach_observability(self,
                             metrics: Optional["MetricsRegistry"] = None,
                             trace: Optional["TraceWriter"] = None
                             ) -> None:
        """Wire metrics/trace in; adds per-queue wait-time histograms."""
        super().attach_observability(metrics, trace)
        if metrics is not None and metrics.enabled:
            self._metrics = metrics
            for name in self.queues.queues:
                self._wait_hists[name] = metrics.histogram(
                    f"sync.queue_wait_s.{name}")

    def set_handler(self, msg_type: str, handler: Handler) -> None:
        """Install the delivery callable for *msg_type*."""
        self.handlers[msg_type] = handler

    # -- originator-side API ----------------------------------------------
    def post(self, msg_type: str, time: float, payload: Any = None) -> None:
        """Receive a data message from the network simulator.

        The message is queued *before* any deferred null bound is
        flushed: a data message at *time* is itself proof the
        originator reached *time*, and the lag invariant must be
        checked against that knowledge.  (With several synchronisers
        sharing one HDL kernel — a sharded switch + accounting group —
        a sibling entity may already have run the shared clock to
        *time*; flushing a stale coalesced bound first would spuriously
        trip this entity's causality check.)
        """
        self._queue_message(msg_type, time, payload)
        self._flush_nulls()
        self._advance()

    def post_many(self, messages: Iterable[Tuple[str, float, Any]]
                  ) -> None:
        """Receive a batch of data messages — ``(msg_type, time,
        payload)`` triples — from the network simulator.

        All messages are queued (each validated, counted and traced
        exactly like :meth:`post`) before a *single* protocol advance,
        so a burst sharing one timestamp window costs one queue sweep
        instead of one per message.  Deliveries still happen at the
        same HDL ticks: every release follows a window grant to the
        message's own stamp.
        """
        posted = False
        for msg_type, time, payload in messages:
            self._queue_message(msg_type, time, payload)
            posted = True
        self._flush_nulls()
        if posted:
            self._advance()

    def _queue_message(self, msg_type: str, time: float,
                       payload: Any) -> None:
        if time < self.t_cur:
            raise CausalityError(
                f"message {msg_type!r} at t={time} in the past of the "
                f"granted horizon t_cur={self.t_cur}")
        self.queues.push(TimestampedMessage(time=time, msg_type=msg_type,
                                            payload=payload))
        self.stats.messages_posted += 1
        self.originator_time = max(self.originator_time, time)
        if self._trace is not None:
            fields = {"type": msg_type, "t": time,
                      "hdl_s": self.timebase.to_seconds(self.hdl.now)}
            tid = getattr(payload, "trace_id", None)
            if tid is not None:
                fields["cell"] = tid
            self._trace.emit("post", **fields)

    def advance_time(self, time: float) -> None:
        """Receive a null message: all queues learn the originator has
        reached *time* (no payload).

        A stamp behind the known originator time is a *stale* null
        message: harmless (a lower bound the receiver already holds)
        but counted in ``stats.stale_advances``.

        With ``coalesce_nulls`` the stamp is folded into a deferred
        bound instead of sweeping the queues immediately; the bound is
        applied when a stamp crosses the next cell-time boundary, a
        data message arrives, or the run drains.
        """
        stale = time < self.originator_time
        if stale:
            self.stats.stale_advances += 1
        self.stats.null_messages += 1
        self.originator_time = max(self.originator_time, time)
        if self.coalesce_nulls:
            pending = self._null_pending
            self._null_pending = (time if pending is None
                                  else max(pending, time))
            deferred = time < self._null_flush_at
            if self._trace is not None:
                self._trace.emit(
                    "null", t=time, stale=stale, coalesced=deferred,
                    hdl_s=self.timebase.to_seconds(self.hdl.now))
            if deferred:
                self.stats.null_messages_coalesced += 1
                return
            self._flush_nulls()
            return
        for queue in self.queues.queues.values():
            queue.advance_time(time)
        if self._trace is not None:
            self._trace.emit("null", t=time, stale=stale,
                             hdl_s=self.timebase.to_seconds(self.hdl.now))
        self._advance()

    def _flush_nulls(self) -> None:
        """Apply the deferred null bound (coalescing mode): one queue
        sweep at the maximum pending stamp, then a protocol advance."""
        stamp = self._null_pending
        if stamp is None:
            return
        self._null_pending = None
        self._null_flush_at = stamp + self.timebase.cell_time_seconds
        for queue in self.queues.queues.values():
            queue.advance_time(stamp)
        self._advance()

    def drain(self, time: Optional[float] = None) -> None:
        """End of run: release every queued message and settle the DUT.

        *time* defaults to far enough past the last message for every
        processing window to complete.
        """
        self.stats.drains += 1
        if self._trace is not None:
            self._trace.emit("drain", t=time)
        if time is not None:
            self.advance_time(time)
        self._flush_nulls()
        while self.queues.pending():
            head = self.queues.earliest_head()
            assert head is not None
            name, t_k = head
            self._grant_window(t_k)
            self._release(name)
        # allow the last processing window to finish
        final_ticks = self.hdl.now + self.timebase.clocks_to_ticks(
            max(q.delta_cycles for q in self.queues.queues.values()))
        self.originator_time = max(
            self.originator_time, self.timebase.to_seconds(final_ticks))
        self._run_hdl_until_tick(final_ticks)
        self._check_lag_invariant()

    # -- protocol core ---------------------------------------------------------
    def _advance(self) -> None:
        profile = self.profile
        if profile is not None:
            with profile():
                self._advance_queues()
            return
        self._advance_queues()

    def _advance_queues(self) -> None:
        while True:
            head = self.queues.earliest_head()
            if head is None:
                return
            name, t_k = head
            self._grant_window(t_k)
            if not self.queues.all_covered_to(t_k):
                # Other queues may still produce earlier messages; the
                # head message stays queued (the wait of §3.1).
                return
            self._release(name)

    def _grant_window(self, t_k: float) -> None:
        """Allow the HDL simulator to process events strictly before
        t_k, then update t_cur."""
        if t_k > self.t_cur:
            self.stats.windows_granted += 1
            self.t_cur = t_k
            if self._trace is not None:
                self._trace.emit(
                    "window", t_cur=t_k,
                    hdl_s=self.timebase.to_seconds(self.hdl.now))
        self._run_hdl_until_tick(self.timebase.to_ticks(t_k))
        self._check_lag_invariant()

    def _release(self, msg_type: str) -> None:
        """Deliver the head message of *msg_type* and advance the local
        time by the minimum processing delay."""
        message = self.queues[msg_type].pop()
        self.stats.messages_released += 1
        hdl_seconds = self.timebase.to_seconds(self.hdl.now)
        wait = max(0.0, hdl_seconds - message.time)
        wait_hist = self._wait_hists.get(msg_type)
        if wait_hist is not None:
            wait_hist.record(wait)
        if self._trace is not None:
            fields = {"type": msg_type, "t": message.time,
                      "hdl_s": hdl_seconds, "wait_s": wait}
            tid = getattr(message.payload, "trace_id", None)
            if tid is not None:
                fields["cell"] = tid
            self._trace.emit("release", **fields)
        handler = self.handlers.get(msg_type)
        if handler is not None:
            handler(message)
        grant_ticks = self.timebase.clocks_to_ticks(
            self.queues.min_delta())
        target = self.hdl.now + grant_ticks
        # The processing window never overtakes the originator.
        limit = self.timebase.to_ticks(self.originator_time)
        self._run_hdl_until_tick(min(target, limit))
        self._check_lag_invariant()


class LockstepSynchronizer(_SynchronizerBase):
    """Naive per-clock coupling: the ablation baseline of E2.

    Every DUT clock period is a synchronisation point — one message
    per clock in each direction — which is exactly the cost the
    timing-window protocol avoids.
    """

    def __init__(self, hdl: Simulator, timebase: TimeBase,
                 handler: Optional[Handler] = None) -> None:
        super().__init__(hdl, timebase)
        self.handler = handler

    def post(self, msg_type: str, time: float, payload: Any = None) -> None:
        """Deliver a message, synchronising clock by clock up to it.

        The past check is at tick granularity: ``to_ticks`` absorbs
        binary-float quotient error, so a stamp whose tick equals the
        HDL's current tick is *simultaneous*, not late — comparing raw
        seconds would spuriously reject it whenever the float stamp
        lands a hair below the tick boundary.
        """
        if self.timebase.to_ticks(time) < self.hdl.now:
            raise CausalityError(
                f"lockstep message at t={time} in the HDL past")
        self.originator_time = max(self.originator_time, time)
        self.stats.messages_posted += 1
        if self._trace is not None:
            fields = {"type": msg_type, "t": time,
                      "hdl_s": self.timebase.to_seconds(self.hdl.now)}
            tid = getattr(payload, "trace_id", None)
            if tid is not None:
                fields["cell"] = tid
            self._trace.emit("post", **fields)
        target = self.timebase.to_ticks(time)
        period = self.timebase.clock_period_ticks
        while self.hdl.now + period <= target:
            self._run_hdl_until_tick(self.hdl.now + period)
            self.stats.null_messages += 1  # one sync exchange per clock
        self._run_hdl_until_tick(target)
        self._check_lag_invariant()
        self.stats.messages_released += 1
        if self.handler is not None:
            self.handler(TimestampedMessage(time=time, msg_type=msg_type,
                                            payload=payload))

    def advance_time(self, time: float) -> None:
        """Clock the DUT up to *time*, one sync exchange per clock.

        Unlike :meth:`post` — where a stamp in the HDL past is an
        unrecoverable causality error — a null message merely carries a
        lower bound on the originator's clock, so a stale stamp (at or
        behind the HDL's local time) is a no-op.  The seed silently
        dropped it, skipping the originator-time update, the exchange
        count and the invariant check; now the stale path runs the same
        bookkeeping as a live advance and is counted in
        ``stats.stale_advances``.
        """
        stale = time <= self.timebase.to_seconds(self.hdl.now)
        self.originator_time = max(self.originator_time, time)
        if self._trace is not None:
            self._trace.emit("null", t=time, stale=stale,
                             hdl_s=self.timebase.to_seconds(self.hdl.now))
        if stale:
            self.stats.stale_advances += 1
            self._check_lag_invariant()
            return
        target = self.timebase.to_ticks(time)
        period = self.timebase.clock_period_ticks
        while self.hdl.now + period <= target:
            self._run_hdl_until_tick(self.hdl.now + period)
            self.stats.null_messages += 1
        self._check_lag_invariant()
