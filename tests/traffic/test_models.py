"""Unit tests for stochastic traffic models."""

import statistics

import pytest
from hypothesis import given, settings, strategies as st

from repro.traffic import (ConstantBitRate, MarkovModulatedPoisson,
                           OnOffSource, PoissonArrivals, sample_arrivals)


class TestConstantBitRate:
    def test_deterministic_period(self):
        cbr = ConstantBitRate(period=2.0)
        assert [cbr.next_interarrival() for _ in range(3)] == [2.0] * 3

    def test_arrival_times(self):
        cbr = ConstantBitRate(period=0.5)
        assert sample_arrivals(cbr, 4) == [0.5, 1.0, 1.5, 2.0]

    def test_jitter_bounded(self):
        cbr = ConstantBitRate(period=1.0, jitter=0.25, seed=7)
        gaps = [cbr.next_interarrival() for _ in range(200)]
        assert all(0.75 <= g <= 1.25 for g in gaps)
        assert len(set(gaps)) > 1

    def test_reset_reproduces(self):
        cbr = ConstantBitRate(period=1.0, jitter=0.2, seed=3)
        first = [cbr.next_interarrival() for _ in range(10)]
        cbr.reset()
        assert [cbr.next_interarrival() for _ in range(10)] == first

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            ConstantBitRate(period=0.0)

    def test_invalid_jitter(self):
        with pytest.raises(ValueError):
            ConstantBitRate(period=1.0, jitter=1.5)


class TestPoisson:
    def test_mean_rate_approximate(self):
        p = PoissonArrivals(rate=100.0, seed=1)
        gaps = [p.next_interarrival() for _ in range(5000)]
        assert statistics.mean(gaps) == pytest.approx(0.01, rel=0.1)

    def test_seed_determinism(self):
        a = PoissonArrivals(rate=5.0, seed=42)
        b = PoissonArrivals(rate=5.0, seed=42)
        assert ([a.next_interarrival() for _ in range(20)]
                == [b.next_interarrival() for _ in range(20)])

    def test_different_seeds_differ(self):
        a = PoissonArrivals(rate=5.0, seed=1)
        b = PoissonArrivals(rate=5.0, seed=2)
        assert (a.next_interarrival() != b.next_interarrival())

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            PoissonArrivals(rate=-1.0)


class TestOnOff:
    def test_gaps_at_least_peak_period(self):
        src = OnOffSource(peak_period=1.0, mean_on=10.0, mean_off=5.0,
                          seed=9)
        gaps = [src.next_interarrival() for _ in range(500)]
        assert all(g >= 1.0 - 1e-12 for g in gaps)

    def test_mean_rate_formula(self):
        src = OnOffSource(peak_period=0.01, mean_on=1.0, mean_off=3.0)
        assert src.mean_rate() == pytest.approx(25.0)
        assert src.burstiness() == pytest.approx(4.0)

    def test_long_run_rate_matches_formula(self):
        src = OnOffSource(peak_period=0.01, mean_on=0.5, mean_off=0.5,
                          seed=4)
        times = sample_arrivals(src, 20000)
        measured = len(times) / times[-1]
        assert measured == pytest.approx(src.mean_rate(), rel=0.1)

    def test_burstier_than_cbr(self):
        """On-off gaps include long OFF silences."""
        src = OnOffSource(peak_period=0.01, mean_on=0.1, mean_off=1.0,
                          seed=2)
        gaps = [src.next_interarrival() for _ in range(2000)]
        assert max(gaps) > 20 * min(gaps)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            OnOffSource(peak_period=0, mean_on=1, mean_off=1)
        with pytest.raises(ValueError):
            OnOffSource(peak_period=1, mean_on=-1, mean_off=1)


class TestMmpp:
    def test_mean_rate_formula(self):
        m = MarkovModulatedPoisson(rate_a=10.0, rate_b=90.0,
                                   mean_sojourn_a=1.0, mean_sojourn_b=3.0)
        assert m.mean_rate() == pytest.approx((10 + 270) / 4)

    def test_long_run_rate(self):
        m = MarkovModulatedPoisson(rate_a=50.0, rate_b=500.0,
                                   mean_sojourn_a=0.2, mean_sojourn_b=0.2,
                                   seed=11)
        times = sample_arrivals(m, 30000)
        measured = len(times) / times[-1]
        assert measured == pytest.approx(m.mean_rate(), rel=0.1)

    def test_determinism(self):
        kwargs = dict(rate_a=5.0, rate_b=50.0, mean_sojourn_a=1.0,
                      mean_sojourn_b=1.0, seed=3)
        a = MarkovModulatedPoisson(**kwargs)
        b = MarkovModulatedPoisson(**kwargs)
        assert ([a.next_interarrival() for _ in range(50)]
                == [b.next_interarrival() for _ in range(50)])

    def test_more_variable_than_poisson(self):
        """MMPP squared coefficient of variation exceeds Poisson's 1."""
        m = MarkovModulatedPoisson(rate_a=1.0, rate_b=200.0,
                                   mean_sojourn_a=5.0, mean_sojourn_b=5.0,
                                   seed=8)
        gaps = [m.next_interarrival() for _ in range(20000)]
        mu = statistics.mean(gaps)
        cv2 = statistics.pvariance(gaps) / (mu * mu)
        assert cv2 > 1.5

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            MarkovModulatedPoisson(0, 1, 1, 1)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=2**31),
       st.floats(min_value=1.0, max_value=100.0, allow_nan=False))
def test_property_all_gaps_nonnegative(seed, rate):
    """Every model produces non-negative inter-arrival times.

    ``rate >= 1`` keeps the on-off peak period at or below the mean ON
    duration; a peak period far above mean_on describes a source that
    essentially never emits, which is a degenerate configuration.
    """
    models = [
        PoissonArrivals(rate=rate, seed=seed),
        OnOffSource(peak_period=1.0 / rate, mean_on=1.0, mean_off=1.0,
                    seed=seed),
        MarkovModulatedPoisson(rate_a=rate, rate_b=rate * 10,
                               mean_sojourn_a=1.0, mean_sojourn_b=1.0,
                               seed=seed),
    ]
    for model in models:
        for _ in range(50):
            assert model.next_interarrival() >= 0.0


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=2**31))
def test_property_reset_is_reproducible(seed):
    """reset() rewinds every model to an identical sample path."""
    models = [
        ConstantBitRate(period=1.0, jitter=0.3, seed=seed),
        PoissonArrivals(rate=7.0, seed=seed),
        OnOffSource(peak_period=0.1, mean_on=0.5, mean_off=0.5, seed=seed),
        MarkovModulatedPoisson(rate_a=3.0, rate_b=30.0,
                               mean_sojourn_a=0.5, mean_sojourn_b=0.5,
                               seed=seed),
    ]
    for model in models:
        first = [model.next_interarrival() for _ in range(30)]
        model.reset()
        again = [model.next_interarrival() for _ in range(30)]
        assert first == again
