"""The ATM cell: 53 octets = 5-octet header + 48-octet payload.

Figure 4 of the paper shows the abstract representation (a C struct
with VPI/VCI fields) and its bit-level image on an 8-bit VHDL port over
53 clock cycles.  :class:`AtmCell` is the abstract side;
:meth:`AtmCell.to_octets` / :meth:`AtmCell.from_octets` implement the
exact UNI header layout used for the bit-level side.

UNI header layout (bit 8 = MSB first on the wire):

====== =========================================
octet  contents
====== =========================================
1      GFC(4) | VPI(4 high bits)
2      VPI(4 low bits) | VCI(4 high bits)
3      VCI(middle 8 bits)
4      VCI(4 low bits) | PT(3) | CLP(1)
5      HEC
====== =========================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..netsim.packet import Packet
from .hec import check_hec, hec_octet

__all__ = ["AtmCell", "CellFormatError", "CELL_OCTETS", "PAYLOAD_OCTETS",
           "HEADER_OCTETS", "CELL_BITS", "IDLE_VPI_VCI"]

CELL_OCTETS = 53
HEADER_OCTETS = 5
PAYLOAD_OCTETS = 48
CELL_BITS = CELL_OCTETS * 8

#: (VPI, VCI) of idle/unassigned cells inserted to fill the cell stream.
IDLE_VPI_VCI = (0, 0)


class CellFormatError(ValueError):
    """Raised for out-of-range header fields or malformed octet streams."""


@dataclass
class AtmCell:
    """One ATM cell at the abstract (network-simulator) level.

    Attributes:
        vpi: virtual path identifier, 0..255 (UNI: 8 bits).
        vci: virtual channel identifier, 0..65535.
        pt: payload type, 0..7.
        clp: cell loss priority bit.
        gfc: generic flow control, 0..15.
        payload: exactly 48 octets (zero-padded when shorter at
            construction via :meth:`with_payload`).
        trace_id: provenance id assigned by the observability layer
            (see :mod:`repro.obs.provenance`); ``None`` when untracked.
            Excluded from equality/repr — a traced cell still compares
            equal to its untraced reference-model twin — and never part
            of the 53-octet wire image.
    """

    vpi: int = 0
    vci: int = 0
    pt: int = 0
    clp: int = 0
    gfc: int = 0
    payload: Tuple[int, ...] = field(
        default_factory=lambda: (0,) * PAYLOAD_OCTETS)
    trace_id: Optional[int] = field(default=None, compare=False,
                                    repr=False)

    def __post_init__(self) -> None:
        # Single compound check on the hot path; the per-field helper
        # reruns only on failure to raise the precise error.
        if not (isinstance(self.gfc, int) and 0 <= self.gfc <= 0xF
                and isinstance(self.vpi, int) and 0 <= self.vpi <= 0xFF
                and isinstance(self.vci, int)
                and 0 <= self.vci <= 0xFFFF
                and isinstance(self.pt, int) and 0 <= self.pt <= 0x7
                and isinstance(self.clp, int) and 0 <= self.clp <= 0x1):
            self._check_range("gfc", self.gfc, 0xF)
            self._check_range("vpi", self.vpi, 0xFF)
            self._check_range("vci", self.vci, 0xFFFF)
            self._check_range("pt", self.pt, 0x7)
            self._check_range("clp", self.clp, 0x1)
        payload = tuple(self.payload)
        self.payload = payload
        if len(payload) != PAYLOAD_OCTETS:
            raise CellFormatError(
                f"payload must be {PAYLOAD_OCTETS} octets, "
                f"got {len(payload)}")
        # bytes() validates all 48 octets at C speed (TypeError for a
        # non-int, ValueError out of 0..255); the per-octet loop reruns
        # only on failure to raise the precise CellFormatError.  This
        # replaced a bounded global memo of validated payload tuples:
        # with random traffic the memo's capacity went to whichever
        # stream filled it first, silently making every *other* shard's
        # replay pay the Python loop — a 2x per-shard apply skew in
        # multi-shard topologies.
        try:
            bytes(payload)
        except (TypeError, ValueError):
            for octet in payload:
                self._check_range("payload octet", octet, 0xFF)
            raise CellFormatError(    # pragma: no cover - non-int 0..255
                f"payload octets invalid: {payload!r}")

    @staticmethod
    def _check_range(label: str, value: int, maximum: int) -> None:
        if not isinstance(value, int) or not 0 <= value <= maximum:
            raise CellFormatError(
                f"{label} value {value!r} outside 0..{maximum}")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def with_payload(cls, vpi: int, vci: int,
                     payload: Sequence[int] = (), **kwargs) -> "AtmCell":
        """Build a cell, zero-padding *payload* to 48 octets."""
        data = list(payload)
        if len(data) > PAYLOAD_OCTETS:
            raise CellFormatError(
                f"payload of {len(data)} octets exceeds {PAYLOAD_OCTETS}")
        data.extend([0] * (PAYLOAD_OCTETS - len(data)))
        return cls(vpi=vpi, vci=vci, payload=tuple(data), **kwargs)

    @classmethod
    def idle(cls) -> "AtmCell":
        """An idle (unassigned) cell as inserted into empty slots."""
        return cls(vpi=IDLE_VPI_VCI[0], vci=IDLE_VPI_VCI[1], pt=0, clp=1)

    @property
    def is_idle(self) -> bool:
        """True for idle/unassigned filler cells."""
        return (self.vpi, self.vci) == IDLE_VPI_VCI

    # ------------------------------------------------------------------
    # Octet-level image (the bit-level side of Figure 4)
    # ------------------------------------------------------------------
    def header_octets(self, with_hec: bool = True) -> List[int]:
        """The 4- or 5-octet header image (UNI layout)."""
        octets = [
            ((self.gfc & 0xF) << 4) | ((self.vpi >> 4) & 0xF),
            ((self.vpi & 0xF) << 4) | ((self.vci >> 12) & 0xF),
            (self.vci >> 4) & 0xFF,
            ((self.vci & 0xF) << 4) | ((self.pt & 0x7) << 1) | (self.clp & 1),
        ]
        if with_hec:
            octets.append(hec_octet(octets))
        return octets

    def to_octets(self) -> List[int]:
        """The full 53-octet wire image."""
        return self.header_octets() + list(self.payload)

    @classmethod
    def from_octets(cls, octets: Sequence[int],
                    verify_hec: bool = True) -> "AtmCell":
        """Parse a 53-octet wire image back into a cell.

        Raises:
            CellFormatError: wrong length or (with *verify_hec*) a HEC
                mismatch — the error a corrupted header must produce.
        """
        octets = list(octets)
        if len(octets) != CELL_OCTETS:
            raise CellFormatError(
                f"a cell is {CELL_OCTETS} octets, got {len(octets)}")
        header = octets[:HEADER_OCTETS]
        if verify_hec and not check_hec(header):
            raise CellFormatError(
                f"HEC mismatch: header={header}")
        gfc = (header[0] >> 4) & 0xF
        vpi = ((header[0] & 0xF) << 4) | ((header[1] >> 4) & 0xF)
        vci = (((header[1] & 0xF) << 12) | (header[2] << 4)
               | ((header[3] >> 4) & 0xF))
        pt = (header[3] >> 1) & 0x7
        clp = header[3] & 1
        return cls(gfc=gfc, vpi=vpi, vci=vci, pt=pt, clp=clp,
                   payload=tuple(octets[HEADER_OCTETS:]))

    # ------------------------------------------------------------------
    # Network-simulator packet bridge
    # ------------------------------------------------------------------
    def to_packet(self, creation_time: float = 0.0) -> Packet:
        """Wrap the cell in an abstract netsim packet (Figure 4 struct)."""
        fields = {"VPI": self.vpi, "VCI": self.vci,
                  "PT": self.pt, "CLP": self.clp,
                  "GFC": self.gfc, "payload": list(self.payload)}
        if self.trace_id is not None:
            fields["trace_id"] = self.trace_id
        return Packet(size_bits=CELL_BITS, creation_time=creation_time,
                      fields=fields)

    @classmethod
    def from_packet(cls, packet: Packet) -> "AtmCell":
        """Recover a cell from an abstract packet built by
        :meth:`to_packet` (missing fields default to zero; a provenance
        ``trace_id`` stamped on the packet is carried over)."""
        return cls.with_payload(
            vpi=packet.get("VPI", 0), vci=packet.get("VCI", 0),
            payload=packet.get("payload", ()),
            pt=packet.get("PT", 0), clp=packet.get("CLP", 0),
            gfc=packet.get("GFC", 0), trace_id=packet.get("trace_id"))

    def connection(self) -> Tuple[int, int]:
        """The (VPI, VCI) pair identifying the cell's connection."""
        return (self.vpi, self.vci)
