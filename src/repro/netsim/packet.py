"""Abstract packets exchanged between network-simulation processes.

In a network simulator processes communicate through the exchange of
*abstracted* information — the paper's Figure 4 shows an OPNET packet as
a C struct carrying VPI/VCI fields.  :class:`Packet` is the Python
equivalent: a typed bundle of named fields plus bookkeeping (creation
time, size in bits, a unique id).  Communication at this level is
instantaneous: when the delivery event fires, the complete information
is available at once.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Optional

__all__ = ["Packet", "PacketFormatError"]

_packet_ids = itertools.count()


class PacketFormatError(KeyError):
    """Raised when a packet field is accessed that the packet lacks."""


class Packet:
    """An abstract protocol data unit.

    Fields are arbitrary named values (``pkt["VPI"]``-style access).
    ``size_bits`` drives transmission-delay computation on rate-limited
    links; an ATM cell is 53 octets = 424 bits.

    Example:
        >>> p = Packet(size_bits=424, fields={"VPI": 3, "VCI": 17})
        >>> p["VPI"]
        3
    """

    __slots__ = ("id", "size_bits", "creation_time", "fields", "_stamps")

    def __init__(self, size_bits: int = 0,
                 fields: Optional[Dict[str, Any]] = None,
                 creation_time: float = 0.0) -> None:
        self.id = next(_packet_ids)
        self.size_bits = size_bits
        self.creation_time = creation_time
        self.fields: Dict[str, Any] = dict(fields or {})
        self._stamps: Dict[str, float] = {}

    # -- field access ---------------------------------------------------
    def __getitem__(self, key: str) -> Any:
        try:
            return self.fields[key]
        except KeyError:
            raise PacketFormatError(
                f"packet {self.id} has no field {key!r}; "
                f"fields: {sorted(self.fields)}") from None

    def __setitem__(self, key: str, value: Any) -> None:
        self.fields[key] = value

    def __contains__(self, key: str) -> bool:
        return key in self.fields

    def get(self, key: str, default: Any = None) -> Any:
        """Return field *key* or *default* when absent."""
        return self.fields.get(key, default)

    # -- bookkeeping ------------------------------------------------------
    def stamp(self, label: str, time: float) -> None:
        """Record a named time stamp (e.g. queue entry) on the packet."""
        self._stamps[label] = time

    def stamp_time(self, label: str) -> Optional[float]:
        """Return a previously recorded time stamp, or ``None``."""
        return self._stamps.get(label)

    def copy(self) -> "Packet":
        """Return a field-wise copy with a fresh packet id."""
        clone = Packet(size_bits=self.size_bits, fields=dict(self.fields),
                       creation_time=self.creation_time)
        clone._stamps = dict(self._stamps)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Packet(id={self.id}, bits={self.size_bits}, "
                f"fields={self.fields})")
