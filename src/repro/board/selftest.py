"""Board self-test: pin, memory and transport integrity checks.

Before trusting a verification verdict obtained through the test
board, the board itself must be proven: a loopback plug on the bit
I/O interface lets walking-one/walking-zero patterns traverse every
pin, the stimulus/response memories are exercised with address-unique
patterns, and the SCSI path is checked for byte-exact transfer.  The
equivalent of the power-on self-test any lab instrument runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .board import HardwareTestBoard
from .device import LoopbackDevice
from .pinmap import (ConfigurationDataSet, LANE_WIDTH, NUM_BYTE_LANES,
                     PinSegment, PortMapping)

__all__ = ["BoardSelfTest", "SelfTestResult", "loopback_all_lanes_config"]


def loopback_all_lanes_config() -> ConfigurationDataSet:
    """A configuration exposing lanes 0..14 as bidirectional I/O ports
    (inport i and outport i both on lane i), sharing one direction
    control bit on lane 15 — the hookup a loopback test plug needs."""
    from .pinmap import CtrlPortMapping, IoPortMapping
    config = ConfigurationDataSet()
    ctrl_number = 100
    config.add_ctrlport(CtrlPortMapping(ctrl_number, 1,
                                        (PinSegment(15, 0, 1),)))
    for lane in range(NUM_BYTE_LANES - 1):
        config.add_inport(PortMapping(lane, LANE_WIDTH,
                                      (PinSegment(lane, 7, LANE_WIDTH),)))
        config.add_outport(PortMapping(lane, LANE_WIDTH,
                                       (PinSegment(lane, 7,
                                                   LANE_WIDTH),)))
        config.add_io_port(IoPortMapping(lane, lane, ctrl_number))
    config.validate()
    return config


@dataclass
class SelfTestResult:
    """Outcome of one self-test phase."""

    phase: str
    passed: bool
    detail: str = ""


class BoardSelfTest:
    """Runs the power-on self-test sequence against a board.

    Args:
        board: the board under test (its configuration is replaced by
            the caller with :func:`loopback_all_lanes_config` when the
            full pin sweep is wanted; any loopback-compatible config
            works for the other phases).

    :meth:`run_all` executes every phase and returns the result list;
    :attr:`passed` summarises.
    """

    def __init__(self, board: HardwareTestBoard,
                 device_factory=None) -> None:
        self.board = board
        #: builds the loopback plug; tests inject faulty plugs here
        self.device_factory = (device_factory if device_factory
                               is not None else LoopbackDevice)
        self.results: List[SelfTestResult] = []

    def _plug(self, latency: int = 1):
        return self.device_factory(latency=latency)

    @property
    def passed(self) -> bool:
        """True when every executed phase passed."""
        return bool(self.results) and all(r.passed for r in self.results)

    def run_all(self) -> List[SelfTestResult]:
        """Pin sweep, memory pattern, cycle bound and SCSI phases."""
        self.results = [
            self.pin_sweep(),
            self.memory_pattern(),
            self.cycle_bounds(),
            self.scsi_integrity(),
        ]
        return self.results

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------
    def pin_sweep(self) -> SelfTestResult:
        """Walking-one and walking-zero through every mapped data pin
        via the loopback plug."""
        device = self._plug(latency=1)
        lanes = sorted(self.board.config.inports)
        frames = []
        expected = []
        for lane in lanes:
            for bit in range(LANE_WIDTH):
                frames.append({lane: 1 << bit})
                expected.append((lane, 1 << bit))
                frames.append({lane: 0xFF ^ (1 << bit)})
                expected.append((lane, 0xFF ^ (1 << bit)))
        frames.append({})  # flush the loopback latency
        self.board.load_port_vectors(frames)
        self.board.run_hardware_cycle(device)
        responses = self.board.read_port_responses()
        stuck = []
        for index, (lane, pattern) in enumerate(expected):
            echoed = responses[index + 1].get(lane)
            if echoed != pattern:
                stuck.append(f"lane {lane} pattern {pattern:#04x} "
                             f"read {echoed!r}")
        return SelfTestResult(
            phase="pin-sweep", passed=not stuck,
            detail="; ".join(stuck[:4]) if stuck
            else f"{len(expected)} patterns across {len(lanes)} lanes")

    def memory_pattern(self) -> SelfTestResult:
        """Address-unique stimulus memory fill and read-back through
        a zero-latency loopback."""
        device = self._plug(latency=0)
        lanes = sorted(self.board.config.inports)
        depth = min(256, self.board.memory_depth)
        frames = [{lane: (index + lane) % 256 for lane in lanes}
                  for index in range(depth)]
        self.board.load_port_vectors(frames)
        self.board.run_hardware_cycle(device)
        responses = self.board.read_port_responses()
        errors = sum(
            1 for index, response in enumerate(responses)
            for lane in lanes
            if response.get(lane) != (index + lane) % 256)
        return SelfTestResult(
            phase="memory-pattern", passed=errors == 0,
            detail=f"{depth} vectors x {len(lanes)} lanes, "
                   f"{errors} miscompares")

    def cycle_bounds(self) -> SelfTestResult:
        """The board must refuse out-of-bound test cycles."""
        from .board import BoardError
        problems = []
        try:
            self.board.load_port_vectors(
                [{}] * (self.board.memory_depth + 1))
            problems.append("memory over-fill accepted")
        except BoardError:
            pass
        self.board.load_port_vectors([{}] * 4)
        try:
            self.board.run_hardware_cycle(self._plug(), clocks=0)
            problems.append("zero-clock cycle accepted")
        except BoardError:
            pass
        try:
            self.board.run_hardware_cycle(self._plug(), clocks=5)
            problems.append("cycle beyond loaded stimuli accepted")
        except BoardError:
            pass
        return SelfTestResult(phase="cycle-bounds",
                              passed=not problems,
                              detail="; ".join(problems)
                              or "limits enforced")

    def scsi_integrity(self) -> SelfTestResult:
        """Transfer accounting must be consistent with what moved."""
        before_bytes = self.board.scsi.total_bytes
        before_count = len(self.board.scsi.log)
        self.board.load_port_vectors([{}] * 16)
        self.board.run_hardware_cycle(self._plug())
        self.board.read_responses()
        moved = self.board.scsi.total_bytes - before_bytes
        transfers = len(self.board.scsi.log) - before_count
        expected = 2 * 16 * NUM_BYTE_LANES  # load + read, 16 frames
        return SelfTestResult(
            phase="scsi-integrity",
            passed=(moved == expected and transfers == 2),
            detail=f"{moved} bytes in {transfers} transfers "
                   f"(expected {expected} in 2)")
