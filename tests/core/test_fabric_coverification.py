"""Integration: the whole RTL switch fabric as a multi-port DUT.

Four co-simulation entities — one per fabric port — share one HDL
simulator; the network-level test bench drives all four, and each
output stream is compared against the abstract switch's forwarding
decision.  The heaviest composition in the test suite: netsim +
4-way coupling + GCU arbitration + stream comparison.
"""


from repro.atm import AtmCell
from repro.core import CoVerificationEnvironment
from repro.rtl import AtmSwitchRtl
from repro.traffic import ConstantBitRate, TrafficSource

CELL_PERIOD = 8e-6  # slack for lookup arbitration across 4 ports


def build_fabric_env(cells_per_port=4):
    env = CoVerificationEnvironment()
    fabric = AtmSwitchRtl(env.hdl, "fabric", env.clk, num_ports=4,
                          lookup_latency=4)
    entities = []
    for port in range(4):
        vci = 100 + port
        fabric.install_connection(port, 1, vci, (port + 1) % 4,
                                  2, 200 + port)
        entity = env.add_dut(rx_port=fabric.rx_ports[port],
                             tx_port=fabric.tx_ports[port])
        entities.append(entity)

        host = env.network.add_node(f"host{port}")
        source = TrafficSource(
            f"src{port}",
            ConstantBitRate(period=CELL_PERIOD, seed=port),
            packet_factory=lambda i, v=vci: AtmCell.with_payload(
                1, v, [i % 256]).to_packet(),
            count=cells_per_port)
        tap = env.make_cell_tap(f"tap{port}", entity, forward=False)
        host.add_module(source)
        host.add_module(tap)
        host.connect(source, 0, tap, 0)
    return env, fabric, entities


def test_every_port_switches_through_the_coupling():
    env, fabric, entities = build_fabric_env(cells_per_port=4)
    env.run()
    env.finish()
    assert fabric.cells_received == 16
    assert fabric.cells_switched == 16
    for port, entity in enumerate(entities):
        # entity p observes what the fabric emits on port p, i.e. the
        # traffic of input port (p - 1) mod 4 translated to its VCI
        outputs = [(c.vpi, c.vci) for _t, c in entity.output_cells]
        source_port = (port - 1) % 4
        assert outputs == [(2, 200 + source_port)] * 4


def test_fabric_outputs_match_abstract_forwarding():
    env, fabric, entities = build_fabric_env(cells_per_port=3)
    env.run()
    env.finish()
    # abstract forwarding: payload sequence preserved per connection
    for port, entity in enumerate(entities):
        payloads = [c.payload[0] for _t, c in entity.output_cells]
        assert payloads == [0, 1, 2]


def test_lag_invariant_across_all_entities():
    env, fabric, entities = build_fabric_env(cells_per_port=3)
    env.run()
    horizon = env.network.kernel.now
    assert env.timebase.to_seconds(env.hdl.now) <= horizon + 1e-12
    env.finish()
    for entity in entities:
        assert entity.sync.stats.messages_posted == 3
