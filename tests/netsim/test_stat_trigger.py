"""Tests for statistic-triggered interrupts."""

import pytest

from repro.netsim import (InterruptKind, Network, ProcessModel,
                          ProcessorModule, StatTrigger, State)


def make_watcher():
    """A process that records STAT interrupts."""
    process = ProcessModel("watcher")
    seen = []
    process.add_state(State("idle"))
    process.add_state(State("hit", forced=True,
                            enter=lambda p: seen.append(
                                (p.now, p.interrupt.code,
                                 p.interrupt.data))))
    process.add_transition(
        "idle", "hit",
        guard=lambda p, i: i.kind == InterruptKind.STAT)
    process.add_transition("hit", "idle")
    net = Network()
    node = net.add_node("n")
    node.add_module(ProcessorModule("watch", process))
    return net, process, seen


def test_rising_crossing_delivers_interrupt():
    net, process, seen = make_watcher()
    level = {"value": 0.0}
    StatTrigger(net.kernel, process, lambda: level["value"],
                threshold=5.0, interval=1.0, code=7)
    net.kernel.schedule(3.5, lambda: level.update(value=9.0))
    net.run(until=10.0)
    assert len(seen) == 1
    time, code, value = seen[0]
    assert time == 4.0  # first poll after the jump
    assert code == 7
    assert value == 9.0


def test_no_interrupt_without_crossing():
    net, process, seen = make_watcher()
    StatTrigger(net.kernel, process, lambda: 1.0, threshold=5.0,
                interval=1.0)
    net.run(until=10.0)
    assert seen == []


def test_retriggers_on_each_crossing():
    net, process, seen = make_watcher()
    level = {"value": 0.0}
    StatTrigger(net.kernel, process, lambda: level["value"],
                threshold=5.0, interval=1.0)
    for t, v in ((2.5, 9.0), (4.5, 0.0), (6.5, 9.0)):
        net.kernel.schedule(t, lambda v=v: level.update(value=v))
    net.run(until=10.0)
    assert len(seen) == 2  # two rising crossings


def test_falling_direction():
    net, process, seen = make_watcher()
    level = {"value": 10.0}
    StatTrigger(net.kernel, process, lambda: level["value"],
                threshold=5.0, interval=1.0, direction="falling")
    net.kernel.schedule(3.5, lambda: level.update(value=1.0))
    net.run(until=10.0)
    assert len(seen) == 1


def test_cancel_stops_polling():
    net, process, seen = make_watcher()
    level = {"value": 0.0}
    trigger = StatTrigger(net.kernel, process, lambda: level["value"],
                          threshold=5.0, interval=1.0)
    net.kernel.schedule(2.5, trigger.cancel)
    net.kernel.schedule(3.5, lambda: level.update(value=9.0))
    net.run(until=10.0)
    assert seen == []
    assert net.kernel.now == 10.0  # no runaway polling events


def test_queue_watermark_use_case():
    """The realistic use: interrupt when a queue passes a watermark."""
    from repro.netsim import Packet, QueueModule
    net, process, seen = make_watcher()
    node = net.nodes["n"]
    queue = QueueModule("q")
    node.add_module(queue)
    StatTrigger(net.kernel, process, lambda: len(queue), threshold=3,
                interval=0.1)
    for i in range(5):
        net.kernel.schedule(i + 0.05,
                            lambda: queue.receive(Packet(), 0))
    net.run(until=6.0)
    assert len(seen) == 1
    assert seen[0][2] >= 3


def test_invalid_configs():
    net, process, seen = make_watcher()
    with pytest.raises(ValueError):
        StatTrigger(net.kernel, process, lambda: 0, threshold=1,
                    interval=0)
    with pytest.raises(ValueError):
        StatTrigger(net.kernel, process, lambda: 0, threshold=1,
                    interval=1, direction="sideways")
