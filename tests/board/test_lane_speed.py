"""Tests for byte-lane speed configuration."""

import pytest

from repro.board import (BoardError, ConfigurationDataSet,
                         CtrlPortMapping, HardwareTestBoard,
                         IoPortMapping, LoopbackDevice, PinSegment,
                         PortMapping)


def make_board():
    config = ConfigurationDataSet()
    config.add_inport(PortMapping(0, 8, (PinSegment(0, 7, 8),)))
    config.add_inport(PortMapping(1, 8, (PinSegment(1, 7, 8),)))
    config.add_outport(PortMapping(0, 8, (PinSegment(0, 7, 8),)))
    config.add_outport(PortMapping(1, 8, (PinSegment(1, 7, 8),)))
    config.add_ctrlport(CtrlPortMapping(0, 1, (PinSegment(15, 0, 1),)))
    config.add_io_port(IoPortMapping(0, 0, 0))
    config.add_ctrlport(CtrlPortMapping(1, 1, (PinSegment(15, 1, 1),)))
    config.add_io_port(IoPortMapping(1, 1, 1))
    return HardwareTestBoard(config)


def run_echo(board, vectors):
    result = board.run_test_cycle(LoopbackDevice(latency=1), vectors)
    return result.responses


def test_full_speed_lane_changes_every_clock():
    board = make_board()
    responses = run_echo(board, [{0: v, 1: v} for v in (1, 2, 3, 4)])
    assert [r[0] for r in responses] == [0, 1, 2, 3]


def test_slow_lane_holds_value():
    board = make_board()
    board.set_lane_speed(1, 2)  # lane 1 (inport/outport 1) at half rate
    responses = run_echo(board, [{0: v, 1: v} for v in (1, 2, 3, 4)])
    # lane 0 full speed; lane 1 holds for 2 clocks: 1,1,3,3
    assert [r[0] for r in responses] == [0, 1, 2, 3]
    assert [r[1] for r in responses] == [0, 1, 1, 3]


def test_divisor_four():
    board = make_board()
    board.set_lane_speed(1, 4)
    responses = run_echo(board, [{1: v} for v in range(8)])
    assert [r[1] for r in responses] == [0, 0, 0, 0, 0, 4, 4, 4]


def test_reset_to_full_speed():
    board = make_board()
    board.set_lane_speed(1, 2)
    board.set_lane_speed(1, 1)
    assert board.lane_speed(1) == 1
    responses = run_echo(board, [{1: v} for v in (5, 6)])
    assert [r[1] for r in responses] == [0, 5]


def test_invalid_lane_and_divisor():
    board = make_board()
    with pytest.raises(BoardError):
        board.set_lane_speed(16, 2)
    with pytest.raises(BoardError):
        board.set_lane_speed(0, 0)


def test_default_speed_is_one():
    assert make_board().lane_speed(7) == 1
