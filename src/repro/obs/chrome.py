"""Chrome ``trace_event`` / Perfetto export of co-simulation traces.

Converts a :class:`~repro.obs.trace.TraceWriter` JSONL stream (plus an
optional kernel-statistics snapshot) into a JSON file loadable in
``chrome://tracing`` or https://ui.perfetto.dev — the visual form of
the paper's temporal claims.  One process (pid 1) carries four tracks:

=====  ===============  =================================================
tid    track            contents
=====  ===============  =================================================
1      netsim time      ``source``/``post``/``sink`` hop slices, data
                        ``post`` records, ``drain`` markers
2      HDL time         ``release``/``ingress``/``dut_out`` hop slices,
                        ``release``/``cell_out``/``tick_pulse``/
                        ``finish`` records
3      sync windows     one slice per granted processing window, from
                        the HDL time at grant to the ``t_cur`` horizon —
                        the lag invariant made visible
4      null messages    instant markers (live / stale / coalesced)
=====  ===============  =================================================

Cell journeys (``span`` records, see :mod:`repro.obs.provenance`)
additionally emit Chrome *flow events* — one arrow chain per sampled
cell, stepping from the netsim track across to the HDL track and back,
which is exactly the source→sink causality the tentpole asks to make
visible.  Timestamps are microseconds (the trace_event convention);
each track is clamped monotone so tick rounding can never produce a
backwards step that Perfetto would reject.

**Distributed traces**: records carrying a ``shard`` label (worker
trace files, merged span streams — see :mod:`repro.obs.merge`) are
grouped into one Perfetto *process* per shard — pid 2, 3, … in sorted
label order, each with its own four named tracks; unlabelled records
keep the classic single-process pid 1.  Flow chains are keyed by the
cell's trace id, which survives the shard boundary (PR 10), so a cell
hopping shard0 → shard1 draws one arrow chain *across* process groups
— the cross-process causality view, checked by :func:`flow_processes`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Union

__all__ = ["export_chrome_trace", "load_trace_jsonl",
           "validate_chrome_trace", "flow_tracks", "flow_processes",
           "ChromeTraceError",
           "NETSIM_TID", "HDL_TID", "SYNC_TID", "NULL_TID", "PID"]

#: process id of unlabelled (single-process) records; shard-labelled
#: records get pid ``PID + 1 + index`` in sorted shard-label order
PID = 1
#: track (thread) ids
NETSIM_TID = 1
HDL_TID = 2
SYNC_TID = 3
NULL_TID = 4

_TRACK_NAMES = {
    NETSIM_TID: "netsim time",
    HDL_TID: "HDL time",
    SYNC_TID: "sync windows",
    NULL_TID: "null messages",
}

#: provenance hop -> (track, preferred time-domain field)
_HOP_TRACKS = {
    "source": (NETSIM_TID, "t"),
    "post": (NETSIM_TID, "t"),
    "release": (HDL_TID, "hdl_s"),
    "ingress": (HDL_TID, "hdl_s"),
    "dut_out": (HDL_TID, "hdl_s"),
    "sink": (NETSIM_TID, "t"),
    # shard-boundary hops (PR 10): the cell crossing its process's
    # edge, netsim-time stamped by the coordinator's op stream
    "shard_in": (NETSIM_TID, "t"),
    "shard_out": (NETSIM_TID, "t"),
}

#: rendered duration of a hop slice (µs) — wide enough to click,
#: narrow against the ~2.7 µs cell time
_HOP_DUR_US = 0.05


class ChromeTraceError(ValueError):
    """Raised by :func:`validate_chrome_trace` on a malformed trace."""


def load_trace_jsonl(path: Union[str, Path]) -> List[Dict[str, object]]:
    """Read a TraceWriter JSONL file back into a list of records."""
    records = []
    with Path(path).open() as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ChromeTraceError(
                    f"{path}:{line_no}: not valid JSON: {exc}") from None
    return records


class _Emitter:
    """Accumulates trace events with per-track monotone clamping
    (tracks are per *process*: the frontier is keyed on (pid, tid))."""

    def __init__(self) -> None:
        self.events: List[Dict[str, object]] = []
        self._last_ts: Dict[tuple, float] = {}

    def ts(self, pid: int, tid: int,
           seconds: Optional[float]) -> float:
        """Clamp *seconds* (→ µs) to the track's monotone frontier."""
        us = 0.0 if seconds is None else seconds * 1e6
        last = self._last_ts.get((pid, tid), 0.0)
        if us < last:
            us = last
        self._last_ts[(pid, tid)] = us
        return us

    def add(self, ph: str, name: str, pid: int, tid: int, ts: float,
            **extra) -> None:
        """Append one event (timestamps already clamped via :meth:`ts`)."""
        event: Dict[str, object] = {"ph": ph, "name": name, "pid": pid,
                                    "tid": tid, "ts": ts}
        event.update(extra)
        self.events.append(event)

    def meta(self, process_names: Dict[int, str]) -> None:
        """Prepend process/thread-name metadata events — one process
        group per pid, four named tracks each."""
        header: List[Dict[str, object]] = []
        for pid in sorted(process_names):
            header.append({
                "ph": "M", "name": "process_name", "pid": pid,
                "tid": 0, "args": {"name": process_names[pid]},
            })
            for tid, label in _TRACK_NAMES.items():
                header.append({"ph": "M", "name": "thread_name",
                               "pid": pid, "tid": tid,
                               "args": {"name": label}})
        self.events = header + self.events


def export_chrome_trace(records: Sequence[Dict[str, object]],
                        path: Optional[Union[str, Path]] = None,
                        snapshot: Optional[Dict[str, object]] = None,
                        time_unit: float = 1e-9) -> Dict[str, object]:
    """Convert trace *records* into a Chrome trace_event payload.

    Args:
        records: TraceWriter records (dicts with an ``ev`` kind), e.g.
            from :func:`load_trace_jsonl` or ``TraceWriter.records``.
        path: optional output file; written as compact JSON.
        snapshot: optional ``env.metrics()`` report folded into the
            payload's ``otherData`` (workload + kernel counters).
        time_unit: seconds per HDL tick, used for records that carry
            raw ticks (``tick_pulse``).

    Returns:
        The payload dict (``traceEvents`` + metadata), also written to
        *path* when given.
    """
    emitter = _Emitter()
    pids = _assign_pids(records)
    flow_chains: Dict[int, List[Dict[str, object]]] = {}
    for record in records:
        kind = record.get("ev")
        shard = record.get("shard")
        pid = pids[str(shard)] if shard is not None else PID
        if kind == "span":
            _emit_span(emitter, record, flow_chains, pid)
        elif kind == "window":
            _emit_window(emitter, record, pid)
        elif kind == "null":
            stale = bool(record.get("stale"))
            coalesced = bool(record.get("coalesced"))
            name = ("null (coalesced)" if coalesced
                    else "null (stale)" if stale else "null")
            ts = emitter.ts(pid, NULL_TID, _as_float(record.get("t")))
            emitter.add("i", name, pid, NULL_TID, ts, s="t",
                        args={"t": record.get("t")})
        elif kind == "post":
            ts = emitter.ts(pid, NETSIM_TID,
                            _as_float(record.get("t")))
            emitter.add("i", f"post {record.get('type', '?')}",
                        pid, NETSIM_TID, ts, s="t",
                        args=_args(record, "t", "hdl_s", "cell"))
        elif kind == "release":
            ts = emitter.ts(pid, HDL_TID,
                            _as_float(record.get("hdl_s")))
            emitter.add("i", f"release {record.get('type', '?')}",
                        pid, HDL_TID, ts, s="t",
                        args=_args(record, "t", "hdl_s", "wait_s",
                                   "cell"))
        elif kind == "cell_out":
            ts = emitter.ts(pid, HDL_TID,
                            _as_float(record.get("hdl_s")))
            emitter.add("i", "cell_out", pid, HDL_TID, ts, s="t",
                        args=_args(record, "hdl_s", "latency_s"))
        elif kind == "tick_pulse":
            tick = record.get("hdl_tick")
            seconds = (float(tick) * time_unit
                       if isinstance(tick, (int, float)) else None)
            ts = emitter.ts(pid, HDL_TID, seconds)
            emitter.add("i", "tick_pulse", pid, HDL_TID, ts, s="t",
                        args=_args(record, "hdl_tick", "deferred_ticks"))
        elif kind == "drain":
            ts = emitter.ts(pid, NETSIM_TID,
                            _as_float(record.get("t")))
            emitter.add("i", "drain", pid, NETSIM_TID, ts, s="p",
                        args=_args(record, "t"))
        elif kind == "finish":
            ts = emitter.ts(pid, HDL_TID,
                            _as_float(record.get("hdl_s")))
            emitter.add("i", "finish", pid, HDL_TID, ts, s="p",
                        args=_args(record, "hdl_s", "residual"))
        # unknown kinds are skipped: forward compatibility with new
        # TraceWriter event types
    for chain in flow_chains.values():
        if len(chain) < 2:
            # a single-hop journey has no arrow to draw — and a lone
            # "s" (or "f") would fail flow validation
            for event in chain:
                emitter.events.remove(event)
            continue
        # retro-promote the final flow step of each journey to its
        # terminator so every chain ends with "f"
        chain[-1]["ph"] = "f"
        chain[-1]["bp"] = "e"
    process_names = {PID: "castanet co-simulation"}
    for label, pid in pids.items():
        process_names[pid] = f"shard {label}"
    # only name processes that actually own events — a fully
    # shard-labelled trace has nothing on the default pid
    used = {event["pid"] for event in emitter.events}
    emitter.meta({pid: name for pid, name in process_names.items()
                  if pid in used})
    payload: Dict[str, object] = {
        "traceEvents": emitter.events,
        "displayTimeUnit": "ms",
        "otherData": {"source": "repro.obs.chrome",
                      "record_count": len(records)},
    }
    if snapshot is not None:
        other = payload["otherData"]
        for key in ("workload", "hdl_kernel", "netsim_kernel",
                    "provenance"):
            if key in snapshot:
                other[key] = snapshot[key]
    if path is not None:
        Path(path).write_text(json.dumps(payload) + "\n")
    return payload


def _assign_pids(records: Sequence[Dict[str, object]]
                 ) -> Dict[str, int]:
    """Deterministic shard-label → pid map: sorted labels get
    ``PID + 1``, ``PID + 2``, … (pid :data:`PID` stays reserved for
    unlabelled single-process records)."""
    labels = sorted({str(record["shard"]) for record in records
                     if record.get("shard") is not None})
    return {label: PID + 1 + index
            for index, label in enumerate(labels)}


def _as_float(value: object) -> Optional[float]:
    return float(value) if isinstance(value, (int, float)) else None


def _args(record: Dict[str, object], *keys: str) -> Dict[str, object]:
    return {key: record[key] for key in keys if key in record}


def _emit_span(emitter: _Emitter, record: Dict[str, object],
               flow_chains: Dict[int, List[Dict[str, object]]],
               pid: int = PID) -> None:
    hop = str(record.get("hop"))
    cell = record.get("cell")
    track, domain = _HOP_TRACKS.get(hop, (NETSIM_TID, "t"))
    seconds = _as_float(record.get(domain))
    if seconds is None:  # fall back to the other domain's stamp
        other = "hdl_s" if domain == "t" else "t"
        seconds = _as_float(record.get(other))
    ts = emitter.ts(pid, track, seconds)
    args = _args(record, "t", "hdl_s", "cell", "src", "dst", "shard")
    emitter.add("X", hop, pid, track, ts, dur=_HOP_DUR_US, args=args)
    if not isinstance(cell, int):
        return
    # flow chain: "s" opens the journey at the source, "t" steps it
    # across tracks — and across *processes*, the flow id (the cell's
    # trace id) being pid-agnostic — the final step is promoted to
    # "f" at the end
    chain = flow_chains.setdefault(cell, [])
    event: Dict[str, object] = {"ph": "s" if not chain else "t",
                                "name": f"cell {cell}",
                                "cat": "cell", "id": cell, "pid": pid,
                                "tid": track, "ts": ts}
    emitter.events.append(event)
    chain.append(event)


def _emit_window(emitter: _Emitter, record: Dict[str, object],
                 pid: int = PID) -> None:
    """One sync-window slice: HDL time at grant → the t_cur horizon.

    Consecutive windows are forced non-overlapping (the B of window
    *k+1* is clamped past the E of window *k*): ``t_cur`` is strictly
    increasing across grants, so the horizon edge is faithful and only
    the left edge can be nudged right by clamping.
    """
    begin = emitter.ts(pid, SYNC_TID, _as_float(record.get("hdl_s")))
    end_s = _as_float(record.get("t_cur"))
    end = emitter.ts(pid, SYNC_TID, end_s)
    emitter.add("B", "window", pid, SYNC_TID, begin,
                args=_args(record, "t_cur", "hdl_s"))
    emitter.add("E", "window", pid, SYNC_TID, end)


def validate_chrome_trace(payload: Dict[str, object]
                          ) -> Dict[str, object]:
    """Schema-check a trace_event payload; returns a summary.

    Checks: every event carries ``ph``/``pid``/``tid`` (plus ``ts``
    for non-metadata), per-track timestamps are monotone
    non-decreasing, ``B``/``E`` spans pair up per track, and every
    flow chain starts with ``s`` and ends with ``f``.

    Raises:
        ChromeTraceError: on the first violation found.
    """
    events = payload.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise ChromeTraceError("payload has no traceEvents")
    frontier: Dict[tuple, float] = {}
    stacks: Dict[tuple, List[str]] = {}
    flows: Dict[object, List[str]] = {}
    counts: Dict[str, int] = {}
    for index, event in enumerate(events):
        ph = event.get("ph")
        if ph is None or "pid" not in event or "tid" not in event:
            raise ChromeTraceError(
                f"event {index} missing ph/pid/tid: {event!r}")
        counts[ph] = counts.get(ph, 0) + 1
        if ph == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            raise ChromeTraceError(
                f"event {index} has no numeric ts: {event!r}")
        key = (event["pid"], event["tid"])
        last = frontier.get(key)
        if last is not None and ts < last:
            raise ChromeTraceError(
                f"event {index}: track {key} ts {ts} < {last} "
                "(non-monotone)")
        frontier[key] = float(ts)
        if ph == "B":
            stacks.setdefault(key, []).append(str(event.get("name")))
        elif ph == "E":
            stack = stacks.get(key)
            if not stack:
                raise ChromeTraceError(
                    f"event {index}: E without open B on track {key}")
            opened = stack.pop()
            name = event.get("name")
            if name is not None and str(name) != opened:
                raise ChromeTraceError(
                    f"event {index}: E {name!r} closes B {opened!r}")
        elif ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ChromeTraceError(
                    f"event {index}: X without non-negative dur")
        elif ph in ("s", "t", "f"):
            flows.setdefault(event.get("id"), []).append(ph)
    for key, stack in stacks.items():
        if stack:
            raise ChromeTraceError(
                f"track {key}: unclosed B span(s) {stack!r}")
    for flow_id, phases in flows.items():
        if phases[0] != "s":
            raise ChromeTraceError(
                f"flow {flow_id!r} starts with {phases[0]!r}, not 's'")
        if phases[-1] != "f":
            raise ChromeTraceError(
                f"flow {flow_id!r} ends with {phases[-1]!r}, not 'f'")
        if any(ph != "t" for ph in phases[1:-1]):
            raise ChromeTraceError(
                f"flow {flow_id!r} has a non-'t' middle step")
    return {"events": len(events), "phases": counts,
            "tracks": sorted(frontier), "flows": len(flows)}


def flow_tracks(payload: Dict[str, object]) -> Dict[object, Set[int]]:
    """Map each flow (cell) id to the set of track ids it touches —
    the cross-domain connectivity check of the acceptance criteria."""
    result: Dict[object, Set[int]] = {}
    for event in payload.get("traceEvents", []):
        if event.get("ph") in ("s", "t", "f"):
            result.setdefault(event.get("id"), set()).add(
                event.get("tid"))
    return result


def flow_processes(payload: Dict[str, object]
                   ) -> Dict[object, Set[int]]:
    """Map each flow (cell) id to the set of *pids* it touches — a
    flow spanning two pids is a cross-process provenance chain (the
    distributed acceptance check: every sampled cell that hopped
    shards must appear here with ≥ 2 pids)."""
    result: Dict[object, Set[int]] = {}
    for event in payload.get("traceEvents", []):
        if event.get("ph") in ("s", "t", "f"):
            result.setdefault(event.get("id"), set()).add(
                event.get("pid"))
    return result
