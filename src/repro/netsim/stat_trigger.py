"""Statistic-triggered interrupts (OPNET 'stat' interrupts).

A process model can ask to be interrupted when an observed quantity
crosses a threshold — e.g. a queue filling past a high-water mark, a
loss counter becoming non-zero.  :class:`StatTrigger` polls a value
function on a fixed interval and delivers a STAT interrupt to its
process on each crossing, carrying the observed value.
"""

from __future__ import annotations

from typing import Callable, Optional

from .events import Interrupt, InterruptKind
from .kernel import Kernel
from .process import ProcessModel

__all__ = ["StatTrigger"]


class StatTrigger:
    """Delivers STAT interrupts on threshold crossings.

    Args:
        kernel: the simulation kernel.
        process: the process to interrupt (must be started before the
            first crossing fires).
        value_fn: sampled every *interval*; returns a number.
        threshold: the crossing level.
        interval: polling period in simulated seconds.
        direction: ``"rising"`` interrupts when the value moves from
            below the threshold to >= it; ``"falling"`` the reverse.
        code: interrupt code delivered with the STAT interrupt.

    The trigger re-arms automatically; :attr:`crossings` counts
    deliveries.  Stop polling with :meth:`cancel`.
    """

    def __init__(self, kernel: Kernel, process: ProcessModel,
                 value_fn: Callable[[], float], threshold: float,
                 interval: float, direction: str = "rising",
                 code: int = 0) -> None:
        if interval <= 0:
            raise ValueError(f"non-positive polling interval {interval}")
        if direction not in ("rising", "falling"):
            raise ValueError(f"unknown direction {direction!r}")
        self.kernel = kernel
        self.process = process
        self.value_fn = value_fn
        self.threshold = threshold
        self.interval = interval
        self.direction = direction
        self.code = code
        self.crossings = 0
        self._armed = True
        self._last: Optional[float] = None
        kernel.schedule_after(interval, self._poll)

    def cancel(self) -> None:
        """Stop polling (takes effect at the next poll)."""
        self._armed = False

    def _crossed(self, previous: float, current: float) -> bool:
        if self.direction == "rising":
            return previous < self.threshold <= current
        return previous >= self.threshold > current

    def _poll(self) -> None:
        if not self._armed:
            return
        value = float(self.value_fn())
        if self._last is not None and self._crossed(self._last, value):
            self.crossings += 1
            self.process.deliver(Interrupt(kind=InterruptKind.STAT,
                                           code=self.code, data=value))
        self._last = value
        if self._armed:
            self.kernel.schedule_after(self.interval, self._poll)
