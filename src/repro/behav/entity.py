"""The behavioural endpoint of the simulator coupling.

:class:`BehavioralEntity` is the ``level="behav"`` implementation of
:class:`~repro.core.contract.DutContract`: it stands where a
:class:`~repro.core.cosim.CosimulationEntity` would, but its DUT is a
behavioural twin (:mod:`repro.behav.twins`) evaluated eagerly in
netsim time.  ``send_cell`` runs the twin synchronously — zero-delta
computation, with output timestamps from the fixed latency model — so
no HDL kernel and no synchroniser exist for this entity, and null
messages (:meth:`BehavioralEntity.advance_time`) are pure bookkeeping.

The observability surface matches the RTL entity where it is
meaningful at cell granularity: the same
``cosim.cell_ingress_latency_s`` / ``cosim.cell_e2e_latency_s``
histograms (now recording *modelled* latencies), the same
``post``/``ingress``/``dut_out`` provenance hops (stamped with
modelled seconds in the HDL-time slot and a ``level="behav"`` marker
on the post hop), and a ``finish`` trace record.
"""

from __future__ import annotations

from typing import (Callable, Dict, List, Optional, Tuple,
                    TYPE_CHECKING)

from ..atm.cell import AtmCell
from ..core.contract import DutContract
from ..core.timebase import TimeBase
from ..netsim.packet import Packet
from .twins import BehavioralTwin

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.metrics import MetricsRegistry
    from ..obs.provenance import ProvenanceTracker
    from ..obs.trace import TraceWriter

__all__ = ["BehavioralEntity"]


class BehavioralEntity(DutContract):
    """The netsim-side endpoint of one behavioural twin.

    Args:
        twin: the behavioural DUT model.
        timebase: second/tick conversion (for modelled-clock metrics).
        port: the twin input/output port this entity couples (multi-
            port twins — the switch fabric — take one entity per port,
            mirroring the per-port streams of the RTL coupling).
        metrics, trace, provenance: the environment's observability
            hooks, all optional and None-guarded.

    Response cells are collected in :attr:`output_cells` as
    ``(modelled_seconds, AtmCell)`` tuples and passed to
    :attr:`on_output` when set — the same surface the RTL entity
    exposes, so taps, comparators and sinks are reused unchanged.
    """

    level = "behav"

    def __init__(self, twin: BehavioralTwin,
                 timebase: Optional[TimeBase] = None,
                 port: int = 0,
                 metrics: Optional["MetricsRegistry"] = None,
                 trace: Optional["TraceWriter"] = None,
                 provenance: Optional["ProvenanceTracker"] = None
                 ) -> None:
        self.twin = twin
        self.timebase = timebase if timebase is not None \
            else twin.timebase
        self.port = port
        self.output_cells: List[Tuple[float, AtmCell]] = []
        self.on_output: Optional[Callable[[float, AtmCell], None]] = None
        self.cells_in = 0
        self.ticks_in = 0
        #: latest netsim time announced by a null message
        self.horizon = 0.0
        #: modelled time of the twin's latest activity on this port
        self._last_activity = 0.0
        #: netsim post time of the cell currently being evaluated —
        #: twin outputs arrive synchronously inside send_cell, so this
        #: pairs each response with its causing stimulus exactly (no
        #: FIFO matching needed at zero delta)
        self._current_post = 0.0
        self._trace = trace
        self._prov = provenance
        self._ingress_hist = None
        self._e2e_hist = None
        if metrics is not None and metrics.enabled:
            self._ingress_hist = metrics.histogram(
                "cosim.cell_ingress_latency_s")
            self._e2e_hist = metrics.histogram(
                "cosim.cell_e2e_latency_s")
        twin.bind_output(self._on_twin_output, port=port)

    # ------------------------------------------------------------------
    # Network-simulator-side API (the DutContract surface)
    # ------------------------------------------------------------------
    def send_cell(self, time: float, cell) -> None:
        """Post one cell stamped with netsim *time*; the twin evaluates
        it synchronously (zero-delta) and any response cells are
        emitted before this call returns."""
        if isinstance(cell, Packet):
            cell = AtmCell.from_packet(cell)
        self.cells_in += 1
        if self._prov is not None:
            self._prov.record_hop(cell.trace_id, "post", t=time,
                                  hdl_s=self._last_activity,
                                  level="behav")
        self._current_post = time
        done = self.twin.cell_arrival(time, cell, port=self.port)
        if done > self._last_activity:
            self._last_activity = done
        if self._ingress_hist is not None:
            self._ingress_hist.record(max(0.0, done - time))
        if self._prov is not None:
            self._prov.record_hop(cell.trace_id, "ingress", hdl_s=done)

    def send_tariff_tick(self, time: float) -> None:
        """Post a tariff-interval tick stamped with netsim *time*."""
        tick = getattr(self.twin, "tariff_tick", None)
        if tick is None:
            raise ValueError("entity has no tick signal configured")
        self.ticks_in += 1
        tick(time)
        if time > self._last_activity:
            self._last_activity = time

    def advance_time(self, time: float) -> None:
        """Null message — pure bookkeeping at zero delta: the twin
        holds no pending work, so there is nothing to release."""
        if time > self.horizon:
            self.horizon = time

    def finish(self, time: Optional[float] = None) -> None:
        """Settle the entity (a no-op beyond bookkeeping: eager
        evaluation leaves no backlog, the behavioural counterpart of
        the RTL drain-and-settle)."""
        if time is not None:
            self.advance_time(time)
        if self._trace is not None:
            self._trace.emit("finish", hdl_s=self._last_activity,
                             residual=0, level="behav")

    # ------------------------------------------------------------------
    # Twin-side internals
    # ------------------------------------------------------------------
    def _on_twin_output(self, when: float, cell: AtmCell) -> None:
        if when > self._last_activity:
            self._last_activity = when
        self.output_cells.append((when, cell))
        if self._e2e_hist is not None:
            self._e2e_hist.record(max(0.0, when - self._current_post))
        if self._prov is not None:
            self._prov.record_hop(cell.trace_id, "dut_out", hdl_s=when)
        if self.on_output is not None:
            self.on_output(when, cell)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def modelled_clocks(self) -> int:
        """Whole DUT clocks of modelled activity — the behavioural
        analogue of the RTL's executed clock count, and the basis of
        the behavioural cyc/s benchmark dimension."""
        return self.timebase.ticks_to_clocks(
            self.timebase.to_ticks(self._last_activity))

    def snapshot(self) -> Dict[str, object]:
        """Per-entity metrics snapshot (no ``sync`` section — there is
        no synchroniser to report on)."""
        return {
            "level": self.level,
            "cells_in": self.cells_in,
            "ticks_in": self.ticks_in,
            "output_cells": len(self.output_cells),
            "modelled_clocks": self.modelled_clocks,
            "dut": self.twin.counters(),
        }
