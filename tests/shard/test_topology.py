"""Topology specs, sharded-vs-local byte-identity, failure surfacing."""

import json

import pytest

from repro.shard import (ShardError, ShardSpec, ShardSpecError,
                         TopologySpec, run_topology)

BEHAV2 = dict(shards=[ShardSpec("shard0", level="behav"),
                      ShardSpec("shard1", level="behav")])


# ----------------------------------------------------------------------
# Spec construction and loading
# ----------------------------------------------------------------------
def test_spec_defaults_are_valid():
    spec = TopologySpec()
    assert [s.id for s in spec.shards] == ["shard0", "shard1"]
    assert spec.transport == "pipe"
    assert spec.as_dict()["topology"]["shards"][0]["level"] == "auto"


@pytest.mark.parametrize("kwargs, message", [
    (dict(shards=[]), "needs >= 1 shard"),
    (dict(shards=[ShardSpec("a"), ShardSpec("a")]), "duplicate"),
    (dict(shards=[ShardSpec("a", num_ports=1)]), ">= 2 ports"),
    (dict(cells=0), ">= 1 cell"),
    (dict(window_slots=0), ">= 1 window slot"),
    (dict(drain_windows=-1), "negative drain_windows"),
    (dict(transport="carrier-pigeon"), "unknown transport"),
    (dict(shards=[ShardSpec("solo")], chain=True), ">= 2 shards"),
    (dict(inject={"ghost": {"kind": "exit"}}), "unknown shard"),
])
def test_spec_validation_rejects(kwargs, message):
    with pytest.raises(ShardSpecError, match=message):
        TopologySpec(**kwargs)


def test_from_mapping_count_shorthand():
    spec = TopologySpec.from_mapping({
        "topology": {"count": 3, "level": "behav", "chain": True},
        "run": {"cells": 12, "seed": 7},
        "execution": {"transport": "socket", "max_batch": 64},
    })
    assert [s.id for s in spec.shards] == ["shard0", "shard1",
                                           "shard2"]
    assert all(s.level == "behav" for s in spec.shards)
    assert (spec.cells, spec.seed) == (12, 7)
    assert spec.chain and spec.transport == "socket"
    assert spec.max_batch == 64


def test_from_mapping_explicit_shards_override_defaults():
    spec = TopologySpec.from_mapping({
        "topology": {"level": "behav",
                     "shards": [{"id": "edge"},
                                {"id": "core", "level": "rtl",
                                 "accounting": False}]},
    })
    assert spec.shards[0] == ShardSpec("edge", level="behav")
    assert spec.shards[1] == ShardSpec("core", level="rtl",
                                       accounting=False)


@pytest.mark.parametrize("data, message", [
    ({"topology": {"count": 2, "shards": []}}, "shards OR count"),
    ({"topology": {"warp": 9}}, "unknown key"),
    ({"run": {"cells": 8, "speed": 1}}, "unknown key"),
    ({"sections": {}}, "unknown spec section"),
    ({"topology": {"shards": [{"id": "a", "bogus": 1}]}},
     "unknown key"),
    ([], "must be a table"),
])
def test_from_mapping_rejects_unknown_structure(data, message):
    with pytest.raises(ShardSpecError, match=message):
        TopologySpec.from_mapping(data)


def test_from_file_json(tmp_path):
    path = tmp_path / "topo.json"
    path.write_text(json.dumps(
        {"topology": {"count": 2, "level": "behav"},
         "run": {"cells": 8}}))
    spec = TopologySpec.from_file(path)
    assert len(spec.shards) == 2 and spec.cells == 8


def test_from_file_rejects_missing_and_unknown_suffix(tmp_path):
    with pytest.raises(ShardSpecError, match="no topology spec"):
        TopologySpec.from_file(tmp_path / "absent.toml")
    bad = tmp_path / "topo.yaml"
    bad.write_text("topology: {}")
    with pytest.raises(ShardSpecError, match="unknown spec format"):
        TopologySpec.from_file(bad)


def test_from_file_toml(tmp_path):
    pytest.importorskip("repro.shard.topology")
    from repro.shard import topology as topo_mod
    if topo_mod._toml is None:
        pytest.skip("no TOML reader on this interpreter")
    path = tmp_path / "topo.toml"
    path.write_text(
        "[topology]\ncount = 2\nlevel = \"behav\"\nchain = true\n"
        "[run]\ncells = 8\n")
    spec = TopologySpec.from_file(path)
    assert spec.chain and spec.shards[1].level == "behav"


# ----------------------------------------------------------------------
# The acceptance property: sharded == local, byte for byte
# ----------------------------------------------------------------------
@pytest.mark.parametrize("transport", ["pipe", "socket", "shm"])
def test_two_shard_chain_byte_identical_to_local(transport):
    """Seeded two-switch topology: the output cell streams of the
    worker-process run must be byte-identical (per-port SHA-256) to
    the single-process replay of the same op log."""
    spec = TopologySpec(cells=16, seed=3, chain=True,
                        window_slots=32, transport=transport,
                        **BEHAV2)
    local = run_topology(spec, mode="local")
    sharded = run_topology(spec, mode="sharded")
    assert local["digest"] == sharded["digest"]
    for ref, got in zip(local["shards"], sharded["shards"]):
        assert ref["digests"] == got["digests"]
        assert ref["result"]["counters"] == got["result"]["counters"]
        assert ref["result"]["records"] == got["result"]["records"]
    # chained forwarding actually happened: downstream saw more cells
    assert sharded["shards"][1]["result"]["cells_in"] > spec.cells
    assert sharded["totals"]["frames"] > 0


def test_mixed_level_topology_byte_identical():
    """A behav shard feeding an RTL shard (the PR 7 contract applied
    across processes) stays byte-identical to the local reference."""
    spec = TopologySpec(
        shards=[ShardSpec("edge", level="behav"),
                ShardSpec("core", level="rtl")],
        cells=8, seed=1, chain=True, window_slots=32)
    local = run_topology(spec, mode="local")
    sharded = run_topology(spec, mode="sharded")
    assert local["digest"] == sharded["digest"]
    levels = [s["level"] for s in sharded["shards"]]
    assert levels == ["behav", "rtl"]
    # the RTL shard exercised the conservative protocol
    assert sharded["totals"]["sync"]["messages_posted"] > 0
    assert sharded["totals"]["sync"]["windows_granted"] > 0


def test_mixed_level_chain_at_volume_byte_identical():
    """The two-switch example shape at volume: a behav edge feeding an
    RTL core, enough cells that several ingress events share or abut
    the accounting unit's coalesced null horizon.  Regression test for
    a lag-invariant violation: with several synchronisers sharing one
    HDL kernel, a sibling entity's post may run the shared clock to a
    cell's stamp before the accounting sync flushes its stale deferred
    null bound — ``post`` must register the message's timestamp first
    (seen as a CausalityError at cells=32, never at cells=8)."""
    spec = TopologySpec(
        shards=[ShardSpec("edge", level="behav"),
                ShardSpec("core", level="rtl")],
        cells=32, seed=0, chain=True, window_slots=64,
        drain_windows=2)
    local = run_topology(spec, mode="local")
    sharded = run_topology(spec, mode="sharded")
    assert local["digest"] == sharded["digest"]
    for ref, got in zip(local["shards"], sharded["shards"]):
        assert ref["digests"] == got["digests"]
        assert ref["result"]["records"] == got["result"]["records"]
    # the RTL core coalesced nulls while chained traffic flowed in
    assert sharded["totals"]["sync"]["null_messages_coalesced"] > 0
    assert sharded["shards"][1]["result"]["cells_in"] > spec.cells


def test_determinism_same_seed_same_digest():
    spec = TopologySpec(cells=12, seed=5, chain=True, **BEHAV2)
    first = run_topology(spec, mode="local")
    again = run_topology(spec, mode="local")
    assert first["digest"] == again["digest"]
    different = run_topology(
        TopologySpec(cells=12, seed=6, chain=True, **BEHAV2),
        mode="local")
    assert different["digest"] != first["digest"]


def test_unknown_mode_rejected():
    with pytest.raises(ShardSpecError, match="unknown mode"):
        run_topology(TopologySpec(**BEHAV2), mode="quantum")


# ----------------------------------------------------------------------
# Failure surfacing: crash mid-window, remote tracebacks
# ----------------------------------------------------------------------
def test_shard_crash_mid_window_reports_exitcode():
    """A worker hard-dying inside an exchange must surface as a
    ShardError naming the shard and its exit code, not a hang."""
    spec = TopologySpec(cells=16, seed=0, window_slots=32,
                        inject={"shard1": {"kind": "exit",
                                           "at_op": 5}},
                        **BEHAV2)
    with pytest.raises(ShardError) as excinfo:
        run_topology(spec, mode="sharded")
    message = str(excinfo.value)
    assert excinfo.value.shard == "shard1"
    assert "died mid-exchange" in message
    assert "exitcode=23" in message


def test_injected_error_carries_full_remote_traceback():
    spec = TopologySpec(cells=16, seed=0, window_slots=32,
                        inject={"shard0": {"kind": "error",
                                           "at_op": 5}},
                        **BEHAV2)
    with pytest.raises(ShardError) as excinfo:
        run_topology(spec, mode="sharded")
    message = str(excinfo.value)
    assert excinfo.value.shard == "shard0"
    assert "RuntimeError" in message
    assert "injected shard error" in message
    assert "--- remote traceback ---" in message
    assert "Traceback (most recent call last)" in message


def test_trace_dir_stamps_shard_id(tmp_path):
    spec = TopologySpec(cells=8, seed=0, window_slots=32,
                        trace_dir=str(tmp_path / "traces"),
                        **BEHAV2)
    run_topology(spec, mode="sharded")
    for shard_id in ("shard0", "shard1"):
        path = tmp_path / "traces" / f"{shard_id}.trace.jsonl"
        assert path.is_file(), f"missing trace for {shard_id}"
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        assert records, "trace is empty"
        assert all(r.get("shard") == shard_id for r in records)
