"""Event primitives for the discrete-event network simulation kernel.

The kernel mirrors the event semantics the paper assumes of OPNET
(section 3.1): every simulator manages an *event list* ordered by
time stamp, events execute in monotone non-decreasing time order, and
events may be scheduled for the current or any future time but never
for the past.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

#: Global monotone sequence used to break ties between events that carry
#: the same (time, priority) key.  Guarantees deterministic FIFO ordering
#: of simultaneous events, which the co-simulation protocol relies on.
_event_sequence = itertools.count()


class InterruptKind(enum.Enum):
    """Classification of interrupts delivered to process models.

    Mirrors OPNET's interrupt taxonomy: *stream* interrupts signal packet
    arrival on an input stream, *self* interrupts are timers a process
    schedules for itself, *stat* interrupts signal a statistic crossing,
    and *begin*/*end* bracket the simulation.
    """

    BEGIN = "begin"
    STREAM = "stream"
    SELF = "self"
    STAT = "stat"
    REMOTE = "remote"
    END = "end"


@dataclass(frozen=True)
class Interrupt:
    """An interrupt delivered to a process model.

    Attributes:
        kind: the interrupt classification.
        stream: input stream index for STREAM interrupts (else ``None``).
        code: user code distinguishing SELF interrupts.
        data: payload — the arriving packet for STREAM interrupts, or any
            user object for SELF/REMOTE interrupts.
    """

    kind: InterruptKind
    stream: Optional[int] = None
    code: int = 0
    data: Any = None


@dataclass(order=True)
class Event:
    """A scheduled event in the kernel's event list.

    Events order by ``(time, priority, seq)``.  Lower priority values
    execute first among simultaneous events; ``seq`` preserves FIFO order
    of equal-priority simultaneous events.
    """

    time: float
    priority: int
    seq: int = field(default_factory=lambda: next(_event_sequence))
    action: Callable[[], None] = field(compare=False, default=None)
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event cancelled; the kernel drops it when popped."""
        self.cancelled = True


class SchedulingError(Exception):
    """Raised when an event is scheduled in the past or the kernel is
    otherwise asked to violate causality."""
