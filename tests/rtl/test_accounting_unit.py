"""Tests for the RTL accounting unit, co-verified against the
algorithmic reference model — the paper's case study at unit scale."""

import pytest

from repro.atm import AccountingUnit, AtmCell, Tariff
from repro.hdl import RisingEdge, Simulator
from repro.rtl import AccountingUnitRtl, CellSender, RECORD_WORDS


def make_bench(bug=None, table_size=64):
    sim = Simulator()
    clk = sim.signal("clk", init="0")
    sim.add_clock(clk, period=10)
    dut = AccountingUnitRtl(sim, "acct", clk, bug=bug,
                            table_size=table_size)
    sender = CellSender(sim, "tx", clk, port=dut.rx)
    records = []

    def collector(s):
        if clk.rising() and dut.rec_valid.value == "1":
            records.append(dut.rec_word.as_int())

    # sample rec_word one clock after rec_valid was driven
    def gen():
        while True:
            yield RisingEdge(clk)
            if dut.rec_valid.value == "1":
                records.append(dut.rec_word.as_int())

    sim.add_generator("rec_mon", gen())
    return sim, clk, dut, sender, records


def decode_records(words):
    """Group the flat word stream into 6-word records."""
    assert len(words) % RECORD_WORDS == 0
    return [tuple(words[i:i + RECORD_WORDS])
            for i in range(0, len(words), RECORD_WORDS)]


def pulse_tariff(sim, dut, clocks_after=0):
    dut.tariff_tick.drive("1")
    sim.run_for(10)
    dut.tariff_tick.drive("0")
    if clocks_after:
        sim.run_for(10 * clocks_after)


def test_counts_cells_per_connection():
    sim, clk, dut, sender, records = make_bench()
    dut.register(1, 100, units_per_cell=2)
    dut.register(1, 200, units_per_cell=3)
    for _ in range(4):
        sender.send(AtmCell.with_payload(1, 100, []).to_octets())
    sender.send(AtmCell.with_payload(1, 200, []).to_octets())
    sim.run(until=10 * 400)
    pulse_tariff(sim, dut, clocks_after=20)
    recs = decode_records(records)
    assert recs == [(1, 100, 0, 4, 0, 8), (1, 200, 0, 1, 0, 3)]


def test_clp_discrimination():
    sim, clk, dut, sender, records = make_bench()
    dut.register(1, 1, units_per_cell=5, units_per_cell_clp1=1)
    sender.send(AtmCell.with_payload(1, 1, [], clp=0).to_octets())
    sender.send(AtmCell.with_payload(1, 1, [], clp=1).to_octets())
    sim.run(until=10 * 200)
    pulse_tariff(sim, dut, clocks_after=20)
    assert decode_records(records) == [(1, 1, 0, 1, 1, 6)]


def test_unknown_and_idle_cells():
    sim, clk, dut, sender, records = make_bench()
    dut.register(1, 1)
    sender.send(AtmCell.with_payload(9, 9, []).to_octets())  # unknown
    sender.send(AtmCell.idle().to_octets())                  # idle
    sim.run(until=10 * 200)
    assert dut.unknown_cells == 1
    assert dut.cells_seen == 1  # idle cells never counted


def test_interval_advances_and_counters_reset():
    sim, clk, dut, sender, records = make_bench()
    dut.register(1, 1, units_per_cell=1)
    sender.send(AtmCell.with_payload(1, 1, []).to_octets())
    sim.run(until=10 * 100)
    pulse_tariff(sim, dut, clocks_after=20)
    sender.send(AtmCell.with_payload(1, 1, []).to_octets())
    sender.send(AtmCell.with_payload(1, 1, []).to_octets())
    sim.run(until=10 * 400)
    pulse_tariff(sim, dut, clocks_after=20)
    recs = decode_records(records)
    assert recs[0] == (1, 1, 0, 1, 0, 1)
    assert recs[1] == (1, 1, 1, 2, 0, 2)
    assert dut.interval == 2


def test_matches_reference_model_on_mixed_traffic():
    """The full co-verification check: RTL records == reference records."""
    sim, clk, dut, sender, records = make_bench()
    reference = AccountingUnit(drop_unknown=True)
    connections = [(1, 100, 2, 0, 5), (1, 200, 1, 1, 0), (2, 50, 3, 2, 7)]
    for vpi, vci, upc, upc1, fixed in connections:
        dut.register(vpi, vci, units_per_cell=upc,
                     units_per_cell_clp1=upc1, fixed_units=fixed)
        reference.register(vpi, vci, Tariff(units_per_cell=upc,
                                            units_per_cell_clp1=upc1,
                                            fixed_units=fixed))
    traffic = [(1, 100, 0), (1, 200, 1), (1, 100, 1), (2, 50, 0),
               (1, 100, 0), (2, 50, 1), (1, 200, 0), (9, 9, 0)]
    for vpi, vci, clp in traffic:
        sender.send(AtmCell.with_payload(vpi, vci, [], clp=clp).to_octets())
        reference.cell_arrival(vpi, vci, clp=clp)
    sim.run(until=10 * 60 * len(traffic))
    pulse_tariff(sim, dut, clocks_after=40)
    expected = sorted(
        (r.vpi, r.vci, r.interval, r.cells_clp0, r.cells_clp1,
         r.charge_units) for r in reference.close_interval())
    assert sorted(decode_records(records)) == expected


@pytest.mark.parametrize("bug,expect_divergence", [
    (None, False),
    ("swap_clp", True),
    ("charge_off_by_one", True),
])
def test_injected_bugs_diverge_from_reference(bug, expect_divergence):
    sim, clk, dut, sender, records = make_bench(bug=bug)
    reference = AccountingUnit(drop_unknown=True)
    dut.register(1, 1, units_per_cell=2, units_per_cell_clp1=1)
    reference.register(1, 1, Tariff(units_per_cell=2,
                                    units_per_cell_clp1=1))
    for clp in (0, 1, 1, 0):
        sender.send(AtmCell.with_payload(1, 1, [], clp=clp).to_octets())
        reference.cell_arrival(1, 1, clp=clp)
    sim.run(until=10 * 300)
    pulse_tariff(sim, dut, clocks_after=20)
    expected = [(r.vpi, r.vci, r.interval, r.cells_clp0, r.cells_clp1,
                 r.charge_units) for r in reference.close_interval()]
    got = decode_records(records)
    assert (got != expected) == expect_divergence


def test_lost_tick_bug_detected_by_interval_index():
    sim, clk, dut, sender, records = make_bench(bug="lost_tick")
    dut.register(1, 1)
    pulse_tariff(sim, dut, clocks_after=20)   # processed
    pulse_tariff(sim, dut, clocks_after=20)   # swallowed by the bug
    recs = decode_records(records)
    assert len(recs) == 1  # second interval never closed


def test_table_full_rejected():
    sim, clk, dut, sender, records = make_bench(table_size=1)
    dut.register(1, 1)
    with pytest.raises(ValueError):
        dut.register(1, 2)


def test_duplicate_connection_rejected():
    sim, clk, dut, sender, records = make_bench()
    dut.register(1, 1)
    with pytest.raises(ValueError):
        dut.register(1, 1)


def test_unknown_bug_name_rejected():
    sim = Simulator()
    clk = sim.signal("clk", init="0")
    with pytest.raises(ValueError):
        AccountingUnitRtl(sim, "a", clk, bug="gremlin")


def test_record_backlog_drains_one_word_per_clock():
    sim, clk, dut, sender, records = make_bench()
    for vci in range(4):
        dut.register(1, vci)
    pulse_tariff(sim, dut)
    backlog = dut.output_backlog_words
    assert backlog > 0
    sim.run_for(10 * (backlog + 2))
    assert dut.output_backlog_words == 0
    assert len(records) == 4 * RECORD_WORDS
