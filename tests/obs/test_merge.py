"""Telemetry merging: counter sums, histogram bucket-merges, span
streams, coverage recombination and the multi-process Chrome export."""

import pytest

from repro.obs import (Histogram, MetricsRegistry, export_chrome_trace,
                       flow_processes, flow_tracks, merge_counters,
                       merge_coverage, merge_histograms,
                       merge_instrument_snapshots, merge_spans,
                       merge_telemetry, merge_trace_records,
                       validate_chrome_trace)
from repro.obs.chrome import PID


# ----------------------------------------------------------------------
# Counters and histograms
# ----------------------------------------------------------------------
def test_merge_counters_sums_by_name():
    merged = merge_counters([{"a": 1, "b": 2}, {"b": 3, "c": 4}])
    assert merged == {"a": 1, "b": 5, "c": 4}
    assert list(merged) == ["a", "b", "c"]  # sorted


def test_merge_histograms_matches_one_big_histogram():
    """Bucket-merging two snapshots must reproduce exactly what one
    histogram fed all the samples would have reported — count, total,
    min/max, buckets AND the approximate quantiles."""
    left_samples = [1e-6, 3e-6, 2e-3, 0.4]
    right_samples = [5e-7, 8e-3, 8e-3, 7.0]  # 7.0 overflows 5 s
    whole = Histogram("ref")
    left = Histogram("l")
    right = Histogram("r")
    for s in left_samples:
        whole.record(s)
        left.record(s)
    for s in right_samples:
        whole.record(s)
        right.record(s)
    merged = merge_histograms([left.as_dict(), right.as_dict()])
    reference = whole.as_dict()
    # float summation order differs by one ulp on total/mean
    assert merged.pop("total") == pytest.approx(reference.pop("total"))
    assert merged.pop("mean") == pytest.approx(reference.pop("mean"))
    assert merged == reference


def test_merge_histograms_empty_inputs():
    merged = merge_histograms([])
    assert merged["count"] == 0
    assert merged["p50"] is None and merged["p99"] is None
    assert merged["buckets"] == []


def test_merge_instrument_snapshots_folds_both_kinds():
    a = MetricsRegistry()
    b = MetricsRegistry()
    a.counter("n.posts").inc(2)
    b.counter("n.posts").inc(3)
    b.counter("n.only_b").inc(1)
    a.histogram("lat").record(1e-4)
    b.histogram("lat").record(2e-4)
    merged = merge_instrument_snapshots([a.snapshot(), b.snapshot()])
    assert merged["counters"] == {"n.only_b": 1, "n.posts": 5}
    assert merged["histograms"]["lat"]["count"] == 2


# ----------------------------------------------------------------------
# Span streams
# ----------------------------------------------------------------------
def test_merge_spans_orders_by_time_and_tags_domains():
    edge = [{"ev": "span", "cell": 1, "hop": "source", "t": 0.3,
             "shard": "edge"},
            {"ev": "span", "cell": 1, "hop": "shard_out", "t": 0.5,
             "shard": "edge"}]
    core = [{"ev": "span", "cell": 1, "hop": "shard_in", "t": 0.4,
             "shard": "core"},
            {"ev": "span", "cell": 1, "hop": "ingress", "t": 0.6,
             "hdl_s": 0.55, "shard": "core"},
            {"ev": "span", "cell": 2, "hop": "dut_out",
             "hdl_s": 0.1, "shard": "core"}]
    merged = merge_spans([edge, core])
    assert [s["hop"] for s in merged] == \
        ["dut_out", "source", "shard_in", "shard_out", "ingress"]
    domains = {s["hop"]: s["domain"] for s in merged}
    assert domains["source"] == "t"
    assert domains["dut_out"] == "hdl"
    assert domains["ingress"] == "both"
    # inputs are not mutated
    assert "domain" not in edge[0]


# ----------------------------------------------------------------------
# Coverage recombination
# ----------------------------------------------------------------------
def test_merge_coverage_unions_fsm_and_sums_windows():
    payloads = [
        {"coverage": {
            "fsm_states": {"gcu": {"visited": ["INIT", "SETUP"],
                                   "states": 4}},
            "sync_windows": {"messages_posted": 10,
                             "windows_granted": 5,
                             "messages_per_window": 2.0},
            "residual_backlog": {"total": 1, "per_entity": [1]}}},
        {"coverage": {
            "fsm_states": {"gcu": {"visited": ["INIT", "TEARDOWN"],
                                   "states": 4}},
            "sync_windows": {"messages_posted": 20,
                             "windows_granted": 5,
                             "messages_per_window": 4.0},
            "residual_backlog": {"total": 0, "per_entity": [0]}}},
    ]
    merged = merge_coverage(payloads)
    gcu = merged["fsm_states"]["gcu"]
    assert gcu["visited"] == ["INIT", "SETUP", "TEARDOWN"]
    assert gcu["fraction"] == 0.75
    windows = merged["sync_windows"]
    assert windows["messages_posted"] == 30
    assert windows["messages_per_window"] == 3.0  # re-derived, not summed
    assert merged["residual_backlog"] == {"total": 1,
                                          "per_entity": [1, 0]}


def test_merge_telemetry_end_to_end():
    def payload(shard, tid, posted):
        registry = MetricsRegistry()
        registry.counter("n.posts").inc(posted)
        registry.histogram("lat").record(1e-4 * (tid + 1))
        return {"schema": 1, "shard": shard, "level": "behav",
                "instruments": registry.snapshot(),
                "provenance": {"sample": 1, "cells_seen": 2,
                               "cells_sampled": 2,
                               "spans_recorded": 4},
                "spans": [{"ev": "span", "cell": tid, "hop": "source",
                           "t": 0.1 * tid, "shard": shard}],
                "trace_records": 10,
                "coverage": {"fsm_states": {},
                             "sync_windows": {"messages_posted": posted},
                             "residual_backlog": {"total": 0,
                                                  "per_entity": [0]}}}

    merged = merge_telemetry([payload("edge", 1, 3),
                              payload("core", 2, 4)])
    assert merged["shards"] == ["edge", "core"]
    assert merged["instruments"]["counters"]["n.posts"] == 7
    assert merged["instruments"]["histograms"]["lat"]["count"] == 2
    assert merged["provenance"]["cells_seen"] == 4
    assert merged["provenance"]["sample"] == 1  # max, not sum
    assert len(merged["spans"]) == 2
    assert merged["trace_records"] == 20
    assert merged["coverage"]["sync_windows"]["messages_posted"] == 7


def test_merge_telemetry_skips_falsy_payloads():
    merged = merge_telemetry([None, {}])
    assert merged["shards"] == []
    assert merged["spans"] == []


# ----------------------------------------------------------------------
# Multi-process Chrome export
# ----------------------------------------------------------------------
def _shard_records(shard, tid, base):
    return [
        {"ev": "window", "t_cur": base + 1e-4, "hdl_s": base,
         "shard": shard},
        {"ev": "span", "cell": tid, "hop": "post", "t": base,
         "shard": shard},
        {"ev": "span", "cell": tid, "hop": "ingress",
         "t": base + 2e-4, "hdl_s": base + 1e-4, "shard": shard},
    ]


def test_export_assigns_one_pid_per_shard_with_flows_across():
    """Two shards' records export under distinct pids; the shared
    cell id becomes a flow chain crossing both process groups."""
    records = merge_trace_records([
        _shard_records("edge", 4, 0.0)
        + [{"ev": "span", "cell": 4, "hop": "shard_out", "t": 3e-4,
            "shard": "edge"}],
        [{"ev": "span", "cell": 4, "hop": "shard_in", "t": 4e-4,
          "shard": "core"}]
        + _shard_records("core", 4, 5e-4),
    ])
    payload = export_chrome_trace(records)
    validate_chrome_trace(payload)
    pids = {event["pid"] for event in payload["traceEvents"]}
    assert pids == {PID + 1, PID + 2}  # sorted labels: core, edge
    names = {(e["pid"], e["args"]["name"])
             for e in payload["traceEvents"]
             if e.get("name") == "process_name"}
    assert (PID + 1, "shard core") in names
    assert (PID + 2, "shard edge") in names
    owners = flow_processes(payload)
    assert owners[4] == {PID + 1, PID + 2}
    # the flow still spans both time-domain tracks too
    assert len(flow_tracks(payload)[4]) >= 2


def test_export_unlabelled_records_stay_on_the_default_pid():
    records = [{"ev": "span", "cell": 1, "hop": "source", "t": 0.0},
               {"ev": "span", "cell": 1, "hop": "sink", "t": 1e-4}]
    payload = export_chrome_trace(records)
    validate_chrome_trace(payload)
    assert {e["pid"] for e in payload["traceEvents"]} == {PID}
    assert flow_processes(payload)[1] == {PID}


def test_flow_processes_empty_without_flow_events():
    payload = export_chrome_trace([{"ev": "window", "t_cur": 1e-4,
                                    "hdl_s": 0.0}])
    assert flow_processes(payload) == {}
