"""RTL device-under-test designs built on the HDL kernel.

Registers, FIFOs, HEC circuits, octet-serial cell stream interfaces,
the switch port module, the global control unit and the accounting
unit — the hardware side of the paper's co-verification case studies.
"""

from .accounting_unit import AccountingUnitRtl, RECORD_WORDS
from .cell_stream import (CELL_OCTETS, CellReceiver, CellSender,
                          CellStreamPort, clear_shared_templates,
                          enable_shared_templates,
                          shared_template_stats)
from .component import Component
from .control_unit import GlobalControlUnitRtl, LookupClient
from .fifo import SyncFifo
from .hec_circuit import HecChecker, HecGenerator, crc8_step
from .mp_bus import (AccountingMgmtSlave, CTRL_CLEAR, CTRL_REGISTER,
                     CTRL_TICK, MpBusMaster, MpBusSlavePort, REG_CELLS_HI,
                     REG_CELLS_LO, REG_CONN_COUNT, REG_CTRL, REG_FIXED,
                     REG_INTERVAL, REG_STATUS, REG_UPC, REG_UPC1, REG_VCI,
                     REG_VPI, STATUS_FAIL, STATUS_IDLE, STATUS_OK)
from .policer import PolicingDecision, UpcPolicerRtl
from .port_module import AtmPortModuleRtl
from .switch_fabric import AtmSwitchRtl
from .registers import Counter, Register

__all__ = [
    "AccountingUnitRtl", "RECORD_WORDS",
    "CELL_OCTETS", "CellReceiver", "CellSender", "CellStreamPort",
    "enable_shared_templates", "clear_shared_templates",
    "shared_template_stats",
    "Component",
    "GlobalControlUnitRtl", "LookupClient",
    "SyncFifo",
    "HecChecker", "HecGenerator", "crc8_step",
    "AccountingMgmtSlave", "CTRL_CLEAR", "CTRL_REGISTER", "CTRL_TICK",
    "MpBusMaster", "MpBusSlavePort", "REG_CELLS_HI", "REG_CELLS_LO",
    "REG_CONN_COUNT", "REG_CTRL", "REG_FIXED", "REG_INTERVAL",
    "REG_STATUS", "REG_UPC", "REG_UPC1", "REG_VCI", "REG_VPI",
    "STATUS_FAIL", "STATUS_IDLE", "STATUS_OK",
    "PolicingDecision", "UpcPolicerRtl",
    "AtmPortModuleRtl", "AtmSwitchRtl",
    "Counter", "Register",
]
