"""Level-agnostic DUT construction for the swappable designs.

:func:`build_dut` instantiates one of the four swappable DUTs —
port module, switch fabric, policer, accounting unit — at either
abstraction level and couples it into a
:class:`~repro.core.CoVerificationEnvironment`, returning a
:class:`DutHandle` whose surface (entities, records, decisions,
counters) is identical at both levels.  This is the "multi-
abstraction swap" in executable form: scenario builders call
``build_dut(env, kind)`` and the environment's resolved DUT level
(constructor argument, ``REPRO_DUT_LEVEL``, or per-call override)
decides whether an RTL design plus co-simulation entities or a
behavioural twin plus :class:`~repro.behav.entity.BehavioralEntity`
endpoints appear behind the handle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core.contract import DutContract
from ..core.environment import CoVerificationEnvironment
from ..hdl import RisingEdge
from ..rtl import (AccountingUnitRtl, AtmPortModuleRtl, AtmSwitchRtl,
                   RECORD_WORDS, UpcPolicerRtl)
from .twins import (AccountingUnitBehav, AtmPortModuleBehav,
                    AtmSwitchBehav, UpcPolicerBehav)

__all__ = ["DutHandle", "build_dut", "KINDS"]

#: the swappable DUT kinds :func:`build_dut` knows how to construct
KINDS = ("port_module", "switch", "policer", "accounting")


@dataclass
class DutHandle:
    """One constructed DUT with its level-agnostic access surface.

    Attributes:
        kind: one of :data:`KINDS`.
        level: the resolved abstraction level ("rtl" | "behav").
        design: the RTL component or the behavioural twin.
        entities: the coupled endpoints, one per stream port (a
            single-port DUT has one; the switch fabric has one per
            port, index == port number).
        records: zero-arg callable returning the accounting DUT's
            charging records as 6-tuples (empty for other kinds).
        decisions: zero-arg callable returning the policer's
            :class:`~repro.rtl.policer.PolicingDecision` list (empty
            for other kinds).
    """

    kind: str
    level: str
    design: Any
    entities: List[DutContract]
    records: Callable[[], List[Tuple[int, ...]]] = field(
        default=lambda: [])
    decisions: Callable[[], List[Any]] = field(default=lambda: [])

    @property
    def entity(self) -> DutContract:
        """The first (for single-port DUTs: the only) endpoint."""
        return self.entities[0]

    def counters(self) -> Dict[str, int]:
        """The design's counter snapshot — same keys at both levels
        (the shared contract surface the equivalence harness diffs)."""
        return self.design.counters()


def _rtl_record_collector(env: CoVerificationEnvironment,
                          design: AccountingUnitRtl, name: str
                          ) -> Callable[[], List[Tuple[int, ...]]]:
    """Attach a record-bus monitor; returns the grouped-records
    closure."""
    words: List[int] = []

    def _monitor():
        while True:
            yield RisingEdge(env.clk)
            if design.rec_valid.value == "1":
                words.append(design.rec_word.as_int())

    env.hdl.add_generator(f"{name}.records", _monitor())

    def _records() -> List[Tuple[int, ...]]:
        whole = len(words) // RECORD_WORDS
        return [tuple(words[i * RECORD_WORDS:(i + 1) * RECORD_WORDS])
                for i in range(whole)]

    return _records


def build_dut(env: CoVerificationEnvironment, kind: str,
              name: str = "dut", level: Optional[str] = None,
              **config) -> DutHandle:
    """Construct one swappable DUT of *kind* at the resolved *level*
    and couple it into *env*.

    Args:
        env: the hosting environment (provides clock, timebase, level
            policy and observability).
        kind: one of :data:`KINDS`.
        name: instance name for the design and its HDL processes.
        level: per-instance override ("rtl" | "behav" | "auto" |
            None); resolved through
            :meth:`~repro.core.CoVerificationEnvironment.resolved_dut_level`.
        **config: kind-specific knobs forwarded to the design —
            ``bug`` (policer/accounting), ``action`` (policer),
            ``table_size`` (accounting), ``num_ports`` /
            ``lookup_latency`` / ``queue_depth`` (switch).
    """
    if kind not in KINDS:
        raise ValueError(
            f"unknown DUT kind {kind!r}; known: {', '.join(KINDS)}")
    resolved = env.resolved_dut_level(level)
    if resolved == "behav":
        return _build_behav(env, kind, name, **config)
    return _build_rtl(env, kind, name, **config)


def _build_rtl(env: CoVerificationEnvironment, kind: str, name: str,
               **config) -> DutHandle:
    """RTL construction: one design in ``env.hdl``, one co-simulation
    entity per stream port."""
    if kind == "port_module":
        design = AtmPortModuleRtl(env.hdl, name, env.clk)
        entities = [env.add_dut(rx_port=design.rx, tx_port=design.tx)]
        return DutHandle("port_module", "rtl", design, entities)
    if kind == "switch":
        design = AtmSwitchRtl(env.hdl, name, env.clk, **config)
        entities = [
            env.add_dut(rx_port=design.rx_ports[i],
                        tx_port=design.tx_ports[i])
            for i in range(design.num_ports)]
        return DutHandle("switch", "rtl", design, entities)
    if kind == "policer":
        design = UpcPolicerRtl(env.hdl, name, env.clk, **config)
        entities = [env.add_dut(rx_port=design.rx, tx_port=design.tx)]
        return DutHandle("policer", "rtl", design, entities,
                         decisions=lambda: list(design.decisions))
    design = AccountingUnitRtl(env.hdl, name, env.clk, **config)
    entities = [env.add_dut(rx_port=design.rx,
                            tick_signal=design.tariff_tick)]
    return DutHandle("accounting", "rtl", design, entities,
                     records=_rtl_record_collector(env, design, name))


def _build_behav(env: CoVerificationEnvironment, kind: str, name: str,
                 **config) -> DutHandle:
    """Behavioural construction: one twin, one behavioural entity per
    stream port — no HDL kernel involvement at all."""
    if kind == "port_module":
        twin = AtmPortModuleBehav(name, timebase=env.timebase)
        entities = [env.add_dut(behav=twin)]
        return DutHandle("port_module", "behav", twin, entities)
    if kind == "switch":
        twin = AtmSwitchBehav(name, timebase=env.timebase, **config)
        entities = [env.add_dut(behav=twin, behav_port=i)
                    for i in range(twin.num_ports)]
        return DutHandle("switch", "behav", twin, entities)
    if kind == "policer":
        twin = UpcPolicerBehav(name, timebase=env.timebase, **config)
        entities = [env.add_dut(behav=twin)]
        return DutHandle("policer", "behav", twin, entities,
                         decisions=lambda: list(twin.decisions))
    twin = AccountingUnitBehav(name, timebase=env.timebase, **config)
    entities = [env.add_dut(behav=twin)]
    return DutHandle("accounting", "behav", twin, entities,
                     records=lambda: list(twin.records))
