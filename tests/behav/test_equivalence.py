"""Seeded randomised cross-level equivalence: behavioural twin vs RTL.

Each case replays one seeded, slot-aligned cell stream through the
same design at both abstraction levels and diffs the full contract
surface (output cells, records, policing verdicts, counters) via
:func:`repro.behav.run_equivalence`.
"""

import pytest

from repro.behav import KINDS, run_equivalence, run_kind
from repro.sweep import SweepSpec, run_sweep


def _explain(entry):
    """Compact failure description for the assert message."""
    return {key: entry[key] for key in
            ("streams", "records", "decisions", "counters")}


@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.parametrize("seed", [1, 2])
def test_kind_equivalence_cycle_clocking(kind, seed):
    entry = run_kind(kind, cells=48, seed=seed, clocking="cycle")
    assert entry["passed"], _explain(entry)


def test_full_suite_under_event_clocking():
    report = run_equivalence(cells=32, seed=3, clocking="event")
    assert report["passed"], {
        kind: _explain(entry)
        for kind, entry in report["duts"].items()
        if not entry["passed"]}


def test_reports_are_meaningful_not_vacuous():
    report = run_equivalence(cells=48, seed=0)
    acct = report["duts"]["accounting"]
    assert acct["records"]["rtl_count"] > 0
    upc = report["duts"]["policer"]
    assert upc["decisions"]["rtl_count"] > 0
    for kind in ("port_module", "switch", "policer"):
        streams = report["duts"][kind]["streams"]
        assert sum(s["rtl_count"] for s in streams) > 0


@pytest.mark.parametrize("traffic", ["cbr", "poisson", "onoff"])
def test_sweep_scenario_matches_reference_at_both_levels(traffic):
    """The sweep scenario's reference-model comparison passes with the
    DUT at either level, for every traffic model."""
    spec = SweepSpec(traffic=[traffic], ports=[2], seeds=[7],
                     level=["rtl", "behav"], cells=8, jobs=1)
    payload = run_sweep(spec)
    by_level = {run["params"]["level"]: run for run in payload["runs"]}
    assert set(by_level) == {"rtl", "behav"}
    for level, run in by_level.items():
        assert run["status"] == "ok", (level, run)
        assert run["passed"], (level, run["comparison"])
        assert run["records"] > 0
    # behavioural runs report modelled clocks, and no sync protocol
    assert by_level["behav"]["sync_exchanges"] == 0
    assert by_level["behav"]["hdl_clocks"] > 0
    assert by_level["rtl"]["sync_exchanges"] > 0


def test_run_kind_rejects_unknown_kind():
    with pytest.raises(ValueError, match="unknown DUT kind"):
        run_kind("fpga")
