"""RTL global control unit.

The switch-wide connection-table server: port modules request
VPI/VCI lookups over a request/grant interface; a round-robin arbiter
serialises the requests and each lookup takes a configurable number of
clock cycles (the table walk of the real hardware).  This is the block
whose "RTL representation" the paper simulates stand-alone to obtain
the ~300 clock-cycles/second baseline of experiment E1.

Per-client signal bundle (client ``i``):

* ``req[i]``      — request strobe, hold until ``done[i]``,
* ``vpi_in[i]``, ``vci_in[i]`` — the connection to look up,
* ``done[i]``     — one-clock completion pulse,
* ``found[i]``    — lookup hit,
* ``out_port[i]``, ``out_vpi[i]``, ``out_vci[i]`` — the translation.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..hdl.compiled import slot_int
from ..hdl.logic import vector_to_int
from ..hdl.signal import Signal
from ..hdl.simulator import Simulator
from .component import Component

__all__ = ["GlobalControlUnitRtl", "LookupClient"]


class LookupClient:
    """The signal bundle one port module uses to query the GCU."""

    def __init__(self, sim: Simulator, name: str) -> None:
        self.name = name
        self.req = sim.signal(f"{name}.req", init="0")
        self.vpi_in = sim.signal(f"{name}.vpi_in", width=8, init=0)
        self.vci_in = sim.signal(f"{name}.vci_in", width=16, init=0)
        self.done = sim.signal(f"{name}.done", init="0")
        self.found = sim.signal(f"{name}.found", init="0")
        self.out_port = sim.signal(f"{name}.out_port", width=4, init=0)
        self.out_vpi = sim.signal(f"{name}.out_vpi", width=8, init=0)
        self.out_vci = sim.signal(f"{name}.out_vci", width=16, init=0)


class GlobalControlUnitRtl(Component):
    """Round-robin connection-lookup server.

    Args:
        sim, name, clk: as usual.
        num_clients: number of port-module request interfaces.
        lookup_latency: clock cycles each table lookup occupies.
    """

    def __init__(self, sim: Simulator, name: str, clk: Signal,
                 num_clients: int = 4, lookup_latency: int = 4,
                 backend: Optional[str] = None) -> None:
        super().__init__(sim, name, backend=backend)
        if num_clients < 1:
            raise ValueError(f"need >= 1 client, got {num_clients}")
        if lookup_latency < 1:
            raise ValueError(
                f"lookup latency must be >= 1, got {lookup_latency}")
        self.num_clients = num_clients
        self.lookup_latency = lookup_latency
        self.clients = [LookupClient(sim, f"{name}.client{i}")
                        for i in range(num_clients)]
        #: (client, vpi, vci) -> (out_port, out_vpi, out_vci)
        self._table: Dict[Tuple[int, int, int],
                          Tuple[int, int, int]] = {}
        self._rr_next = 0
        self._busy_client: Optional[int] = None
        self._busy_remaining = 0
        #: client masked for one cycle after its done pulse, giving it
        #: time to deassert req (standard req/done handshake closure)
        self._cooldown: Optional[int] = None
        self.lookups_served = 0
        self.lookup_misses = 0
        self.busy_cycles = 0
        self.idle_cycles = 0
        self.clocked(clk, self._tick, compile_fn=self._compile_seq)

    # -- management plane ---------------------------------------------------
    def install(self, client: int, vpi: int, vci: int, out_port: int,
                out_vpi: int, out_vci: int) -> None:
        """Write one connection-table entry."""
        self._table[(client, vpi, vci)] = (out_port, out_vpi, out_vci)

    def remove(self, client: int, vpi: int, vci: int) -> None:
        """Clear one connection-table entry."""
        self._table.pop((client, vpi, vci), None)

    @property
    def table_size(self) -> int:
        """Installed connection count."""
        return len(self._table)

    # -- fast path ------------------------------------------------------------
    def _tick(self) -> None:
        for client in self.clients:
            client.done.drive("0")
        cooled = self._cooldown
        self._cooldown = None
        if self._busy_client is not None:
            self.busy_cycles += 1
            self._busy_remaining -= 1
            if self._busy_remaining == 0:
                self._finish_lookup(self._busy_client)
                self._busy_client = None
            return
        grant = self._arbitrate(skip=cooled)
        if grant is None:
            self.idle_cycles += 1
            return
        self.busy_cycles += 1
        self._busy_client = grant
        self._busy_remaining = self.lookup_latency - 1
        if self._busy_remaining == 0:
            self._finish_lookup(grant)
            self._busy_client = None

    def _arbitrate(self, skip: Optional[int] = None) -> Optional[int]:
        for offset in range(self.num_clients):
            index = (self._rr_next + offset) % self.num_clients
            if index == skip:
                continue
            if self.clients[index].req.value == "1":
                self._rr_next = (index + 1) % self.num_clients
                return index
        return None

    def _finish_lookup(self, index: int) -> None:
        client = self.clients[index]
        vpi = vector_to_int(client.vpi_in.value)
        vci = vector_to_int(client.vci_in.value)
        entry = self._table.get((index, vpi, vci))
        self.lookups_served += 1
        self._cooldown = index
        client.done.drive("1")
        if entry is None:
            self.lookup_misses += 1
            client.found.drive("0")
            return
        out_port, out_vpi, out_vci = entry
        client.found.drive("1")
        client.out_port.drive(out_port)
        client.out_vpi.drive(out_vpi)
        client.out_vci.drive(out_vci)

    # -- compiled twin --------------------------------------------------------
    def _compile_seq(self, ctx):
        """Compiled twin of :meth:`_tick` (arbitration inlined)."""
        reads = []      # (req, vpi_in, vci_in) slots per client
        writes = []     # (done, found, out_port, out_vpi, out_vci)
        for client in self.clients:
            reads.append((ctx.read(client.req),
                          ctx.read(client.vpi_in),
                          ctx.read(client.vci_in)))
            writes.append((ctx.write(client.done),
                           ctx.write(client.found),
                           ctx.write(client.out_port),
                           ctx.write(client.out_vpi),
                           ctx.write(client.out_vci)))
        table = self._table
        num = self.num_clients
        latency = self.lookup_latency

        def finish(index):
            _req, vpi_slot, vci_slot = reads[index]
            w_done, w_found, w_port, w_vpi, w_vci = writes[index]
            vpi = slot_int(vpi_slot.value)
            vci = slot_int(vci_slot.value)
            entry = table.get((index, vpi, vci))
            self.lookups_served += 1
            self._cooldown = index
            w_done("1")
            self._done_hot = index
            if entry is None:
                self.lookup_misses += 1
                w_found("0")
                return
            out_port, out_vpi, out_vci = entry
            w_found("1")
            w_port(out_port)
            w_vpi(out_vpi)
            w_vci(out_vci)

        done_writers = [bundle[0] for bundle in writes]
        req_slots = [bundle[0] for bundle in reads]
        #: precomputed round-robin scan order per starting client —
        #: the arbitration runs every edge, so no modulo in the loop
        orders = [tuple((start + offset) % num for offset in range(num))
                  for start in range(num)]
        # The event twin drives every done '0' each clock; with
        # change-detecting writers only the client whose done is
        # actually '1' (the last finished lookup) needs the clear.
        self._done_hot = None

        def evaluate():
            hot = self._done_hot
            if hot is not None:
                done_writers[hot]("0")
                self._done_hot = None
            cooled = self._cooldown
            if cooled is not None:
                self._cooldown = None
            if self._busy_client is not None:
                self.busy_cycles += 1
                self._busy_remaining -= 1
                if self._busy_remaining == 0:
                    finish(self._busy_client)
                    self._busy_client = None
                return
            grant = None
            for index in orders[self._rr_next]:
                if index != cooled and req_slots[index].value == "1":
                    self._rr_next = (index + 1) % num
                    grant = index
                    break
            if grant is None:
                self.idle_cycles += 1
                return
            self.busy_cycles += 1
            self._busy_client = grant
            self._busy_remaining = latency - 1
            if self._busy_remaining == 0:
                finish(grant)
                self._busy_client = None

        return evaluate
