"""Tests for the conversion library and the stream comparator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.atm import AtmCell
from repro.core import (CellMapper, FieldSpec, MappingError,
                        StreamComparator, StructMapper)


class TestStructMapper:
    def test_byte_aligned_fields(self):
        mapper = StructMapper([FieldSpec("VPI", 8), FieldSpec("VCI", 16)])
        assert mapper.pack({"VPI": 1, "VCI": 0x0203}) == [1, 2, 3]
        assert mapper.unpack([1, 2, 3]) == {"VPI": 1, "VCI": 0x0203}

    def test_non_byte_aligned_fields(self):
        mapper = StructMapper([FieldSpec("a", 4), FieldSpec("b", 3),
                               FieldSpec("c", 1)])
        octets = mapper.pack({"a": 0xA, "b": 0b101, "c": 1})
        assert octets == [0xAB]
        assert mapper.unpack(octets) == {"a": 0xA, "b": 5, "c": 1}

    def test_padding_to_octet_boundary(self):
        mapper = StructMapper([FieldSpec("x", 12)])
        assert mapper.total_octets == 2
        assert mapper.pack({"x": 0xFFF}) == [0xFF, 0xF0]

    def test_value_overflow_rejected(self):
        mapper = StructMapper([FieldSpec("x", 4)])
        with pytest.raises(MappingError):
            mapper.pack({"x": 16})

    def test_missing_field_rejected(self):
        mapper = StructMapper([FieldSpec("x", 4)])
        with pytest.raises(MappingError):
            mapper.pack({})

    def test_wrong_octet_count_rejected(self):
        mapper = StructMapper([FieldSpec("x", 8)])
        with pytest.raises(MappingError):
            mapper.unpack([1, 2])

    def test_duplicate_names_rejected(self):
        with pytest.raises(MappingError):
            StructMapper([FieldSpec("x", 4), FieldSpec("x", 4)])

    def test_empty_struct_rejected(self):
        with pytest.raises(MappingError):
            StructMapper([])

    @settings(max_examples=50, deadline=None)
    @given(st.data())
    def test_property_pack_unpack_inverse(self, data):
        widths = data.draw(st.lists(st.integers(1, 24), min_size=1,
                                    max_size=6))
        fields = [FieldSpec(f"f{i}", w) for i, w in enumerate(widths)]
        mapper = StructMapper(fields)
        values = {f.name: data.draw(st.integers(0, (1 << f.bits) - 1))
                  for f in fields}
        assert mapper.unpack(mapper.pack(values)) == values


class TestCellMapper:
    def test_packet_round_trip(self):
        mapper = CellMapper()
        packet = AtmCell.with_payload(7, 77, [1, 2, 3]).to_packet()
        octets = mapper.packet_to_octets(packet)
        assert len(octets) == 53
        again = mapper.octets_to_packet(octets)
        assert again["VPI"] == 7
        assert again["VCI"] == 77

    def test_cell_round_trip(self):
        mapper = CellMapper()
        cell = AtmCell.with_payload(1, 2, [9])
        assert mapper.octets_to_cell(mapper.cell_to_octets(cell)) == cell

    def test_control_schedule_has_cellsync_at_zero(self):
        assert ("cellsync", 0) in CellMapper().control_schedule()


class TestStreamComparator:
    def test_matching_ordered_streams_pass(self):
        comp = StreamComparator("t")
        comp.extend_reference([1, 2, 3])
        comp.extend_observed([1, 2, 3])
        report = comp.compare()
        assert report.passed
        assert report.matched == 3
        assert "PASS" in report.summary()

    def test_mismatch_detected(self):
        comp = StreamComparator("t")
        comp.extend_reference([1, 2, 3])
        comp.extend_observed([1, 9, 3])
        report = comp.compare()
        assert not report.passed
        assert report.mismatches[0].index == 1
        assert report.mismatches[0].expected == 2
        assert report.mismatches[0].observed == 9
        assert "FAIL" in report.summary()

    def test_missing_and_unexpected(self):
        comp = StreamComparator("t")
        comp.extend_reference([1, 2, 3])
        comp.extend_observed([1])
        assert comp.compare().missing == 2
        comp2 = StreamComparator("t")
        comp2.extend_reference([1])
        comp2.extend_observed([1, 2])
        assert comp2.compare().unexpected == 1

    def test_sorted_normalisation_tolerates_reordering(self):
        ordered = StreamComparator("t")
        ordered.extend_reference([(1, 1), (2, 2)])
        ordered.extend_observed([(2, 2), (1, 1)])
        assert not ordered.compare().passed

        relaxed = StreamComparator("t", normalize="sorted")
        relaxed.extend_reference([(1, 1), (2, 2)])
        relaxed.extend_observed([(2, 2), (1, 1)])
        assert relaxed.compare().passed

    def test_key_projection(self):
        comp = StreamComparator("t", key=lambda item: item[0])
        comp.add_reference((1, "ref-detail"))
        comp.add_observed((1, "dut-detail"))
        assert comp.compare().passed

    def test_unknown_normalisation_rejected(self):
        with pytest.raises(ValueError):
            StreamComparator("t", normalize="fuzzy")

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 5), max_size=30))
    def test_property_identical_streams_always_pass(self, items):
        comp = StreamComparator("t")
        comp.extend_reference(items)
        comp.extend_observed(list(items))
        assert comp.compare().passed
