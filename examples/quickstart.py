#!/usr/bin/env python
"""Quickstart: the Figure-1 co-verification loop in ~60 lines.

A CBR traffic source in the network simulator drives both

* an algorithm reference model (here: the expected VPI/VCI
  translation, computed abstractly), and
* an RTL ATM port module coupled through CASTANET's conservative
  simulator synchronisation,

and the DUT's responses are compared to the reference at the system
level.

Run:  python examples/quickstart.py
"""

from repro.atm import AtmCell
from repro.core import CoVerificationEnvironment
from repro.netsim import SinkModule
from repro.rtl import AtmPortModuleRtl
from repro.traffic import ConstantBitRate, TrafficSource

NUM_CELLS = 20
CELL_PERIOD = 4e-6  # one cell every 4 us (25% of an STM-1 line)


def main() -> int:
    # 1. The environment owns both simulators and the coupling.
    env = CoVerificationEnvironment()

    # 2. The DUT lives in the HDL simulator: an RTL port module that
    #    translates connection (1, 100) to (2, 200).
    dut = AtmPortModuleRtl(env.hdl, "dut", env.clk)
    dut.install(1, 100, 2, 200)
    entity = env.add_dut(rx_port=dut.rx, tx_port=dut.tx)

    # 3. The test bench lives in the network simulator: a traffic
    #    source, a CASTANET tap feeding the DUT, and a sink.
    host = env.network.add_node("host")
    source = TrafficSource(
        "source", ConstantBitRate(period=CELL_PERIOD),
        packet_factory=lambda i: AtmCell.with_payload(
            1, 100, [i]).to_packet(),
        count=NUM_CELLS)
    tap = env.make_cell_tap("tap", entity)
    sink = SinkModule("sink", keep=True)
    for module in (source, tap, sink):
        host.add_module(module)
    host.connect(source, 0, tap, 0)
    host.connect(tap, 0, sink, 0)

    # 4. The reference model and the comparator ("=?" in Figure 1).
    comparator = env.comparator("port-module-translation")
    entity.on_output = lambda t, cell: comparator.add_observed(
        (cell.vpi, cell.vci, cell.payload[0]))
    tap.add_hook(lambda t, pkt: comparator.add_reference(
        (2, 200, pkt["payload"][0])))

    # 5. Run the network simulation; the HDL simulator follows along
    #    behind the conservative synchronisation windows.
    env.run()
    env.finish()

    report = comparator.compare()
    print(report.summary())
    print(f"cells through the coupling : {entity.cells_in}")
    print("HDL clock cycles simulated : "
          f"{env.hdl.now // env.timebase.clock_period_ticks}")
    print("sync messages exchanged    : "
          f"{entity.sync.stats.messages_posted} data + "
          f"{entity.sync.stats.null_messages} null")
    return 0 if report.passed else 1


if __name__ == "__main__":
    raise SystemExit(main())
