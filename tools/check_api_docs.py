"""Verify that every dotted name in docs/api/ still imports.

Scans the markdown pages under docs/api/ for backticked dotted names
rooted at ``repro.`` (for example ```repro.core.TimeBase```), then
resolves each one: import the longest importable module prefix and
getattr the remaining attribute chain.  Any name that fails to resolve
is reported and the script exits non-zero, so the API reference cannot
silently drift from the code.

Usage::

    PYTHONPATH=src python tools/check_api_docs.py [docs/api]
"""

from __future__ import annotations

import importlib
import re
import sys
from pathlib import Path

NAME_RE = re.compile(r"`(repro(?:\.\w+)+)`")


def iter_documented_names(docs_dir: Path):
    """Yield ``(page, dotted_name)`` for every backticked name in docs_dir."""
    for page in sorted(docs_dir.glob("*.md")):
        for match in NAME_RE.finditer(page.read_text(encoding="utf-8")):
            yield page.name, match.group(1)


def resolve(dotted: str) -> None:
    """Import/getattr ``dotted``; raise if any step fails."""
    parts = dotted.split(".")
    module = None
    index = len(parts)
    # Longest importable prefix first, so "repro.core.TimeBase" imports
    # repro.core and getattrs TimeBase rather than importing a module
    # named repro.core.TimeBase.
    while index > 0:
        try:
            module = importlib.import_module(".".join(parts[:index]))
            break
        except ImportError:
            index -= 1
    if module is None:
        raise ImportError(f"no importable prefix of {dotted!r}")
    obj = module
    for attr in parts[index:]:
        obj = getattr(obj, attr)


def main(argv: list[str]) -> int:
    docs_dir = Path(argv[1]) if len(argv) > 1 else Path("docs/api")
    if not docs_dir.is_dir():
        print(f"check_api_docs: no such directory: {docs_dir}", file=sys.stderr)
        return 2
    checked = 0
    failures = []
    for page, dotted in iter_documented_names(docs_dir):
        checked += 1
        try:
            resolve(dotted)
        except Exception as exc:  # noqa: BLE001 - report every resolution failure
            failures.append((page, dotted, exc))
    if failures:
        for page, dotted, exc in failures:
            print(f"FAIL {page}: `{dotted}` does not resolve: {exc}", file=sys.stderr)
        print(
            f"check_api_docs: {len(failures)}/{checked} documented names broken",
            file=sys.stderr,
        )
        return 1
    print(f"check_api_docs: OK ({checked} documented names resolve)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
