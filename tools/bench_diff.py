"""Compare two ``BENCH_*.json`` artifacts metric by metric.

The benchmark harness writes machine-readable artifacts
(``BENCH_kernel.json``, ``BENCH_e1.json``, ``BENCH_obs.json``,
``BENCH_stats.json``, …) at the repo root; this tool diffs two of
them — typically the committed baseline against a fresh run — and
prints every numeric leaf with its absolute and relative delta::

    PYTHONPATH=src python tools/bench_diff.py BENCH_e1.json /tmp/BENCH_e1.json

Dotted paths address nested keys (``cosim.cycles_per_s``).  Keys
present on only one side are listed separately.  ``--threshold R``
exits non-zero when any ``cycles_per_s`` metric drops by more than the
given ratio (e.g. ``--threshold 0.3`` mirrors the CI regression
guard); without it the tool is purely informational and always exits
zero.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple

__all__ = ["flatten_numeric", "diff_payloads", "render_diff", "main"]

#: keys that are identity/metadata, not measurements — never diffed
SKIP_KEYS = frozenset({"benchmark", "scale"})


def flatten_numeric(payload: object, prefix: str = ""
                    ) -> Iterator[Tuple[str, float]]:
    """Yield ``(dotted.path, value)`` for every numeric leaf.

    Booleans are excluded (they are ints to ``isinstance``); lists are
    indexed numerically (``buckets.3.count``)."""
    if isinstance(payload, bool):
        return
    if isinstance(payload, (int, float)):
        yield prefix, float(payload)
        return
    if isinstance(payload, dict):
        for key in sorted(payload):
            if prefix == "" and key in SKIP_KEYS:
                continue
            path = f"{prefix}.{key}" if prefix else str(key)
            yield from flatten_numeric(payload[key], path)
    elif isinstance(payload, list):
        for index, item in enumerate(payload):
            path = f"{prefix}.{index}" if prefix else str(index)
            yield from flatten_numeric(item, path)


def diff_payloads(old: object, new: object) -> Dict[str, object]:
    """Structured diff of the numeric leaves of two artifacts."""
    old_leaves = dict(flatten_numeric(old))
    new_leaves = dict(flatten_numeric(new))
    rows = []
    for path in sorted(set(old_leaves) & set(new_leaves)):
        before, after = old_leaves[path], new_leaves[path]
        ratio: Optional[float] = after / before if before else None
        rows.append({"path": path, "old": before, "new": after,
                     "delta": after - before, "ratio": ratio})
    return {
        "rows": rows,
        "only_old": sorted(set(old_leaves) - set(new_leaves)),
        "only_new": sorted(set(new_leaves) - set(old_leaves)),
    }


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.6g}"


def render_diff(diff: Dict[str, object], show_unchanged: bool = False
                ) -> str:
    """Human-readable table of a :func:`diff_payloads` result."""
    lines = []
    width = max((len(row["path"]) for row in diff["rows"]),
                default=10)
    for row in diff["rows"]:
        if row["delta"] == 0 and not show_unchanged:
            continue
        ratio = row["ratio"]
        rel = f"{ratio - 1.0:+8.1%}" if ratio is not None else "     new"
        lines.append(f"  {row['path']:<{width}}  "
                     f"{_fmt(row['old']):>14} -> {_fmt(row['new']):>14}"
                     f"  {rel}")
    if not lines:
        lines.append("  (no numeric differences)")
    for label, key in (("only in OLD", "only_old"),
                       ("only in NEW", "only_new")):
        for path in diff[key]:
            lines.append(f"  {label}: {path}")
    return "\n".join(lines)


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        description="diff two BENCH_*.json artifacts metric by metric")
    parser.add_argument("old", help="baseline artifact")
    parser.add_argument("new", help="fresh artifact")
    parser.add_argument("--all", action="store_true",
                        help="also list unchanged metrics")
    parser.add_argument("--threshold", type=float, default=None,
                        help="fail (exit 1) when any cycles_per_s "
                             "metric drops by more than this ratio")
    args = parser.parse_args(argv)

    payloads = []
    for role, path in (("old", args.old), ("new", args.new)):
        path = Path(path)
        if not path.is_file():
            print(f"no such {role} artifact: {path}", file=sys.stderr)
            return 2
        try:
            payloads.append(json.loads(path.read_text()))
        except json.JSONDecodeError as exc:
            print(f"{path}: invalid JSON: {exc}", file=sys.stderr)
            return 2

    diff = diff_payloads(*payloads)
    print(f"bench diff: {args.old} -> {args.new}")
    print(render_diff(diff, show_unchanged=args.all))

    if args.threshold is not None:
        regressed = [
            row for row in diff["rows"]
            if row["path"].endswith("cycles_per_s")
            and row["ratio"] is not None
            and row["ratio"] < 1.0 - args.threshold]
        if regressed:
            names = ", ".join(row["path"] for row in regressed)
            print(f"FAIL: {len(regressed)} throughput metric(s) "
                  f"dropped more than {args.threshold:.0%}: {names}")
            return 1
        print(f"all throughput metrics within {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
